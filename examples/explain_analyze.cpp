// EXPLAIN ANALYZE walkthrough: run the paper's Fig. 1 correlated scalar
// subquery on generated TPC-H data and print the physical plan annotated
// with per-operator actual rows / wall time next to the cost model's
// estimates, plus the normalizer/optimizer rule-firing trace. Finishes
// with the same query under the correlated-execution strategy so the two
// instrumented plans can be compared side by side.
//
//   $ ./explain_analyze
#include <cstdio>

#include "engine/engine.h"
#include "tpch/tpch_gen.h"

using namespace orq;

namespace {

const char* kFig1Sql =
    "select c_custkey from customer "
    "where 10000 < (select sum(o_totalprice) from orders "
    "               where o_custkey = c_custkey)";

void Analyze(QueryEngine* engine, const char* heading,
             const std::string& sql) {
  std::printf("\n===== %s =====\nSQL: %s\n\n", heading, sql.c_str());
  Result<std::string> text = engine->ExplainAnalyze(sql);
  if (!text.ok()) {
    std::printf("error: %s\n", text.status().ToString().c_str());
    return;
  }
  std::printf("%s", text->c_str());
}

}  // namespace

int main() {
  Catalog catalog;
  TpchGenOptions options;
  options.scale_factor = 0.01;
  if (Status s = GenerateTpch(&catalog, options); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  QueryEngine full(&catalog);
  Analyze(&full, "Fig. 1 query, full optimization", kFig1Sql);

  QueryEngine correlated(&catalog, EngineOptions::CorrelatedOnly());
  Analyze(&correlated, "Fig. 1 query, correlated execution (section 1.1)",
          kFig1Sql);

  // The machine-readable form benchmarks emit (see DESIGN.md for schema).
  Result<AnalyzedQuery> analyzed = full.ExecuteAnalyzed(kFig1Sql);
  if (analyzed.ok()) {
    std::printf("\n===== JSON record =====\n%s\n",
                analyzed->ToJson("explain_analyze_example").c_str());
  }
  return 0;
}
