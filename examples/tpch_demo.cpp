// Runs the TPC-H evaluation query set on generated data and prints a
// mini "power run" table across optimizer configurations — an
// application-level rendition of the benchmark harness.
//
//   $ ./tpch_demo [scale_factor]      (default 0.005)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

using namespace orq;

namespace {

double RunMs(QueryEngine* engine, const std::string& sql, int64_t* rows) {
  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> result = engine->Execute(sql);
  auto stop = std::chrono::steady_clock::now();
  if (!result.ok()) {
    *rows = -1;
    return -1.0;
  }
  *rows = static_cast<int64_t>(result->rows.size());
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  double scale_factor = argc > 1 ? std::atof(argv[1]) : 0.005;
  std::printf("Generating TPC-H at SF %.3f ...\n", scale_factor);
  Catalog catalog;
  TpchGenOptions options;
  options.scale_factor = scale_factor;
  if (Status s = GenerateTpch(&catalog, options); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  lineitem: %zu rows, orders: %zu rows\n\n",
              catalog.FindTable("lineitem")->num_rows(),
              catalog.FindTable("orders")->num_rows());
  // Warm the statistics cache so the first query isn't charged for it.
  for (const std::string& name : catalog.TableNames()) {
    catalog.GetStats(*catalog.FindTable(name));
  }

  struct Config {
    const char* name;
    EngineOptions options;
  };
  const Config configs[] = {
      {"full", EngineOptions::Full()},
      {"no-groupby-opts", EngineOptions::NoGroupByOptimizations()},
      {"no-segment-apply", EngineOptions::NoSegmentApply()},
      {"correlated-only", EngineOptions::CorrelatedOnly()},
  };

  std::printf("%-5s %-8s", "query", "rows");
  for (const Config& config : configs) std::printf(" %16s", config.name);
  std::printf("\n");

  for (const TpchQuery& query : TpchQuerySet()) {
    std::printf("%-5s ", query.id.c_str());
    bool first = true;
    std::string cells;
    int64_t rows = 0;
    for (const Config& config : configs) {
      // The naive correlated strategy re-aggregates all of lineitem per
      // outer row on Q18/Q15 — hours at this scale. Report DNF.
      bool dnf = std::string(config.name) == "correlated-only" &&
                 (query.id == "Q18" || query.id == "Q15");
      if (dnf) {
        cells += "              DNF";
        continue;
      }
      QueryEngine engine(&catalog, config.options);
      int64_t r = 0;
      double ms = RunMs(&engine, query.sql, &r);
      if (first) {
        rows = r;
        first = false;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), " %14.1fms", ms);
      cells += buf;
    }
    std::printf("%-8lld%s\n", static_cast<long long>(rows), cells.c_str());
  }
  std::printf(
      "\nEvery configuration returns identical results (verified by the\n"
      "test suite); only the plans differ. See EXPERIMENTS.md.\n");
  return 0;
}
