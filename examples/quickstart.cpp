// Quickstart: build a tiny database, run subquery SQL through the engine,
// and look at the plans the paper's techniques produce.
//
//   $ ./quickstart
#include <cstdio>

#include "engine/engine.h"

using namespace orq;  // examples favor brevity

namespace {

void PrintResult(const QueryResult& result) {
  for (size_t i = 0; i < result.column_names.size(); ++i) {
    std::printf("%s%s", i ? " | " : "", result.column_names[i].c_str());
  }
  std::printf("\n");
  for (const Row& row : result.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i ? " | " : "", row[i].ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n\n", result.rows.size());
}

}  // namespace

int main() {
  // 1. Create tables and load rows.
  Catalog catalog;
  Table* customer = *catalog.CreateTable(
      "customer", {{"c_custkey", DataType::kInt64, false},
                   {"c_name", DataType::kString, false}});
  customer->SetPrimaryKey({0});
  const char* names[] = {"alice", "bob", "carol", "dave"};
  for (int64_t i = 0; i < 4; ++i) {
    (void)customer->Append({Value::Int64(i + 1), Value::String(names[i])});
  }
  Table* orders = *catalog.CreateTable(
      "orders", {{"o_orderkey", DataType::kInt64, false},
                 {"o_custkey", DataType::kInt64, false},
                 {"o_totalprice", DataType::kDouble, false}});
  orders->SetPrimaryKey({0});
  double prices[] = {900, 150, 2200, 80, 1300, 40};
  int64_t custs[] = {1, 1, 2, 3, 3, 3};
  for (int64_t i = 0; i < 6; ++i) {
    (void)orders->Append({Value::Int64(100 + i), Value::Int64(custs[i]),
                          Value::Double(prices[i])});
  }
  orders->BuildIndex({1});  // index on o_custkey enables index-lookup-join

  // 2. Run the paper's example query (section 1.1): customers who have
  //    ordered more than a threshold, written with a correlated subquery.
  QueryEngine engine(&catalog);
  const std::string sql =
      "select c_name from customer "
      "where 1000 < (select sum(o_totalprice) from orders "
      "              where o_custkey = c_custkey) "
      "order by c_name";
  Result<QueryResult> result = engine.Execute(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("== customers with > $1000 ordered ==\n");
  PrintResult(*result);

  // 3. The same question, three syntactic ways (section 1.1 lists them);
  //    the engine normalizes all of them into the same plan space.
  const char* variants[] = {
      "select c_name from customer left outer join orders "
      "on o_custkey = c_custkey "
      "group by c_name having 1000 < sum(o_totalprice) order by c_name",
      "select c_name from customer, "
      "(select o_custkey from orders group by o_custkey "
      " having 1000 < sum(o_totalprice)) as big "
      "where o_custkey = c_custkey order by c_name",
  };
  for (const char* variant : variants) {
    Result<QueryResult> r = engine.Execute(variant);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("== equivalent formulation ==\n");
    PrintResult(*r);
  }

  // 4. EXPLAIN shows every compilation phase from the paper: the bound
  //    tree with embedded subqueries (2.1), Apply introduction (2.2),
  //    correlation removal (2.3), and the cost-based plan (section 3).
  Result<std::string> explained = engine.Explain(sql);
  if (explained.ok()) {
    std::printf("%s\n", explained->c_str());
  }
  return 0;
}
