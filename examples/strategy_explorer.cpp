// Interactive plan explorer: give it SQL (argument or stdin) and it prints
// the chosen plan under each engine configuration, plus timing — a small
// workbench for studying how each orthogonal technique changes the plan.
//
//   $ ./strategy_explorer "select ... "
//   $ echo "select ..." | ./strategy_explorer
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "algebra/printer.h"
#include "engine/engine.h"
#include "tpch/tpch_gen.h"

using namespace orq;

int main(int argc, char** argv) {
  std::string sql;
  if (argc > 1) {
    sql = argv[1];
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    sql = buffer.str();
  }
  if (sql.empty()) {
    // A default worth exploring: the paper's Q1.
    sql =
        "select c_custkey from customer "
        "where 100000 < (select sum(o_totalprice) from orders "
        "                where o_custkey = c_custkey)";
    std::printf("(no SQL given; using the paper's running example)\n");
  }

  Catalog catalog;
  TpchGenOptions options;
  options.scale_factor = 0.01;
  if (Status s = GenerateTpch(&catalog, options); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  struct Config {
    const char* name;
    const char* what;
    EngineOptions options;
  };
  const Config configs[] = {
      {"full", "all techniques, cost-based", EngineOptions::Full()},
      {"no-groupby-opts", "decorrelation only, no section-3 reordering",
       EngineOptions::NoGroupByOptimizations()},
      {"no-segment-apply", "everything except SegmentApply",
       EngineOptions::NoSegmentApply()},
      {"correlated-only", "no normalization: tuple-at-a-time subqueries",
       EngineOptions::CorrelatedOnly()},
  };

  for (const Config& config : configs) {
    std::printf("\n===== %s (%s) =====\n", config.name, config.what);
    QueryEngine engine(&catalog, config.options);
    Result<QueryEngine::Compiled> compiled = engine.Compile(sql);
    if (!compiled.ok()) {
      std::printf("compile error: %s\n",
                  compiled.status().ToString().c_str());
      continue;
    }
    std::printf("%s", PrintRelTree(*compiled->optimized,
                                   compiled->columns.get()).c_str());
    auto start = std::chrono::steady_clock::now();
    Result<QueryResult> result = engine.ExecuteCompiled(*compiled);
    auto stop = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::printf("execution error: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("-> %zu rows in %.2f ms (%lld operator rows produced)\n",
                result->rows.size(),
                std::chrono::duration<double, std::milli>(stop - start)
                    .count(),
                static_cast<long long>(result->rows_produced));
  }
  return 0;
}
