// A guided tour of correlation removal, following the paper section by
// section on generated TPC-H data: the mutual-recursion representation,
// Apply introduction, the Fig. 4 identities, subquery classification,
// outerjoin simplification, and cost-based re-introduction.
//
//   $ ./decorrelation_tour
#include <cstdio>

#include "algebra/printer.h"
#include "engine/engine.h"
#include "normalize/subquery_class.h"
#include "tpch/tpch_gen.h"

using namespace orq;

namespace {

void Section(const char* title) { std::printf("\n===== %s =====\n", title); }

void Tour(QueryEngine* engine, const char* heading, const std::string& sql) {
  Section(heading);
  std::printf("SQL: %s\n\n", sql.c_str());
  Result<QueryEngine::Compiled> compiled = engine->Compile(sql);
  if (!compiled.ok()) {
    std::printf("compile error: %s\n", compiled.status().ToString().c_str());
    return;
  }
  const ColumnManager* columns = compiled->columns.get();
  std::printf("-- bound tree (mutual recursion, paper 2.1):\n%s\n",
              PrintRelTree(*compiled->bound, columns).c_str());
  std::printf("-- after Apply introduction (paper 2.2):\n%s\n",
              PrintRelTree(*compiled->applied, columns).c_str());
  for (const ClassifiedApply& entry :
       ClassifySubqueries(compiled->applied)) {
    std::printf("-- subquery class (paper 2.5): %s\n",
                SubqueryClassName(entry.cls).c_str());
  }
  std::printf("-- normalized (identities of Fig. 4 + outerjoin "
              "simplification):\n%s\n",
              PrintRelTree(*compiled->normalized, columns).c_str());
  std::printf("-- cost-based final plan (paper section 3):\n%s\n",
              PrintRelTree(*compiled->optimized, columns).c_str());
}

}  // namespace

int main() {
  Catalog catalog;
  TpchGenOptions options;
  options.scale_factor = 0.01;
  if (Status s = GenerateTpch(&catalog, options); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  QueryEngine engine(&catalog);

  Tour(&engine, "Q1 of the paper: correlated scalar aggregate",
       "select c_custkey from customer "
       "where 1000000 < (select sum(o_totalprice) from orders "
       "                 where o_custkey = c_custkey)");

  Tour(&engine, "EXISTS becomes Apply-semijoin, then semijoin (2.4)",
       "select o_orderkey from orders "
       "where exists (select * from lineitem "
       "              where l_orderkey = o_orderkey "
       "                and l_commitdate < l_receiptdate)");

  Tour(&engine, "NOT IN keeps three-valued semantics through antijoin",
       "select c_custkey from customer "
       "where c_custkey not in (select o_custkey from orders "
       "                        where o_totalprice > 100000)");

  Tour(&engine,
       "TPC-H Q17: decorrelation, then SegmentApply (paper 3.4, Figs. 6-7)",
       "select sum(l_extendedprice) / 7.0 as avg_yearly "
       "from lineitem, part "
       "where p_partkey = l_partkey "
       "  and p_brand = 'Brand#23' and p_container = 'MED BOX' "
       "  and l_quantity < (select 0.2 * avg(l_quantity) from lineitem l2 "
       "                    where l2.l_partkey = p_partkey)");

  Tour(&engine, "A Class-2 subquery: UNION ALL duplicates the outer (2.5)",
       "select s_suppkey from supplier "
       "where 10000 > (select sum(total) from "
       "  (select s_acctbal as total from supplier s2 "
       "   where s2.s_suppkey = s_suppkey "
       "   union all "
       "   select p_retailprice as total from part "
       "   where p_partkey = s_suppkey) as unionresult)");

  return 0;
}
