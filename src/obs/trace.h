#ifndef ORQ_OBS_TRACE_H_
#define ORQ_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace orq {

/// One normalization/optimization rule firing (or whole-phase pass).
/// Node counts are of the rewritten subtree (rule granularity) or the whole
/// query tree (phase granularity), letting consumers see whether a rewrite
/// grew or shrank the plan. Costs are the optimizer's estimates and are -1
/// for normalization events, which fire unconditionally.
struct TraceEvent {
  enum class Stage { kNormalize, kOptimize };
  /// Rule firings record one identity/transformation application; phase
  /// events bracket a whole pipeline pass over the tree.
  enum class Kind { kRule, kPhase };

  Stage stage = Stage::kNormalize;
  Kind kind = Kind::kRule;
  std::string rule;
  int64_t nodes_before = 0;
  int64_t nodes_after = 0;
  double cost_before = -1.0;
  double cost_after = -1.0;
  /// Wall time spent producing this rewrite: candidate evaluation for
  /// optimizer rules, the whole pass for normalizer phase events. Zero for
  /// events recorded without timing (nested identity firings — their time
  /// is inside the enclosing pass).
  int64_t wall_nanos = 0;
};

const char* TraceStageName(TraceEvent::Stage stage);
const char* TraceKindName(TraceEvent::Kind kind);

/// Ordered record of every rule firing during compilation. Attached to
/// NormalizerOptions/OptimizerOptions as a non-owning pointer; a null
/// pointer (the default) disables tracing entirely.
class TraceLog {
 public:
  void Record(TraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Rule-granularity firings for one stage, in firing order.
  std::vector<const TraceEvent*> RuleFirings(TraceEvent::Stage stage) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace orq

#endif  // ORQ_OBS_TRACE_H_
