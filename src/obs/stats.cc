#include "obs/stats.h"

namespace orq {

const OpStats* StatsCollector::Find(const void* op) const {
  auto it = stats_.find(op);
  return it == stats_.end() ? nullptr : &it->second;
}

int64_t StatsCollector::TotalRowsOut() const {
  int64_t total = 0;
  for (const auto& [op, stats] : stats_) total += stats.rows_out;
  return total;
}

}  // namespace orq
