#include "obs/stats.h"

namespace orq {

const OpStats* StatsCollector::Find(const void* op) const {
  auto it = stats_.find(op);
  return it == stats_.end() ? nullptr : &it->second;
}

void StatsCollector::MergeFrom(const StatsCollector& other) {
  for (const auto& [op, theirs] : other.stats_) {
    OpStats& ours = stats_[op];
    ours.open_calls += theirs.open_calls;
    ours.next_calls += theirs.next_calls;
    ours.close_calls += theirs.close_calls;
    ours.rows_out += theirs.rows_out;
    ours.wall_nanos += theirs.wall_nanos;
    if (theirs.peak_cardinality > ours.peak_cardinality) {
      ours.peak_cardinality = theirs.peak_cardinality;
    }
    ours.batch_slots += theirs.batch_slots;
    ours.column_batches += theirs.column_batches;
    ours.enc_dict_cols += theirs.enc_dict_cols;
    ours.enc_rle_cols += theirs.enc_rle_cols;
    ours.enc_plain_cols += theirs.enc_plain_cols;
    ours.enc_bytes += theirs.enc_bytes;
  }
}

int64_t StatsCollector::TotalRowsOut() const {
  int64_t total = 0;
  for (const auto& [op, stats] : stats_) total += stats.rows_out;
  return total;
}

}  // namespace orq
