#ifndef ORQ_OBS_BENCH_GATE_H_
#define ORQ_OBS_BENCH_GATE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace orq {

/// CI perf-regression gate policy for JSON-lines bench reports
/// (bench/baselines/BENCH_*.json vs a fresh `--json` run).
struct BenchGateOptions {
  /// A benchmark fails when current wall_ms exceeds baseline wall_ms by
  /// more than this factor. Speedups never fail; wall comparisons are
  /// skipped entirely when <= 0.
  double wall_tolerance = 1.4;
  /// Wall checks only apply when the baseline wall time is at least this
  /// many milliseconds: sub-millisecond benchmarks are noise-dominated in
  /// a short smoke run (one cold iteration blows any multiplicative
  /// tolerance), so only their row counts gate.
  double min_wall_ms = 0.5;
};

/// Outcome of one baseline-vs-current comparison. Row-count mismatches and
/// wall regressions are failures; benchmarks only present on one side are
/// notes for additions but failures for disappearances (a vanished
/// benchmark would otherwise silently shrink coverage).
struct BenchGateReport {
  int compared = 0;
  std::vector<std::string> notes;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Compares two JSON-lines bench reports (whole file contents, one JSON
/// object per line; blank lines ignored). Malformed JSON or a baseline
/// with no entries is an error, not a pass — a gate that cannot read its
/// baseline must not go green.
Result<BenchGateReport> CompareBenchJson(const std::string& baseline_jsonl,
                                         const std::string& current_jsonl,
                                         const BenchGateOptions& options);

/// Mode-vs-mode speedup gate over a single bench report: pairs every
/// entry whose name contains `slow_tag` with the same name under
/// `fast_tag` (e.g. "Columnar_GroupBy/batch/20" paired with
/// "Columnar_GroupBy/columnar/20") and requires at least `min_pairs`
/// pairs to reach `min_ratio`. This is how ci.sh holds the columnar
/// engine to its promised speedup over row-batch execution.
struct SpeedupGateOptions {
  std::string slow_tag = "/batch/";
  std::string fast_tag = "/columnar/";
  /// slow wall_ms / fast wall_ms must reach this on min_pairs pairs.
  double min_ratio = 1.5;
  int min_pairs = 2;
  /// Pairs whose slow side runs under this floor are noise-dominated in
  /// a smoke window; they are reported as notes but never count for or
  /// against the gate.
  double min_wall_ms = 0.5;
};

/// Evaluates the speedup gate against one JSON-lines bench report. A
/// report with no eligible (slow, fast) pairs is an error, not a pass —
/// the gate must see the workloads it claims to hold.
Result<BenchGateReport> CheckSpeedupJson(const std::string& jsonl,
                                         const SpeedupGateOptions& options);

}  // namespace orq

#endif  // ORQ_OBS_BENCH_GATE_H_
