#include "obs/report.h"

#include <cinttypes>
#include <cstdio>

namespace orq {

namespace {

std::string RenderLayout(const PhysicalOp& op, const ColumnManager* columns) {
  std::string out;
  const std::vector<ColumnId>& layout = op.layout();
  for (size_t i = 0; i < layout.size(); ++i) {
    if (i > 0) out += ", ";
    if (columns != nullptr) {
      out += columns->name(layout[i]);
      out += '#';
    }
    out += std::to_string(layout[i]);
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[32];
  // One decimal is enough for row estimates; trims the noise of %g.
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string FormatMillis(int64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", nanos / 1e6);
  return buf;
}

void RenderRec(const PlanStatsNode& node, int indent, std::string* out) {
  out->append(indent * 2, ' ');
  out->append(node.name);
  out->append(" [");
  out->append(node.columns);
  out->append("]");
  out->append(" (actual rows=" + std::to_string(node.stats.rows_out));
  if (node.est_rows >= 0) {
    out->append(" est rows=" + FormatDouble(node.est_rows));
  }
  out->append(" time=" + FormatMillis(node.stats.wall_nanos) + "ms");
  out->append(" self=" + FormatMillis(node.self_wall_nanos) + "ms");
  if (node.est_cost >= 0) {
    out->append(" est cost=" + FormatDouble(node.est_cost));
  }
  out->append(" opens=" + std::to_string(node.stats.open_calls));
  out->append(" nexts=" + std::to_string(node.stats.next_calls));
  if (node.stats.peak_cardinality > 0) {
    out->append(" peak=" + std::to_string(node.stats.peak_cardinality));
  }
  if (node.stats.column_batches > 0) {
    // For columnar operators rows_out counts selected rows while
    // batch_slots counts capacity, so the fill= ratio below doubles as
    // the selection-vector density.
    out->append(" mode=columnar");
  }
  if (node.stats.batch_slots > 0) {
    out->append(" fill=" +
                std::to_string(100 * node.stats.rows_out /
                               node.stats.batch_slots) +
                "%");
  }
  // Encoded-storage shape of a table scan's served chunks (recorded once
  // per Open): how many projected columns came dict/RLE/plain and their
  // total byte footprint.
  if (node.stats.enc_dict_cols > 0 || node.stats.enc_rle_cols > 0 ||
      node.stats.enc_plain_cols > 0) {
    out->append(" encoding=dict:" + std::to_string(node.stats.enc_dict_cols) +
                ",rle:" + std::to_string(node.stats.enc_rle_cols) +
                ",plain:" + std::to_string(node.stats.enc_plain_cols) +
                " bytes=" + std::to_string(node.stats.enc_bytes));
  }
  out->append(")\n");
  for (const PlanStatsNode& child : node.children) {
    RenderRec(child, indent + 1, out);
  }
}

}  // namespace

PlanStatsNode BuildPlanStats(const PhysicalOp& plan,
                             const StatsCollector& collector,
                             const ColumnManager* columns) {
  PlanStatsNode node;
  node.name = plan.name();
  node.columns = RenderLayout(plan, columns);
  node.est_rows = plan.est_rows();
  node.est_cost = plan.est_cost();
  if (const OpStats* stats = collector.Find(&plan)) node.stats = *stats;
  int64_t children_wall = 0;
  for (const PhysicalOp* child : plan.children()) {
    node.children.push_back(BuildPlanStats(*child, collector, columns));
    children_wall += node.children.back().stats.wall_nanos;
  }
  node.self_wall_nanos = node.stats.wall_nanos - children_wall;
  if (node.self_wall_nanos < 0) node.self_wall_nanos = 0;
  return node;
}

int64_t TotalRowsOut(const PlanStatsNode& node) {
  int64_t total = node.stats.rows_out;
  for (const PlanStatsNode& child : node.children) {
    total += TotalRowsOut(child);
  }
  return total;
}

std::string RenderPlanStats(const PlanStatsNode& root) {
  std::string out;
  RenderRec(root, 0, &out);
  return out;
}

std::string RenderTrace(const TraceLog& trace) {
  std::string out;
  for (const TraceEvent& event : trace.events()) {
    out += "  [";
    out += TraceStageName(event.stage);
    out += event.kind == TraceEvent::Kind::kPhase ? "/phase] " : "] ";
    out += event.rule;
    out += ": nodes " + std::to_string(event.nodes_before) + " -> " +
           std::to_string(event.nodes_after);
    if (event.cost_before >= 0) {
      out += ", cost " + FormatDouble(event.cost_before) + " -> " +
             FormatDouble(event.cost_after);
    }
    if (event.wall_nanos > 0) {
      out += ", time " + FormatMillis(event.wall_nanos) + "ms";
    }
    out += "\n";
  }
  return out;
}

}  // namespace orq
