#include "obs/trace.h"

namespace orq {

const char* TraceStageName(TraceEvent::Stage stage) {
  switch (stage) {
    case TraceEvent::Stage::kNormalize: return "normalize";
    case TraceEvent::Stage::kOptimize: return "optimize";
  }
  return "unknown";
}

const char* TraceKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kRule: return "rule";
    case TraceEvent::Kind::kPhase: return "phase";
  }
  return "unknown";
}

std::vector<const TraceEvent*> TraceLog::RuleFirings(
    TraceEvent::Stage stage) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& event : events_) {
    if (event.stage == stage && event.kind == TraceEvent::Kind::kRule) {
      out.push_back(&event);
    }
  }
  return out;
}

}  // namespace orq
