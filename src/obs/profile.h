#ifndef ORQ_OBS_PROFILE_H_
#define ORQ_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/stats.h"
#include "obs/trace.h"

namespace orq {

/// Compilation/execution pipeline phases, in pipeline order. One timer per
/// phase; the phases tile the query's end-to-end wall time (the paper's
/// whole argument is a trade of optimization time against execution time,
/// so both sides must be measurable).
enum class QueryPhase : int {
  kParse = 0,
  kBind,
  kApplyIntro,
  kNormalize,
  kOptimize,
  kPhysicalBuild,
  kExecute,
};
inline constexpr int kNumQueryPhases = static_cast<int>(QueryPhase::kExecute) + 1;

const char* QueryPhaseName(QueryPhase phase);

/// Wall-clock interval of one phase. `start_nanos` is on the ObsNowNanos
/// timeline (absolute), so phases can be exported as trace spans;
/// `wall_nanos` accumulates across re-entries (a phase that runs twice
/// keeps its first start and the summed duration).
struct PhaseSpan {
  int64_t start_nanos = 0;
  int64_t wall_nanos = 0;
};

/// Wall-nanosecond breakdown of one query's lifecycle. Accumulated by
/// QueryEngine::ExecuteAnalyzed; phases are timed back to back, so
/// PhaseSum() accounts for the whole of `total_nanos` up to the (tiny)
/// bookkeeping between phases — the invariant obs_test pins at 5%.
/// Plan-cache outcome of one query, for the EXPLAIN ANALYZE breakdown.
enum class CacheOutcome : int {
  kOff = 0,   // plan cache disabled; no line rendered
  kMiss,      // compiled cold (entry inserted)
  kHit,       // served from cache; compile phases up to optimize skipped
};

struct QueryProfile {
  PhaseSpan phases[kNumQueryPhases];
  /// Start of the measured window (compile entry), ObsNowNanos timeline.
  int64_t start_nanos = 0;
  /// End-to-end wall time: compile entry to execution end.
  int64_t total_nanos = 0;
  /// Whether the plan came from the plan cache (kOff when caching is off).
  CacheOutcome cache = CacheOutcome::kOff;
  /// Stable query id ("s<session>q<seq>" on the server, "q<n>" for
  /// engine-local analyzed runs; empty when no id was minted). Carried here
  /// so every renderer that already takes a profile can cross-reference.
  std::string query_id;
  /// When non-null, each PhaseTimer publishes its phase index here as it
  /// starts — the lock-free "current phase" feed behind `\queries`. The
  /// pointer must outlive the query; owners clear it before copying the
  /// profile into long-lived storage.
  std::atomic<int>* live_phase = nullptr;

  const PhaseSpan& phase(QueryPhase p) const {
    return phases[static_cast<int>(p)];
  }
  int64_t PhaseSum() const;
};

/// RAII phase timer: construction stamps the start, destruction adds the
/// elapsed wall time to the profile. Null profile disables timing (the
/// plain Execute path passes nullptr and pays nothing).
class PhaseTimer {
 public:
  PhaseTimer(QueryProfile* profile, QueryPhase phase)
      : profile_(profile),
        phase_(static_cast<int>(phase)),
        start_(profile != nullptr ? ObsNowNanos() : 0) {
    if (profile_ != nullptr && profile_->live_phase != nullptr) {
      profile_->live_phase->store(phase_, std::memory_order_relaxed);
    }
  }
  ~PhaseTimer() {
    if (profile_ == nullptr) return;
    PhaseSpan& span = profile_->phases[phase_];
    if (span.wall_nanos == 0) span.start_nanos = start_;
    span.wall_nanos += ObsNowNanos() - start_;
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  QueryProfile* profile_;
  int phase_;
  int64_t start_;
};

/// EXPLAIN ANALYZE phase-breakdown header: one line per phase with wall
/// millis and percent of total, plus the per-rule cumulative compile time
/// aggregated from `trace` (rule/phase events carry wall_nanos).
std::string RenderProfile(const QueryProfile& profile, const TraceLog* trace);

/// Machine-readable form: {"total_nanos":N,"phases":[{"phase":...},...]}.
std::string ProfileToJson(const QueryProfile& profile);

}  // namespace orq

#endif  // ORQ_OBS_PROFILE_H_
