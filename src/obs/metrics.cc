#include "obs/metrics.h"

#include <bit>
#include <cstdio>

#include "obs/json.h"

namespace orq {

const char* MetricCounterName(MetricCounter counter) {
  switch (counter) {
    case MetricCounter::kHashJoinBuildRows: return "hash_join.build_rows";
    case MetricCounter::kHashJoinBuckets: return "hash_join.buckets";
    case MetricCounter::kHashJoinArenaBytes: return "hash_join.arena_bytes";
    case MetricCounter::kHashJoinProbes: return "hash_join.probes";
    case MetricCounter::kHashAggInputRows: return "hash_agg.input_rows";
    case MetricCounter::kHashAggGroups: return "hash_agg.groups";
    case MetricCounter::kSpoolRows: return "spool.rows";
    case MetricCounter::kApplyInnerOpens: return "apply.inner_opens";
    case MetricCounter::kSegmentInnerOpens: return "segment.inner_opens";
    case MetricCounter::kInnerCacheReplays: return "spool.cache_replays";
    case MetricCounter::kExchangeBatches: return "exchange.batches";
    case MetricCounter::kMorselsClaimed: return "exchange.morsels";
    case MetricCounter::kTaskSteals: return "exchange.task_steals";
    case MetricCounter::kServerSessionsOpened: return "server.sessions_opened";
    case MetricCounter::kServerQueriesOk: return "server.queries_ok";
    case MetricCounter::kServerQueriesError: return "server.queries_error";
    case MetricCounter::kServerQueriesRejected:
      return "server.queries_rejected";
    case MetricCounter::kServerQueriesTimedOut:
      return "server.queries_timed_out";
    case MetricCounter::kPlanCacheHits: return "plan_cache.hits";
    case MetricCounter::kPlanCacheMisses: return "plan_cache.misses";
    case MetricCounter::kPlanCacheEvictions: return "plan_cache.evictions";
    case MetricCounter::kColumnBatches: return "columnar.batches";
    case MetricCounter::kEncodedChunks: return "encoding.chunks";
    case MetricCounter::kDictEntries: return "encoding.dict_entries";
    case MetricCounter::kEncodedBytes: return "encoding.bytes";
    case MetricCounter::kRleRuns: return "encoding.rle_runs";
  }
  return "unknown";
}

const char* MetricHistogramName(MetricHistogram histogram) {
  switch (histogram) {
    case MetricHistogram::kHashJoinChainLength:
      return "hash_join.probe_chain";
    case MetricHistogram::kHashJoinBucketRows:
      return "hash_join.bucket_rows";
    case MetricHistogram::kHashAggBucketChain:
      return "hash_agg.bucket_chain";
    case MetricHistogram::kBatchFillPercent:
      return "batch.fill_percent";
    case MetricHistogram::kAdmissionQueueDepth:
      return "server.admission_queue_depth";
    case MetricHistogram::kQueryLatencyMicros:
      return "server.query_latency_micros";
    case MetricHistogram::kSelVectorSelectivity:
      return "columnar.sel_selectivity";
  }
  return "unknown";
}

namespace {

/// Bucket i holds values <= 2^i; the last bucket is the overflow. Values
/// below zero clamp to bucket 0.
int BucketIndex(int64_t value) {
  if (value <= 1) return 0;
  const int bits = std::bit_width(static_cast<uint64_t>(value - 1));
  return bits < kMetricHistogramBuckets ? bits : kMetricHistogramBuckets - 1;
}

int64_t BucketUpperBound(int index) { return int64_t{1} << index; }

}  // namespace

void MetricsRegistry::Observe(MetricHistogram histogram, int64_t value) {
  HistogramData& data = histograms_[static_cast<int>(histogram)];
  ++data.count;
  data.sum += value;
  if (value > data.max) data.max = value;
  ++data.buckets[BucketIndex(value)];
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (int i = 0; i < kNumMetricCounters; ++i) {
    counters_[i] += other.counters_[i];
  }
  for (int i = 0; i < kNumMetricHistograms; ++i) {
    HistogramData& ours = histograms_[i];
    const HistogramData& theirs = other.histograms_[i];
    ours.count += theirs.count;
    ours.sum += theirs.sum;
    if (theirs.max > ours.max) ours.max = theirs.max;
    for (int b = 0; b < kMetricHistogramBuckets; ++b) {
      ours.buckets[b] += theirs.buckets[b];
    }
  }
}

bool MetricsRegistry::empty() const {
  for (int64_t c : counters_) {
    if (c != 0) return false;
  }
  for (const HistogramData& h : histograms_) {
    if (h.count != 0) return false;
  }
  return true;
}

void MetricsRegistry::clear() { *this = MetricsRegistry(); }

std::string RenderMetrics(const MetricsRegistry& metrics) {
  std::string out;
  char line[192];
  for (int i = 0; i < kNumMetricCounters; ++i) {
    const MetricCounter counter = static_cast<MetricCounter>(i);
    if (metrics.counter(counter) == 0) continue;
    std::snprintf(line, sizeof(line), "  %-24s %lld\n",
                  MetricCounterName(counter),
                  static_cast<long long>(metrics.counter(counter)));
    out += line;
  }
  for (int i = 0; i < kNumMetricHistograms; ++i) {
    const MetricHistogram histogram = static_cast<MetricHistogram>(i);
    const HistogramData& data = metrics.histogram(histogram);
    if (data.count == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  %-24s count=%lld mean=%.2f max=%lld buckets[",
                  MetricHistogramName(histogram),
                  static_cast<long long>(data.count), data.Mean(),
                  static_cast<long long>(data.max));
    out += line;
    bool first = true;
    for (int b = 0; b < kMetricHistogramBuckets; ++b) {
      if (data.buckets[b] == 0) continue;
      if (!first) out += ' ';
      first = false;
      if (b == kMetricHistogramBuckets - 1) {
        std::snprintf(line, sizeof(line), "inf:%lld",
                      static_cast<long long>(data.buckets[b]));
      } else {
        std::snprintf(line, sizeof(line), "<=%lld:%lld",
                      static_cast<long long>(BucketUpperBound(b)),
                      static_cast<long long>(data.buckets[b]));
      }
      out += line;
    }
    out += "]\n";
  }
  return out;
}

std::string MetricsToJson(const MetricsRegistry& metrics) {
  std::string out = "{\"counters\":{";
  for (int i = 0; i < kNumMetricCounters; ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(MetricCounterName(static_cast<MetricCounter>(i)), &out);
    out.push_back(':');
    out += std::to_string(metrics.counter(static_cast<MetricCounter>(i)));
  }
  out += "},\"histograms\":[";
  for (int i = 0; i < kNumMetricHistograms; ++i) {
    if (i > 0) out.push_back(',');
    const HistogramData& data =
        metrics.histogram(static_cast<MetricHistogram>(i));
    out += "{\"name\":";
    AppendJsonString(MetricHistogramName(static_cast<MetricHistogram>(i)),
                     &out);
    out += ",\"count\":" + std::to_string(data.count);
    out += ",\"sum\":" + std::to_string(data.sum);
    out += ",\"max\":" + std::to_string(data.max);
    out += ",\"buckets\":[";
    bool first = true;
    for (int b = 0; b < kMetricHistogramBuckets; ++b) {
      if (data.buckets[b] == 0) continue;
      if (!first) out.push_back(',');
      first = false;
      out += "{\"le\":";
      out += b == kMetricHistogramBuckets - 1
                 ? std::string("\"inf\"")
                 : std::to_string(BucketUpperBound(b));
      out += ",\"count\":" + std::to_string(data.buckets[b]);
      out.push_back('}');
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace orq
