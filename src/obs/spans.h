#ifndef ORQ_OBS_SPANS_H_
#define ORQ_OBS_SPANS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/profile.h"

namespace orq {

/// One recorded operator lifetime: Open entry to Close exit on the
/// ObsNowNanos timeline. A correlated Apply that re-opens its inner N
/// times produces N spans for the same op_id — that repetition is the
/// visual signature of an unflattened plan in the trace viewer.
struct OpSpan {
  int op_id = 0;
  int64_t start_nanos = 0;
  int64_t end_nanos = 0;
};

/// Collects operator spans for one execution. The engine registers the
/// operator tree up front (RegisterOpTree via the engine, one entry per
/// node with a preformatted name), so span emission at Close is a hash
/// lookup plus a vector push — no virtual name() calls, no string
/// building on the execution path. Opt-in through ExecContext
/// (ExecInstruments::spans), like StatsCollector.
class SpanRecorder {
 public:
  struct OpInfo {
    int id = 0;
    int parent_id = -1;  // -1 for the plan root
    std::string name;
  };

  /// Registers one operator (preorder ids make parent < child). Repeated
  /// registration of the same address keeps the first entry.
  int RegisterOp(const void* op, std::string name, int parent_id);

  /// Registered info for `op`, or nullptr for unregistered addresses.
  const OpInfo* Find(const void* op) const;

  /// Appends one Open→Close span for a registered operator. Spans for
  /// unregistered addresses are dropped (auxiliary ops the engine did not
  /// walk).
  void AddOpSpan(const void* op, int64_t start_nanos, int64_t end_nanos);

  const std::vector<OpSpan>& spans() const { return spans_; }
  const std::vector<OpInfo>& ops() const { return ops_; }
  bool empty() const { return spans_.empty(); }
  void clear();

 private:
  std::vector<OpInfo> ops_;  // indexed by id
  std::unordered_map<const void*, int> ids_;
  std::vector<OpSpan> spans_;
};

/// Chrome-trace-event JSON ("X" complete events; ts/dur in microseconds),
/// loadable in Perfetto or chrome://tracing. Emits one span per query
/// phase from `profile` (null skips phases) and one per recorded operator
/// span, all relative to the profile's start (or the earliest span when no
/// profile is given). Operator events carry args.op_id / args.parent_id /
/// args.name so the operator tree round-trips through the file.
std::string ChromeTraceJson(const QueryProfile* profile,
                            const SpanRecorder& spans);

}  // namespace orq

#endif  // ORQ_OBS_SPANS_H_
