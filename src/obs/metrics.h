#ifndef ORQ_OBS_METRICS_H_
#define ORQ_OBS_METRICS_H_

#include <cstdint>
#include <string>

namespace orq {

/// Engine-wide counters covering the micro-behaviors the per-operator
/// stats (obs/stats.h) cannot see: hash-path shape, materialization
/// volume, and the Apply re-execution pattern. One slot per counter, plain
/// int64_t, no strings on the hot path.
enum class MetricCounter : int {
  kHashJoinBuildRows = 0,  // rows drained into hash-join arenas
  kHashJoinBuckets,        // distinct join keys across all builds
  kHashJoinArenaBytes,     // approximate build-arena footprint (rows+slots)
  kHashJoinProbes,         // probe-side LookupBucket calls
  kHashAggInputRows,       // rows accumulated by hash aggregates
  kHashAggGroups,          // distinct groups across all aggregations
  kSpoolRows,              // rows materialized by NLJoin/Sort/ExceptAll spools
  kApplyInnerOpens,        // correlated Apply inner re-opens (Fig. 1's N+1)
  kSegmentInnerOpens,      // SegmentApply inner executions (one per segment)
  kInnerCacheReplays,      // uncorrelated inner re-opens served from cache
  kExchangeBatches,        // batches crossing exchange queues
  kMorselsClaimed,         // morsel ranges claimed by parallel scans
  kTaskSteals,             // pool tasks run on a thread other than their own
  // Server-side counters (src/server): recorded into the daemon's shared
  // registry, not per-execution; surfaced over the wire by \metrics.
  kServerSessionsOpened,   // client connections accepted over the lifetime
  kServerQueriesOk,        // queries that returned a result frame
  kServerQueriesError,     // queries that returned an error frame
  kServerQueriesRejected,  // admissions declined (queue full / shutdown)
  kServerQueriesTimedOut,  // queries that hit their deadline or a cancel
  // Plan-cache counters (src/engine/plan_cache): hits skip the compile
  // phases; evictions count both LRU pressure and stale-version removal.
  kPlanCacheHits,
  kPlanCacheMisses,
  kPlanCacheEvictions,
  // Columnar execution (exec/column_batch.h): column batches produced by
  // operators running in columnar mode (zero in row/batch mode).
  kColumnBatches,
  // Encoded columnar storage (catalog/table.h): per-column-chunk counters
  // recorded by table scans once per Open, for the chunks they serve.
  kEncodedChunks,   // dict- or RLE-encoded column chunks served by scans
  kDictEntries,     // dictionary entries across served dict chunks
  kEncodedBytes,    // byte footprint of served chunks (all encodings)
  kRleRuns,         // runs across served RLE chunks
};
inline constexpr int kNumMetricCounters =
    static_cast<int>(MetricCounter::kRleRuns) + 1;

/// Fixed-bucket histograms for distributions where the mean hides the
/// story (a few mega-buckets in a hash join, half-empty batches).
enum class MetricHistogram : int {
  kHashJoinChainLength = 0,  // matching build rows per probe
  kHashJoinBucketRows,       // build rows per distinct key, at build end
  kHashAggBucketChain,       // occupied-bucket chain lengths at build end
  kBatchFillPercent,         // NextBatch fill ratio (0-100) per pull
  kAdmissionQueueDepth,      // waiting queries observed at each admission
  kQueryLatencyMicros,       // server-side per-query wall time (admission
                             // wait + compile + execute), in microseconds
  kSelVectorSelectivity,     // selected rows / batch capacity (0-100) per
                             // columnar pull — the selection-vector density
};
inline constexpr int kNumMetricHistograms =
    static_cast<int>(MetricHistogram::kSelVectorSelectivity) + 1;

const char* MetricCounterName(MetricCounter counter);
const char* MetricHistogramName(MetricHistogram histogram);

/// Buckets per histogram: upper bounds 1,2,4,...,2^(n-2), +inf.
inline constexpr int kMetricHistogramBuckets = 16;

/// Count/sum/max plus power-of-two buckets: buckets[i] counts observations
/// with value <= 2^i (last bucket is the overflow). Percent-valued
/// histograms use the same buckets; 100 lands in bucket 7.
struct HistogramData {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  int64_t buckets[kMetricHistogramBuckets] = {};

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Named engine metrics for one execution. Opt-in through
/// ExecContext (ExecInstruments::metrics), exactly like StatsCollector:
/// executions without a registry attached pay a single null check per
/// operator call and nothing inside the operators.
class MetricsRegistry {
 public:
  void Add(MetricCounter counter, int64_t delta) {
    counters_[static_cast<int>(counter)] += delta;
  }
  void Observe(MetricHistogram histogram, int64_t value);

  int64_t counter(MetricCounter counter) const {
    return counters_[static_cast<int>(counter)];
  }
  const HistogramData& histogram(MetricHistogram histogram) const {
    return histograms_[static_cast<int>(histogram)];
  }

  /// Adds every counter and histogram of `other` into this registry.
  /// Parallel workers record into private shards that the exchange
  /// operator merges here after all workers finished (same discipline as
  /// StatsCollector::MergeFrom).
  void MergeFrom(const MetricsRegistry& other);

  /// True when nothing was recorded (renderers skip empty sections).
  bool empty() const;
  void clear();

 private:
  int64_t counters_[kNumMetricCounters] = {};
  HistogramData histograms_[kNumMetricHistograms] = {};
};

/// EXPLAIN ANALYZE rendering: one line per nonzero counter, then one line
/// per nonempty histogram (count/mean/max + the occupied buckets).
std::string RenderMetrics(const MetricsRegistry& metrics);

/// {"counters":{...},"histograms":[{"name":...,"count":...,"sum":...,
/// "max":...,"buckets":[{"le":2,"count":3},...]},...]} — schema in
/// DESIGN.md §Profiling. Zero counters and empty histograms are included
/// so consumers see a stable key set.
std::string MetricsToJson(const MetricsRegistry& metrics);

}  // namespace orq

#endif  // ORQ_OBS_METRICS_H_
