#ifndef ORQ_OBS_QUERY_STORE_H_
#define ORQ_OBS_QUERY_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/profile.h"
#include "obs/report.h"

namespace orq {

/// How a query left the server. `kDeadline` and `kCancelled` both surface
/// as StatusCode::kCancelled/kDeadlineExceeded on the wire; `kRejected`
/// covers queries the admission controller never let run.
enum class QueryOutcome : int {
  kOk = 0,
  kError,
  kCancelled,
  kDeadline,
  kRejected,
};

const char* QueryOutcomeName(QueryOutcome outcome);
QueryOutcome OutcomeForStatus(const Status& status);

/// Lock-free progress snapshot shared between a running query and the
/// introspection path (`\queries`). The executor publishes rows produced
/// from its cancel-check throttle; phase indices follow QueryPhase, with
/// -1 meaning the query is still queued in admission. Both sides use
/// relaxed atomics — a slightly stale read is fine, a torn one is not.
struct ProgressSink {
  std::atomic<int64_t> rows{0};
  std::atomic<int> phase{-1};
};

/// Everything the server remembers about one completed (or rejected)
/// query. The fingerprint is the FNV-1a hash of the plan's canonical
/// serialization — the same string the plan cache keys on — so records
/// aggregate across literal variants of one query shape (the substrate
/// ROADMAP item 4's cardinality feedback consumes).
struct QueryRecord {
  std::string query_id;
  int session_id = 0;
  std::string sql;
  std::string fingerprint;
  std::string exec_mode;  // "row" | "batch" | "columnar"
  QueryOutcome outcome = QueryOutcome::kOk;
  std::string error_message;
  int64_t submit_nanos = 0;   // ObsNowNanos timeline
  int64_t wall_micros = 0;    // admission wait + compile + execute
  int64_t result_rows = 0;
  int64_t rows_produced = 0;
  int64_t peak_cardinality = 0;  // max over the plan's operators
  QueryProfile profile;
  bool has_plan = false;
  PlanStatsNode plan;  // est-vs-actual rows per operator, when has_plan
  /// Full EXPLAIN ANALYZE text, captured only when the query's wall time
  /// crossed the session's slow_query_ms threshold.
  std::string slow_explain;
};

/// Bounded ring buffer of completed queries, shared by all connection
/// threads. Overwrites the oldest record once full; `Tail` returns the
/// newest records (most recent first). Copies records out under the lock
/// so readers never hold references into the ring.
class QueryStore {
 public:
  explicit QueryStore(size_t capacity);

  void Record(QueryRecord record);

  /// Up to `limit` most recent records, newest first.
  std::vector<QueryRecord> Tail(size_t limit) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total records ever written (size() caps at capacity, this does not).
  int64_t total_recorded() const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::vector<QueryRecord> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;                // slot the next record overwrites
  int64_t total_ = 0;
};

/// One record as a JSON object (plan/slow_explain fields only when
/// present); `QueryHistoryJson` wraps a Tail() result with ring totals.
std::string QueryRecordJson(const QueryRecord& record);
std::string QueryHistoryJson(const std::vector<QueryRecord>& records,
                             int64_t total_recorded, size_t capacity);

/// Max peak_cardinality over the stats tree.
int64_t MaxPeakCardinality(const PlanStatsNode& node);

/// 16-hex-digit FNV-1a 64 of `data` — the plan fingerprint rendering.
std::string FingerprintHex(const std::string& data);

}  // namespace orq

#endif  // ORQ_OBS_QUERY_STORE_H_
