#ifndef ORQ_OBS_STATS_H_
#define ORQ_OBS_STATS_H_

#include <chrono>
#include <cstdint>
#include <unordered_map>

namespace orq {

/// Monotonic wall clock used by all runtime instrumentation.
inline int64_t ObsNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runtime counters for one physical operator instance. Wall time is
/// *inclusive*: the operator's Open/Next/Close intervals contain the time
/// its children spend inside those calls (reporting derives self time by
/// subtracting the children's inclusive totals).
struct OpStats {
  int64_t open_calls = 0;
  /// Pull calls into the operator: one per Next on the row-at-a-time path,
  /// one per NextBatch on the batched path — so next_calls and rows_out
  /// diverge by roughly the batch size when batching is on.
  int64_t next_calls = 0;
  int64_t close_calls = 0;
  /// Rows this operator returned from Next/NextBatch (correlated
  /// re-executions accumulate across re-opens; identical in both modes).
  int64_t rows_out = 0;
  int64_t wall_nanos = 0;
  /// Largest materialized state the operator held at once: hash-join table
  /// buckets' rows, aggregation groups, sort buffer rows, spooled inner
  /// rows, segment count. Zero for streaming operators.
  int64_t peak_cardinality = 0;
  /// Capacity offered across all NextBatch pulls (batch size x pulls), so
  /// rows_out / batch_slots is the operator's batch fill ratio. Zero on the
  /// row-at-a-time path.
  int64_t batch_slots = 0;
  /// Column batches this operator produced (columnar mode only). Nonzero
  /// marks the operator as having run columnar; on that path rows_out
  /// counts selected rows while batch_slots counts capacity, so the fill
  /// ratio doubles as the selection-vector density.
  int64_t column_batches = 0;
  /// Encoded-storage shape of the column chunks a table scan served,
  /// recorded once per Open (scans under Apply accumulate across
  /// re-opens, mirroring every other counter here). Drives the per-scan
  /// `encoding=dict:x,rle:y,plain:z bytes=n` EXPLAIN ANALYZE line.
  int64_t enc_dict_cols = 0;
  int64_t enc_rle_cols = 0;
  int64_t enc_plain_cols = 0;
  int64_t enc_bytes = 0;
};

/// Owns the per-operator stats of one execution. Operators are identified
/// by address; the collector never dereferences them, so it can outlive the
/// plan only as an opaque map (reporting walks the live plan tree while
/// looking entries up here). Collection is opt-in: executions that do not
/// attach a collector to their ExecContext pay a single null check per
/// operator call.
class StatsCollector {
 public:
  /// Entry for `op`, created on first touch. The pointer stays valid for
  /// the collector's lifetime (node handles are stable under rehash).
  OpStats* StatsFor(const void* op) { return &stats_[op]; }

  /// Entry for `op`, or nullptr if the operator never opened.
  const OpStats* Find(const void* op) const;

  /// Sum of rows_out over all operators — by construction equal to the
  /// engine's `rows_produced` work metric for the same execution.
  int64_t TotalRowsOut() const;

  /// Adds every entry of `other` into this collector, entry-wise (counter
  /// sums; peak_cardinality by max). Parallel execution gives each worker a
  /// private collector shard and merges them here on the consumer thread
  /// after all workers finished — no operator map is ever touched from two
  /// threads.
  void MergeFrom(const StatsCollector& other);

  bool empty() const { return stats_.empty(); }
  size_t size() const { return stats_.size(); }
  void clear() { stats_.clear(); }

 private:
  std::unordered_map<const void*, OpStats> stats_;
};

}  // namespace orq

#endif  // ORQ_OBS_STATS_H_
