#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace orq {

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendField(const char* key, std::string* out, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  AppendJsonString(key, out);
  out->push_back(':');
}

void PlanStatsRec(const PlanStatsNode& node, std::string* out) {
  out->push_back('{');
  bool first = true;
  AppendField("op", out, &first);
  AppendJsonString(node.name, out);
  AppendField("columns", out, &first);
  AppendJsonString(node.columns, out);
  AppendField("actual_rows", out, &first);
  out->append(std::to_string(node.stats.rows_out));
  AppendField("est_rows", out, &first);
  AppendNumber(node.est_rows, out);
  AppendField("est_cost", out, &first);
  AppendNumber(node.est_cost, out);
  AppendField("open_calls", out, &first);
  out->append(std::to_string(node.stats.open_calls));
  AppendField("next_calls", out, &first);
  out->append(std::to_string(node.stats.next_calls));
  AppendField("close_calls", out, &first);
  out->append(std::to_string(node.stats.close_calls));
  AppendField("wall_nanos", out, &first);
  out->append(std::to_string(node.stats.wall_nanos));
  AppendField("self_wall_nanos", out, &first);
  out->append(std::to_string(node.self_wall_nanos));
  AppendField("peak_cardinality", out, &first);
  out->append(std::to_string(node.stats.peak_cardinality));
  AppendField("children", out, &first);
  out->push_back('[');
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out->push_back(',');
    PlanStatsRec(node.children[i], out);
  }
  out->push_back(']');
  out->push_back('}');
}

void TraceRec(const TraceLog& trace, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < trace.events().size(); ++i) {
    const TraceEvent& event = trace.events()[i];
    if (i > 0) out->push_back(',');
    out->push_back('{');
    bool first = true;
    AppendField("stage", out, &first);
    AppendJsonString(TraceStageName(event.stage), out);
    AppendField("kind", out, &first);
    AppendJsonString(TraceKindName(event.kind), out);
    AppendField("rule", out, &first);
    AppendJsonString(event.rule, out);
    AppendField("nodes_before", out, &first);
    out->append(std::to_string(event.nodes_before));
    AppendField("nodes_after", out, &first);
    out->append(std::to_string(event.nodes_after));
    AppendField("cost_before", out, &first);
    AppendNumber(event.cost_before, out);
    AppendField("cost_after", out, &first);
    AppendNumber(event.cost_after, out);
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace

std::string PlanStatsToJson(const PlanStatsNode& root) {
  std::string out;
  PlanStatsRec(root, &out);
  return out;
}

std::string TraceToJson(const TraceLog& trace) {
  std::string out;
  TraceRec(trace, &out);
  return out;
}

std::string AnalyzedToJson(const std::string& label, const std::string& sql,
                           int64_t result_rows, int64_t rows_produced,
                           const PlanStatsNode& plan, const TraceLog& trace) {
  std::string out;
  out.push_back('{');
  bool first = true;
  AppendField("label", &out, &first);
  AppendJsonString(label, &out);
  AppendField("sql", &out, &first);
  AppendJsonString(sql, &out);
  AppendField("result_rows", &out, &first);
  out.append(std::to_string(result_rows));
  AppendField("rows_produced", &out, &first);
  out.append(std::to_string(rows_produced));
  AppendField("plan", &out, &first);
  PlanStatsRec(plan, &out);
  AppendField("trace", &out, &first);
  TraceRec(trace, &out);
  out.push_back('}');
  return out;
}

namespace {

/// Recursive-descent JSON well-formedness parser (values only, no DOM).
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(std::string* error) {
    SkipSpace();
    if (!ParseValue(error)) return false;
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& what, std::string* error) {
    *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::string* error) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail("invalid literal", error);
      }
    }
    return true;
  }

  bool ParseValue(std::string* error) {
    if (pos_ >= text_.size()) return Fail("unexpected end", error);
    switch (text_[pos_]) {
      case '{': return ParseObject(error);
      case '[': return ParseArray(error);
      case '"': return ParseString(error);
      case 't': return Literal("true", error);
      case 'f': return Literal("false", error);
      case 'n': return Literal("null", error);
      default: return ParseNumber(error);
    }
  }

  bool ParseObject(std::string* error) {
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key", error);
      }
      if (!ParseString(error)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'", error);
      }
      ++pos_;
      SkipSpace();
      if (!ParseValue(error)) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'", error);
    }
  }

  bool ParseArray(std::string* error) {
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!ParseValue(error)) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'", error);
    }
  }

  bool ParseString(std::string* error) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character", error);
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape", error);
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("invalid \\u escape", error);
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("invalid escape", error);
        }
      }
      ++pos_;
    }
    return Fail("unterminated string", error);
  }

  bool ParseNumber(std::string* error) {
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("invalid number", error);
    }
    // The integer part is a single 0 or starts with a nonzero digit.
    const bool leading_zero = text_[pos_] == '0';
    ++pos_;
    if (!leading_zero) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else if (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("leading zero in number", error);
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("invalid fraction", error);
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("invalid exponent", error);
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool ValidateJson(const std::string& text, std::string* error) {
  std::string local;
  JsonParser parser(text);
  return parser.Parse(error != nullptr ? error : &local);
}

}  // namespace orq
