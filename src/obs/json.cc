#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace orq {

void AppendJsonString(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

namespace {

void AppendNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendField(const char* key, std::string* out, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  AppendJsonString(key, out);
  out->push_back(':');
}

void PlanStatsRec(const PlanStatsNode& node, std::string* out) {
  out->push_back('{');
  bool first = true;
  AppendField("op", out, &first);
  AppendJsonString(node.name, out);
  AppendField("columns", out, &first);
  AppendJsonString(node.columns, out);
  AppendField("actual_rows", out, &first);
  out->append(std::to_string(node.stats.rows_out));
  AppendField("est_rows", out, &first);
  AppendNumber(node.est_rows, out);
  AppendField("est_cost", out, &first);
  AppendNumber(node.est_cost, out);
  AppendField("open_calls", out, &first);
  out->append(std::to_string(node.stats.open_calls));
  AppendField("next_calls", out, &first);
  out->append(std::to_string(node.stats.next_calls));
  AppendField("close_calls", out, &first);
  out->append(std::to_string(node.stats.close_calls));
  AppendField("wall_nanos", out, &first);
  out->append(std::to_string(node.stats.wall_nanos));
  AppendField("self_wall_nanos", out, &first);
  out->append(std::to_string(node.self_wall_nanos));
  AppendField("peak_cardinality", out, &first);
  out->append(std::to_string(node.stats.peak_cardinality));
  AppendField("batch_slots", out, &first);
  out->append(std::to_string(node.stats.batch_slots));
  AppendField("column_batches", out, &first);
  out->append(std::to_string(node.stats.column_batches));
  AppendField("children", out, &first);
  out->push_back('[');
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out->push_back(',');
    PlanStatsRec(node.children[i], out);
  }
  out->push_back(']');
  out->push_back('}');
}

void TraceRec(const TraceLog& trace, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < trace.events().size(); ++i) {
    const TraceEvent& event = trace.events()[i];
    if (i > 0) out->push_back(',');
    out->push_back('{');
    bool first = true;
    AppendField("stage", out, &first);
    AppendJsonString(TraceStageName(event.stage), out);
    AppendField("kind", out, &first);
    AppendJsonString(TraceKindName(event.kind), out);
    AppendField("rule", out, &first);
    AppendJsonString(event.rule, out);
    AppendField("nodes_before", out, &first);
    out->append(std::to_string(event.nodes_before));
    AppendField("nodes_after", out, &first);
    out->append(std::to_string(event.nodes_after));
    AppendField("cost_before", out, &first);
    AppendNumber(event.cost_before, out);
    AppendField("cost_after", out, &first);
    AppendNumber(event.cost_after, out);
    AppendField("wall_nanos", out, &first);
    out->append(std::to_string(event.wall_nanos));
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace

std::string PlanStatsToJson(const PlanStatsNode& root) {
  std::string out;
  PlanStatsRec(root, &out);
  return out;
}

std::string TraceToJson(const TraceLog& trace) {
  std::string out;
  TraceRec(trace, &out);
  return out;
}

std::string AnalyzedToJson(const std::string& label, const std::string& sql,
                           int64_t result_rows, int64_t rows_produced,
                           const PlanStatsNode& plan, const TraceLog& trace,
                           const QueryProfile* profile,
                           const MetricsRegistry* metrics,
                           const std::string& query_id) {
  std::string out;
  out.push_back('{');
  bool first = true;
  AppendField("label", &out, &first);
  AppendJsonString(label, &out);
  if (!query_id.empty()) {
    AppendField("query_id", &out, &first);
    AppendJsonString(query_id, &out);
  }
  AppendField("sql", &out, &first);
  AppendJsonString(sql, &out);
  AppendField("result_rows", &out, &first);
  out.append(std::to_string(result_rows));
  AppendField("rows_produced", &out, &first);
  out.append(std::to_string(rows_produced));
  if (profile != nullptr) {
    AppendField("profile", &out, &first);
    out.append(ProfileToJson(*profile));
  }
  if (metrics != nullptr) {
    AppendField("metrics", &out, &first);
    out.append(MetricsToJson(*metrics));
  }
  AppendField("plan", &out, &first);
  PlanStatsRec(plan, &out);
  AppendField("trace", &out, &first);
  TraceRec(trace, &out);
  out.push_back('}');
  return out;
}

namespace {

/// Recursive-descent JSON parser. With a null destination it only checks
/// well-formedness (ValidateJson); with a JsonValue it builds the DOM —
/// one grammar, so the two entry points cannot drift apart.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* dest, std::string* error) {
    SkipSpace();
    if (!ParseValue(dest, error)) return false;
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& what, std::string* error) {
    *error = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::string* error) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail("invalid literal", error);
      }
    }
    return true;
  }

  bool ParseValue(JsonValue* dest, std::string* error) {
    if (pos_ >= text_.size()) return Fail("unexpected end", error);
    switch (text_[pos_]) {
      case '{': return ParseObject(dest, error);
      case '[': return ParseArray(dest, error);
      case '"': {
        std::string decoded;
        if (!ParseString(dest != nullptr ? &decoded : nullptr, error)) {
          return false;
        }
        if (dest != nullptr) {
          dest->type = JsonValue::Type::kString;
          dest->string_value = std::move(decoded);
        }
        return true;
      }
      case 't':
        if (!Literal("true", error)) return false;
        if (dest != nullptr) {
          dest->type = JsonValue::Type::kBool;
          dest->bool_value = true;
        }
        return true;
      case 'f':
        if (!Literal("false", error)) return false;
        if (dest != nullptr) {
          dest->type = JsonValue::Type::kBool;
          dest->bool_value = false;
        }
        return true;
      case 'n':
        if (!Literal("null", error)) return false;
        if (dest != nullptr) dest->type = JsonValue::Type::kNull;
        return true;
      default: return ParseNumber(dest, error);
    }
  }

  bool ParseObject(JsonValue* dest, std::string* error) {
    if (dest != nullptr) dest->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key", error);
      }
      std::string key;
      if (!ParseString(dest != nullptr ? &key : nullptr, error)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'", error);
      }
      ++pos_;
      SkipSpace();
      JsonValue* member = nullptr;
      if (dest != nullptr) {
        dest->object.emplace_back(std::move(key), JsonValue());
        member = &dest->object.back().second;
      }
      if (!ParseValue(member, error)) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'", error);
    }
  }

  bool ParseArray(JsonValue* dest, std::string* error) {
    if (dest != nullptr) dest->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue* element = nullptr;
      if (dest != nullptr) {
        dest->array.emplace_back();
        element = &dest->array.back();
      }
      if (!ParseValue(element, error)) return false;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'", error);
    }
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* dest, std::string* error) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character", error);
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("dangling escape", error);
        char esc = text_[pos_];
        if (esc == 'u') {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return Fail("invalid \\u escape", error);
            }
            const char h = text_[pos_];
            cp = cp * 16 +
                 static_cast<unsigned>(
                     h <= '9' ? h - '0'
                              : (h | 0x20) - 'a' + 10);
          }
          if (dest != nullptr) AppendUtf8(cp, dest);
        } else if (esc == '"' || esc == '\\' || esc == '/') {
          if (dest != nullptr) dest->push_back(esc);
        } else if (esc == 'b') {
          if (dest != nullptr) dest->push_back('\b');
        } else if (esc == 'f') {
          if (dest != nullptr) dest->push_back('\f');
        } else if (esc == 'n') {
          if (dest != nullptr) dest->push_back('\n');
        } else if (esc == 'r') {
          if (dest != nullptr) dest->push_back('\r');
        } else if (esc == 't') {
          if (dest != nullptr) dest->push_back('\t');
        } else {
          return Fail("invalid escape", error);
        }
      } else if (dest != nullptr) {
        dest->push_back(c);
      }
      ++pos_;
    }
    return Fail("unterminated string", error);
  }

  bool ParseNumber(JsonValue* dest, std::string* error) {
    const size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("invalid number", error);
    }
    // The integer part is a single 0 or starts with a nonzero digit.
    const bool leading_zero = text_[pos_] == '0';
    ++pos_;
    if (!leading_zero) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else if (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Fail("leading zero in number", error);
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("invalid fraction", error);
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Fail("invalid exponent", error);
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (dest != nullptr) {
      dest->type = JsonValue::Type::kNumber;
      dest->number = std::strtod(text_.substr(begin, pos_ - begin).c_str(),
                                 nullptr);
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string_value
                                                : fallback;
}

bool ValidateJson(const std::string& text, std::string* error) {
  std::string local;
  JsonParser parser(text);
  return parser.Parse(nullptr, error != nullptr ? error : &local);
}

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  std::string local;
  *out = JsonValue();
  JsonParser parser(text);
  return parser.Parse(out, error != nullptr ? error : &local);
}

}  // namespace orq
