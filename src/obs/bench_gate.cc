#include "obs/bench_gate.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/json.h"

namespace orq {

namespace {

struct BenchEntry {
  std::string name;
  double wall_ms = -1.0;
  bool error = false;
  // Exact-match counters; -1 when absent from the record.
  double result_rows = -1.0;
  double rows_produced = -1.0;
};

Result<std::vector<BenchEntry>> ParseBenchLines(const std::string& jsonl,
                                                const char* which) {
  std::vector<BenchEntry> entries;
  size_t pos = 0;
  int line_no = 0;
  while (pos < jsonl.size()) {
    size_t end = jsonl.find('\n', pos);
    if (end == std::string::npos) end = jsonl.size();
    std::string line = jsonl.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    // Tolerate blank lines and CR line endings.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    JsonValue doc;
    std::string error;
    if (!ParseJson(line, &doc, &error)) {
      return Status::InvalidArgument(std::string(which) + " line " +
                                     std::to_string(line_no) +
                                     ": invalid JSON: " + error);
    }
    if (!doc.is_object()) {
      return Status::InvalidArgument(std::string(which) + " line " +
                                     std::to_string(line_no) +
                                     ": expected an object");
    }
    BenchEntry entry;
    entry.name = doc.StringOr("name", "");
    if (entry.name.empty()) {
      return Status::InvalidArgument(std::string(which) + " line " +
                                     std::to_string(line_no) +
                                     ": missing \"name\"");
    }
    entry.wall_ms = doc.NumberOr("wall_ms", -1.0);
    entry.result_rows = doc.NumberOr("result_rows", -1.0);
    entry.rows_produced = doc.NumberOr("rows_produced", -1.0);
    const JsonValue* error_flag = doc.Find("error");
    entry.error = error_flag != nullptr &&
                  error_flag->type == JsonValue::Type::kBool &&
                  error_flag->bool_value;
    entries.push_back(std::move(entry));
  }
  return entries;
}

const BenchEntry* FindEntry(const std::vector<BenchEntry>& entries,
                            const std::string& name) {
  for (const BenchEntry& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::string FormatRatio(double current, double baseline) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.3fms vs baseline %.3fms (%.2fx)",
                current, baseline,
                baseline > 0 ? current / baseline : 0.0);
  return buf;
}

/// Exact comparison of a counter that both sides report (absent on either
/// side skips the check — older baselines may predate a counter).
void CheckExact(const std::string& name, const char* counter, double base,
                double current, BenchGateReport* report) {
  if (base < 0 || current < 0) return;
  if (base != current) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.0f, baseline %.0f", current, base);
    report->failures.push_back(name + ": " + counter + " changed: " + buf);
  }
}

}  // namespace

std::string BenchGateReport::Summary() const {
  std::string out = "bench gate: compared=" + std::to_string(compared) +
                    " failures=" + std::to_string(failures.size()) + "\n";
  for (const std::string& failure : failures) {
    out += "  FAIL " + failure + "\n";
  }
  for (const std::string& note : notes) {
    out += "  note " + note + "\n";
  }
  return out;
}

Result<BenchGateReport> CompareBenchJson(const std::string& baseline_jsonl,
                                         const std::string& current_jsonl,
                                         const BenchGateOptions& options) {
  ORQ_ASSIGN_OR_RETURN(std::vector<BenchEntry> baseline,
                       ParseBenchLines(baseline_jsonl, "baseline"));
  ORQ_ASSIGN_OR_RETURN(std::vector<BenchEntry> current,
                       ParseBenchLines(current_jsonl, "current"));
  if (baseline.empty()) {
    return Status::InvalidArgument("baseline has no benchmark entries");
  }

  BenchGateReport report;
  for (const BenchEntry& base : baseline) {
    const BenchEntry* run = FindEntry(current, base.name);
    if (run == nullptr) {
      report.failures.push_back(base.name + ": missing from current run");
      continue;
    }
    ++report.compared;
    if (run->error && base.error) {
      // A configuration that errors on both sides is a known limitation
      // (e.g. a query a handicapped engine config cannot run), not a
      // regression — it starts failing only once the baseline records a
      // passing run.
      report.notes.push_back(base.name + ": errors in baseline and current");
      continue;
    }
    if (run->error) {
      report.failures.push_back(base.name + ": current run errored");
      continue;
    }
    if (base.error) {
      report.notes.push_back(base.name + ": baseline errored; now passes");
      continue;
    }
    CheckExact(base.name, "result_rows", base.result_rows, run->result_rows,
               &report);
    CheckExact(base.name, "rows_produced", base.rows_produced,
               run->rows_produced, &report);
    if (options.wall_tolerance > 0 &&
        base.wall_ms >= options.min_wall_ms && base.wall_ms > 0 &&
        run->wall_ms > 0 &&
        run->wall_ms > base.wall_ms * options.wall_tolerance) {
      report.failures.push_back(base.name + ": wall regression " +
                                FormatRatio(run->wall_ms, base.wall_ms));
    }
  }
  for (const BenchEntry& run : current) {
    if (FindEntry(baseline, run.name) == nullptr) {
      report.notes.push_back(run.name +
                             ": not in baseline (refresh to start gating)");
    }
  }
  return report;
}

Result<BenchGateReport> CheckSpeedupJson(const std::string& jsonl,
                                         const SpeedupGateOptions& options) {
  if (options.slow_tag.empty() || options.fast_tag.empty()) {
    return Status::InvalidArgument("speedup gate needs both mode tags");
  }
  ORQ_ASSIGN_OR_RETURN(std::vector<BenchEntry> entries,
                       ParseBenchLines(jsonl, "report"));

  BenchGateReport report;
  int fast_enough = 0;
  for (const BenchEntry& slow : entries) {
    size_t at = slow.name.find(options.slow_tag);
    if (at == std::string::npos) continue;
    std::string fast_name = slow.name;
    fast_name.replace(at, options.slow_tag.size(), options.fast_tag);
    const BenchEntry* fast = FindEntry(entries, fast_name);
    if (fast == nullptr) {
      report.failures.push_back(slow.name + ": no " + options.fast_tag +
                                " counterpart in report");
      continue;
    }
    if (slow.error || fast->error) {
      report.failures.push_back(slow.name + ": errored run cannot gate");
      continue;
    }
    if (slow.wall_ms <= 0 || fast->wall_ms <= 0) {
      report.failures.push_back(slow.name + ": missing wall_ms");
      continue;
    }
    if (slow.wall_ms < options.min_wall_ms) {
      report.notes.push_back(slow.name + ": under the " +
                             std::to_string(options.min_wall_ms) +
                             "ms wall floor; not counted");
      continue;
    }
    ++report.compared;
    double ratio = slow.wall_ms / fast->wall_ms;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.2fx (%.3fms vs %.3fms)", ratio,
                  slow.wall_ms, fast->wall_ms);
    report.notes.push_back(slow.name + ": " + buf);
    if (ratio >= options.min_ratio) ++fast_enough;
  }
  if (report.compared == 0 && report.failures.empty()) {
    return Status::InvalidArgument("no (" + options.slow_tag + ", " +
                                   options.fast_tag +
                                   ") pairs eligible for the speedup gate");
  }
  if (fast_enough < options.min_pairs) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "speedup gate: only %d of %d pairs reached %.2fx "
                  "(need %d)",
                  fast_enough, report.compared, options.min_ratio,
                  options.min_pairs);
    report.failures.push_back(buf);
  }
  return report;
}

}  // namespace orq
