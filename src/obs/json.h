#ifndef ORQ_OBS_JSON_H_
#define ORQ_OBS_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/report.h"
#include "obs/trace.h"

namespace orq {

struct QueryProfile;
class MetricsRegistry;

/// Appends `text` as a JSON string literal (quotes + escapes) to `out`.
void AppendJsonString(const std::string& text, std::string* out);

/// Machine-readable forms of the observability artifacts. Schema documented
/// in DESIGN.md ("Observability" section); stable field names so external
/// tooling (benchmark result pipelines) can rely on them.
std::string PlanStatsToJson(const PlanStatsNode& root);
std::string TraceToJson(const TraceLog& trace);

/// One self-contained object combining both, plus query identification —
/// the per-benchmark record bench/bench_util.h emits as a JSON line. When
/// non-null, `profile` and `metrics` add "profile" and "metrics" fields
/// (ProfileToJson / MetricsToJson schemas).
std::string AnalyzedToJson(const std::string& label, const std::string& sql,
                           int64_t result_rows, int64_t rows_produced,
                           const PlanStatsNode& plan, const TraceLog& trace,
                           const QueryProfile* profile = nullptr,
                           const MetricsRegistry* metrics = nullptr,
                           const std::string& query_id = "");

/// Strict JSON well-formedness check (objects, arrays, strings, numbers,
/// literals; rejects trailing garbage). Powers the bench_smoke ctest that
/// keeps the metrics pipeline honest, and needs no third-party dependency.
bool ValidateJson(const std::string& text, std::string* error);

/// Parsed JSON document. Numbers are doubles (integral fields round-trip
/// exactly up to 2^53, far beyond anything the emitters produce); object
/// members keep insertion order. \u escapes decode to UTF-8 (BMP only —
/// surrogate pairs are not combined, which none of our emitters produce).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// First member named `key`, or nullptr (also for non-objects).
  const JsonValue* Find(const std::string& key) const;
  /// Find + number extraction; `fallback` for missing/non-number members.
  double NumberOr(const std::string& key, double fallback) const;
  /// Find + string extraction; `fallback` for missing/non-string members.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
};

/// Parses `text` into a DOM, with the same grammar (and error strings) as
/// ValidateJson. Returns false and sets `error` on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

}  // namespace orq

#endif  // ORQ_OBS_JSON_H_
