#ifndef ORQ_OBS_JSON_H_
#define ORQ_OBS_JSON_H_

#include <string>

#include "obs/report.h"
#include "obs/trace.h"

namespace orq {

/// Appends `text` as a JSON string literal (quotes + escapes) to `out`.
void AppendJsonString(const std::string& text, std::string* out);

/// Machine-readable forms of the observability artifacts. Schema documented
/// in DESIGN.md ("Observability" section); stable field names so external
/// tooling (benchmark result pipelines) can rely on them.
std::string PlanStatsToJson(const PlanStatsNode& root);
std::string TraceToJson(const TraceLog& trace);

/// One self-contained object combining both, plus query identification —
/// the per-benchmark record bench/bench_util.h emits as a JSON line.
std::string AnalyzedToJson(const std::string& label, const std::string& sql,
                           int64_t result_rows, int64_t rows_produced,
                           const PlanStatsNode& plan, const TraceLog& trace);

/// Strict JSON well-formedness check (objects, arrays, strings, numbers,
/// literals; rejects trailing garbage). Powers the bench_smoke ctest that
/// keeps the metrics pipeline honest, and needs no third-party dependency.
bool ValidateJson(const std::string& text, std::string* error);

}  // namespace orq

#endif  // ORQ_OBS_JSON_H_
