#ifndef ORQ_OBS_PROM_H_
#define ORQ_OBS_PROM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace orq {

/// One server gauge for the Prometheus exposition (point-in-time values
/// like sessions_active that are not in the MetricsRegistry). `name` uses
/// the internal dotted form and is sanitized on render; label values are
/// escaped per the exposition format.
struct PromGauge {
  std::string name;
  int64_t value = 0;
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Maps an internal dotted metric name to a Prometheus metric name:
/// "orq_" prefix, every character outside [a-zA-Z0-9_:] replaced by '_'
/// (so "hash_join.build_rows" becomes "orq_hash_join_build_rows").
std::string PromMetricName(const std::string& raw);

/// Escapes a label value per the text exposition format: backslash,
/// double-quote, and newline become \\ \" \n.
std::string PromEscapeLabelValue(const std::string& value);

/// Prometheus text exposition (version 0.0.4) of the registry plus server
/// gauges. Counters render as `<name>_total` with `# TYPE ... counter`;
/// histograms render cumulative `_bucket{le="..."}` series (the registry's
/// power-of-two buckets are per-bucket counts and are summed here) plus
/// `_sum` and `_count`; gauges render as `# TYPE ... gauge`. Zero-valued
/// series are included so scrapers see a stable set.
std::string RenderPrometheus(const MetricsRegistry& metrics,
                             const std::vector<PromGauge>& gauges);

}  // namespace orq

#endif  // ORQ_OBS_PROM_H_
