#include "obs/query_store.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"

namespace orq {

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk: return "ok";
    case QueryOutcome::kError: return "error";
    case QueryOutcome::kCancelled: return "cancelled";
    case QueryOutcome::kDeadline: return "deadline";
    case QueryOutcome::kRejected: return "rejected";
  }
  return "unknown";
}

QueryOutcome OutcomeForStatus(const Status& status) {
  if (status.ok()) return QueryOutcome::kOk;
  switch (status.code()) {
    case StatusCode::kCancelled: return QueryOutcome::kCancelled;
    case StatusCode::kDeadlineExceeded: return QueryOutcome::kDeadline;
    case StatusCode::kUnavailable: return QueryOutcome::kRejected;
    default: return QueryOutcome::kError;
  }
}

QueryStore::QueryStore(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(capacity_);
}

void QueryStore::Record(QueryRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<QueryRecord> QueryStore::Tail(size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t count = std::min(limit, ring_.size());
  std::vector<QueryRecord> out;
  out.reserve(count);
  // `next_` is one past the most recent record (mod size while filling).
  size_t slot = ring_.size() < capacity_ ? ring_.size() : next_;
  for (size_t i = 0; i < count; ++i) {
    slot = (slot + ring_.size() - 1) % ring_.size();
    out.push_back(ring_[slot]);
  }
  return out;
}

size_t QueryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

int64_t QueryStore::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

namespace {

const char* CacheOutcomeName(CacheOutcome cache) {
  switch (cache) {
    case CacheOutcome::kOff: return "off";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kHit: return "hit";
  }
  return "unknown";
}

void AppendStringField(const char* key, const std::string& value,
                       std::string* out) {
  out->push_back('"');
  *out += key;
  *out += "\":";
  AppendJsonString(value, out);
}

void AppendIntField(const char* key, int64_t value, std::string* out) {
  out->push_back('"');
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
}

}  // namespace

std::string QueryRecordJson(const QueryRecord& record) {
  std::string out = "{";
  AppendStringField("query_id", record.query_id, &out);
  out.push_back(',');
  AppendIntField("session", record.session_id, &out);
  out.push_back(',');
  AppendStringField("sql", record.sql, &out);
  out.push_back(',');
  AppendStringField("fingerprint", record.fingerprint, &out);
  out.push_back(',');
  AppendStringField("exec_mode", record.exec_mode, &out);
  out.push_back(',');
  AppendStringField("cache", CacheOutcomeName(record.profile.cache), &out);
  out.push_back(',');
  AppendStringField("outcome", QueryOutcomeName(record.outcome), &out);
  if (!record.error_message.empty()) {
    out.push_back(',');
    AppendStringField("error", record.error_message, &out);
  }
  out.push_back(',');
  AppendIntField("submit_nanos", record.submit_nanos, &out);
  out.push_back(',');
  AppendIntField("wall_micros", record.wall_micros, &out);
  out.push_back(',');
  AppendIntField("result_rows", record.result_rows, &out);
  out.push_back(',');
  AppendIntField("rows_produced", record.rows_produced, &out);
  out.push_back(',');
  AppendIntField("peak_cardinality", record.peak_cardinality, &out);
  out += ",\"profile\":";
  out += ProfileToJson(record.profile);
  if (record.has_plan) {
    out += ",\"plan\":";
    out += PlanStatsToJson(record.plan);
  }
  if (!record.slow_explain.empty()) {
    out.push_back(',');
    AppendStringField("slow_explain", record.slow_explain, &out);
  }
  out.push_back('}');
  return out;
}

std::string QueryHistoryJson(const std::vector<QueryRecord>& records,
                             int64_t total_recorded, size_t capacity) {
  std::string out = "{";
  AppendIntField("total_recorded", total_recorded, &out);
  out.push_back(',');
  AppendIntField("capacity", static_cast<int64_t>(capacity), &out);
  out.push_back(',');
  AppendIntField("returned", static_cast<int64_t>(records.size()), &out);
  out += ",\"queries\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += QueryRecordJson(records[i]);
  }
  out += "]}";
  return out;
}

int64_t MaxPeakCardinality(const PlanStatsNode& node) {
  int64_t peak = node.stats.peak_cardinality;
  for (const PlanStatsNode& child : node.children) {
    peak = std::max(peak, MaxPeakCardinality(child));
  }
  return peak;
}

std::string FingerprintHex(const std::string& data) {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV-1a 64 prime
  }
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

}  // namespace orq
