#include "obs/profile.h"

#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace orq {

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kParse: return "parse";
    case QueryPhase::kBind: return "bind";
    case QueryPhase::kApplyIntro: return "apply_intro";
    case QueryPhase::kNormalize: return "normalize";
    case QueryPhase::kOptimize: return "optimize";
    case QueryPhase::kPhysicalBuild: return "physical_build";
    case QueryPhase::kExecute: return "execute";
  }
  return "unknown";
}

int64_t QueryProfile::PhaseSum() const {
  int64_t sum = 0;
  for (const PhaseSpan& span : phases) sum += span.wall_nanos;
  return sum;
}

std::string RenderProfile(const QueryProfile& profile, const TraceLog* trace) {
  std::string out;
  const double total_ms =
      static_cast<double>(profile.total_nanos) / 1e6;
  char line[160];
  for (int i = 0; i < kNumQueryPhases; ++i) {
    const PhaseSpan& span = profile.phases[i];
    const double pct =
        profile.total_nanos > 0
            ? 100.0 * static_cast<double>(span.wall_nanos) /
                  static_cast<double>(profile.total_nanos)
            : 0.0;
    std::snprintf(line, sizeof(line), "  %-14s %10.3f ms  %5.1f%%\n",
                  QueryPhaseName(static_cast<QueryPhase>(i)),
                  static_cast<double>(span.wall_nanos) / 1e6, pct);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "  %-14s %10.3f ms  (phase sum %.3f ms)\n", "total", total_ms,
                static_cast<double>(profile.PhaseSum()) / 1e6);
  out += line;
  if (profile.cache != CacheOutcome::kOff) {
    out += "  cache:         ";
    out += profile.cache == CacheOutcome::kHit ? "hit" : "miss";
    out.push_back('\n');
  }
  if (trace != nullptr) {
    // Cumulative compile time by rule/pass, insertion-ordered by first
    // firing. Only events that carry timing contribute (optimizer rules and
    // normalizer passes do; identity firings nest and are not re-timed).
    std::vector<std::pair<std::string, int64_t>> by_rule;
    for (const TraceEvent& event : trace->events()) {
      if (event.wall_nanos <= 0) continue;
      const std::string key =
          std::string(TraceStageName(event.stage)) + "/" + event.rule;
      bool found = false;
      for (auto& [name, nanos] : by_rule) {
        if (name == key) {
          nanos += event.wall_nanos;
          found = true;
          break;
        }
      }
      if (!found) by_rule.emplace_back(key, event.wall_nanos);
    }
    if (!by_rule.empty()) {
      out += "  rule time:\n";
      for (const auto& [name, nanos] : by_rule) {
        std::snprintf(line, sizeof(line), "    %-28s %10.3f ms\n",
                      name.c_str(), static_cast<double>(nanos) / 1e6);
        out += line;
      }
    }
  }
  return out;
}

std::string ProfileToJson(const QueryProfile& profile) {
  std::string out = "{\"total_nanos\":";
  out += std::to_string(profile.total_nanos);
  out += ",\"phases\":[";
  for (int i = 0; i < kNumQueryPhases; ++i) {
    if (i > 0) out.push_back(',');
    out += "{\"phase\":";
    AppendJsonString(QueryPhaseName(static_cast<QueryPhase>(i)), &out);
    out += ",\"wall_nanos\":";
    out += std::to_string(profile.phases[i].wall_nanos);
    out += ",\"start_nanos\":";
    out += std::to_string(profile.phases[i].start_nanos);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace orq
