#ifndef ORQ_OBS_REPORT_H_
#define ORQ_OBS_REPORT_H_

#include <string>
#include <vector>

#include "exec/exec.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace orq {

/// One physical operator's stats snapshot, detached from the (plan-owned)
/// operator tree so it can outlive execution. `est_rows`/`est_cost` carry
/// the cost model's predictions next to the measured actuals — the
/// actual-vs-estimated comparison that calibrates the cost model.
struct PlanStatsNode {
  std::string name;
  std::string columns;  // rendered output layout
  double est_rows = -1.0;
  double est_cost = -1.0;
  OpStats stats;
  /// Inclusive minus children's inclusive wall time (clamped at zero).
  int64_t self_wall_nanos = 0;
  std::vector<PlanStatsNode> children;
};

/// Snapshots `plan`'s tree with each operator's collected stats and
/// cost-model estimates. Operators the execution never opened appear with
/// zeroed stats (e.g. pruned empty subtrees).
PlanStatsNode BuildPlanStats(const PhysicalOp& plan,
                             const StatsCollector& collector,
                             const ColumnManager* columns);

/// Sum of rows_out over the snapshot tree.
int64_t TotalRowsOut(const PlanStatsNode& node);

/// Indented EXPLAIN ANALYZE rendering:
///   HashJoin(inner) [l_partkey#3, ...] (actual rows=97 est=104.2 ...)
std::string RenderPlanStats(const PlanStatsNode& root);

/// Human-readable rule-firing trace, one line per event.
std::string RenderTrace(const TraceLog& trace);

}  // namespace orq

#endif  // ORQ_OBS_REPORT_H_
