#include "obs/spans.h"

#include <cstdio>

#include "obs/json.h"

namespace orq {

int SpanRecorder::RegisterOp(const void* op, std::string name,
                             int parent_id) {
  auto [it, inserted] = ids_.try_emplace(op, static_cast<int>(ops_.size()));
  if (!inserted) return it->second;
  OpInfo info;
  info.id = it->second;
  info.parent_id = parent_id;
  info.name = std::move(name);
  ops_.push_back(std::move(info));
  return it->second;
}

const SpanRecorder::OpInfo* SpanRecorder::Find(const void* op) const {
  auto it = ids_.find(op);
  return it != ids_.end() ? &ops_[static_cast<size_t>(it->second)] : nullptr;
}

void SpanRecorder::AddOpSpan(const void* op, int64_t start_nanos,
                             int64_t end_nanos) {
  auto it = ids_.find(op);
  if (it == ids_.end()) return;
  spans_.push_back(OpSpan{it->second, start_nanos, end_nanos});
}

void SpanRecorder::clear() {
  ops_.clear();
  ids_.clear();
  spans_.clear();
}

namespace {

void AppendMicros(int64_t nanos, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(nanos) / 1e3);
  *out += buf;
}

/// One "X" (complete) trace event. `epoch` rebases absolute ObsNowNanos
/// stamps so the trace starts near ts=0.
void AppendEvent(const char* name, int64_t start_nanos, int64_t dur_nanos,
                 int64_t epoch, int tid, const std::string& args_json,
                 bool* first, std::string* out) {
  if (!*first) out->push_back(',');
  *first = false;
  *out += "{\"name\":";
  AppendJsonString(name, out);
  *out += ",\"ph\":\"X\",\"ts\":";
  AppendMicros(start_nanos - epoch, out);
  *out += ",\"dur\":";
  AppendMicros(dur_nanos, out);
  *out += ",\"pid\":1,\"tid\":";
  *out += std::to_string(tid);
  if (!args_json.empty()) {
    *out += ",\"args\":";
    *out += args_json;
  }
  out->push_back('}');
}

}  // namespace

std::string ChromeTraceJson(const QueryProfile* profile,
                            const SpanRecorder& spans) {
  int64_t epoch = profile != nullptr ? profile->start_nanos : 0;
  if (profile == nullptr) {
    for (const OpSpan& span : spans.spans()) {
      if (epoch == 0 || span.start_nanos < epoch) epoch = span.start_nanos;
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  if (profile != nullptr) {
    for (int i = 0; i < kNumQueryPhases; ++i) {
      const PhaseSpan& span = profile->phases[i];
      if (span.wall_nanos <= 0) continue;
      AppendEvent(QueryPhaseName(static_cast<QueryPhase>(i)),
                  span.start_nanos, span.wall_nanos, epoch, /*tid=*/1,
                  "{\"cat\":\"phase\"}", &first, &out);
    }
  }
  for (const OpSpan& span : spans.spans()) {
    const SpanRecorder::OpInfo& info =
        spans.ops()[static_cast<size_t>(span.op_id)];
    std::string args = "{\"op_id\":" + std::to_string(info.id) +
                       ",\"parent_id\":" + std::to_string(info.parent_id) +
                       ",\"name\":";
    AppendJsonString(info.name, &args);
    args.push_back('}');
    // Operators share tid 2: their lifetimes nest (a child opens after and
    // closes before its parent), which trace viewers render as a flame.
    AppendEvent(info.name.c_str(), span.start_nanos,
                span.end_nanos - span.start_nanos, epoch, /*tid=*/2, args,
                &first, &out);
  }
  out += "]}";
  return out;
}

}  // namespace orq
