#include "obs/prom.h"

namespace orq {

std::string PromMetricName(const std::string& raw) {
  std::string out = "orq_";
  out.reserve(raw.size() + 4);
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void AppendType(const std::string& name, const char* type, std::string* out) {
  *out += "# TYPE ";
  *out += name;
  out->push_back(' ');
  *out += type;
  out->push_back('\n');
}

void AppendSample(const std::string& name, int64_t value, std::string* out) {
  *out += name;
  out->push_back(' ');
  *out += std::to_string(value);
  out->push_back('\n');
}

}  // namespace

std::string RenderPrometheus(const MetricsRegistry& metrics,
                             const std::vector<PromGauge>& gauges) {
  std::string out;
  for (int i = 0; i < kNumMetricCounters; ++i) {
    const MetricCounter counter = static_cast<MetricCounter>(i);
    const std::string name =
        PromMetricName(MetricCounterName(counter)) + "_total";
    AppendType(name, "counter", &out);
    AppendSample(name, metrics.counter(counter), &out);
  }
  for (int i = 0; i < kNumMetricHistograms; ++i) {
    const MetricHistogram histogram = static_cast<MetricHistogram>(i);
    const HistogramData& data = metrics.histogram(histogram);
    const std::string name = PromMetricName(MetricHistogramName(histogram));
    AppendType(name, "histogram", &out);
    // The registry stores per-bucket counts (bucket i: value <= 2^i, last
    // bucket overflow); the exposition format wants cumulative counts.
    int64_t cumulative = 0;
    for (int b = 0; b + 1 < kMetricHistogramBuckets; ++b) {
      cumulative += data.buckets[b];
      out += name;
      out += "_bucket{le=\"";
      out += std::to_string(int64_t{1} << b);
      out += "\"} ";
      out += std::to_string(cumulative);
      out.push_back('\n');
    }
    out += name;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(data.count);
    out.push_back('\n');
    AppendSample(name + "_sum", data.sum, &out);
    AppendSample(name + "_count", data.count, &out);
  }
  for (const PromGauge& gauge : gauges) {
    const std::string name = PromMetricName(gauge.name);
    AppendType(name, "gauge", &out);
    out += name;
    if (!gauge.labels.empty()) {
      out.push_back('{');
      for (size_t i = 0; i < gauge.labels.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += gauge.labels[i].first;
        out += "=\"";
        out += PromEscapeLabelValue(gauge.labels[i].second);
        out.push_back('"');
      }
      out.push_back('}');
    }
    out.push_back(' ');
    out += std::to_string(gauge.value);
    out.push_back('\n');
  }
  return out;
}

}  // namespace orq
