#include "server/client.h"

#include <utility>

#include "server/net.h"

namespace orq {

Result<Client> Client::Connect(const std::string& host, int port) {
  ORQ_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) CloseFd(fd_);
    fd_ = other.fd_;
    decoder_ = std::move(other.decoder_);
    last_query_id_ = std::move(other.last_query_id_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) CloseFd(fd_);
}

Result<Frame> Client::RoundTrip(FrameType type, const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  ORQ_RETURN_IF_ERROR(SendFrame(fd_, type, payload));
  Frame reply;
  ORQ_ASSIGN_OR_RETURN(bool got, RecvFrame(fd_, &decoder_, &reply));
  if (!got) {
    return Status::Unavailable("server closed the connection");
  }
  return reply;
}

Result<WireResult> Client::Query(const std::string& sql) {
  last_query_id_.clear();
  ORQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kQuery, sql));
  if (reply.type == FrameType::kError) {
    return DecodeError(reply.payload, &last_query_id_);
  }
  if (reply.type != FrameType::kResult) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  ORQ_ASSIGN_OR_RETURN(WireResult result, DecodeResult(reply.payload));
  last_query_id_ = result.query_id;
  return result;
}

Status Client::Set(const std::string& name, const std::string& value) {
  ORQ_ASSIGN_OR_RETURN(Frame reply,
                       RoundTrip(FrameType::kSet, name + " " + value));
  if (reply.type == FrameType::kError) return DecodeError(reply.payload);
  if (reply.type != FrameType::kInfo) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  return Status::OK();
}

Result<std::string> Client::Admin(const std::string& command) {
  ORQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kAdmin, command));
  if (reply.type == FrameType::kError) return DecodeError(reply.payload);
  if (reply.type != FrameType::kInfo && reply.type != FrameType::kPong) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  return reply.payload;
}

Status Client::Ping() {
  ORQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kPing, ""));
  if (reply.type == FrameType::kError) return DecodeError(reply.payload);
  if (reply.type != FrameType::kPong) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  return Status::OK();
}

Result<WirePrepared> Client::Prepare(const std::string& name,
                                     const std::string& sql) {
  WirePrepare prepare;
  prepare.name = name;
  prepare.sql = sql;
  ORQ_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(FrameType::kPrepare, EncodePrepare(prepare)));
  if (reply.type == FrameType::kError) return DecodeError(reply.payload);
  if (reply.type != FrameType::kPrepared) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  return DecodePrepared(reply.payload);
}

Result<WireResult> Client::ExecutePrepared(
    const std::string& name, const std::vector<Value>& params) {
  WireExecute execute;
  execute.name = name;
  execute.params = params;
  last_query_id_.clear();
  ORQ_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(FrameType::kExecute, EncodeExecute(execute)));
  if (reply.type == FrameType::kError) {
    return DecodeError(reply.payload, &last_query_id_);
  }
  if (reply.type != FrameType::kResult) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  ORQ_ASSIGN_OR_RETURN(WireResult result, DecodeResult(reply.payload));
  last_query_id_ = result.query_id;
  return result;
}

Status Client::Deallocate(const std::string& name) {
  ORQ_ASSIGN_OR_RETURN(Frame reply, RoundTrip(FrameType::kDeallocate, name));
  if (reply.type == FrameType::kError) return DecodeError(reply.payload);
  if (reply.type != FrameType::kInfo) {
    return Status::InvalidArgument("unexpected reply frame type");
  }
  return Status::OK();
}

}  // namespace orq
