#ifndef ORQ_SERVER_CLIENT_H_
#define ORQ_SERVER_CLIENT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "server/wire.h"

namespace orq {

/// Blocking wire-protocol client: one connection, one outstanding request.
/// Each call sends a frame and waits for the reply; server-side errors come
/// back as the decoded Status (same code and message the engine produced),
/// transport errors as the socket's Status. Move-only; the destructor
/// closes the connection.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port);

  Client(Client&& other) noexcept
      : fd_(other.fd_),
        decoder_(std::move(other.decoder_)),
        last_query_id_(std::move(other.last_query_id_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Executes `sql` on the server; rows come back in canonical text form
  /// (difftest's CanonicalRow).
  Result<WireResult> Query(const std::string& sql);

  /// SET command, e.g. Set("timeout_ms", "500") or Set("threads", "4").
  Status Set(const std::string& name, const std::string& value);

  /// Admin command ("metrics", "ping"); returns the server's text reply.
  Result<std::string> Admin(const std::string& command);

  Status Ping();

  /// Registers `sql` (with `?` positional parameters) under `name` on the
  /// server; the reply carries the inferred parameter types and the result
  /// column names.
  Result<WirePrepared> Prepare(const std::string& name,
                               const std::string& sql);
  /// Runs a prepared statement with positional parameter values.
  Result<WireResult> ExecutePrepared(const std::string& name,
                                     const std::vector<Value>& params);
  Status Deallocate(const std::string& name);

  /// The server-minted query id of the last Query/ExecutePrepared call,
  /// whether it succeeded or failed (empty before the first query, or when
  /// the failure happened before the server minted an id). Lets callers
  /// cross-reference errors/timeouts against `\history` and traces.
  const std::string& last_query_id() const { return last_query_id_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends one frame, receives one frame. Disconnection mid-exchange is an
  /// error (the protocol has no server-initiated frames).
  Result<Frame> RoundTrip(FrameType type, const std::string& payload);

  int fd_ = -1;
  /// Buffers bytes between frames (a reply may arrive split or coalesced).
  FrameDecoder decoder_;
  std::string last_query_id_;
};

}  // namespace orq

#endif  // ORQ_SERVER_CLIENT_H_
