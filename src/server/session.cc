#include "server/session.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <optional>

namespace orq {

namespace {

/// Splits "name value" / "name=value" / "name = value" into name + value.
bool SplitSet(const std::string& command, std::string* name,
              std::string* value) {
  size_t start = 0;
  while (start < command.size() &&
         std::isspace(static_cast<unsigned char>(command[start]))) {
    ++start;
  }
  size_t sep = start;
  while (sep < command.size() && command[sep] != '=' &&
         !std::isspace(static_cast<unsigned char>(command[sep]))) {
    ++sep;
  }
  if (sep == start || sep == command.size()) return false;
  *name = command.substr(start, sep - start);
  size_t vstart = sep;
  while (vstart < command.size() &&
         (command[vstart] == '=' ||
          std::isspace(static_cast<unsigned char>(command[vstart])))) {
    ++vstart;
  }
  size_t vend = command.size();
  while (vend > vstart &&
         std::isspace(static_cast<unsigned char>(command[vend - 1]))) {
    --vend;
  }
  if (vend == vstart) return false;
  *value = command.substr(vstart, vend - vstart);
  return true;
}

Result<int64_t> ParseInt(const std::string& name, const std::string& value,
                         int64_t min, int64_t max) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("SET " + name +
                                   ": not an integer: " + value);
  }
  if (parsed < min || parsed > max) {
    return Status::InvalidArgument(
        "SET " + name + ": " + value + " outside [" + std::to_string(min) +
        ", " + std::to_string(max) + "]");
  }
  return static_cast<int64_t>(parsed);
}

}  // namespace

Status Session::ApplySet(const std::string& command) {
  std::string name, value;
  if (!SplitSet(command, &name, &value)) {
    return Status::InvalidArgument(
        "SET expects \"name value\", got: " + command);
  }
  for (char& c : name) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  if (name == "threads") {
    ORQ_ASSIGN_OR_RETURN(int64_t n, ParseInt(name, value, 0, 64));
    // Validate the combined exec options before committing, so an illegal
    // combination (columnar + threads) fails the SET with the same message
    // the engine would give, instead of poisoning the session.
    ExecOptions next = options_.exec;
    next.num_threads = static_cast<int>(n);
    ORQ_RETURN_IF_ERROR(ValidateExecOptions(next));
    options_.exec = next;
  } else if (name == "batch") {
    if (value == "on" || value == "true" || value == "1") {
      options_.exec.batched = true;
    } else if (value == "off" || value == "false" || value == "0") {
      options_.exec.batched = false;
    } else {
      return Status::InvalidArgument("SET batch expects on|off, got: " +
                                     value);
    }
  } else if (name == "exec") {
    ExecOptions next = options_.exec;
    if (value == "row") {
      next.batched = false;
      next.columnar = false;
    } else if (value == "batch") {
      next.batched = true;
      next.columnar = false;
    } else if (value == "columnar") {
      next.batched = true;
      next.columnar = true;
    } else {
      return Status::InvalidArgument(
          "SET exec expects row|batch|columnar, got: " + value);
    }
    ORQ_RETURN_IF_ERROR(ValidateExecOptions(next));
    options_.exec = next;
  } else if (name == "table_encoding") {
    std::optional<TableEncoding> enc = ParseTableEncoding(value);
    if (!enc.has_value()) {
      return Status::InvalidArgument(
          "SET table_encoding expects plain|dict|rle|auto, got: " + value);
    }
    options_.exec.table_encoding = *enc;
  } else if (name == "batch_size") {
    // Parse wide, then let ValidateBatchSize be the one place that knows
    // the legal range (engine execution rechecks the same predicate).
    ORQ_ASSIGN_OR_RETURN(int64_t n,
                         ParseInt(name, value, INT32_MIN, INT32_MAX));
    ORQ_RETURN_IF_ERROR(ValidateBatchSize(static_cast<int>(n)));
    options_.exec.batch_size = static_cast<int>(n);
  } else if (name == "morsel_rows") {
    ORQ_ASSIGN_OR_RETURN(int64_t n, ParseInt(name, value, 1, 1 << 24));
    options_.exec.morsel_rows = static_cast<int>(n);
  } else if (name == "timeout_ms") {
    ORQ_ASSIGN_OR_RETURN(int64_t n,
                         ParseInt(name, value, 0, int64_t{1} << 40));
    timeout_ms_ = n;
  } else if (name == "slow_query_ms") {
    ORQ_ASSIGN_OR_RETURN(int64_t n,
                         ParseInt(name, value, 0, int64_t{1} << 40));
    slow_query_ms_ = n;
  } else if (name == "plan_cache") {
    if (value == "on" || value == "true" || value == "1") {
      options_.plan_cache.enable = true;
    } else if (value == "off" || value == "false" || value == "0") {
      options_.plan_cache.enable = false;
    } else {
      return Status::InvalidArgument(
          "SET plan_cache expects on|off, got: " + value);
    }
  } else {
    return Status::InvalidArgument(
        "unknown SET option \"" + name +
        "\" (known: threads, exec, batch, batch_size, table_encoding, "
        "morsel_rows, timeout_ms, slow_query_ms, plan_cache)");
  }
  ++options_generation_;
  return Status::OK();
}

Status Session::RegisterPrepared(const std::string& name,
                                 PreparedStatement stmt) {
  constexpr size_t kMaxPrepared = 256;
  if (prepared_.count(name) == 0 && prepared_.size() >= kMaxPrepared) {
    return Status::InvalidArgument(
        "session holds " + std::to_string(kMaxPrepared) +
        " prepared statements already; DEALLOCATE one first");
  }
  prepared_[name] = std::move(stmt);
  return Status::OK();
}

const PreparedStatement* Session::FindPrepared(
    const std::string& name) const {
  auto it = prepared_.find(name);
  return it != prepared_.end() ? &it->second : nullptr;
}

bool Session::DeallocatePrepared(const std::string& name) {
  return prepared_.erase(name) > 0;
}

}  // namespace orq
