#ifndef ORQ_SERVER_ADMISSION_H_
#define ORQ_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/status.h"
#include "exec/cancel.h"

namespace orq {

/// Admission policy: at most `max_concurrent` queries execute at once; at
/// most `max_queued` more may wait. Arrivals beyond both bounds are
/// rejected immediately (Unavailable) instead of queueing without bound —
/// under overload the server sheds load at the door, keeping latency for
/// admitted queries bounded by queue depth × service time.
struct AdmissionOptions {
  int max_concurrent = 4;
  int max_queued = 64;
};

/// Counting gate in front of the execution pool. Admission is strict FIFO:
/// each waiter takes a ticket, and a freed slot goes to the ticket at the
/// head of the queue — never to a later waiter that happened to wake first,
/// and never to a fresh arrival while anyone queues (both were possible
/// before and starved early waiters under sustained load). Admit honors
/// the waiter's CancelToken (a deadline spent queueing is charged to the
/// query) and fails fast once Shutdown ran.
///
/// Every Admit call lands in exactly one outcome counter:
/// admitted + rejected + cancelled == calls.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  /// Blocks until a slot is granted. OK means the caller owns one run slot
  /// and must Release() it. Unavailable when the queue is full or the
  /// controller shut down; Cancelled/DeadlineExceeded when `cancel` fired
  /// while waiting.
  Status Admit(const CancelToken* cancel);
  void Release();

  /// Wakes every waiter with Unavailable and rejects future arrivals.
  void Shutdown();

  int running() const;
  int queued() const;
  int64_t admitted() const;
  int64_t rejected() const;
  /// Waiters whose CancelToken fired while they were queued. Previously
  /// these silently vanished from the books (queued_ went down but neither
  /// admitted_ nor rejected_ moved).
  int64_t cancelled() const;
  int64_t peak_queued() const;

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  int running_ = 0;
  bool shutdown_ = false;
  /// FIFO of live waiter tickets; front is next to be admitted. A waiter
  /// that gives up (cancel/shutdown) erases its ticket so it cannot block
  /// the queue. queue_.size() is the queued count.
  std::deque<uint64_t> queue_;
  uint64_t next_ticket_ = 0;
  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  int64_t cancelled_ = 0;
  int64_t peak_queued_ = 0;
};

}  // namespace orq

#endif  // ORQ_SERVER_ADMISSION_H_
