#include "server/wire.h"

#include <cstring>

namespace orq {

namespace {

void PutU32(uint32_t value, std::string* out) {
  char bytes[4];
  bytes[0] = static_cast<char>(value & 0xff);
  bytes[1] = static_cast<char>((value >> 8) & 0xff);
  bytes[2] = static_cast<char>((value >> 16) & 0xff);
  bytes[3] = static_cast<char>((value >> 24) & 0xff);
  out->append(bytes, 4);
}

void PutU64(uint64_t value, std::string* out) {
  PutU32(static_cast<uint32_t>(value & 0xffffffffu), out);
  PutU32(static_cast<uint32_t>(value >> 32), out);
}

void PutStr(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Bounded little-endian reader over a payload; any read past the end
/// latches an error (malformed payload).
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  uint32_t U8() {
    if (pos_ + 1 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<unsigned char>(bytes_[pos_++]);
  }

  uint32_t U32() {
    if (pos_ + 4 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    const auto* p = reinterpret_cast<const unsigned char*>(bytes_.data()) +
                    pos_;
    pos_ += 4;
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  }

  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }

  std::string Str() {
    const uint32_t size = U32();
    if (!ok_ || pos_ + size > bytes_.size()) {
      ok_ = false;
      return std::string();
    }
    std::string s = bytes_.substr(pos_, size);
    pos_ += size;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

bool IsValidFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kSet:
    case FrameType::kAdmin:
    case FrameType::kPing:
    case FrameType::kPrepare:
    case FrameType::kExecute:
    case FrameType::kDeallocate:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kInfo:
    case FrameType::kPong:
    case FrameType::kPrepared:
      return true;
  }
  return false;
}

void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  PutU32(static_cast<uint32_t>(payload.size()) + 1, out);
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  if (buffer_.size() - pos_ < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data()) +
                  pos_;
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  if (length == 0) {
    return Status::InvalidArgument("wire: zero-length frame");
  }
  if (length > kWireMaxFrameBytes) {
    return Status::InvalidArgument(
        "wire: frame of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(kWireMaxFrameBytes) +
        "-byte limit");
  }
  if (buffer_.size() - pos_ < 4u + length) return false;
  const uint8_t type = static_cast<uint8_t>(buffer_[pos_ + 4]);
  if (!IsValidFrameType(type)) {
    return Status::InvalidArgument("wire: unknown frame type byte " +
                                   std::to_string(type));
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buffer_, pos_ + 5, length - 1);
  pos_ += 4u + length;
  return true;
}

std::string EncodeResult(const WireResult& result) {
  std::string out;
  PutU32(static_cast<uint32_t>(result.columns.size()), &out);
  for (const std::string& column : result.columns) PutStr(column, &out);
  PutU32(static_cast<uint32_t>(result.rows.size()), &out);
  for (const std::string& row : result.rows) PutStr(row, &out);
  PutU64(static_cast<uint64_t>(result.rows_produced), &out);
  PutStr(result.query_id, &out);
  return out;
}

Result<WireResult> DecodeResult(const std::string& payload) {
  Reader reader(payload);
  WireResult result;
  const uint32_t num_columns = reader.U32();
  for (uint32_t i = 0; i < num_columns && reader.ok(); ++i) {
    result.columns.push_back(reader.Str());
  }
  const uint32_t num_rows = reader.U32();
  for (uint32_t i = 0; i < num_rows && reader.ok(); ++i) {
    result.rows.push_back(reader.Str());
  }
  result.rows_produced = static_cast<int64_t>(reader.U64());
  result.query_id = reader.Str();
  if (!reader.ok() || !reader.AtEnd()) {
    return Status::InvalidArgument("wire: malformed result payload");
  }
  return result;
}

std::string EncodeError(const Status& status, const std::string& query_id) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  PutStr(query_id, &out);
  out.append(status.message());
  return out;
}

namespace {

bool ValidTypeByte(uint32_t byte) {
  return byte <= static_cast<uint32_t>(DataType::kDate);
}

void PutValue(const Value& value, std::string* out) {
  out->push_back(static_cast<char>(value.type()));
  out->push_back(value.is_null() ? 1 : 0);
  if (value.is_null()) return;
  switch (value.type()) {
    case DataType::kBool:
      out->push_back(value.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      PutU64(static_cast<uint64_t>(value.int64_value()), out);
      break;
    case DataType::kDouble: {
      uint64_t bits = 0;
      const double d = value.double_value();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(bits, out);
      break;
    }
    case DataType::kString:
      PutStr(value.string_value(), out);
      break;
    case DataType::kDate:
      PutU32(static_cast<uint32_t>(value.date_value()), out);
      break;
  }
}

Value ReadValue(Reader* reader, bool* ok) {
  const uint32_t type_byte = reader->U8();
  const uint32_t null_byte = reader->U8();
  if (!reader->ok() || !ValidTypeByte(type_byte) || null_byte > 1) {
    *ok = false;
    return Value();
  }
  const DataType type = static_cast<DataType>(type_byte);
  if (null_byte == 1) return Value::Null(type);
  switch (type) {
    case DataType::kBool:
      return Value::Bool(reader->U8() != 0);
    case DataType::kInt64:
      return Value::Int64(static_cast<int64_t>(reader->U64()));
    case DataType::kDouble: {
      const uint64_t bits = reader->U64();
      double d = 0.0;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case DataType::kString:
      return Value::String(reader->Str());
    case DataType::kDate:
      return Value::Date(static_cast<int32_t>(reader->U32()));
  }
  *ok = false;
  return Value();
}

}  // namespace

std::string EncodePrepare(const WirePrepare& prepare) {
  std::string out;
  PutStr(prepare.name, &out);
  PutStr(prepare.sql, &out);
  return out;
}

Result<WirePrepare> DecodePrepare(const std::string& payload) {
  Reader reader(payload);
  WirePrepare prepare;
  prepare.name = reader.Str();
  prepare.sql = reader.Str();
  if (!reader.ok() || !reader.AtEnd()) {
    return Status::InvalidArgument("wire: malformed prepare payload");
  }
  return prepare;
}

std::string EncodePrepared(const WirePrepared& prepared) {
  std::string out;
  PutU32(static_cast<uint32_t>(prepared.param_types.size()), &out);
  for (DataType type : prepared.param_types) {
    out.push_back(static_cast<char>(type));
  }
  PutU32(static_cast<uint32_t>(prepared.columns.size()), &out);
  for (const std::string& column : prepared.columns) PutStr(column, &out);
  return out;
}

Result<WirePrepared> DecodePrepared(const std::string& payload) {
  Reader reader(payload);
  WirePrepared prepared;
  const uint32_t num_params = reader.U32();
  for (uint32_t i = 0; i < num_params && reader.ok(); ++i) {
    const uint32_t type_byte = reader.U8();
    if (!reader.ok() || !ValidTypeByte(type_byte)) {
      return Status::InvalidArgument("wire: bad parameter type byte");
    }
    prepared.param_types.push_back(static_cast<DataType>(type_byte));
  }
  const uint32_t num_columns = reader.U32();
  for (uint32_t i = 0; i < num_columns && reader.ok(); ++i) {
    prepared.columns.push_back(reader.Str());
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return Status::InvalidArgument("wire: malformed prepared payload");
  }
  return prepared;
}

std::string EncodeExecute(const WireExecute& execute) {
  std::string out;
  PutStr(execute.name, &out);
  PutU32(static_cast<uint32_t>(execute.params.size()), &out);
  for (const Value& value : execute.params) PutValue(value, &out);
  return out;
}

Result<WireExecute> DecodeExecute(const std::string& payload) {
  Reader reader(payload);
  WireExecute execute;
  execute.name = reader.Str();
  const uint32_t num_params = reader.U32();
  bool ok = reader.ok();
  for (uint32_t i = 0; i < num_params && ok; ++i) {
    execute.params.push_back(ReadValue(&reader, &ok));
  }
  if (!ok || !reader.ok() || !reader.AtEnd()) {
    return Status::InvalidArgument("wire: malformed execute payload");
  }
  return execute;
}

Status DecodeError(const std::string& payload, std::string* query_id) {
  if (query_id != nullptr) query_id->clear();
  if (payload.empty()) {
    return Status::Internal("wire: empty error payload");
  }
  const auto code = static_cast<StatusCode>(
      static_cast<unsigned char>(payload[0]));
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kRuntimeError:
    case StatusCode::kCardinalityViolation:
    case StatusCode::kUnsupported:
    case StatusCode::kInternal:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      break;
    default:
      return Status::Internal("wire: unknown error code in payload: " +
                              payload.substr(1));
  }
  // After the code byte: the query id as a length-prefixed string, then
  // the raw message (no length prefix — it runs to the payload's end, so
  // the message stays byte-identical to the engine's).
  const std::string rest = payload.substr(1);
  Reader reader(rest);
  std::string id = reader.Str();
  if (!reader.ok()) {
    return Status::Internal("wire: malformed error payload");
  }
  const size_t id_size = id.size();
  if (query_id != nullptr) *query_id = std::move(id);
  return Status(code, payload.substr(1 + 4 + id_size));
}

}  // namespace orq
