#include "server/wire.h"

#include <cstring>

namespace orq {

namespace {

void PutU32(uint32_t value, std::string* out) {
  char bytes[4];
  bytes[0] = static_cast<char>(value & 0xff);
  bytes[1] = static_cast<char>((value >> 8) & 0xff);
  bytes[2] = static_cast<char>((value >> 16) & 0xff);
  bytes[3] = static_cast<char>((value >> 24) & 0xff);
  out->append(bytes, 4);
}

void PutU64(uint64_t value, std::string* out) {
  PutU32(static_cast<uint32_t>(value & 0xffffffffu), out);
  PutU32(static_cast<uint32_t>(value >> 32), out);
}

void PutStr(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

/// Bounded little-endian reader over a payload; any read past the end
/// latches an error (malformed payload).
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  uint32_t U32() {
    if (pos_ + 4 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    const auto* p = reinterpret_cast<const unsigned char*>(bytes_.data()) +
                    pos_;
    pos_ += 4;
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  }

  uint64_t U64() {
    const uint64_t lo = U32();
    const uint64_t hi = U32();
    return lo | (hi << 32);
  }

  std::string Str() {
    const uint32_t size = U32();
    if (!ok_ || pos_ + size > bytes_.size()) {
      ok_ = false;
      return std::string();
    }
    std::string s = bytes_.substr(pos_, size);
    pos_ += size;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

bool IsValidFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kQuery:
    case FrameType::kSet:
    case FrameType::kAdmin:
    case FrameType::kPing:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kInfo:
    case FrameType::kPong:
      return true;
  }
  return false;
}

void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  PutU32(static_cast<uint32_t>(payload.size()) + 1, out);
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

Result<bool> FrameDecoder::Next(Frame* out) {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  if (buffer_.size() - pos_ < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data()) +
                  pos_;
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  if (length == 0) {
    return Status::InvalidArgument("wire: zero-length frame");
  }
  if (length > kWireMaxFrameBytes) {
    return Status::InvalidArgument(
        "wire: frame of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(kWireMaxFrameBytes) +
        "-byte limit");
  }
  if (buffer_.size() - pos_ < 4u + length) return false;
  const uint8_t type = static_cast<uint8_t>(buffer_[pos_ + 4]);
  if (!IsValidFrameType(type)) {
    return Status::InvalidArgument("wire: unknown frame type byte " +
                                   std::to_string(type));
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buffer_, pos_ + 5, length - 1);
  pos_ += 4u + length;
  return true;
}

std::string EncodeResult(const WireResult& result) {
  std::string out;
  PutU32(static_cast<uint32_t>(result.columns.size()), &out);
  for (const std::string& column : result.columns) PutStr(column, &out);
  PutU32(static_cast<uint32_t>(result.rows.size()), &out);
  for (const std::string& row : result.rows) PutStr(row, &out);
  PutU64(static_cast<uint64_t>(result.rows_produced), &out);
  return out;
}

Result<WireResult> DecodeResult(const std::string& payload) {
  Reader reader(payload);
  WireResult result;
  const uint32_t num_columns = reader.U32();
  for (uint32_t i = 0; i < num_columns && reader.ok(); ++i) {
    result.columns.push_back(reader.Str());
  }
  const uint32_t num_rows = reader.U32();
  for (uint32_t i = 0; i < num_rows && reader.ok(); ++i) {
    result.rows.push_back(reader.Str());
  }
  result.rows_produced = static_cast<int64_t>(reader.U64());
  if (!reader.ok() || !reader.AtEnd()) {
    return Status::InvalidArgument("wire: malformed result payload");
  }
  return result;
}

std::string EncodeError(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  out.append(status.message());
  return out;
}

Status DecodeError(const std::string& payload) {
  if (payload.empty()) {
    return Status::Internal("wire: empty error payload");
  }
  const auto code = static_cast<StatusCode>(
      static_cast<unsigned char>(payload[0]));
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kRuntimeError:
    case StatusCode::kCardinalityViolation:
    case StatusCode::kUnsupported:
    case StatusCode::kInternal:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return Status(code, payload.substr(1));
  }
  return Status::Internal("wire: unknown error code in payload: " +
                          payload.substr(1));
}

}  // namespace orq
