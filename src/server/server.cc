#include "server/server.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <utility>
#include <vector>

#include "difftest/oracle.h"
#include "obs/json.h"
#include "obs/stats.h"
#include "server/net.h"

namespace orq {

namespace {

/// Strips leading/trailing whitespace (admin command normalization).
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<Catalog> catalog,
                         ServerOptions options)
    : options_(std::move(options)),
      pool_(std::max(1, options_.worker_threads)),
      admission_([&] {
        AdmissionOptions admission = options_.admission;
        admission.max_concurrent =
            std::max(1, std::min(admission.max_concurrent,
                                 std::max(1, options_.worker_threads)));
        return admission;
      }()),
      catalog_(std::move(catalog)),
      query_store_(std::max<size_t>(1, options_.query_store_capacity)) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  ORQ_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.host, options_.port));
  ORQ_ASSIGN_OR_RETURN(port_, BoundTcpPort(listen_fd_));
  if (options_.metrics_port >= 0) {
    Result<int> metrics_fd = ListenTcp(options_.host, options_.metrics_port);
    Result<int> metrics_port =
        metrics_fd.ok() ? BoundTcpPort(metrics_fd.value()) : Result<int>(-1);
    if (!metrics_fd.ok() || !metrics_port.ok()) {
      if (metrics_fd.ok()) CloseFd(metrics_fd.value());
      CloseFd(listen_fd_);
      listen_fd_ = -1;
      return metrics_fd.ok() ? metrics_port.status() : metrics_fd.status();
    }
    metrics_listen_fd_ = metrics_fd.value();
    metrics_port_ = metrics_port.value();
  }
  started_ = true;
  started_nanos_ = ObsNowNanos();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (metrics_listen_fd_ >= 0) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }
  return Status::OK();
}

void QueryServer::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Still join the listener threads if a second caller raced the first.
    if (accept_thread_.joinable()) accept_thread_.join();
    if (metrics_thread_.joinable()) metrics_thread_.join();
    ReapConnections(/*all=*/true);
    return;
  }
  admission_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    for (CancelToken* token : tokens_) token->RequestCancel();
  }
  // Waking the listener: shutdown() unblocks poll/accept on some platforms;
  // the accept loop also polls stopping_ every 100ms, which bounds
  // shutdown latency regardless.
  if (listen_fd_ >= 0) ShutdownFd(listen_fd_);
  if (metrics_listen_fd_ >= 0) ShutdownFd(metrics_listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  if (listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  if (metrics_listen_fd_ >= 0) {
    CloseFd(metrics_listen_fd_);
    metrics_listen_fd_ = -1;
  }
  // Kick every connection out of its blocking recv, then join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ShutdownFd(conn->fd);
    }
  }
  ReapConnections(/*all=*/true);
}

std::shared_ptr<Catalog> QueryServer::CatalogSnapshot() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_;
}

void QueryServer::ReplaceCatalog(std::shared_ptr<Catalog> catalog) {
  // Every catalog instance is born with a process-unique version, but a
  // caller may re-install a snapshot it mutated offline — bump so any plan
  // cached against this instance's previous contents is invalidated.
  if (catalog != nullptr) catalog->BumpVersion();
  std::lock_guard<std::mutex> lock(catalog_mu_);
  catalog_ = std::move(catalog);
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<int> accepted = AcceptWithTimeout(listen_fd_, /*poll_ms=*/100);
    ReapConnections(/*all=*/false);
    if (!accepted.ok()) break;  // listener closed or fatal socket error
    const int fd = accepted.value();
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_relaxed)) {
      CloseFd(fd);
      break;
    }
    const int session_id = next_session_id_++;
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      metrics_.Add(MetricCounter::kServerSessionsOpened, 1);
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw, fd, session_id] {
      active_sessions_.fetch_add(1, std::memory_order_relaxed);
      ServeConnection(fd, session_id);
      active_sessions_.fetch_sub(1, std::memory_order_relaxed);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void QueryServer::MetricsLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<int> accepted =
        AcceptWithTimeout(metrics_listen_fd_, /*poll_ms=*/100);
    if (!accepted.ok()) break;  // listener closed or fatal socket error
    const int fd = accepted.value();
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_relaxed)) {
      CloseFd(fd);
      break;
    }
    // One request per connection, served inline on this thread: scrapes
    // arrive every few seconds and the body is small, so there is nothing
    // to pipeline. A ~2s read budget keeps a stuck client from wedging
    // the listener.
    std::string request;
    char chunk[4096];
    for (int spin = 0;
         spin < 20 && request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192;
         ++spin) {
      Result<int> got = RecvSome(fd, chunk, sizeof(chunk), /*poll_ms=*/100);
      if (!got.ok() || got.value() == 0) break;  // error or EOF
      if (got.value() < 0) continue;             // poll timeout, retry
      request.append(chunk, static_cast<size_t>(got.value()));
    }
    const size_t line_end = request.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? request : request.substr(0, line_end);
    std::string reply;
    if (line.rfind("GET /metrics ", 0) == 0 || line == "GET /metrics") {
      const std::string body = MetricsPromText();
      reply = "HTTP/1.0 200 OK\r\n"
              "Content-Type: text/plain; version=0.0.4\r\n"
              "Content-Length: " + std::to_string(body.size()) +
              "\r\nConnection: close\r\n\r\n" + body;
    } else {
      const std::string body = "not found (try /metrics)\n";
      reply = "HTTP/1.0 404 Not Found\r\n"
              "Content-Type: text/plain\r\n"
              "Content-Length: " + std::to_string(body.size()) +
              "\r\nConnection: close\r\n\r\n" + body;
    }
    SendAll(fd, reply.data(), reply.size());
    CloseFd(fd);
  }
}

void QueryServer::ReapConnections(bool all) {
  // Collect joinable handles under the lock, join outside it (a connection
  // thread may be blocked in a long recv when all=true at Stop — it was
  // already woken via ShutdownFd, but the join can still take a moment).
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) CloseFd(conn->fd);
  }
}

void QueryServer::RegisterToken(CancelToken* token) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  tokens_.insert(token);
}

void QueryServer::UnregisterToken(CancelToken* token) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  tokens_.erase(token);
}

void QueryServer::FinishLive(const std::shared_ptr<LiveQuery>& live) {
  UnregisterToken(&live->token);
  std::lock_guard<std::mutex> lock(live_mu_);
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    if (it->get() == live.get()) {
      live_.erase(it);
      break;
    }
  }
}

Status QueryServer::CancelQuery(const std::string& id) {
  // Copy the shared_ptr out under the lock: the query may finish (and drop
  // its registry entry) between our lookup and the RequestCancel call, and
  // the copy keeps the token alive across that race.
  std::shared_ptr<LiveQuery> target;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    for (const std::shared_ptr<LiveQuery>& live : live_) {
      if (live->id == id) {
        target = live;
        break;
      }
    }
  }
  if (target == nullptr) {
    return Status::NotFound("no in-flight query with id \"" + id +
                            "\" (it may have already finished)");
  }
  target->token.RequestCancel();
  return Status::OK();
}

void QueryServer::RecordQuery(QueryRecord record, int64_t slow_query_ms) {
  // The ring outlives the query's progress sink; never let the stored
  // profile point back at it.
  record.profile.live_phase = nullptr;
  if (slow_query_ms > 0 && record.wall_micros >= slow_query_ms * 1000) {
    std::string text = "== Query " + record.query_id + " ==\n";
    text += RenderProfile(record.profile, nullptr);
    if (record.has_plan) text += RenderPlanStats(record.plan);
    record.slow_explain = std::move(text);
  }
  query_store_.Record(std::move(record));
}

void QueryServer::EnsureEngine(Session* session,
                               std::unique_ptr<QueryEngine>* engine,
                               std::shared_ptr<Catalog>* engine_catalog,
                               int64_t* engine_generation) {
  std::shared_ptr<Catalog> snapshot = CatalogSnapshot();
  if (*engine == nullptr || *engine_catalog != snapshot ||
      *engine_generation != session->options_generation()) {
    *engine = std::make_unique<QueryEngine>(snapshot.get(),
                                            session->engine_options());
    *engine_catalog = snapshot;
    *engine_generation = session->options_generation();
  }
}

Result<WireResult> QueryServer::RunQuery(
    Session* session, std::unique_ptr<QueryEngine>* engine,
    std::shared_ptr<Catalog>* engine_catalog, int64_t* engine_generation,
    const std::string& sql, const std::vector<Value>* params,
    std::string* query_id_out) {
  const int64_t start_nanos = ObsNowNanos();

  // Register in the live-query table before admission, so `\queries` sees
  // work still waiting in the queue and `\cancel` can evict it from there.
  auto live = std::make_shared<LiveQuery>();
  live->id = session->NextQueryId();
  live->session_id = session->id();
  live->sql = sql;
  live->start_nanos = start_nanos;
  if (query_id_out != nullptr) *query_id_out = live->id;
  if (session->timeout_ms() > 0) {
    live->token.SetTimeoutMs(session->timeout_ms());
  }
  RegisterToken(&live->token);
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    live_.push_back(live);
  }
  // A server already stopping cancels this query before it runs anything.
  if (stopping_.load(std::memory_order_relaxed)) live->token.RequestCancel();

  const ExecOptions& exec_options = session->engine_options().exec;
  const char* exec_mode = exec_options.columnar ? "columnar"
                          : exec_options.batched ? "batch"
                                                 : "row";

  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.Observe(MetricHistogram::kAdmissionQueueDepth,
                     admission_.queued());
  }

  Status admitted = admission_.Admit(&live->token);
  if (!admitted.ok()) {
    FinishLive(live);
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      if (admitted.code() == StatusCode::kUnavailable) {
        metrics_.Add(MetricCounter::kServerQueriesRejected, 1);
      } else {
        metrics_.Add(MetricCounter::kServerQueriesTimedOut, 1);
      }
    }
    QueryRecord rejected;
    rejected.query_id = live->id;
    rejected.session_id = session->id();
    rejected.sql = sql;
    rejected.exec_mode = exec_mode;
    rejected.outcome = OutcomeForStatus(admitted);
    rejected.error_message = admitted.message();
    rejected.submit_nanos = start_nanos;
    rejected.wall_micros = (ObsNowNanos() - start_nanos) / 1000;
    RecordQuery(std::move(rejected), session->slow_query_ms());
    return admitted;
  }

  // Pin the snapshot current at admission; rebuild the cached engine when
  // the session's options or the server's catalog moved underneath it.
  EnsureEngine(session, engine, engine_catalog, engine_generation);

  // Run on the server's work-stealing pool; this connection thread blocks
  // until its task finishes. The engine may layer its own exchange workers
  // on top — those live in the engine's pool, not this one, so a pool task
  // never waits on a second pool task for capacity.
  MetricsRegistry query_metrics;
  QueryObservation observe;
  observe.profile.query_id = live->id;
  observe.profile.live_phase = &live->progress.phase;
  ExecControl control;
  control.cancel = &live->token;
  control.metrics = &query_metrics;
  control.observe = &observe;
  control.progress_rows = &live->progress.rows;
  control.query_id = live->id;
  QueryEngine* engine_ptr = engine->get();

  Result<QueryResult> result = Status::Internal("query task never ran");
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  pool_.Submit([&] {
    Result<QueryResult> r =
        params != nullptr ? engine_ptr->ExecuteParams(sql, *params, control)
                          : engine_ptr->Execute(sql, control);
    std::lock_guard<std::mutex> lock(done_mu);
    result = std::move(r);
    done = true;
    done_cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done; });
  }
  admission_.Release();
  session->CountQuery();

  const int64_t latency_micros = (ObsNowNanos() - start_nanos) / 1000;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.MergeFrom(query_metrics);
    metrics_.Observe(MetricHistogram::kQueryLatencyMicros, latency_micros);
    if (result.ok()) {
      metrics_.Add(MetricCounter::kServerQueriesOk, 1);
    } else if (result.status().code() == StatusCode::kCancelled ||
               result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_.Add(MetricCounter::kServerQueriesTimedOut, 1);
    } else {
      metrics_.Add(MetricCounter::kServerQueriesError, 1);
    }
  }

  QueryRecord record;
  record.query_id = live->id;
  record.session_id = session->id();
  record.sql = sql;
  record.fingerprint = observe.fingerprint;
  record.exec_mode = exec_mode;
  record.outcome =
      result.ok() ? QueryOutcome::kOk : OutcomeForStatus(result.status());
  if (!result.ok()) record.error_message = result.status().message();
  record.submit_nanos = start_nanos;
  record.wall_micros = latency_micros;
  record.result_rows =
      result.ok() ? static_cast<int64_t>(result.value().rows.size()) : 0;
  // A failed query still reports the rows it pushed before unwinding (the
  // executor's progress feed), which is what a cancel post-mortem wants.
  record.rows_produced =
      result.ok() ? result.value().rows_produced
                  : live->progress.rows.load(std::memory_order_relaxed);
  record.profile = observe.profile;
  record.has_plan = observe.has_plan;
  if (observe.has_plan) {
    record.plan = std::move(observe.plan);
    record.peak_cardinality = MaxPeakCardinality(record.plan);
  }
  RecordQuery(std::move(record), session->slow_query_ms());
  // Drop from the live table only after the record landed in the store, so
  // an observer polling `\queries` + `\history` never sees the query in
  // neither.
  FinishLive(live);

  if (!result.ok()) return result.status();

  WireResult wire;
  wire.query_id = live->id;
  wire.columns = result.value().column_names;
  wire.rows.reserve(result.value().rows.size());
  for (const Row& row : result.value().rows) {
    wire.rows.push_back(CanonicalRow(row));
  }
  wire.rows_produced = result.value().rows_produced;
  return wire;
}

void QueryServer::ServeConnection(int fd, int session_id) {
  Session session(session_id, options_.engine, options_.default_timeout_ms,
                  options_.default_slow_query_ms);
  std::unique_ptr<QueryEngine> engine;
  std::shared_ptr<Catalog> engine_catalog;
  int64_t engine_generation = -1;

  FrameDecoder decoder;
  std::string reply;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Frame frame;
    Result<bool> got = RecvFrame(fd, &decoder, &frame);
    if (!got.ok() || !got.value()) break;  // protocol error or clean EOF
    reply.clear();
    switch (frame.type) {
      case FrameType::kQuery: {
        std::string query_id;
        Result<WireResult> result =
            RunQuery(&session, &engine, &engine_catalog, &engine_generation,
                     frame.payload, /*params=*/nullptr, &query_id);
        if (result.ok()) {
          reply = EncodeResult(result.value());
          if (!SendFrame(fd, FrameType::kResult, reply).ok()) return;
        } else {
          reply = EncodeError(result.status(), query_id);
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      case FrameType::kSet: {
        Status applied = session.ApplySet(frame.payload);
        if (applied.ok()) {
          if (!SendFrame(fd, FrameType::kInfo, "SET ok").ok()) return;
        } else {
          reply = EncodeError(applied);
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      case FrameType::kAdmin: {
        const std::string command = Trim(frame.payload);
        if (command == "metrics") {
          if (!SendFrame(fd, FrameType::kInfo, MetricsText()).ok()) return;
        } else if (command == "metrics json") {
          if (!SendFrame(fd, FrameType::kInfo, MetricsJsonText()).ok()) {
            return;
          }
        } else if (command == "metrics prom") {
          if (!SendFrame(fd, FrameType::kInfo, MetricsPromText()).ok()) {
            return;
          }
        } else if (command == "queries") {
          if (!SendFrame(fd, FrameType::kInfo, QueriesJsonText()).ok()) {
            return;
          }
        } else if (command == "history" ||
                   command.rfind("history ", 0) == 0) {
          size_t limit = 32;
          if (command.size() > 7) {
            const std::string arg = Trim(command.substr(7));
            char* end = nullptr;
            const long long n = std::strtoll(arg.c_str(), &end, 10);
            if (end == arg.c_str() || *end != '\0' || n < 0) {
              reply = EncodeError(Status::InvalidArgument(
                  "history expects a non-negative count, got: " + arg));
              if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
              break;
            }
            limit = static_cast<size_t>(n);
          }
          if (!SendFrame(fd, FrameType::kInfo, HistoryJsonText(limit))
                   .ok()) {
            return;
          }
        } else if (command.rfind("cancel ", 0) == 0) {
          const std::string id = Trim(command.substr(7));
          Status cancelled = CancelQuery(id);
          if (cancelled.ok()) {
            if (!SendFrame(fd, FrameType::kInfo, "CANCEL sent: " + id)
                     .ok()) {
              return;
            }
          } else {
            reply = EncodeError(cancelled);
            if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          }
        } else if (command == "ping") {
          if (!SendFrame(fd, FrameType::kPong, "").ok()) return;
        } else {
          reply = EncodeError(Status::InvalidArgument(
              "unknown admin command \"" + command +
              "\" (known: metrics, metrics json, metrics prom, queries, "
              "history [n], cancel <id>, ping)"));
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      case FrameType::kPing: {
        if (!SendFrame(fd, FrameType::kPong, frame.payload).ok()) return;
        break;
      }
      case FrameType::kPrepare: {
        Result<WirePrepare> prepare = DecodePrepare(frame.payload);
        if (!prepare.ok()) {
          reply = EncodeError(prepare.status());
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        // PREPARE compiles (validating the SQL and, with the plan cache
        // on, warming it so the first EXECUTE is already a hit) but takes
        // no admission slot: it executes nothing.
        EnsureEngine(&session, &engine, &engine_catalog,
                     &engine_generation);
        Result<QueryEngine::PreparedInfo> info =
            engine->Prepare(prepare.value().sql);
        if (!info.ok()) {
          reply = EncodeError(info.status());
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        PreparedStatement stmt;
        stmt.sql = prepare.value().sql;
        stmt.param_types = info.value().param_types;
        Status registered =
            session.RegisterPrepared(prepare.value().name, std::move(stmt));
        if (!registered.ok()) {
          reply = EncodeError(registered);
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        WirePrepared prepared;
        prepared.param_types = info.value().param_types;
        prepared.columns = info.value().output_names;
        reply = EncodePrepared(prepared);
        if (!SendFrame(fd, FrameType::kPrepared, reply).ok()) return;
        break;
      }
      case FrameType::kExecute: {
        Result<WireExecute> execute = DecodeExecute(frame.payload);
        if (!execute.ok()) {
          reply = EncodeError(execute.status());
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        const PreparedStatement* stmt =
            session.FindPrepared(execute.value().name);
        if (stmt == nullptr) {
          reply = EncodeError(Status::NotFound(
              "no prepared statement named \"" + execute.value().name +
              "\""));
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        std::string query_id;
        Result<WireResult> result =
            RunQuery(&session, &engine, &engine_catalog, &engine_generation,
                     stmt->sql, &execute.value().params, &query_id);
        if (result.ok()) {
          reply = EncodeResult(result.value());
          if (!SendFrame(fd, FrameType::kResult, reply).ok()) return;
        } else {
          reply = EncodeError(result.status(), query_id);
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      case FrameType::kDeallocate: {
        const std::string name = Trim(frame.payload);
        if (session.DeallocatePrepared(name)) {
          if (!SendFrame(fd, FrameType::kInfo, "DEALLOCATE ok").ok()) return;
        } else {
          reply = EncodeError(Status::NotFound(
              "no prepared statement named \"" + name + "\""));
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      default: {
        reply = EncodeError(
            Status::InvalidArgument("unexpected frame type from client"));
        if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        break;
      }
    }
  }
}

std::vector<PromGauge> QueryServer::ServerGauges() const {
  std::vector<PromGauge> gauges;
  auto add = [&gauges](const char* name, int64_t value) {
    PromGauge gauge;
    gauge.name = name;
    gauge.value = value;
    gauges.push_back(std::move(gauge));
  };
  add("server.sessions_active", active_sessions());
  add("server.queries_running", admission_.running());
  add("server.queue_depth", admission_.queued());
  add("server.queue_peak", admission_.peak_queued());
  add("server.admitted_total", admission_.admitted());
  add("server.rejected_total", admission_.rejected());
  add("server.cancelled_total", admission_.cancelled());
  add("server.pool_threads", pool_.num_threads());
  add("server.pool_tasks_run", pool_.tasks_run());
  add("server.uptime_ms", (ObsNowNanos() - started_nanos_) / 1000000);
  add("server.query_store_size", static_cast<int64_t>(query_store_.size()));
  add("server.query_store_capacity",
      static_cast<int64_t>(query_store_.capacity()));
  add("server.query_store_recorded", query_store_.total_recorded());
  return gauges;
}

std::string QueryServer::MetricsText() const {
  std::string out;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    out = RenderMetrics(metrics_);
  }
  for (const PromGauge& gauge : ServerGauges()) {
    out += gauge.name + " " + std::to_string(gauge.value) + "\n";
  }
  return out;
}

std::string QueryServer::MetricsJsonText() const {
  std::string out = "{\"engine\":";
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    out += MetricsToJson(metrics_);
  }
  out += ",\"server\":{";
  const std::vector<PromGauge> gauges = ServerGauges();
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ",";
    AppendJsonString(gauges[i].name, &out);
    out += ":" + std::to_string(gauges[i].value);
  }
  out += "}}";
  return out;
}

std::string QueryServer::MetricsPromText() const {
  MetricsRegistry snapshot;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    snapshot.MergeFrom(metrics_);
  }
  return RenderPrometheus(snapshot, ServerGauges());
}

std::string QueryServer::QueriesJsonText() const {
  std::vector<std::shared_ptr<LiveQuery>> snapshot;
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    snapshot = live_;
  }
  const int64_t now = ObsNowNanos();
  std::string out = "{\"queries\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const LiveQuery& live = *snapshot[i];
    if (i > 0) out += ",";
    out += "{\"query_id\":";
    AppendJsonString(live.id, &out);
    out += ",\"session\":" + std::to_string(live.session_id);
    out += ",\"sql\":";
    AppendJsonString(live.sql, &out);
    out +=
        ",\"elapsed_ms\":" + std::to_string((now - live.start_nanos) / 1000000);
    const int phase = live.progress.phase.load(std::memory_order_relaxed);
    out += ",\"phase\":";
    AppendJsonString(phase < 0 ? "queued"
                               : QueryPhaseName(static_cast<QueryPhase>(phase)),
                     &out);
    out += ",\"rows\":" +
           std::to_string(live.progress.rows.load(std::memory_order_relaxed));
    out += "}";
  }
  out += "]}";
  return out;
}

std::string QueryServer::HistoryJsonText(size_t limit) const {
  return QueryHistoryJson(query_store_.Tail(limit),
                          query_store_.total_recorded(),
                          query_store_.capacity());
}

}  // namespace orq
