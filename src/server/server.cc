#include "server/server.h"

#include <algorithm>
#include <condition_variable>
#include <utility>
#include <vector>

#include "difftest/oracle.h"
#include "obs/stats.h"
#include "server/net.h"

namespace orq {

namespace {

/// Strips leading/trailing whitespace (admin command normalization).
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<Catalog> catalog,
                         ServerOptions options)
    : options_(std::move(options)),
      pool_(std::max(1, options_.worker_threads)),
      admission_([&] {
        AdmissionOptions admission = options_.admission;
        admission.max_concurrent =
            std::max(1, std::min(admission.max_concurrent,
                                 std::max(1, options_.worker_threads)));
        return admission;
      }()),
      catalog_(std::move(catalog)) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  ORQ_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(options_.host, options_.port));
  ORQ_ASSIGN_OR_RETURN(port_, BoundTcpPort(listen_fd_));
  started_ = true;
  started_nanos_ = ObsNowNanos();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  if (!started_ || stopping_.exchange(true)) {
    // Still join the accept thread if a second caller raced the first.
    if (accept_thread_.joinable()) accept_thread_.join();
    ReapConnections(/*all=*/true);
    return;
  }
  admission_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(tokens_mu_);
    for (CancelToken* token : tokens_) token->RequestCancel();
  }
  // Waking the listener: shutdown() unblocks poll/accept on some platforms;
  // the accept loop also polls stopping_ every 100ms, which bounds
  // shutdown latency regardless.
  if (listen_fd_ >= 0) ShutdownFd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every connection out of its blocking recv, then join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->fd >= 0) ShutdownFd(conn->fd);
    }
  }
  ReapConnections(/*all=*/true);
}

std::shared_ptr<Catalog> QueryServer::CatalogSnapshot() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_;
}

void QueryServer::ReplaceCatalog(std::shared_ptr<Catalog> catalog) {
  // Every catalog instance is born with a process-unique version, but a
  // caller may re-install a snapshot it mutated offline — bump so any plan
  // cached against this instance's previous contents is invalidated.
  if (catalog != nullptr) catalog->BumpVersion();
  std::lock_guard<std::mutex> lock(catalog_mu_);
  catalog_ = std::move(catalog);
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<int> accepted = AcceptWithTimeout(listen_fd_, /*poll_ms=*/100);
    ReapConnections(/*all=*/false);
    if (!accepted.ok()) break;  // listener closed or fatal socket error
    const int fd = accepted.value();
    if (fd < 0) continue;
    if (stopping_.load(std::memory_order_relaxed)) {
      CloseFd(fd);
      break;
    }
    const int session_id = next_session_id_++;
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      metrics_.Add(MetricCounter::kServerSessionsOpened, 1);
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw, fd, session_id] {
      active_sessions_.fetch_add(1, std::memory_order_relaxed);
      ServeConnection(fd, session_id);
      active_sessions_.fetch_sub(1, std::memory_order_relaxed);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void QueryServer::ReapConnections(bool all) {
  // Collect joinable handles under the lock, join outside it (a connection
  // thread may be blocked in a long recv when all=true at Stop — it was
  // already woken via ShutdownFd, but the join can still take a moment).
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) CloseFd(conn->fd);
  }
}

void QueryServer::RegisterToken(CancelToken* token) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  tokens_.insert(token);
}

void QueryServer::UnregisterToken(CancelToken* token) {
  std::lock_guard<std::mutex> lock(tokens_mu_);
  tokens_.erase(token);
}

void QueryServer::EnsureEngine(Session* session,
                               std::unique_ptr<QueryEngine>* engine,
                               std::shared_ptr<Catalog>* engine_catalog,
                               int64_t* engine_generation) {
  std::shared_ptr<Catalog> snapshot = CatalogSnapshot();
  if (*engine == nullptr || *engine_catalog != snapshot ||
      *engine_generation != session->options_generation()) {
    *engine = std::make_unique<QueryEngine>(snapshot.get(),
                                            session->engine_options());
    *engine_catalog = snapshot;
    *engine_generation = session->options_generation();
  }
}

Result<WireResult> QueryServer::RunQuery(
    Session* session, std::unique_ptr<QueryEngine>* engine,
    std::shared_ptr<Catalog>* engine_catalog, int64_t* engine_generation,
    const std::string& sql, const std::vector<Value>* params) {
  const int64_t start_nanos = ObsNowNanos();

  CancelToken token;
  if (session->timeout_ms() > 0) token.SetTimeoutMs(session->timeout_ms());
  RegisterToken(&token);
  // A server already stopping cancels this query before it runs anything.
  if (stopping_.load(std::memory_order_relaxed)) token.RequestCancel();

  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.Observe(MetricHistogram::kAdmissionQueueDepth,
                     admission_.queued());
  }

  Status admitted = admission_.Admit(&token);
  if (!admitted.ok()) {
    UnregisterToken(&token);
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (admitted.code() == StatusCode::kUnavailable) {
      metrics_.Add(MetricCounter::kServerQueriesRejected, 1);
    } else {
      metrics_.Add(MetricCounter::kServerQueriesTimedOut, 1);
    }
    return admitted;
  }

  // Pin the snapshot current at admission; rebuild the cached engine when
  // the session's options or the server's catalog moved underneath it.
  EnsureEngine(session, engine, engine_catalog, engine_generation);

  // Run on the server's work-stealing pool; this connection thread blocks
  // until its task finishes. The engine may layer its own exchange workers
  // on top — those live in the engine's pool, not this one, so a pool task
  // never waits on a second pool task for capacity.
  MetricsRegistry query_metrics;
  ExecControl control;
  control.cancel = &token;
  control.metrics = &query_metrics;
  QueryEngine* engine_ptr = engine->get();

  Result<QueryResult> result = Status::Internal("query task never ran");
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  pool_.Submit([&] {
    Result<QueryResult> r =
        params != nullptr ? engine_ptr->ExecuteParams(sql, *params, control)
                          : engine_ptr->Execute(sql, control);
    std::lock_guard<std::mutex> lock(done_mu);
    result = std::move(r);
    done = true;
    done_cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done; });
  }
  admission_.Release();
  UnregisterToken(&token);
  session->CountQuery();

  const int64_t latency_micros = (ObsNowNanos() - start_nanos) / 1000;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_.MergeFrom(query_metrics);
    metrics_.Observe(MetricHistogram::kQueryLatencyMicros, latency_micros);
    if (result.ok()) {
      metrics_.Add(MetricCounter::kServerQueriesOk, 1);
    } else if (result.status().code() == StatusCode::kCancelled ||
               result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_.Add(MetricCounter::kServerQueriesTimedOut, 1);
    } else {
      metrics_.Add(MetricCounter::kServerQueriesError, 1);
    }
  }
  if (!result.ok()) return result.status();

  WireResult wire;
  wire.columns = result.value().column_names;
  wire.rows.reserve(result.value().rows.size());
  for (const Row& row : result.value().rows) {
    wire.rows.push_back(CanonicalRow(row));
  }
  wire.rows_produced = result.value().rows_produced;
  return wire;
}

void QueryServer::ServeConnection(int fd, int session_id) {
  Session session(session_id, options_.engine, options_.default_timeout_ms);
  std::unique_ptr<QueryEngine> engine;
  std::shared_ptr<Catalog> engine_catalog;
  int64_t engine_generation = -1;

  FrameDecoder decoder;
  std::string reply;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Frame frame;
    Result<bool> got = RecvFrame(fd, &decoder, &frame);
    if (!got.ok() || !got.value()) break;  // protocol error or clean EOF
    reply.clear();
    switch (frame.type) {
      case FrameType::kQuery: {
        Result<WireResult> result =
            RunQuery(&session, &engine, &engine_catalog, &engine_generation,
                     frame.payload);
        if (result.ok()) {
          reply = EncodeResult(result.value());
          if (!SendFrame(fd, FrameType::kResult, reply).ok()) return;
        } else {
          reply = EncodeError(result.status());
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      case FrameType::kSet: {
        Status applied = session.ApplySet(frame.payload);
        if (applied.ok()) {
          if (!SendFrame(fd, FrameType::kInfo, "SET ok").ok()) return;
        } else {
          reply = EncodeError(applied);
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      case FrameType::kAdmin: {
        const std::string command = Trim(frame.payload);
        if (command == "metrics") {
          if (!SendFrame(fd, FrameType::kInfo, MetricsText()).ok()) return;
        } else if (command == "ping") {
          if (!SendFrame(fd, FrameType::kPong, "").ok()) return;
        } else {
          reply = EncodeError(Status::InvalidArgument(
              "unknown admin command \"" + command +
              "\" (known: metrics, ping)"));
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      case FrameType::kPing: {
        if (!SendFrame(fd, FrameType::kPong, frame.payload).ok()) return;
        break;
      }
      case FrameType::kPrepare: {
        Result<WirePrepare> prepare = DecodePrepare(frame.payload);
        if (!prepare.ok()) {
          reply = EncodeError(prepare.status());
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        // PREPARE compiles (validating the SQL and, with the plan cache
        // on, warming it so the first EXECUTE is already a hit) but takes
        // no admission slot: it executes nothing.
        EnsureEngine(&session, &engine, &engine_catalog,
                     &engine_generation);
        Result<QueryEngine::PreparedInfo> info =
            engine->Prepare(prepare.value().sql);
        if (!info.ok()) {
          reply = EncodeError(info.status());
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        PreparedStatement stmt;
        stmt.sql = prepare.value().sql;
        stmt.param_types = info.value().param_types;
        Status registered =
            session.RegisterPrepared(prepare.value().name, std::move(stmt));
        if (!registered.ok()) {
          reply = EncodeError(registered);
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        WirePrepared prepared;
        prepared.param_types = info.value().param_types;
        prepared.columns = info.value().output_names;
        reply = EncodePrepared(prepared);
        if (!SendFrame(fd, FrameType::kPrepared, reply).ok()) return;
        break;
      }
      case FrameType::kExecute: {
        Result<WireExecute> execute = DecodeExecute(frame.payload);
        if (!execute.ok()) {
          reply = EncodeError(execute.status());
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        const PreparedStatement* stmt =
            session.FindPrepared(execute.value().name);
        if (stmt == nullptr) {
          reply = EncodeError(Status::NotFound(
              "no prepared statement named \"" + execute.value().name +
              "\""));
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
          break;
        }
        Result<WireResult> result =
            RunQuery(&session, &engine, &engine_catalog, &engine_generation,
                     stmt->sql, &execute.value().params);
        if (result.ok()) {
          reply = EncodeResult(result.value());
          if (!SendFrame(fd, FrameType::kResult, reply).ok()) return;
        } else {
          reply = EncodeError(result.status());
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      case FrameType::kDeallocate: {
        const std::string name = Trim(frame.payload);
        if (session.DeallocatePrepared(name)) {
          if (!SendFrame(fd, FrameType::kInfo, "DEALLOCATE ok").ok()) return;
        } else {
          reply = EncodeError(Status::NotFound(
              "no prepared statement named \"" + name + "\""));
          if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        }
        break;
      }
      default: {
        reply = EncodeError(
            Status::InvalidArgument("unexpected frame type from client"));
        if (!SendFrame(fd, FrameType::kError, reply).ok()) return;
        break;
      }
    }
  }
}

std::string QueryServer::MetricsText() const {
  std::string out;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    out = RenderMetrics(metrics_);
  }
  out += "server.sessions_active " + std::to_string(active_sessions()) + "\n";
  out += "server.queries_running " + std::to_string(admission_.running()) +
         "\n";
  out += "server.queue_depth " + std::to_string(admission_.queued()) + "\n";
  out += "server.queue_peak " + std::to_string(admission_.peak_queued()) +
         "\n";
  out += "server.admitted_total " + std::to_string(admission_.admitted()) +
         "\n";
  out += "server.rejected_total " + std::to_string(admission_.rejected()) +
         "\n";
  out += "server.cancelled_total " +
         std::to_string(admission_.cancelled()) + "\n";
  out += "server.pool_threads " + std::to_string(pool_.num_threads()) + "\n";
  out += "server.pool_tasks_run " + std::to_string(pool_.tasks_run()) + "\n";
  out += "server.uptime_ms " +
         std::to_string((ObsNowNanos() - started_nanos_) / 1000000) + "\n";
  return out;
}

}  // namespace orq
