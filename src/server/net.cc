#include "server/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace orq {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::RuntimeError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeAddr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

Result<int> ListenTcp(const std::string& host, int port, int backlog) {
  ORQ_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = ErrnoStatus("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = ErrnoStatus("listen");
    ::close(fd);
    return status;
  }
  return fd;
}

Result<int> BoundTcpPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<int> AcceptWithTimeout(int listen_fd, int poll_ms) {
  pollfd pfd{};
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, poll_ms);
  if (ready < 0) {
    if (errno == EINTR) return -1;
    return ErrnoStatus("poll");
  }
  if (ready == 0) return -1;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return -1;
    return ErrnoStatus("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<int> ConnectTcp(const std::string& host, int port) {
  ORQ_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        ErrnoStatus("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SendFrame(int fd, FrameType type, const std::string& payload) {
  std::string bytes;
  bytes.reserve(payload.size() + 5);
  AppendFrame(type, payload, &bytes);
  return SendAll(fd, bytes.data(), bytes.size());
}

Result<bool> RecvFrame(int fd, FrameDecoder* decoder, Frame* out) {
  while (true) {
    ORQ_ASSIGN_OR_RETURN(bool complete, decoder->Next(out));
    if (complete) return true;
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    if (n == 0) {
      if (decoder->pending_bytes() > 0) {
        return Status::InvalidArgument(
            "wire: connection closed mid-frame (" +
            std::to_string(decoder->pending_bytes()) + " bytes pending)");
      }
      return false;  // clean EOF between frames
    }
    decoder->Feed(chunk, static_cast<size_t>(n));
  }
}

Result<int> RecvSome(int fd, char* buf, size_t cap, int poll_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, poll_ms);
  if (ready < 0) {
    if (errno == EINTR) return -1;
    return ErrnoStatus("poll");
  }
  if (ready == 0) return -1;
  while (true) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("recv");
    }
    return static_cast<int>(n);
  }
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path) {
  ORQ_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  const std::string request = "GET " + path +
                              " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  Status sent = SendAll(fd, request.data(), request.size());
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  std::string response;
  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("recv");
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t line_end = response.find("\r\n");
  const size_t header_end = response.find("\r\n\r\n");
  if (line_end == std::string::npos || header_end == std::string::npos) {
    return Status::RuntimeError("http: malformed response");
  }
  const std::string status_line = response.substr(0, line_end);
  if (status_line.find(" 200 ") == std::string::npos) {
    return Status::RuntimeError("http: " + status_line);
  }
  return response.substr(header_end + 4);
}

void ShutdownFd(int fd) { ::shutdown(fd, SHUT_RDWR); }

void CloseFd(int fd) { ::close(fd); }

}  // namespace orq
