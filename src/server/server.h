#ifndef ORQ_SERVER_SERVER_H_
#define ORQ_SERVER_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "exec/task_pool.h"
#include "obs/prom.h"
#include "obs/query_store.h"
#include "server/admission.h"
#include "server/session.h"
#include "server/wire.h"

namespace orq {

/// Daemon configuration (orq_serve flags map 1:1 onto this).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the bound port is available from port().
  int port = 0;
  /// Worker threads executing admitted queries (the work-stealing
  /// TaskPool). Admission's max_concurrent is clamped to this, so a
  /// query never waits inside the pool behind another queued query.
  int worker_threads = 4;
  AdmissionOptions admission;
  /// Default per-query deadline for new sessions; 0 = unbounded. Sessions
  /// override it with SET timeout_ms.
  int64_t default_timeout_ms = 0;
  /// Default slow-query threshold for new sessions (SET slow_query_ms
  /// overrides per session); 0 = slow-query capture off.
  int64_t default_slow_query_ms = 0;
  /// Completed-query ring capacity (`\history` depth).
  size_t query_store_capacity = 256;
  /// Plain-HTTP `GET /metrics` listener (Prometheus text exposition).
  /// -1 = disabled; 0 binds an ephemeral port (see metrics_port()).
  int metrics_port = -1;
  /// Base engine configuration new sessions start from.
  EngineOptions engine;
};

/// The network query service: accepts wire-protocol connections, one
/// session per connection, and executes admitted queries on a shared
/// work-stealing TaskPool against an immutable catalog snapshot.
///
/// Concurrency model:
///   * one accept thread + one thread per live connection (sessions are
///     long-lived; the bench scale is tens of sessions, not thousands);
///   * queries pass the AdmissionController, then run as TaskPool tasks —
///     the connection thread blocks until its query finishes;
///   * each query pins the catalog snapshot current at submit time
///     (shared_ptr), so ReplaceCatalog never mutates data under a running
///     query — readers drain off the old snapshot and it is freed;
///   * every in-flight query carries a CancelToken (session deadline);
///     Stop() cancels them all, so shutdown is bounded by one batch of
///     operator work, not by the longest query.
class QueryServer {
 public:
  QueryServer(std::shared_ptr<Catalog> catalog, ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();
  /// Graceful stop: reject new work, cancel in-flight queries, wake and
  /// join every connection thread. Idempotent.
  void Stop();

  /// The port actually bound (after Start).
  int port() const { return port_; }
  /// The bound HTTP metrics port (after Start; -1 when disabled).
  int metrics_port() const { return metrics_port_; }

  /// Current catalog snapshot / snapshot swap (loader tools; tests).
  std::shared_ptr<Catalog> CatalogSnapshot() const;
  void ReplaceCatalog(std::shared_ptr<Catalog> catalog);

  /// The \metrics admin body: engine+server counters accumulated across
  /// all finished queries, plus live gauges (sessions, queue depth).
  std::string MetricsText() const;
  /// `\metrics json`: {"engine":<MetricsToJson>,"server":{gauges}}.
  std::string MetricsJsonText() const;
  /// `\metrics prom` and the HTTP /metrics body: Prometheus text format.
  std::string MetricsPromText() const;
  /// `\queries`: every in-flight query (queued or running) with its id,
  /// session, elapsed wall time, current phase, and rows produced so far.
  std::string QueriesJsonText() const;
  /// `\history n`: the query store's newest `limit` records as JSON.
  std::string HistoryJsonText(size_t limit) const;
  /// `\cancel <id>`: fires the query's cancel token. NotFound when no
  /// in-flight query carries `id` (it may have already finished).
  Status CancelQuery(const std::string& id);

  int active_sessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }

 private:
  /// One in-flight query, registered before admission so `\queries` sees
  /// queued work and `\cancel` can reject it out of the admission queue.
  /// shared_ptr: `\cancel` runs on another connection's thread and must
  /// hold the token alive across its RequestCancel call even if the query
  /// finishes concurrently.
  struct LiveQuery {
    std::string id;
    int session_id = 0;
    std::string sql;
    int64_t start_nanos = 0;
    ProgressSink progress;
    CancelToken token;
  };

  void AcceptLoop();
  void MetricsLoop();
  void ServeConnection(int fd, int session_id);
  /// Admission + snapshot pin + engine cache refresh + pooled execution.
  /// `engine`/`engine_catalog`/`engine_generation` are the connection's
  /// cached engine state (rebuilt when SET or a snapshot swap invalidated
  /// it). Non-null `params` runs the statement as a parameterized
  /// execution (the EXECUTE path). The minted query id is written to
  /// `query_id_out` before execution so the caller can stamp error frames.
  Result<WireResult> RunQuery(Session* session,
                              std::unique_ptr<QueryEngine>* engine,
                              std::shared_ptr<Catalog>* engine_catalog,
                              int64_t* engine_generation,
                              const std::string& sql,
                              const std::vector<Value>* params,
                              std::string* query_id_out);

  /// Rebuilds the connection's cached engine when the session options or
  /// the catalog snapshot moved underneath it (shared by the query path
  /// and PREPARE, which compiles without taking an admission slot).
  void EnsureEngine(Session* session, std::unique_ptr<QueryEngine>* engine,
                    std::shared_ptr<Catalog>* engine_catalog,
                    int64_t* engine_generation);

  void RegisterToken(CancelToken* token);
  void UnregisterToken(CancelToken* token);

  /// Unregisters the token and drops the live-registry entry (the record
  /// stays alive through `live`'s shared_ptr until every holder is done).
  void FinishLive(const std::shared_ptr<LiveQuery>& live);
  /// Point-in-time server gauges shared by the text/JSON/Prometheus
  /// metrics renderings.
  std::vector<PromGauge> ServerGauges() const;
  /// Records a finished/rejected query into the store (slow-query capture
  /// happens here, against `session`'s threshold).
  void RecordQuery(QueryRecord record, int64_t slow_query_ms);

  /// Join connection threads that have finished serving (accept loop
  /// housekeeping), or all of them (`all`, at Stop).
  void ReapConnections(bool all);

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  ServerOptions options_;
  TaskPool pool_;
  AdmissionController admission_;

  mutable std::mutex catalog_mu_;
  std::shared_ptr<Catalog> catalog_;

  mutable std::mutex metrics_mu_;
  MetricsRegistry metrics_;
  int64_t started_nanos_ = 0;

  std::mutex tokens_mu_;
  std::unordered_set<CancelToken*> tokens_;

  mutable std::mutex live_mu_;
  std::vector<std::shared_ptr<LiveQuery>> live_;

  QueryStore query_store_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> active_sessions_{0};
  int next_session_id_ = 1;  // accept thread only
  int listen_fd_ = -1;
  int port_ = 0;
  int metrics_listen_fd_ = -1;
  int metrics_port_ = -1;
  std::thread accept_thread_;
  std::thread metrics_thread_;
  bool started_ = false;
};

}  // namespace orq

#endif  // ORQ_SERVER_SERVER_H_
