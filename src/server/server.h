#ifndef ORQ_SERVER_SERVER_H_
#define ORQ_SERVER_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "exec/task_pool.h"
#include "server/admission.h"
#include "server/session.h"
#include "server/wire.h"

namespace orq {

/// Daemon configuration (orq_serve flags map 1:1 onto this).
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the bound port is available from port().
  int port = 0;
  /// Worker threads executing admitted queries (the work-stealing
  /// TaskPool). Admission's max_concurrent is clamped to this, so a
  /// query never waits inside the pool behind another queued query.
  int worker_threads = 4;
  AdmissionOptions admission;
  /// Default per-query deadline for new sessions; 0 = unbounded. Sessions
  /// override it with SET timeout_ms.
  int64_t default_timeout_ms = 0;
  /// Base engine configuration new sessions start from.
  EngineOptions engine;
};

/// The network query service: accepts wire-protocol connections, one
/// session per connection, and executes admitted queries on a shared
/// work-stealing TaskPool against an immutable catalog snapshot.
///
/// Concurrency model:
///   * one accept thread + one thread per live connection (sessions are
///     long-lived; the bench scale is tens of sessions, not thousands);
///   * queries pass the AdmissionController, then run as TaskPool tasks —
///     the connection thread blocks until its query finishes;
///   * each query pins the catalog snapshot current at submit time
///     (shared_ptr), so ReplaceCatalog never mutates data under a running
///     query — readers drain off the old snapshot and it is freed;
///   * every in-flight query carries a CancelToken (session deadline);
///     Stop() cancels them all, so shutdown is bounded by one batch of
///     operator work, not by the longest query.
class QueryServer {
 public:
  QueryServer(std::shared_ptr<Catalog> catalog, ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();
  /// Graceful stop: reject new work, cancel in-flight queries, wake and
  /// join every connection thread. Idempotent.
  void Stop();

  /// The port actually bound (after Start).
  int port() const { return port_; }

  /// Current catalog snapshot / snapshot swap (loader tools; tests).
  std::shared_ptr<Catalog> CatalogSnapshot() const;
  void ReplaceCatalog(std::shared_ptr<Catalog> catalog);

  /// The \metrics admin body: engine+server counters accumulated across
  /// all finished queries, plus live gauges (sessions, queue depth).
  std::string MetricsText() const;

  int active_sessions() const {
    return active_sessions_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd, int session_id);
  /// Admission + snapshot pin + engine cache refresh + pooled execution.
  /// `engine`/`engine_catalog`/`engine_generation` are the connection's
  /// cached engine state (rebuilt when SET or a snapshot swap invalidated
  /// it). Non-null `params` runs the statement as a parameterized
  /// execution (the EXECUTE path).
  Result<WireResult> RunQuery(Session* session,
                              std::unique_ptr<QueryEngine>* engine,
                              std::shared_ptr<Catalog>* engine_catalog,
                              int64_t* engine_generation,
                              const std::string& sql,
                              const std::vector<Value>* params = nullptr);

  /// Rebuilds the connection's cached engine when the session options or
  /// the catalog snapshot moved underneath it (shared by the query path
  /// and PREPARE, which compiles without taking an admission slot).
  void EnsureEngine(Session* session, std::unique_ptr<QueryEngine>* engine,
                    std::shared_ptr<Catalog>* engine_catalog,
                    int64_t* engine_generation);

  void RegisterToken(CancelToken* token);
  void UnregisterToken(CancelToken* token);

  /// Join connection threads that have finished serving (accept loop
  /// housekeeping), or all of them (`all`, at Stop).
  void ReapConnections(bool all);

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  ServerOptions options_;
  TaskPool pool_;
  AdmissionController admission_;

  mutable std::mutex catalog_mu_;
  std::shared_ptr<Catalog> catalog_;

  mutable std::mutex metrics_mu_;
  MetricsRegistry metrics_;
  int64_t started_nanos_ = 0;

  std::mutex tokens_mu_;
  std::unordered_set<CancelToken*> tokens_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  std::atomic<bool> stopping_{false};
  std::atomic<int> active_sessions_{0};
  int next_session_id_ = 1;  // accept thread only
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  bool started_ = false;
};

}  // namespace orq

#endif  // ORQ_SERVER_SERVER_H_
