#ifndef ORQ_SERVER_WIRE_H_
#define ORQ_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace orq {

/// The orq wire protocol: length-prefixed frames over a byte stream.
///
///   frame := u32 length (little-endian)   -- bytes that follow, >= 1
///            u8  type                     -- FrameType
///            payload (length - 1 bytes)
///
/// The codec below is pure (bytes in, frames out) so the hostile-input
/// tests need no sockets; src/server/net.cc moves the bytes. Payload
/// encodings use the same little-endian primitives: strings are u32
/// length + bytes, integers are fixed-width little-endian.
inline constexpr uint32_t kWireMaxFrameBytes = 16u << 20;  // 16 MiB

enum class FrameType : uint8_t {
  // Client -> server.
  kQuery = 'Q',       // payload: SQL text
  kSet = 'S',         // payload: "name value" session option
  kAdmin = 'A',       // payload: admin command ("metrics", "ping")
  kPing = 'p',        // payload empty
  kPrepare = 'r',     // payload: EncodePrepare (name + SQL with `?` params)
  kExecute = 'x',     // payload: EncodeExecute (name + parameter values)
  kDeallocate = 'D',  // payload: statement name (raw text)
  // Server -> client.
  kResult = 'R',    // payload: EncodeResult
  kError = 'E',     // payload: EncodeError
  kInfo = 'I',      // payload: human-readable text (SET ack, \metrics body)
  kPong = 'P',      // payload empty
  kPrepared = 'd',  // payload: EncodePrepared (PREPARE's metadata reply)
};

bool IsValidFrameType(uint8_t type);

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Serializes one frame onto `out` (appends; callers batch frames freely).
void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out);

/// Incremental frame parser. Feed arbitrary byte chunks; Next pops one
/// complete frame at a time. A malformed stream (oversized declared
/// length, zero-length frame, unknown type byte) is a protocol error: Next
/// returns InvalidArgument and the connection should be dropped — framing
/// can not be resynchronized once the length prefix is untrusted.
class FrameDecoder {
 public:
  void Feed(const char* data, size_t size) { buffer_.append(data, size); }
  void Feed(const std::string& bytes) { buffer_.append(bytes); }

  /// True with `out` filled when a complete frame was buffered; false when
  /// more bytes are needed; InvalidArgument on a malformed stream.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed (truncated-frame tests).
  size_t pending_bytes() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  size_t pos_ = 0;
};

/// A query result as it crosses the wire. Rows travel in the canonical
/// text form (difftest's CanonicalRow): "|"-separated values, NULL as
/// U+2205 — one stable rendering shared with the differential oracle, so
/// "server result == serial Execute result" is a byte comparison.
struct WireResult {
  std::vector<std::string> columns;
  std::vector<std::string> rows;
  int64_t rows_produced = 0;
  /// Server-minted stable query id ("s<session>q<seq>"); empty from
  /// servers that do not mint ids.
  std::string query_id;
};

std::string EncodeResult(const WireResult& result);
Result<WireResult> DecodeResult(const std::string& payload);

/// Error frames carry the StatusCode (as u8), the query id of the failed
/// query (possibly empty), and the message — the id travels as its own
/// field so error text stays byte-identical to the engine's and clients
/// can still cross-reference `\history`.
std::string EncodeError(const Status& status, const std::string& query_id = "");
Status DecodeError(const std::string& payload,
                   std::string* query_id = nullptr);

/// PREPARE: registers `sql` (which may contain `?` positional parameters)
/// under `name` in the session. The server replies kPrepared.
struct WirePrepare {
  std::string name;
  std::string sql;
};
std::string EncodePrepare(const WirePrepare& prepare);
Result<WirePrepare> DecodePrepare(const std::string& payload);

/// PREPARE's metadata reply: what EXECUTE must send and the result shape.
struct WirePrepared {
  std::vector<DataType> param_types;
  std::vector<std::string> columns;
};
std::string EncodePrepared(const WirePrepared& prepared);
Result<WirePrepared> DecodePrepared(const std::string& payload);

/// EXECUTE: runs a prepared statement with positional parameter values.
/// Values travel typed (type byte + null flag + payload), not as SQL text,
/// so string parameters need no escaping and doubles survive bit-exactly.
struct WireExecute {
  std::string name;
  std::vector<Value> params;
};
std::string EncodeExecute(const WireExecute& execute);
Result<WireExecute> DecodeExecute(const std::string& payload);

}  // namespace orq

#endif  // ORQ_SERVER_WIRE_H_
