#include "server/admission.h"

#include <chrono>

namespace orq {

Status AdmissionController::Admit(const CancelToken* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    ++rejected_;
    return Status::Unavailable("server is shutting down");
  }
  if (running_ < options_.max_concurrent) {
    ++running_;
    ++admitted_;
    return Status::OK();
  }
  if (queued_ >= options_.max_queued) {
    ++rejected_;
    return Status::Unavailable(
        "admission queue full (" + std::to_string(queued_) + " queued, " +
        std::to_string(running_) + " running)");
  }
  ++queued_;
  if (queued_ > peak_queued_) peak_queued_ = queued_;
  // Wait in 10ms slices so a cancel/deadline that fires while queued is
  // observed promptly — tokens have no wakeup channel into this queue.
  while (true) {
    if (shutdown_) {
      --queued_;
      ++rejected_;
      return Status::Unavailable("server is shutting down");
    }
    if (running_ < options_.max_concurrent) {
      --queued_;
      ++running_;
      ++admitted_;
      return Status::OK();
    }
    if (cancel != nullptr) {
      Status cancelled = cancel->Check();
      if (!cancelled.ok()) {
        --queued_;
        return cancelled;
      }
    }
    slot_free_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  slot_free_.notify_one();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  slot_free_.notify_all();
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

int64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

int64_t AdmissionController::peak_queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_queued_;
}

}  // namespace orq
