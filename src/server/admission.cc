#include "server/admission.h"

#include <algorithm>
#include <chrono>

namespace orq {

Status AdmissionController::Admit(const CancelToken* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    ++rejected_;
    return Status::Unavailable("server is shutting down");
  }
  // Fast path only when nobody queues: admitting a fresh arrival past a
  // non-empty queue would let late arrivals overtake waiting queries.
  if (queue_.empty() && running_ < options_.max_concurrent) {
    ++running_;
    ++admitted_;
    return Status::OK();
  }
  if (queue_.size() >= static_cast<size_t>(options_.max_queued)) {
    ++rejected_;
    return Status::Unavailable(
        "admission queue full (" + std::to_string(queue_.size()) +
        " queued, " + std::to_string(running_) + " running)");
  }
  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  if (static_cast<int64_t>(queue_.size()) > peak_queued_) {
    peak_queued_ = static_cast<int64_t>(queue_.size());
  }
  // Wait in 10ms slices so a cancel/deadline that fires while queued is
  // observed promptly — tokens have no wakeup channel into this queue.
  while (true) {
    if (shutdown_) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
      ++rejected_;
      return Status::Unavailable("server is shutting down");
    }
    // Strict FIFO handoff: only the head ticket may claim a freed slot,
    // regardless of which waiter the condition variable woke first.
    if (!queue_.empty() && queue_.front() == ticket &&
        running_ < options_.max_concurrent) {
      queue_.pop_front();
      ++running_;
      ++admitted_;
      // The next slot (if any is free) belongs to the new head.
      slot_free_.notify_all();
      return Status::OK();
    }
    if (cancel != nullptr) {
      Status cancelled = cancel->Check();
      if (!cancelled.ok()) {
        queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
        ++cancelled_;
        // Leaving mid-queue may promote the waiter behind us to head.
        slot_free_.notify_all();
        return cancelled;
      }
    }
    slot_free_.wait_for(lock, std::chrono::milliseconds(10));
  }
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  // notify_all, not notify_one: only the head ticket can take the slot, and
  // a single wakeup might land on a waiter further back (which would just
  // re-sleep while the head keeps waiting out its 10ms slice).
  slot_free_.notify_all();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  slot_free_.notify_all();
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

int64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

int64_t AdmissionController::cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_;
}

int64_t AdmissionController::peak_queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_queued_;
}

}  // namespace orq
