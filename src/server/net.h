#ifndef ORQ_SERVER_NET_H_
#define ORQ_SERVER_NET_H_

#include <string>

#include "common/result.h"
#include "server/wire.h"

namespace orq {

/// Thin POSIX socket layer under the wire protocol. All functions return
/// Status/Result instead of errno; fds are plain ints owned by the caller
/// (the server and client wrap them in RAII at their level).

/// Binds and listens on host:port (port 0 picks an ephemeral port).
/// Returns the listening fd.
Result<int> ListenTcp(const std::string& host, int port, int backlog = 64);

/// The port a listening fd actually bound (resolves port 0).
Result<int> BoundTcpPort(int listen_fd);

/// Accepts one connection, polling so the accept loop can observe a stop
/// flag: returns the connection fd, or -1 when `poll_ms` elapsed with no
/// pending connection.
Result<int> AcceptWithTimeout(int listen_fd, int poll_ms);

/// Connects to host:port; returns the connected fd.
Result<int> ConnectTcp(const std::string& host, int port);

/// Writes the whole buffer (retrying short writes / EINTR).
Status SendAll(int fd, const char* data, size_t size);

/// Encodes and sends one frame.
Status SendFrame(int fd, FrameType type, const std::string& payload);

/// Reads from `fd` into `decoder` until one complete frame is available.
/// True with `out` filled; false on clean EOF at a frame boundary;
/// an error Status on mid-frame EOF, socket errors, or protocol errors.
Result<bool> RecvFrame(int fd, FrameDecoder* decoder, Frame* out);

/// Reads up to `cap` bytes with a poll timeout. Returns the byte count,
/// 0 on EOF, or -1 when `poll_ms` elapsed with nothing readable (the
/// HTTP metrics listener's bounded request read).
Result<int> RecvSome(int fd, char* buf, size_t cap, int poll_ms);

/// Minimal HTTP/1.0 GET for the metrics endpoint: connects, sends the
/// request, reads to EOF, and returns the response body. Non-2xx status
/// lines come back as RuntimeError carrying the status line.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path);

/// shutdown(2) both directions — wakes a peer thread blocked in recv on
/// the same fd (used to interrupt connection threads at server stop).
void ShutdownFd(int fd);
void CloseFd(int fd);

}  // namespace orq

#endif  // ORQ_SERVER_NET_H_
