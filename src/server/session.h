#ifndef ORQ_SERVER_SESSION_H_
#define ORQ_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace orq {

/// A session-scoped prepared statement: the SQL text (with `?` positional
/// parameters) plus the parameter types inferred at PREPARE time. The
/// compiled plan itself lives in the engine's plan cache, keyed by the SQL
/// text — EXECUTE re-submits the text and takes the level-1 hit.
struct PreparedStatement {
  std::string sql;
  std::vector<DataType> param_types;
};

/// Per-connection session state: an engine configuration the client edits
/// through SET frames, plus the per-query deadline. One session serves one
/// connection thread, so Session itself needs no locking; the engine built
/// from it is rebuilt whenever the options change or the catalog snapshot
/// the session last ran against was swapped out.
class Session {
 public:
  Session(int id, EngineOptions base_options, int64_t default_timeout_ms,
          int64_t default_slow_query_ms = 0)
      : id_(id),
        options_(std::move(base_options)),
        timeout_ms_(default_timeout_ms),
        slow_query_ms_(default_slow_query_ms) {}

  int id() const { return id_; }
  const EngineOptions& engine_options() const { return options_; }
  int64_t timeout_ms() const { return timeout_ms_; }
  /// Slow-query threshold: completed queries at or above this wall time get
  /// their full EXPLAIN ANALYZE text captured in the query store (0 = off).
  int64_t slow_query_ms() const { return slow_query_ms_; }

  /// Mints the next stable query id for this session: "s<id>q<seq>".
  /// Session is single-threaded (one connection thread), so a plain
  /// counter suffices; ids are unique server-wide because session ids are.
  std::string NextQueryId() {
    return "s" + std::to_string(id_) + "q" + std::to_string(++next_query_seq_);
  }

  /// Generation counter bumped by every successful SET, so the connection
  /// loop knows to rebuild its cached engine.
  int64_t options_generation() const { return options_generation_; }

  int64_t queries_run() const { return queries_run_; }
  void CountQuery() { ++queries_run_; }

  /// Applies one SET command ("name value" or "name=value"). Knobs:
  ///   threads N      -- morsel-parallel worker count (0 = serial)
  ///   exec row|batch|columnar -- execution mode (columnar = SoA batches)
  ///   batch on|off   -- batch-at-a-time vs row-at-a-time execution
  ///   batch_size N   -- rows per batch (1..65536)
  ///   morsel_rows N  -- rows per parallel-scan morsel claim
  ///   timeout_ms N   -- per-query deadline (0 disables)
  ///   plan_cache on|off -- fingerprint-keyed plan cache + parameterization
  ///   slow_query_ms N -- slow-query log threshold (0 disables)
  Status ApplySet(const std::string& command);

  /// Registers (or replaces) a prepared statement. Bounded per session so
  /// a client cannot grow server memory without limit.
  Status RegisterPrepared(const std::string& name, PreparedStatement stmt);
  /// Null when `name` was never prepared (or was deallocated).
  const PreparedStatement* FindPrepared(const std::string& name) const;
  bool DeallocatePrepared(const std::string& name);

 private:
  int id_;
  EngineOptions options_;
  int64_t timeout_ms_;
  int64_t slow_query_ms_ = 0;
  int64_t options_generation_ = 0;
  int64_t queries_run_ = 0;
  int64_t next_query_seq_ = 0;
  std::map<std::string, PreparedStatement> prepared_;
};

}  // namespace orq

#endif  // ORQ_SERVER_SESSION_H_
