#ifndef ORQ_ENGINE_PLAN_CACHE_H_
#define ORQ_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/rel_expr.h"
#include "common/result.h"
#include "obs/metrics.h"

namespace orq {

/// Plan-cache knobs on EngineOptions. Off by default: caching compiles
/// through the parameterized lane (literals become parameters before
/// normalization), which is deliberately opt-in so the ablation benchmarks
/// and tests keep seeing the classic literal-aware compile.
struct PlanCacheOptions {
  bool enable = false;
  /// Max entries per level (text level and fingerprint level), LRU-evicted.
  int capacity = 128;
};

/// Result of stripping cacheable literals out of a bound tree. The tree is
/// the shared "template": every stripped literal is replaced by a
/// ScalarKind::kParam whose ordinal continues after the statement's
/// explicit `?` parameters, and `values`/`types` record what was stripped
/// (ordinal-aligned, explicit params excluded).
struct ParameterizedTree {
  RelExprPtr root;
  std::vector<Value> values;
  std::vector<DataType> types;
};

/// Replaces every non-NULL int64/double/string/date literal in the tree's
/// scalar payloads (descending into embedded subquery trees) with a
/// parameter node. Bool and NULL literals stay: the normalizer's
/// TRUE-literal and contradiction reasoning depends on seeing them, and
/// they carry one bit — no cache-fragmentation risk. Shared scalar
/// subtrees (e.g. BETWEEN's value) are memoized so sharing survives and
/// each literal is stripped exactly once.
ParameterizedTree ParameterizeLiterals(const RelExprPtr& root,
                                       int first_ordinal);

/// Canonical serialization of a (parameterized) tree: operator kinds,
/// table names, column ids, parameter ordinals, retained literals, and
/// every payload field that affects compilation. Column ids are allocated
/// deterministically by the binder, so two statements that differ only in
/// stripped literals serialize identically — this string (not its hash) is
/// the fingerprint-level cache key, making collisions impossible.
std::string CanonicalizeTree(const RelExpr& root);

/// Substitutes parameter values into a plan template: kParam(i) becomes a
/// literal of types[i]. Coercions: int64 -> double, string -> date (parsed);
/// anything else mismatched is an error. Returns a new tree sharing all
/// parameter-free subtrees.
Result<RelExprPtr> SubstituteParams(const RelExprPtr& root,
                                    const std::vector<Value>& values,
                                    const std::vector<DataType>& types);

/// An optimized plan template plus everything needed to execute it.
/// Immutable once cached; concurrent executions substitute parameters into
/// fresh trees and never touch the template or its ColumnManager.
struct CachedPlan {
  ColumnManagerPtr columns;
  RelExprPtr optimized;  // contains kParam placeholders
  std::vector<ColumnId> output_cols;
  std::vector<std::string> output_names;
  /// All parameter types by ordinal: the statement's explicit `?` params
  /// first, then auto-parameterized literals.
  std::vector<DataType> param_types;
  size_t num_explicit_params = 0;
  /// CanonicalizeTree of the parameterized bound tree + output signature.
  std::string canonical;
  int64_t catalog_version = 0;
};

/// Two-level LRU plan cache, keyed on (engine-options subset, catalog
/// version, key string). Level 1 maps exact SQL text to a template plus
/// the literal values stripped from that text — a hit skips even parse and
/// bind (the prepared-statement fast path). Level 2 maps the canonical
/// serialization of the parameterized bound tree — a hit for a
/// never-seen text that shares a shape skips normalize and optimize.
/// Entries compiled under a different catalog version are evicted on
/// lookup (stale plans are never served); capacity pressure evicts LRU.
/// Thread-safe; entries are shared as shared_ptr<const CachedPlan>.
class PlanCache {
 public:
  explicit PlanCache(int capacity)
      : capacity_(capacity < 1 ? 1 : static_cast<size_t>(capacity)) {}

  /// Level-1 lookup. On hit, *auto_values receives the literal values
  /// recorded for this exact text. `metrics` (optional) takes eviction
  /// counts when a stale entry is dropped; hit/miss accounting is the
  /// caller's (a level-1 miss may still hit level 2).
  std::shared_ptr<const CachedPlan> LookupText(
      const std::string& sql, const std::string& options_key,
      int64_t catalog_version, std::vector<Value>* auto_values,
      MetricsRegistry* metrics);

  /// Level-2 lookup by canonical serialization.
  std::shared_ptr<const CachedPlan> LookupCanonical(
      const std::string& canonical, const std::string& options_key,
      int64_t catalog_version, MetricsRegistry* metrics);

  /// Inserts into both levels (the text entry records `auto_values`).
  /// Also used after a level-2 hit to register the new text spelling.
  void Insert(const std::string& sql, const std::string& options_key,
              std::shared_ptr<const CachedPlan> plan,
              std::vector<Value> auto_values, MetricsRegistry* metrics);

  void Clear();

  // Cumulative counters (engine lifetime), for tests and \metrics.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  void CountHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void CountMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }

  size_t text_entries() const;
  size_t canonical_entries() const;

 private:
  struct TextEntry {
    std::shared_ptr<const CachedPlan> plan;
    std::vector<Value> auto_values;
    std::list<std::string>::iterator lru;
  };
  struct CanonicalEntry {
    std::shared_ptr<const CachedPlan> plan;
    std::list<std::string>::iterator lru;
  };

  void CountEvictions(int64_t n, MetricsRegistry* metrics);

  mutable std::mutex mu_;
  const size_t capacity_;
  // Keys are options_key + '\x01' + sql/canonical; entries remember the
  // catalog version they were compiled under and are dropped when it moves.
  std::unordered_map<std::string, TextEntry> text_;
  std::unordered_map<std::string, CanonicalEntry> canonical_;
  std::list<std::string> text_lru_;       // front = most recent
  std::list<std::string> canonical_lru_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace orq

#endif  // ORQ_ENGINE_PLAN_CACHE_H_
