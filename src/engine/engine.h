#ifndef ORQ_ENGINE_ENGINE_H_
#define ORQ_ENGINE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "engine/plan_cache.h"
#include "exec/cancel.h"
#include "exec/exec.h"
#include "exec/task_pool.h"
#include "normalize/normalizer.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "opt/optimizer.h"
#include "opt/physical.h"

namespace orq {

/// A complete query result: column names plus rows.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  /// Total rows produced by all operators while executing (a deterministic
  /// work measure used to compare strategies).
  int64_t rows_produced = 0;
};

/// ExecuteAnalyzed's product: the result plus the observability artifacts —
/// per-operator runtime stats annotated with cost-model estimates, and the
/// normalizer/optimizer rule-firing trace.
struct AnalyzedQuery {
  std::string sql;
  QueryResult result;
  /// Physical plan tree with actual rows/time and estimated rows/cost per
  /// operator (paper Figs. 1/8/9 attribution; cost calibration hook).
  PlanStatsNode plan;
  TraceLog trace;
  /// Wall-nanosecond breakdown of the whole lifecycle (parse through
  /// execute); profile.total_nanos is the end-to-end wall time.
  QueryProfile profile;
  /// Engine-wide execution metrics (hash-path shape, spools, re-opens).
  MetricsRegistry metrics;
  /// Operator Open→Close spans; populated only when AnalyzeOptions
  /// requested span recording (ChromeTraceJson renders them).
  SpanRecorder spans;
  /// Wall time of the execution phase (Open to Close of the root).
  int64_t exec_wall_nanos = 0;

  /// Machine-readable form (schema in DESIGN.md). `label` identifies the
  /// run (benchmark name, engine configuration, ...).
  std::string ToJson(const std::string& label = "") const;
};

/// Knobs for ExecuteAnalyzed beyond the engine configuration.
struct AnalyzeOptions {
  /// Record one span per operator Open→Close lifetime (orq_profile's trace
  /// export). Off by default: spans grow with correlated re-opens, which
  /// EXPLAIN ANALYZE does not need.
  bool record_spans = false;
  /// Cooperative cancellation/deadline token (see ExecControl::cancel).
  const CancelToken* cancel = nullptr;
  /// Stable query id stamped into the profile/stats JSON. Empty mints an
  /// engine-local "q<n>" id, so every analyzed run is identifiable.
  std::string query_id;
};

/// Per-query observability capture for the plain Execute path — everything
/// the server's query store records without the full AnalyzedQuery bundle.
/// Attach via ExecControl::observe; the engine fills it in whether the
/// query succeeds or fails (a cancelled query still reports the phases it
/// finished and the per-operator rows it produced).
struct QueryObservation {
  /// Phase timings plus cache outcome; profile.query_id/live_phase are
  /// caller-seeded (the engine only writes timings and cache).
  QueryProfile profile;
  /// Per-operator actual-vs-estimated stats tree (valid when has_plan).
  PlanStatsNode plan;
  bool has_plan = false;
  /// FNV-1a hex fingerprint of the plan's canonical serialization — the
  /// plan-cache key, so records aggregate across literal variants (the
  /// substrate for ROADMAP item 4's cardinality feedback).
  std::string fingerprint;
  /// Wall time of the execution phase alone.
  int64_t exec_wall_nanos = 0;
};

/// Per-call execution control, orthogonal to the engine configuration:
/// a cancellation/deadline token and an optional lightweight metrics sink.
/// Both are caller-owned and may be shared across calls; neither mutates
/// the engine, so concurrent Execute calls with distinct controls are safe.
struct ExecControl {
  /// Polled by the operator shells; a fired token unwinds the query as
  /// Cancelled/DeadlineExceeded. Null runs unbounded.
  const CancelToken* cancel = nullptr;
  /// When set, the execution records engine metrics (hash-path shape,
  /// spools, re-opens) into this registry — the cheap slice of the
  /// instrumented path, without per-operator stats or spans. The caller
  /// synchronizes the registry; the engine only writes during the call.
  MetricsRegistry* metrics = nullptr;
  /// When set, the engine times compile/execute phases, fingerprints the
  /// plan, collects per-operator stats, and snapshots them all here on the
  /// way out (success or failure) — the server's query-store feed. Null
  /// keeps the plain path free of stats collection.
  QueryObservation* observe = nullptr;
  /// When set, the executor publishes rows-produced-so-far here (relaxed
  /// stores from the operator shells) for live introspection.
  std::atomic<int64_t>* progress_rows = nullptr;
  /// Caller-minted stable query id (threaded into the observation profile
  /// and error paths). Empty when the caller does not track ids.
  std::string query_id;
};

/// End-to-end engine configuration. Defaults enable the paper's full
/// technique set; benchmarks flip individual switches for ablation.
struct EngineOptions {
  NormalizerOptions normalizer;
  OptimizerOptions optimizer;
  PhysicalBuildOptions physical;
  /// Execution mode: batch-at-a-time (default) or row-at-a-time Volcano.
  /// Both produce identical results; the difftest oracle cross-checks them.
  ExecOptions exec;
  /// Plan cache (engine/plan_cache.h). Off by default: cached compiles go
  /// through the parameterized lane, which trades literal-aware rewrites
  /// (constant folding across comparisons) for reuse — an explicit opt-in.
  PlanCacheOptions plan_cache;

  /// Named configurations used across benchmarks/EXPERIMENTS.md.
  static EngineOptions Full();
  /// No decorrelation, no cost-based optimization: the "correlated
  /// execution" strategy of section 1.1 (still uses indexes).
  static EngineOptions CorrelatedOnly();
  /// Decorrelation but none of the section-3 GroupBy techniques.
  static EngineOptions NoGroupByOptimizations();
  /// Everything except SegmentApply.
  static EngineOptions NoSegmentApply();
};

/// The public entry point: parse -> bind -> Apply introduction ->
/// normalization -> cost-based optimization -> execution (paper section 4).
///
/// Re-entrancy: Execute/ExecuteCompiled/ExecuteAnalyzed/Explain are safe
/// to call from many threads concurrently on one engine. Each call
/// snapshots the configuration once at entry and pins the worker pool via
/// shared ownership, so a concurrent set_options never mutates a running
/// query (it applies to calls that start afterwards). The catalog must
/// stay structurally unchanged while queries run (the server swaps whole
/// catalog snapshots instead of mutating a live one); lazily cached table
/// statistics are internally synchronized.
class QueryEngine {
 public:
  explicit QueryEngine(Catalog* catalog,
                       EngineOptions options = EngineOptions::Full())
      : catalog_(catalog), options_(std::move(options)) {}
  ~QueryEngine();  // out of line: owns the (fwd-declared) TaskPool

  /// Configuration snapshot (by value: the live configuration may be
  /// swapped by a concurrent set_options).
  EngineOptions options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_;
  }
  /// Replaces the configuration for calls that start after this returns;
  /// in-flight queries keep the snapshot (and pool) they started with.
  /// The worker pool is rebuilt lazily on the next parallel execution.
  void set_options(EngineOptions options);

  /// Parses, optimizes and runs `sql`.
  Result<QueryResult> Execute(const std::string& sql);
  /// Execute with per-call control: cancellation/deadline and an optional
  /// metrics sink (the network server's path).
  Result<QueryResult> Execute(const std::string& sql,
                              const ExecControl& control);

  /// Compilation artifacts for inspection (examples, tests, EXPLAIN).
  struct Compiled {
    ColumnManagerPtr columns;
    RelExprPtr bound;        // after binding (subqueries still embedded)
    RelExprPtr applied;      // after Apply introduction
    RelExprPtr normalized;   // after correlation removal etc.
    RelExprPtr optimized;    // after cost-based optimization
    std::vector<ColumnId> output_cols;
    std::vector<std::string> output_names;
    /// Types of the statement's `?` parameters, by ordinal. Non-empty means
    /// the optimized tree contains kParam placeholders and needs
    /// SubstituteParams (via ExecuteParams) before it can run.
    std::vector<DataType> param_types;
  };
  Result<Compiled> Compile(const std::string& sql);

  /// Multi-phase EXPLAIN text (logical trees per phase + physical plan).
  Result<std::string> Explain(const std::string& sql);

  /// Runs an already compiled query.
  Result<QueryResult> ExecuteCompiled(const Compiled& compiled,
                                      const ExecControl& control = {});

  /// Executes `sql` with full observability: per-operator stats collection,
  /// rule tracing, and cost-model estimates on the physical plan. Results
  /// are identical to Execute; only the instrumented path pays collection
  /// overhead.
  Result<AnalyzedQuery> ExecuteAnalyzed(const std::string& sql,
                                        const AnalyzeOptions& analyze = {});

  /// EXPLAIN ANALYZE: runs the query and renders the physical plan with
  /// actual rows/wall time next to the cost model's estimates, followed by
  /// the rule-firing trace.
  Result<std::string> ExplainAnalyze(const std::string& sql);

  /// Prepared-statement metadata: what EXECUTE must supply and what it
  /// will get back.
  struct PreparedInfo {
    std::vector<DataType> param_types;
    std::vector<std::string> output_names;
  };
  /// Validates and compiles `sql` (through the plan cache when enabled, so
  /// the first EXECUTE is already a hit) without executing it.
  Result<PreparedInfo> Prepare(const std::string& sql);

  /// Executes a statement with positional parameter values (`?` in the
  /// SQL, matched by position). Works with the plan cache on or off; with
  /// it on, repeated calls reuse the cached optimized template and skip
  /// every compile phase up to physical build.
  Result<QueryResult> ExecuteParams(const std::string& sql,
                                    const std::vector<Value>& params,
                                    const ExecControl& control = {});

  /// Plan-cache lifetime counters (zero when the cache was never enabled).
  int64_t plan_cache_hits() const;
  int64_t plan_cache_misses() const;
  int64_t plan_cache_evictions() const;

 private:
  /// Compile with explicit options (ExecuteAnalyzed attaches trace sinks
  /// without mutating the engine's configuration). A non-null `profile`
  /// times each compile phase (parse/bind/apply_intro/normalize/optimize);
  /// a non-null `cancel` is polled between phases.
  Result<Compiled> CompileWith(const std::string& sql,
                               const EngineOptions& options,
                               QueryProfile* profile = nullptr,
                               const CancelToken* cancel = nullptr);

  /// Parse + bind only (timed as the kParse/kBind phases); fills in
  /// columns, bound tree, output signature and parameter types.
  Result<Compiled> ParseAndBind(const std::string& sql,
                                QueryProfile* profile);

  /// The tail of compilation (Apply introduction -> normalize -> optimize)
  /// on a Compiled whose bound tree is already filled in. Shared by the
  /// plain lane and the plan-cache lane (which parameterizes between bind
  /// and this call).
  Result<Compiled> FinishCompile(Compiled compiled,
                                 const EngineOptions& options,
                                 QueryProfile* profile,
                                 const CancelToken* cancel);

  /// One query resolved through the plan cache: the shared immutable
  /// template plus the literal values stripped from this statement text
  /// (explicit `?` values are supplied separately at execution).
  struct PlannedQuery {
    std::shared_ptr<const CachedPlan> plan;
    std::vector<Value> auto_values;
    bool from_cache = false;
  };

  /// Cache-lane compilation: level-1 text hit skips everything; level-2
  /// fingerprint hit skips normalize/optimize; miss compiles the
  /// parameterized template and inserts it. Hits/misses/evictions are
  /// recorded into `metrics` (optional) and the cache's own counters.
  Result<PlannedQuery> PlanWithCache(const std::string& sql,
                                     const EngineOptions& options,
                                     QueryProfile* profile,
                                     const CancelToken* cancel,
                                     MetricsRegistry* metrics);

  /// Substitutes all parameter values into the template and builds a
  /// Compiled shim sharing the template's ColumnManager (safe: physical
  /// build takes the manager by const reference).
  Result<Compiled> MaterializePlan(const PlannedQuery& planned,
                                   const std::vector<Value>& explicit_values)
      const;

  PlanCache* EnsurePlanCache(const PlanCacheOptions& options);

  /// Execution against an explicit options snapshot (all public execute
  /// paths funnel here so concurrent callers never re-read live options).
  Result<QueryResult> ExecuteCompiledWith(const Compiled& compiled,
                                          const EngineOptions& options,
                                          const ExecControl& control);

  /// Physical-build options with the execution thread count applied (the
  /// builder decides where the Exchange goes, so it must know N).
  static PhysicalBuildOptions EffectivePhysicalOptions(
      const EngineOptions& options);

  /// Lazily created worker pool, shared so an in-flight query keeps its
  /// pool alive across a concurrent set_options; null in serial mode.
  /// Kept across queries so repeated executions reuse warm threads.
  std::shared_ptr<TaskPool> SharedTaskPool(int num_threads);

  Catalog* catalog_;
  mutable std::mutex mu_;  // guards options_, pool_ and plan_cache_ creation
  EngineOptions options_;
  std::shared_ptr<TaskPool> pool_;
  /// Lazily created on first cache-enabled query; survives set_options
  /// (entries are keyed by the options fingerprint, so stale configurations
  /// simply age out of the LRU). Internally synchronized.
  std::unique_ptr<PlanCache> plan_cache_;
};

}  // namespace orq

#endif  // ORQ_ENGINE_ENGINE_H_
