#include "engine/engine.h"

#include <atomic>
#include <cstdio>

#include "algebra/printer.h"
#include "exec/exec.h"
#include "exec/task_pool.h"
#include "normalize/subquery_class.h"
#include "obs/json.h"
#include "obs/query_store.h"
#include "opt/cost.h"
#include "sql/apply_intro.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace orq {

namespace {

/// Runs `plan` and projects the query's output columns (plans may carry
/// extra columns). Shared by the plain and the instrumented execution
/// paths so their results cannot drift apart.
Result<QueryResult> RunAndProject(PhysicalOp* plan,
                                  const QueryEngine::Compiled& compiled,
                                  ExecContext* ctx) {
  ORQ_ASSIGN_OR_RETURN(std::vector<Row> raw, ExecuteToVector(plan, ctx));
  const std::vector<ColumnId>& layout = plan->layout();
  std::vector<int> slots;
  for (ColumnId id : compiled.output_cols) {
    int slot = -1;
    for (size_t i = 0; i < layout.size(); ++i) {
      if (layout[i] == id) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) {
      return Status::Internal("output column lost during optimization: #" +
                              std::to_string(id));
    }
    slots.push_back(slot);
  }
  QueryResult result;
  result.column_names = compiled.output_names;
  result.rows_produced = ctx->rows_produced;
  result.rows.reserve(raw.size());
  for (Row& row : raw) {
    Row out;
    out.reserve(slots.size());
    for (int slot : slots) out.push_back(std::move(row[slot]));
    result.rows.push_back(std::move(out));
  }
  return result;
}

}  // namespace

std::string AnalyzedQuery::ToJson(const std::string& label) const {
  return AnalyzedToJson(label, sql, static_cast<int64_t>(result.rows.size()),
                        result.rows_produced, plan, trace, &profile,
                        &metrics, profile.query_id);
}

QueryEngine::~QueryEngine() = default;

void QueryEngine::set_options(EngineOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = std::move(options);
  // Drop our reference; queries started under the old configuration hold
  // their own shared reference, so the pool dies only when the last of
  // them finishes. A pool for the new thread count builds lazily.
  pool_.reset();
}

PhysicalBuildOptions QueryEngine::EffectivePhysicalOptions(
    const EngineOptions& options) {
  PhysicalBuildOptions physical = options.physical;
  physical.num_threads = options.exec.num_threads;
  return physical;
}

std::shared_ptr<TaskPool> QueryEngine::SharedTaskPool(int num_threads) {
  if (num_threads <= 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ == nullptr || pool_->num_threads() < num_threads) {
    pool_ = std::make_shared<TaskPool>(num_threads);
  }
  return pool_;
}

EngineOptions EngineOptions::Full() { return EngineOptions(); }

EngineOptions EngineOptions::CorrelatedOnly() {
  EngineOptions options;
  options.normalizer.remove_correlations = false;
  options.normalizer.simplify_outerjoins = false;
  options.optimizer.enable = false;
  return options;
}

EngineOptions EngineOptions::NoGroupByOptimizations() {
  EngineOptions options;
  options.optimizer.reorder_groupby = false;
  options.optimizer.reorder_groupby_outerjoin = false;
  options.optimizer.local_aggregates = false;
  options.optimizer.segment_apply = false;
  return options;
}

EngineOptions EngineOptions::NoSegmentApply() {
  EngineOptions options;
  options.optimizer.segment_apply = false;
  return options;
}

Result<QueryEngine::Compiled> QueryEngine::ParseAndBind(
    const std::string& sql, QueryProfile* profile) {
  Compiled compiled;
  compiled.columns = std::make_shared<ColumnManager>();

  SelectStmtPtr ast;
  {
    PhaseTimer timer(profile, QueryPhase::kParse);
    ORQ_ASSIGN_OR_RETURN(ast, ParseSql(sql));
  }
  {
    PhaseTimer timer(profile, QueryPhase::kBind);
    Binder binder(catalog_, compiled.columns);
    ORQ_ASSIGN_OR_RETURN(BoundQuery bound, binder.Bind(*ast));
    compiled.bound = bound.root;
    compiled.output_cols = bound.output_cols;
    compiled.output_names = bound.output_names;
    compiled.param_types = bound.param_types;
  }
  return compiled;
}

Result<QueryEngine::Compiled> QueryEngine::FinishCompile(
    Compiled compiled, const EngineOptions& options, QueryProfile* profile,
    const CancelToken* cancel) {
  {
    PhaseTimer timer(profile, QueryPhase::kApplyIntro);
    ORQ_ASSIGN_OR_RETURN(
        compiled.applied,
        IntroduceApplies(compiled.bound, compiled.columns.get()));
  }
  // Compile phases are not interruptible internally, but a deadline that
  // fires during compilation stops the query before the (much more
  // expensive) optimization and execution phases start.
  if (cancel != nullptr) ORQ_RETURN_IF_ERROR(cancel->Check());
  {
    PhaseTimer timer(profile, QueryPhase::kNormalize);
    ORQ_ASSIGN_OR_RETURN(
        compiled.normalized,
        Normalize(compiled.applied, compiled.columns.get(),
                  options.normalizer));
  }
  {
    PhaseTimer timer(profile, QueryPhase::kOptimize);
    ORQ_ASSIGN_OR_RETURN(
        compiled.optimized,
        OptimizeTree(compiled.normalized, catalog_, compiled.columns.get(),
                     options.optimizer));
  }
  if (cancel != nullptr) ORQ_RETURN_IF_ERROR(cancel->Check());
  return compiled;
}

Result<QueryEngine::Compiled> QueryEngine::CompileWith(
    const std::string& sql, const EngineOptions& options,
    QueryProfile* profile, const CancelToken* cancel) {
  ORQ_ASSIGN_OR_RETURN(Compiled compiled, ParseAndBind(sql, profile));
  return FinishCompile(std::move(compiled), options, profile, cancel);
}

Result<QueryEngine::Compiled> QueryEngine::Compile(const std::string& sql) {
  return CompileWith(sql, options());
}

namespace {

/// The plan-relevant slice of the engine configuration, serialized into
/// the cache key. Only normalizer/optimizer flags shape the cached
/// optimized tree; physical/exec options are applied per execution, and
/// trace sinks do not alter rewrites.
std::string PlanOptionsKey(const EngineOptions& options) {
  const NormalizerOptions& n = options.normalizer;
  const OptimizerOptions& o = options.optimizer;
  const bool flags[] = {
      n.remove_correlations, n.decorrelate_class2, n.simplify_outerjoins,
      n.pushdown_predicates, o.enable, o.reorder_groupby,
      o.reorder_groupby_outerjoin, o.local_aggregates, o.segment_apply,
      o.correlated_reintroduction, o.join_commute,
  };
  std::string key;
  key.reserve(sizeof(flags) + 4);
  for (bool flag : flags) key.push_back(flag ? '1' : '0');
  key += std::to_string(o.max_depth);
  return key;
}

/// Two trees that differ only in aliases (`... AS x` vs `... AS y`) are
/// structurally identical, so the output signature must be part of the
/// fingerprint or a hot query would inherit the cold spelling's names.
void AppendOutputSignature(const std::vector<ColumnId>& output_cols,
                           const std::vector<std::string>& output_names,
                           std::string* canonical) {
  canonical->push_back('|');
  for (ColumnId id : output_cols) {
    *canonical += std::to_string(id);
    canonical->push_back(',');
  }
  canonical->push_back('|');
  for (const std::string& name : output_names) {
    *canonical += std::to_string(name.size());
    canonical->push_back(':');
    *canonical += name;
  }
}

Status MissingParamsError(size_t num_params) {
  return Status::InvalidArgument(
      "statement has " + std::to_string(num_params) +
      " parameter(s); supply values via ExecuteParams / EXECUTE");
}

}  // namespace

PlanCache* QueryEngine::EnsurePlanCache(const PlanCacheOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_cache_ == nullptr) {
    plan_cache_ = std::make_unique<PlanCache>(options.capacity);
  }
  return plan_cache_.get();
}

int64_t QueryEngine::plan_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_cache_ != nullptr ? plan_cache_->hits() : 0;
}

int64_t QueryEngine::plan_cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_cache_ != nullptr ? plan_cache_->misses() : 0;
}

int64_t QueryEngine::plan_cache_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_cache_ != nullptr ? plan_cache_->evictions() : 0;
}

Result<QueryEngine::PlannedQuery> QueryEngine::PlanWithCache(
    const std::string& sql, const EngineOptions& options,
    QueryProfile* profile, const CancelToken* cancel,
    MetricsRegistry* metrics) {
  PlanCache* cache = EnsurePlanCache(options.plan_cache);
  const std::string options_key = PlanOptionsKey(options);
  // Version is read once, before compilation: if the catalog moves while
  // we compile, the entry is stored under the old version and the next
  // lookup discards it instead of serving a possibly stale plan.
  const int64_t catalog_version = catalog_->version();

  PlannedQuery planned;
  if (std::shared_ptr<const CachedPlan> plan = cache->LookupText(
          sql, options_key, catalog_version, &planned.auto_values, metrics)) {
    planned.plan = std::move(plan);
    planned.from_cache = true;
    cache->CountHit();
    if (metrics != nullptr) metrics->Add(MetricCounter::kPlanCacheHits, 1);
    return planned;
  }

  ORQ_ASSIGN_OR_RETURN(Compiled compiled, ParseAndBind(sql, profile));
  const size_t num_explicit = compiled.param_types.size();
  ParameterizedTree param =
      ParameterizeLiterals(compiled.bound, static_cast<int>(num_explicit));
  std::string canonical = CanonicalizeTree(*param.root);
  AppendOutputSignature(compiled.output_cols, compiled.output_names,
                        &canonical);
  // The explicit-parameter count is part of the template's identity: an
  // explicit `?` and an auto-parameterized literal serialize to the same
  // kParam node, but only the former demands values from the caller.
  canonical += "#" + std::to_string(num_explicit);

  if (std::shared_ptr<const CachedPlan> plan = cache->LookupCanonical(
          canonical, options_key, catalog_version, metrics)) {
    // Same shape under a new spelling: register this text so the next
    // occurrence takes the level-1 path.
    cache->Insert(sql, options_key, plan, param.values, metrics);
    planned.plan = std::move(plan);
    planned.auto_values = std::move(param.values);
    planned.from_cache = true;
    cache->CountHit();
    if (metrics != nullptr) metrics->Add(MetricCounter::kPlanCacheHits, 1);
    return planned;
  }

  cache->CountMiss();
  if (metrics != nullptr) metrics->Add(MetricCounter::kPlanCacheMisses, 1);

  // Cold: compile the parameterized template. Both the cold and every
  // future hot execution then run the identical template with identical
  // substitution — result equivalence is structural, not incidental.
  compiled.bound = param.root;
  ORQ_ASSIGN_OR_RETURN(
      compiled, FinishCompile(std::move(compiled), options, profile, cancel));

  auto entry = std::make_shared<CachedPlan>();
  entry->columns = compiled.columns;
  entry->optimized = compiled.optimized;
  entry->output_cols = compiled.output_cols;
  entry->output_names = compiled.output_names;
  entry->param_types = compiled.param_types;
  entry->param_types.insert(entry->param_types.end(), param.types.begin(),
                            param.types.end());
  entry->num_explicit_params = num_explicit;
  entry->canonical = std::move(canonical);
  entry->catalog_version = catalog_version;
  cache->Insert(sql, options_key, entry, param.values, metrics);

  planned.plan = std::move(entry);
  planned.auto_values = std::move(param.values);
  planned.from_cache = false;
  return planned;
}

Result<QueryEngine::Compiled> QueryEngine::MaterializePlan(
    const PlannedQuery& planned,
    const std::vector<Value>& explicit_values) const {
  const CachedPlan& plan = *planned.plan;
  if (explicit_values.size() != plan.num_explicit_params) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(plan.num_explicit_params) +
        " parameter(s), got " + std::to_string(explicit_values.size()));
  }
  std::vector<Value> values;
  values.reserve(explicit_values.size() + planned.auto_values.size());
  values.insert(values.end(), explicit_values.begin(), explicit_values.end());
  values.insert(values.end(), planned.auto_values.begin(),
                planned.auto_values.end());
  Compiled compiled;
  compiled.columns = plan.columns;
  ORQ_ASSIGN_OR_RETURN(
      compiled.optimized,
      SubstituteParams(plan.optimized, values, plan.param_types));
  compiled.output_cols = plan.output_cols;
  compiled.output_names = plan.output_names;
  return compiled;
}

Result<QueryEngine::PreparedInfo> QueryEngine::Prepare(
    const std::string& sql) {
  const EngineOptions options = this->options();
  PreparedInfo info;
  if (options.plan_cache.enable) {
    ORQ_ASSIGN_OR_RETURN(
        PlannedQuery planned,
        PlanWithCache(sql, options, nullptr, nullptr, nullptr));
    const CachedPlan& plan = *planned.plan;
    info.param_types.assign(
        plan.param_types.begin(),
        plan.param_types.begin() +
            static_cast<long>(plan.num_explicit_params));
    info.output_names = plan.output_names;
    return info;
  }
  ORQ_ASSIGN_OR_RETURN(Compiled compiled, CompileWith(sql, options));
  info.param_types = compiled.param_types;
  info.output_names = compiled.output_names;
  return info;
}

Result<QueryResult> QueryEngine::ExecuteParams(
    const std::string& sql, const std::vector<Value>& params,
    const ExecControl& control) {
  const EngineOptions options = this->options();
  QueryObservation* observe = control.observe;
  QueryProfile* profile = observe != nullptr ? &observe->profile : nullptr;
  if (profile != nullptr) {
    if (profile->start_nanos == 0) profile->start_nanos = ObsNowNanos();
    if (profile->query_id.empty()) profile->query_id = control.query_id;
  }
  if (options.plan_cache.enable) {
    ORQ_ASSIGN_OR_RETURN(
        PlannedQuery planned,
        PlanWithCache(sql, options, profile, control.cancel,
                      control.metrics));
    if (profile != nullptr) {
      profile->cache =
          planned.from_cache ? CacheOutcome::kHit : CacheOutcome::kMiss;
    }
    if (observe != nullptr) {
      observe->fingerprint = FingerprintHex(planned.plan->canonical);
    }
    ORQ_ASSIGN_OR_RETURN(Compiled compiled,
                         MaterializePlan(planned, params));
    return ExecuteCompiledWith(compiled, options, control);
  }
  ORQ_ASSIGN_OR_RETURN(Compiled compiled,
                       CompileWith(sql, options, profile, control.cancel));
  if (params.size() != compiled.param_types.size()) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(compiled.param_types.size()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  if (!params.empty()) {
    ORQ_ASSIGN_OR_RETURN(
        compiled.optimized,
        SubstituteParams(compiled.optimized, params, compiled.param_types));
  }
  if (observe != nullptr) {
    observe->fingerprint =
        FingerprintHex(CanonicalizeTree(*compiled.optimized));
  }
  return ExecuteCompiledWith(compiled, options, control);
}

Result<QueryResult> QueryEngine::ExecuteCompiled(const Compiled& compiled,
                                                 const ExecControl& control) {
  return ExecuteCompiledWith(compiled, options(), control);
}

Result<QueryResult> QueryEngine::ExecuteCompiledWith(
    const Compiled& compiled, const EngineOptions& options,
    const ExecControl& control) {
  QueryObservation* observe = control.observe;
  QueryProfile* profile = observe != nullptr ? &observe->profile : nullptr;
  if (profile != nullptr && profile->start_nanos == 0) {
    profile->start_nanos = ObsNowNanos();
  }
  PhysicalOpPtr plan;
  {
    PhaseTimer timer(profile, QueryPhase::kPhysicalBuild);
    if (observe != nullptr) {
      // Cost estimates ride along so the observation carries est-vs-actual
      // rows per operator; plan choice happened during optimization, the
      // model only annotates here (same as ExecuteAnalyzed).
      CostModel cost(catalog_);
      ORQ_ASSIGN_OR_RETURN(
          plan, BuildPhysicalPlan(compiled.optimized, *compiled.columns,
                                  EffectivePhysicalOptions(options), &cost));
    } else {
      ORQ_ASSIGN_OR_RETURN(
          plan, BuildPhysicalPlan(compiled.optimized, *compiled.columns,
                                  EffectivePhysicalOptions(options)));
    }
  }
  // The pool reference is held across execution so a concurrent
  // set_options cannot destroy threads a running exchange depends on.
  std::shared_ptr<TaskPool> pool =
      SharedTaskPool(options.exec.num_threads);
  // ctx after plan: it is destroyed first, so an Exchange's producers are
  // still wound down by the plan destructor before members vanish.
  ORQ_RETURN_IF_ERROR(ValidateExecOptions(options.exec));
  ExecContext ctx;
  ctx.batched = options.exec.batched;
  ctx.columnar = options.exec.columnar;
  ctx.table_encoding = options.exec.table_encoding;
  ctx.batch_size = options.exec.batch_size;
  ctx.pool = pool.get();
  ctx.morsel_rows = options.exec.morsel_rows;
  ctx.cancel = control.cancel;
  ctx.progress_rows = control.progress_rows;
  StatsCollector collector;
  ExecInstruments instruments;
  if (control.metrics != nullptr) instruments.metrics = control.metrics;
  if (observe != nullptr) instruments.stats = &collector;
  if (instruments.metrics != nullptr || instruments.stats != nullptr) {
    ctx.instruments = &instruments;
  }
  if (observe == nullptr) return RunAndProject(plan.get(), compiled, &ctx);

  // Observed path: capture phase timings and the stats tree whether the
  // query succeeds or fails — a cancelled query still reports the phases
  // it finished and the rows its operators produced.
  Result<QueryResult> result = Status::Internal("query did not run");
  {
    PhaseTimer timer(profile, QueryPhase::kExecute);
    const int64_t start = ObsNowNanos();
    result = RunAndProject(plan.get(), compiled, &ctx);
    observe->exec_wall_nanos = ObsNowNanos() - start;
  }
  observe->plan = BuildPlanStats(*plan, collector, compiled.columns.get());
  observe->has_plan = true;
  observe->profile.total_nanos = ObsNowNanos() - observe->profile.start_nanos;
  if (control.progress_rows != nullptr) {
    control.progress_rows->store(ctx.rows_produced,
                                 std::memory_order_relaxed);
  }
  return result;
}

namespace {

/// Preorder registration of the operator tree for span export: ids are
/// assigned parent-before-child and names are formatted once, up front, so
/// span emission at Close touches no virtual calls.
void RegisterOpTree(SpanRecorder* spans, const PhysicalOp& op,
                    int parent_id) {
  const int id = spans->RegisterOp(&op, op.name(), parent_id);
  for (const PhysicalOp* child : op.children()) {
    RegisterOpTree(spans, *child, id);
  }
}

}  // namespace

Result<AnalyzedQuery> QueryEngine::ExecuteAnalyzed(
    const std::string& sql, const AnalyzeOptions& analyze) {
  AnalyzedQuery analyzed;
  analyzed.sql = sql;
  analyzed.profile.start_nanos = ObsNowNanos();
  analyzed.profile.query_id = analyze.query_id;
  if (analyzed.profile.query_id.empty()) {
    // Engine-local ids for analyzed runs outside the server's minting
    // (difftest, bench, orq_profile): "q<n>", monotonic per process.
    static std::atomic<int64_t> next_analyzed_id{0};
    analyzed.profile.query_id =
        "q" + std::to_string(next_analyzed_id.fetch_add(1) + 1);
  }

  EngineOptions options = this->options();
  options.normalizer.trace = &analyzed.trace;
  options.optimizer.trace = &analyzed.trace;
  Compiled compiled;
  if (options.plan_cache.enable) {
    ORQ_ASSIGN_OR_RETURN(
        PlannedQuery planned,
        PlanWithCache(sql, options, &analyzed.profile, analyze.cancel,
                      &analyzed.metrics));
    if (planned.plan->num_explicit_params > 0) {
      return MissingParamsError(planned.plan->num_explicit_params);
    }
    analyzed.profile.cache =
        planned.from_cache ? CacheOutcome::kHit : CacheOutcome::kMiss;
    ORQ_ASSIGN_OR_RETURN(compiled, MaterializePlan(planned, {}));
  } else {
    ORQ_ASSIGN_OR_RETURN(
        compiled,
        CompileWith(sql, options, &analyzed.profile, analyze.cancel));
    if (!compiled.param_types.empty()) {
      return MissingParamsError(compiled.param_types.size());
    }
  }

  PhysicalOpPtr plan;
  {
    PhaseTimer timer(&analyzed.profile, QueryPhase::kPhysicalBuild);
    CostModel cost(catalog_);
    ORQ_ASSIGN_OR_RETURN(
        plan, BuildPhysicalPlan(compiled.optimized, *compiled.columns,
                                EffectivePhysicalOptions(options), &cost));
    if (analyze.record_spans) {
      RegisterOpTree(&analyzed.spans, *plan, /*parent_id=*/-1);
    }
  }

  std::shared_ptr<TaskPool> pool =
      SharedTaskPool(options.exec.num_threads);
  StatsCollector collector;
  ExecInstruments instruments;
  instruments.stats = &collector;
  instruments.metrics = &analyzed.metrics;
  instruments.spans = analyze.record_spans ? &analyzed.spans : nullptr;
  ORQ_RETURN_IF_ERROR(ValidateExecOptions(options.exec));
  ExecContext ctx;
  ctx.instruments = &instruments;
  ctx.batched = options.exec.batched;
  ctx.columnar = options.exec.columnar;
  ctx.table_encoding = options.exec.table_encoding;
  ctx.batch_size = options.exec.batch_size;
  ctx.pool = pool.get();
  ctx.morsel_rows = options.exec.morsel_rows;
  ctx.cancel = analyze.cancel;
  {
    PhaseTimer timer(&analyzed.profile, QueryPhase::kExecute);
    const int64_t start = ObsNowNanos();
    ORQ_ASSIGN_OR_RETURN(analyzed.result,
                         RunAndProject(plan.get(), compiled, &ctx));
    analyzed.exec_wall_nanos = ObsNowNanos() - start;
  }
  analyzed.profile.total_nanos =
      ObsNowNanos() - analyzed.profile.start_nanos;
  analyzed.plan =
      BuildPlanStats(*plan, collector, compiled.columns.get());
  // rows_produced stays the context counter (set in RunAndProject); the
  // per-operator aggregation must independently agree with it —
  // TotalRowsOut(plan) == rows_produced is a tested invariant, and the
  // difftest harness cross-checks it on both execution modes.
  return analyzed;
}

Result<std::string> QueryEngine::ExplainAnalyze(const std::string& sql) {
  ORQ_ASSIGN_OR_RETURN(AnalyzedQuery analyzed, ExecuteAnalyzed(sql));
  std::string out;
  out += "== Query " + analyzed.profile.query_id + " ==\n";
  out += "== Phase times ==\n";
  out += RenderProfile(analyzed.profile, &analyzed.trace);
  out += "\n== Physical plan (actual vs estimated) ==\n";
  out += RenderPlanStats(analyzed.plan);
  out += "\n== Rewrite trace (" + std::to_string(analyzed.trace.size()) +
         " events) ==\n";
  out += RenderTrace(analyzed.trace);
  if (!analyzed.metrics.empty()) {
    out += "\n== Engine metrics ==\n";
    out += RenderMetrics(analyzed.metrics);
  }
  char line[160];
  std::snprintf(line, sizeof(line),
                "\n== Totals ==\nresult rows=%zu rows_produced=%lld "
                "exec time=%.3f ms\n",
                analyzed.result.rows.size(),
                static_cast<long long>(analyzed.result.rows_produced),
                static_cast<double>(analyzed.exec_wall_nanos) / 1e6);
  out += line;
  return out;
}

Result<QueryResult> QueryEngine::Execute(const std::string& sql) {
  return Execute(sql, ExecControl{});
}

Result<QueryResult> QueryEngine::Execute(const std::string& sql,
                                         const ExecControl& control) {
  const EngineOptions options = this->options();
  QueryObservation* observe = control.observe;
  QueryProfile* profile = observe != nullptr ? &observe->profile : nullptr;
  if (profile != nullptr) {
    if (profile->start_nanos == 0) profile->start_nanos = ObsNowNanos();
    if (profile->query_id.empty()) profile->query_id = control.query_id;
  }
  if (options.plan_cache.enable) {
    ORQ_ASSIGN_OR_RETURN(
        PlannedQuery planned,
        PlanWithCache(sql, options, profile, control.cancel,
                      control.metrics));
    if (planned.plan->num_explicit_params > 0) {
      return MissingParamsError(planned.plan->num_explicit_params);
    }
    if (profile != nullptr) {
      profile->cache =
          planned.from_cache ? CacheOutcome::kHit : CacheOutcome::kMiss;
    }
    if (observe != nullptr) {
      observe->fingerprint = FingerprintHex(planned.plan->canonical);
    }
    ORQ_ASSIGN_OR_RETURN(Compiled compiled, MaterializePlan(planned, {}));
    return ExecuteCompiledWith(compiled, options, control);
  }
  ORQ_ASSIGN_OR_RETURN(Compiled compiled,
                       CompileWith(sql, options, profile, control.cancel));
  if (!compiled.param_types.empty()) {
    return MissingParamsError(compiled.param_types.size());
  }
  if (observe != nullptr) {
    // No cache lane: fingerprint the optimized tree directly. Literals are
    // still embedded here, so unlike the cache-lane fingerprint this one
    // distinguishes literal variants of a shape.
    observe->fingerprint =
        FingerprintHex(CanonicalizeTree(*compiled.optimized));
  }
  return ExecuteCompiledWith(compiled, options, control);
}

Result<std::string> QueryEngine::Explain(const std::string& sql) {
  ORQ_ASSIGN_OR_RETURN(Compiled compiled, Compile(sql));
  std::string out;
  const ColumnManager* columns = compiled.columns.get();
  out += "== Bound (mutual recursion, section 2.1) ==\n";
  out += PrintRelTree(*compiled.bound, columns);
  out += "\n== After Apply introduction (section 2.2) ==\n";
  out += PrintRelTree(*compiled.applied, columns);
  // Subquery classification (section 2.5) on the Apply form.
  std::vector<ClassifiedApply> classes =
      ClassifySubqueries(compiled.applied);
  if (!classes.empty()) {
    out += "\n== Subquery classes (section 2.5) ==\n";
    for (const ClassifiedApply& entry : classes) {
      out += "  " + ApplyKindName(entry.apply->apply_kind) + ": " +
             SubqueryClassName(entry.cls) + "\n";
    }
  }
  out += "\n== Normalized (correlations removed, section 2.3) ==\n";
  out += PrintRelTree(*compiled.normalized, columns);
  out += "\n== Optimized (cost-based, section 3) ==\n";
  out += PrintRelTree(*compiled.optimized, columns);
  ORQ_ASSIGN_OR_RETURN(
      PhysicalOpPtr plan,
      BuildPhysicalPlan(compiled.optimized, *compiled.columns,
                        EffectivePhysicalOptions(options())));
  out += "\n== Physical plan ==\n";
  out += PrintPhysicalPlan(*plan, columns);
  return out;
}

}  // namespace orq
