#include "engine/plan_cache.h"

#include <cstring>
#include <unordered_map>

#include "catalog/table.h"

namespace orq {

namespace {

/// Literals worth stripping into parameters. Bool and NULL literals are
/// retained in the template: the normalizer folds them (TRUE predicates,
/// contradiction detection), so stripping them would both fragment the
/// cache key space by one bit and pessimize every cached plan.
bool CacheableLiteral(const ScalarExpr& node) {
  if (node.kind != ScalarKind::kLiteral) return false;
  if (node.literal.is_null()) return false;
  switch (node.type) {
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kString:
    case DataType::kDate:
      return true;
    case DataType::kBool:
      return false;
  }
  return false;
}

/// Copy-on-change walk replacing cacheable literals with parameter nodes.
/// Pointer-memoized: a shared subtree (e.g. BETWEEN's value expression,
/// referenced by both rewritten compares) is visited once, keeps its
/// sharing in the output, and contributes each literal exactly once.
class Parameterizer {
 public:
  explicit Parameterizer(int first_ordinal) : next_ordinal_(first_ordinal) {}

  ScalarExprPtr Scalar(const ScalarExprPtr& expr) {
    if (expr == nullptr) return nullptr;
    auto it = scalar_memo_.find(expr.get());
    if (it != scalar_memo_.end()) return it->second;
    ScalarExprPtr result;
    if (CacheableLiteral(*expr)) {
      result = MakeParam(next_ordinal_++, expr->type);
      values.push_back(expr->literal);
      types.push_back(expr->type);
    } else {
      bool changed = false;
      std::vector<ScalarExprPtr> children;
      children.reserve(expr->children.size());
      for (const ScalarExprPtr& child : expr->children) {
        ScalarExprPtr walked = Scalar(child);
        changed = changed || walked != child;
        children.push_back(std::move(walked));
      }
      RelExprPtr rel = Rel(expr->rel);
      changed = changed || rel != expr->rel;
      if (!changed) {
        result = expr;
      } else {
        auto node = std::make_shared<ScalarExpr>(*expr);
        node->children = std::move(children);
        node->rel = std::move(rel);
        result = node;
      }
    }
    scalar_memo_.emplace(expr.get(), result);
    return result;
  }

  RelExprPtr Rel(const RelExprPtr& rel) {
    if (rel == nullptr) return nullptr;
    auto it = rel_memo_.find(rel.get());
    if (it != rel_memo_.end()) return it->second;
    // Payload fields are visited before children, each in declaration
    // order — the walk order *is* the parameter-ordinal order, so it must
    // stay deterministic and match SubstituteParams' expectations (any
    // fixed order works; both sides share this walk's output).
    RelExpr copy = *rel;
    bool changed = false;
    if (copy.predicate != nullptr) {
      ScalarExprPtr walked = Scalar(copy.predicate);
      changed = changed || walked != copy.predicate;
      copy.predicate = std::move(walked);
    }
    for (ProjectItem& item : copy.proj_items) {
      ScalarExprPtr walked = Scalar(item.expr);
      changed = changed || walked != item.expr;
      item.expr = std::move(walked);
    }
    for (AggItem& agg : copy.aggs) {
      if (agg.arg == nullptr) continue;
      ScalarExprPtr walked = Scalar(agg.arg);
      changed = changed || walked != agg.arg;
      agg.arg = std::move(walked);
    }
    for (SortKey& key : copy.sort_keys) {
      ScalarExprPtr walked = Scalar(key.expr);
      changed = changed || walked != key.expr;
      key.expr = std::move(walked);
    }
    for (RelExprPtr& child : copy.children) {
      RelExprPtr walked = Rel(child);
      changed = changed || walked != child;
      child = std::move(walked);
    }
    RelExprPtr result =
        changed ? std::make_shared<RelExpr>(std::move(copy)) : rel;
    rel_memo_.emplace(rel.get(), result);
    return result;
  }

  std::vector<Value> values;
  std::vector<DataType> types;

 private:
  int next_ordinal_;
  std::unordered_map<const ScalarExpr*, ScalarExprPtr> scalar_memo_;
  std::unordered_map<const RelExpr*, RelExprPtr> rel_memo_;
};

// ---- Canonical serialization ----
//
// Prefix encoding with explicit terminators; strings are length-prefixed,
// so no input can fake a structural boundary. Every payload field that
// affects compilation or output is written — the string is compared in
// full (not hashed), so the only correctness requirement is injectivity.

void PutInt(int64_t v, std::string* out) {
  *out += std::to_string(v);
  out->push_back(',');
}

void PutStr(const std::string& s, std::string* out) {
  PutInt(static_cast<int64_t>(s.size()), out);
  *out += s;
}

void PutValue(const Value& v, std::string* out) {
  PutInt(static_cast<int64_t>(v.type()), out);
  if (v.is_null()) {
    out->push_back('n');
    return;
  }
  switch (v.type()) {
    case DataType::kBool:
      PutInt(v.bool_value() ? 1 : 0, out);
      break;
    case DataType::kInt64:
      PutInt(v.int64_value(), out);
      break;
    case DataType::kDouble: {
      // Bit-exact: round-tripping through decimal could merge distinct
      // doubles into one key.
      uint64_t bits = 0;
      const double d = v.double_value();
      std::memcpy(&bits, &d, sizeof(bits));
      PutInt(static_cast<int64_t>(bits), out);
      break;
    }
    case DataType::kString:
      PutStr(v.string_value(), out);
      break;
    case DataType::kDate:
      PutInt(v.date_value(), out);
      break;
  }
}

void PutColumns(const std::vector<ColumnId>& cols, std::string* out) {
  PutInt(static_cast<int64_t>(cols.size()), out);
  for (ColumnId id : cols) PutInt(id, out);
}

void PutColumnSet(const ColumnSet& cols, std::string* out) {
  // ColumnSet iterates in sorted id order — deterministic.
  PutInt(static_cast<int64_t>(cols.size()), out);
  for (ColumnId id : cols) PutInt(id, out);
}

void PutRel(const RelExpr& node, std::string* out);

void PutScalar(const ScalarExpr& node, std::string* out) {
  out->push_back('s');
  PutInt(static_cast<int64_t>(node.kind), out);
  PutInt(static_cast<int64_t>(node.type), out);
  switch (node.kind) {
    case ScalarKind::kColumnRef:
    case ScalarKind::kParam:
      PutInt(node.column, out);
      break;
    case ScalarKind::kLiteral:
      PutValue(node.literal, out);
      break;
    case ScalarKind::kCompare:
      PutInt(static_cast<int64_t>(node.cmp), out);
      break;
    case ScalarKind::kArith:
      PutInt(static_cast<int64_t>(node.arith), out);
      break;
    case ScalarKind::kQuantifiedCompare:
      PutInt(static_cast<int64_t>(node.cmp), out);
      PutInt(static_cast<int64_t>(node.quantifier), out);
      break;
    case ScalarKind::kExistsSubquery:
    case ScalarKind::kInSubquery:
      PutInt(node.negated ? 1 : 0, out);
      break;
    default:
      break;
  }
  PutInt(static_cast<int64_t>(node.children.size()), out);
  for (const ScalarExprPtr& child : node.children) PutScalar(*child, out);
  if (node.rel != nullptr) {
    out->push_back('q');
    PutRel(*node.rel, out);
  } else {
    out->push_back('.');
  }
}

void PutOptScalar(const ScalarExprPtr& expr, std::string* out) {
  if (expr == nullptr) {
    out->push_back('.');
  } else {
    PutScalar(*expr, out);
  }
}

void PutRel(const RelExpr& node, std::string* out) {
  out->push_back('r');
  PutInt(static_cast<int64_t>(node.kind), out);
  PutStr(node.table != nullptr ? node.table->name() : std::string(), out);
  PutColumns(node.get_cols, out);
  PutInt(static_cast<int64_t>(node.get_ordinals.size()), out);
  for (int ordinal : node.get_ordinals) PutInt(ordinal, out);
  PutOptScalar(node.predicate, out);
  PutInt(static_cast<int64_t>(node.join_kind), out);
  PutInt(static_cast<int64_t>(node.apply_kind), out);
  PutInt(static_cast<int64_t>(node.proj_items.size()), out);
  for (const ProjectItem& item : node.proj_items) {
    PutInt(item.output, out);
    PutOptScalar(item.expr, out);
  }
  PutColumnSet(node.passthrough, out);
  PutColumnSet(node.group_cols, out);
  PutInt(static_cast<int64_t>(node.aggs.size()), out);
  for (const AggItem& agg : node.aggs) {
    PutInt(static_cast<int64_t>(agg.func), out);
    PutOptScalar(agg.arg, out);
    PutInt(agg.output, out);
    PutInt(agg.distinct ? 1 : 0, out);
  }
  PutInt(node.scalar_agg ? 1 : 0, out);
  PutColumnSet(node.segment_cols, out);
  PutColumns(node.segment_out_cols, out);
  PutColumns(node.out_cols, out);
  PutInt(static_cast<int64_t>(node.input_maps.size()), out);
  for (const std::vector<ColumnId>& map : node.input_maps) {
    PutColumns(map, out);
  }
  PutInt(static_cast<int64_t>(node.sort_keys.size()), out);
  for (const SortKey& key : node.sort_keys) {
    PutOptScalar(key.expr, out);
    PutInt(key.ascending ? 1 : 0, out);
  }
  PutInt(node.limit, out);
  PutInt(static_cast<int64_t>(node.children.size()), out);
  for (const RelExprPtr& child : node.children) PutRel(*child, out);
}

// ---- Parameter substitution ----

Result<Value> CoerceParam(const Value& value, DataType type, int ordinal) {
  if (value.is_null()) return Value::Null(type);
  if (value.type() == type) return value;
  if (value.type() == DataType::kInt64 && type == DataType::kDouble) {
    return Value::Double(static_cast<double>(value.int64_value()));
  }
  if (value.type() == DataType::kString && type == DataType::kDate) {
    std::optional<int32_t> days = ParseDate(value.string_value());
    if (!days.has_value()) {
      return Status::InvalidArgument(
          "parameter $" + std::to_string(ordinal) +
          ": cannot parse '" + value.string_value() + "' as a date");
    }
    return Value::Date(*days);
  }
  return Status::InvalidArgument(
      "parameter $" + std::to_string(ordinal) + " expects " +
      DataTypeName(type) + ", got " + DataTypeName(value.type()));
}

/// Copy-on-change walk replacing kParam nodes with literal values.
/// Memoized like Parameterizer so template sharing survives substitution.
class Substituter {
 public:
  Substituter(const std::vector<Value>& values,
              const std::vector<DataType>& types)
      : values_(values), types_(types) {}

  Result<ScalarExprPtr> Scalar(const ScalarExprPtr& expr) {
    if (expr == nullptr) return ScalarExprPtr(nullptr);
    auto it = scalar_memo_.find(expr.get());
    if (it != scalar_memo_.end()) return it->second;
    ScalarExprPtr result;
    if (expr->kind == ScalarKind::kParam) {
      const int ordinal = expr->column;
      if (ordinal < 0 || static_cast<size_t>(ordinal) >= values_.size()) {
        return Status::InvalidArgument(
            "parameter $" + std::to_string(ordinal) + " has no value (" +
            std::to_string(values_.size()) + " provided)");
      }
      ORQ_ASSIGN_OR_RETURN(Value coerced,
                           CoerceParam(values_[ordinal],
                                       types_[ordinal], ordinal));
      result = Lit(std::move(coerced));
    } else {
      bool changed = false;
      std::vector<ScalarExprPtr> children;
      children.reserve(expr->children.size());
      for (const ScalarExprPtr& child : expr->children) {
        ORQ_ASSIGN_OR_RETURN(ScalarExprPtr walked, Scalar(child));
        changed = changed || walked != child;
        children.push_back(std::move(walked));
      }
      RelExprPtr rel;
      if (expr->rel != nullptr) {
        ORQ_ASSIGN_OR_RETURN(rel, Rel(expr->rel));
      }
      changed = changed || rel != expr->rel;
      if (!changed) {
        result = expr;
      } else {
        auto node = std::make_shared<ScalarExpr>(*expr);
        node->children = std::move(children);
        node->rel = std::move(rel);
        result = node;
      }
    }
    scalar_memo_.emplace(expr.get(), result);
    return result;
  }

  Result<RelExprPtr> Rel(const RelExprPtr& rel) {
    if (rel == nullptr) return RelExprPtr(nullptr);
    auto it = rel_memo_.find(rel.get());
    if (it != rel_memo_.end()) return it->second;
    RelExpr copy = *rel;
    bool changed = false;
    if (copy.predicate != nullptr) {
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr walked, Scalar(copy.predicate));
      changed = changed || walked != copy.predicate;
      copy.predicate = std::move(walked);
    }
    for (ProjectItem& item : copy.proj_items) {
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr walked, Scalar(item.expr));
      changed = changed || walked != item.expr;
      item.expr = std::move(walked);
    }
    for (AggItem& agg : copy.aggs) {
      if (agg.arg == nullptr) continue;
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr walked, Scalar(agg.arg));
      changed = changed || walked != agg.arg;
      agg.arg = std::move(walked);
    }
    for (SortKey& key : copy.sort_keys) {
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr walked, Scalar(key.expr));
      changed = changed || walked != key.expr;
      key.expr = std::move(walked);
    }
    for (RelExprPtr& child : copy.children) {
      ORQ_ASSIGN_OR_RETURN(RelExprPtr walked, Rel(child));
      changed = changed || walked != child;
      child = std::move(walked);
    }
    RelExprPtr result =
        changed ? std::make_shared<RelExpr>(std::move(copy)) : rel;
    rel_memo_.emplace(rel.get(), result);
    return result;
  }

 private:
  const std::vector<Value>& values_;
  const std::vector<DataType>& types_;
  std::unordered_map<const ScalarExpr*, ScalarExprPtr> scalar_memo_;
  std::unordered_map<const RelExpr*, RelExprPtr> rel_memo_;
};

}  // namespace

ParameterizedTree ParameterizeLiterals(const RelExprPtr& root,
                                       int first_ordinal) {
  Parameterizer walker(first_ordinal);
  ParameterizedTree result;
  result.root = walker.Rel(root);
  result.values = std::move(walker.values);
  result.types = std::move(walker.types);
  return result;
}

std::string CanonicalizeTree(const RelExpr& root) {
  std::string out;
  out.reserve(512);
  PutRel(root, &out);
  return out;
}

Result<RelExprPtr> SubstituteParams(const RelExprPtr& root,
                                    const std::vector<Value>& values,
                                    const std::vector<DataType>& types) {
  Substituter walker(values, types);
  return walker.Rel(root);
}

// ---- PlanCache ----

namespace {
std::string CacheKey(const std::string& options_key, const std::string& text) {
  std::string key;
  key.reserve(options_key.size() + 1 + text.size());
  key += options_key;
  key.push_back('\x01');
  key += text;
  return key;
}
}  // namespace

void PlanCache::CountEvictions(int64_t n, MetricsRegistry* metrics) {
  if (n <= 0) return;
  evictions_.fetch_add(n, std::memory_order_relaxed);
  if (metrics != nullptr) {
    metrics->Add(MetricCounter::kPlanCacheEvictions, n);
  }
}

std::shared_ptr<const CachedPlan> PlanCache::LookupText(
    const std::string& sql, const std::string& options_key,
    int64_t catalog_version, std::vector<Value>* auto_values,
    MetricsRegistry* metrics) {
  const std::string key = CacheKey(options_key, sql);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = text_.find(key);
  if (it == text_.end()) return nullptr;
  if (it->second.plan->catalog_version != catalog_version) {
    text_lru_.erase(it->second.lru);
    text_.erase(it);
    CountEvictions(1, metrics);
    return nullptr;
  }
  text_lru_.splice(text_lru_.begin(), text_lru_, it->second.lru);
  if (auto_values != nullptr) *auto_values = it->second.auto_values;
  return it->second.plan;
}

std::shared_ptr<const CachedPlan> PlanCache::LookupCanonical(
    const std::string& canonical, const std::string& options_key,
    int64_t catalog_version, MetricsRegistry* metrics) {
  const std::string key = CacheKey(options_key, canonical);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = canonical_.find(key);
  if (it == canonical_.end()) return nullptr;
  if (it->second.plan->catalog_version != catalog_version) {
    canonical_lru_.erase(it->second.lru);
    canonical_.erase(it);
    CountEvictions(1, metrics);
    return nullptr;
  }
  canonical_lru_.splice(canonical_lru_.begin(), canonical_lru_,
                        it->second.lru);
  return it->second.plan;
}

void PlanCache::Insert(const std::string& sql, const std::string& options_key,
                       std::shared_ptr<const CachedPlan> plan,
                       std::vector<Value> auto_values,
                       MetricsRegistry* metrics) {
  const std::string text_key = CacheKey(options_key, sql);
  const std::string canonical_key = CacheKey(options_key, plan->canonical);
  int64_t evicted = 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto text_it = text_.find(text_key);
  if (text_it != text_.end()) {
    // Racing compile of the same statement, or re-registration after a
    // level-2 hit: refresh in place (the newer plan may carry a newer
    // catalog version).
    text_lru_.splice(text_lru_.begin(), text_lru_, text_it->second.lru);
    text_it->second.plan = plan;
    text_it->second.auto_values = std::move(auto_values);
  } else {
    text_lru_.push_front(text_key);
    text_.emplace(text_key, TextEntry{plan, std::move(auto_values),
                                      text_lru_.begin()});
    while (text_.size() > capacity_) {
      text_.erase(text_lru_.back());
      text_lru_.pop_back();
      ++evicted;
    }
  }
  auto canon_it = canonical_.find(canonical_key);
  if (canon_it != canonical_.end()) {
    canonical_lru_.splice(canonical_lru_.begin(), canonical_lru_,
                          canon_it->second.lru);
    canon_it->second.plan = std::move(plan);
  } else {
    canonical_lru_.push_front(canonical_key);
    canonical_.emplace(canonical_key,
                       CanonicalEntry{std::move(plan),
                                      canonical_lru_.begin()});
    while (canonical_.size() > capacity_) {
      canonical_.erase(canonical_lru_.back());
      canonical_lru_.pop_back();
      ++evicted;
    }
  }
  CountEvictions(evicted, metrics);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  text_.clear();
  canonical_.clear();
  text_lru_.clear();
  canonical_lru_.clear();
}

size_t PlanCache::text_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return text_.size();
}

size_t PlanCache::canonical_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return canonical_.size();
}

}  // namespace orq
