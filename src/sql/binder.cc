#include "sql/binder.h"

#include <functional>
#include <map>

#include "algebra/expr_util.h"
#include "common/str_util.h"

namespace orq {

namespace {

bool IsAggregateName(const std::string& name) {
  return EqualsIgnoreCase(name, "count") || EqualsIgnoreCase(name, "sum") ||
         EqualsIgnoreCase(name, "min") || EqualsIgnoreCase(name, "max") ||
         EqualsIgnoreCase(name, "avg");
}

}  // namespace

/// Name-resolution scope: the columns visible at one query level, chained to
/// the enclosing level (resolution through `parent` is what correlation is).
struct Binder::Scope {
  struct Entry {
    std::string alias;   // table alias (lower-case)
    std::string name;    // column name (lower-case)
    ColumnId id;
  };
  std::vector<Entry> entries;
  Scope* parent = nullptr;

  void Add(const std::string& alias, const std::string& name, ColumnId id) {
    entries.push_back(Entry{ToLower(alias), ToLower(name), id});
  }

  Result<ColumnId> Resolve(const std::string& qualifier,
                           const std::string& name) const {
    std::string q = ToLower(qualifier);
    std::string n = ToLower(name);
    ColumnId found = -1;
    int hits = 0;
    for (const Entry& e : entries) {
      if (e.name != n) continue;
      if (!q.empty() && e.alias != q) continue;
      found = e.id;
      ++hits;
    }
    if (hits == 1) return found;
    if (hits > 1) {
      return Status::InvalidArgument("ambiguous column: " + name);
    }
    if (parent != nullptr) return parent->Resolve(qualifier, name);
    return Status::NotFound("unknown column: " +
                            (qualifier.empty() ? name : qualifier + "." + name));
  }
};

namespace {

/// Collects aggregate calls while binding expressions of an aggregate query.
struct AggCollector {
  std::vector<AggItem> items;
  ColumnManager* columns = nullptr;

  /// Registers an aggregate; reuses an existing identical item.
  ColumnId Register(AggFunc func, ScalarExprPtr arg, bool distinct,
                    DataType out_type, const std::string& name) {
    for (const AggItem& item : items) {
      if (item.func == func && item.distinct == distinct &&
          ScalarEquals(item.arg, arg)) {
        return item.output;
      }
    }
    ColumnId id = columns->NewColumn(name, out_type, true);
    items.push_back(AggItem{func, std::move(arg), id, distinct});
    return id;
  }
};

}  // namespace

/// Expression binder for one query block.
class ExprBinder {
 public:
  ExprBinder(Binder* binder, Catalog* catalog, ColumnManager* columns,
             Binder::Scope* scope, AggCollector* aggs,
             std::function<Result<BoundQuery>(const SelectStmt&,
                                              Binder::Scope*)>
                 bind_subquery)
      : binder_(binder),
        catalog_(catalog),
        columns_(columns),
        scope_(scope),
        aggs_(aggs),
        bind_subquery_(std::move(bind_subquery)) {}

  Result<ScalarExprPtr> Bind(const AstExpr& ast) {
    switch (ast.kind) {
      case AstExprKind::kColumn: {
        ORQ_ASSIGN_OR_RETURN(ColumnId id,
                             scope_->Resolve(ast.qualifier, ast.name));
        return CRef(*columns_, id);
      }
      case AstExprKind::kLiteral:
        return Lit(ast.literal);
      case AstExprKind::kParam:
        // A parameter only binds where a sibling fixes its type (BindParam);
        // reaching the generic path means the context is type-free.
        return Status::InvalidArgument(
            "cannot infer the type of parameter ?" +
            std::to_string(ast.param_index + 1) +
            " in this context (use it in a comparison, arithmetic, IN, or "
            "BETWEEN against a typed expression)");
      case AstExprKind::kStar:
        return Status::InvalidArgument("'*' is only valid in count(*)");
      case AstExprKind::kBinary:
        return BindBinary(ast);
      case AstExprKind::kUnary: {
        if (ast.op == "NOT" && IsParam(*ast.children[0])) {
          ORQ_ASSIGN_OR_RETURN(
              ScalarExprPtr child,
              BindParam(*ast.children[0], DataType::kBool));
          return MakeNot(std::move(child));
        }
        ORQ_ASSIGN_OR_RETURN(ScalarExprPtr child, Bind(*ast.children[0]));
        if (ast.op == "NOT") return MakeNot(std::move(child));
        return MakeNegate(std::move(child));
      }
      case AstExprKind::kIsNull: {
        ORQ_ASSIGN_OR_RETURN(ScalarExprPtr child, Bind(*ast.children[0]));
        return ast.negated ? MakeIsNotNull(std::move(child))
                           : MakeIsNull(std::move(child));
      }
      case AstExprKind::kFuncCall:
        return BindFunc(ast);
      case AstExprKind::kCase: {
        // First pass binds the non-parameter children in order (column-id
        // allocation for embedded subqueries stays stable); parameters take
        // their types from the bound siblings in a second pass.
        std::vector<ScalarExprPtr> children(ast.children.size());
        for (size_t i = 0; i < ast.children.size(); ++i) {
          if (IsParam(*ast.children[i])) continue;
          ORQ_ASSIGN_OR_RETURN(children[i], Bind(*ast.children[i]));
        }
        // Result type: type of the first bound THEN/ELSE branch.
        DataType result_type = DataType::kInt64;
        bool typed = false;
        for (size_t i = 1; i < children.size(); i += (i + 1 < children.size()
                                                          ? 2
                                                          : 1)) {
          if (children[i] != nullptr) {
            result_type = children[i]->type;
            typed = true;
            break;
          }
        }
        for (size_t i = 0; i < ast.children.size(); ++i) {
          if (children[i] != nullptr) continue;
          const bool is_when = i % 2 == 0 && i + 1 < ast.children.size();
          if (!is_when && !typed) {
            return Status::InvalidArgument(
                "cannot infer the type of a CASE branch parameter (no typed "
                "THEN/ELSE branch)");
          }
          ORQ_ASSIGN_OR_RETURN(
              children[i],
              BindParam(*ast.children[i],
                        is_when ? DataType::kBool : result_type));
        }
        return MakeCase(std::move(children), result_type);
      }
      case AstExprKind::kInList: {
        // Probe type from the first non-parameter element when the probe
        // itself is a `?`; element parameters take the probe's type. The
        // non-parameter children bind first, in source order.
        std::vector<ScalarExprPtr> slots(ast.children.size());
        for (size_t i = 0; i < ast.children.size(); ++i) {
          if (IsParam(*ast.children[i])) continue;
          ORQ_ASSIGN_OR_RETURN(slots[i], Bind(*ast.children[i]));
        }
        if (slots[0] == nullptr) {
          DataType probe_type = DataType::kInt64;
          bool typed = false;
          for (size_t i = 1; i < slots.size(); ++i) {
            if (slots[i] != nullptr) {
              probe_type = slots[i]->type;
              typed = true;
              break;
            }
          }
          if (!typed) {
            return Status::InvalidArgument(
                "cannot infer the type of an IN-list of parameters");
          }
          ORQ_ASSIGN_OR_RETURN(slots[0],
                               BindParam(*ast.children[0], probe_type));
        }
        for (size_t i = 1; i < slots.size(); ++i) {
          if (slots[i] != nullptr) continue;
          ORQ_ASSIGN_OR_RETURN(slots[i],
                               BindParam(*ast.children[i], slots[0]->type));
        }
        ScalarExprPtr probe = std::move(slots[0]);
        std::vector<ScalarExprPtr> list(
            std::make_move_iterator(slots.begin() + 1),
            std::make_move_iterator(slots.end()));
        ScalarExprPtr in = MakeInList(std::move(probe), std::move(list));
        return ast.negated ? MakeNot(std::move(in)) : in;
      }
      case AstExprKind::kBetween: {
        // Non-parameter operands bind first; a `?` value takes the type of
        // the first bound bound, and `?` bounds take the value's type.
        std::vector<ScalarExprPtr> slots(3);
        for (size_t i = 0; i < 3; ++i) {
          if (IsParam(*ast.children[i])) continue;
          ORQ_ASSIGN_OR_RETURN(slots[i], Bind(*ast.children[i]));
        }
        if (slots[0] == nullptr) {
          ScalarExprPtr typed =
              slots[1] != nullptr ? slots[1] : slots[2];
          if (typed == nullptr) {
            return Status::InvalidArgument(
                "cannot infer the type of '? BETWEEN ? AND ?'");
          }
          ORQ_ASSIGN_OR_RETURN(slots[0],
                               BindParam(*ast.children[0], typed->type));
        }
        for (size_t i = 1; i < 3; ++i) {
          if (slots[i] != nullptr) continue;
          ORQ_ASSIGN_OR_RETURN(slots[i],
                               BindParam(*ast.children[i], slots[0]->type));
        }
        ScalarExprPtr range = MakeAnd2(
            MakeCompare(CompareOp::kGe, slots[0], std::move(slots[1])),
            MakeCompare(CompareOp::kLe, slots[0], std::move(slots[2])));
        return ast.negated ? MakeNot(std::move(range)) : range;
      }
      case AstExprKind::kScalarSubquery: {
        ORQ_ASSIGN_OR_RETURN(BoundQuery sub, BindSub(*ast.subquery));
        if (sub.output_cols.size() != 1) {
          return Status::InvalidArgument(
              "scalar subquery must return one column");
        }
        return MakeScalarSubquery(sub.root,
                                  columns_->type(sub.output_cols[0]));
      }
      case AstExprKind::kExists: {
        ORQ_ASSIGN_OR_RETURN(BoundQuery sub, BindSub(*ast.subquery));
        return MakeExists(sub.root, ast.negated);
      }
      case AstExprKind::kInSubquery: {
        // A `?` probe types itself from the subquery's output column; the
        // subquery then binds first (column-id order is unchanged for
        // parameter-free queries).
        ScalarExprPtr probe;
        BoundQuery sub;
        if (IsParam(*ast.children[0])) {
          ORQ_ASSIGN_OR_RETURN(sub, BindSub(*ast.subquery));
          if (sub.output_cols.size() != 1) {
            return Status::InvalidArgument(
                "IN subquery must return one column");
          }
          ORQ_ASSIGN_OR_RETURN(
              probe, BindParam(*ast.children[0],
                               columns_->type(sub.output_cols[0])));
        } else {
          ORQ_ASSIGN_OR_RETURN(probe, Bind(*ast.children[0]));
          ORQ_ASSIGN_OR_RETURN(sub, BindSub(*ast.subquery));
          if (sub.output_cols.size() != 1) {
            return Status::InvalidArgument(
                "IN subquery must return one column");
          }
        }
        return MakeInSubquery(std::move(probe), sub.root, ast.negated);
      }
      case AstExprKind::kQuantified: {
        ScalarExprPtr left;
        BoundQuery sub;
        if (IsParam(*ast.children[0])) {
          ORQ_ASSIGN_OR_RETURN(sub, BindSub(*ast.subquery));
          if (sub.output_cols.size() != 1) {
            return Status::InvalidArgument(
                "quantified subquery must return one column");
          }
          ORQ_ASSIGN_OR_RETURN(
              left, BindParam(*ast.children[0],
                              columns_->type(sub.output_cols[0])));
        } else {
          ORQ_ASSIGN_OR_RETURN(left, Bind(*ast.children[0]));
          ORQ_ASSIGN_OR_RETURN(sub, BindSub(*ast.subquery));
          if (sub.output_cols.size() != 1) {
            return Status::InvalidArgument(
                "quantified subquery must return one column");
          }
        }
        return MakeQuantified(ast.cmp, ast.quantifier, std::move(left),
                              sub.root);
      }
    }
    return Status::Internal("unhandled AST node");
  }

 private:
  Result<BoundQuery> BindSub(const SelectStmt& stmt) {
    return bind_subquery_(stmt, scope_);
  }

  static bool IsParam(const AstExpr& ast) {
    return ast.kind == AstExprKind::kParam;
  }

  /// Binds a `?` node whose type the call site inferred, recording the
  /// ordinal -> type assignment on the owning Binder.
  Result<ScalarExprPtr> BindParam(const AstExpr& ast, DataType type) {
    ORQ_RETURN_IF_ERROR(binder_->RecordParam(ast.param_index, type));
    return MakeParam(ast.param_index, type);
  }

  Result<ScalarExprPtr> BindBinary(const AstExpr& ast) {
    const std::string& op = ast.op;
    const bool l_param = IsParam(*ast.children[0]);
    const bool r_param = IsParam(*ast.children[1]);
    if (l_param || r_param) {
      if (op == "AND" || op == "OR") {
        // Boolean context fixes the type directly.
      } else if (op == "LIKE") {
        // Both sides of LIKE are strings.
      } else if (l_param && r_param) {
        return Status::InvalidArgument(
            "cannot infer parameter types: both sides of '" + op +
            "' are parameters");
      }
      ScalarExprPtr l;
      ScalarExprPtr r;
      if (op == "AND" || op == "OR" || op == "LIKE") {
        const DataType t =
            op == "LIKE" ? DataType::kString : DataType::kBool;
        if (l_param) {
          ORQ_ASSIGN_OR_RETURN(l, BindParam(*ast.children[0], t));
        } else {
          ORQ_ASSIGN_OR_RETURN(l, Bind(*ast.children[0]));
        }
        if (r_param) {
          ORQ_ASSIGN_OR_RETURN(r, BindParam(*ast.children[1], t));
        } else {
          ORQ_ASSIGN_OR_RETURN(r, Bind(*ast.children[1]));
        }
      } else if (l_param) {
        ORQ_ASSIGN_OR_RETURN(r, Bind(*ast.children[1]));
        ORQ_ASSIGN_OR_RETURN(l, BindParam(*ast.children[0], r->type));
      } else {
        ORQ_ASSIGN_OR_RETURN(l, Bind(*ast.children[0]));
        ORQ_ASSIGN_OR_RETURN(r, BindParam(*ast.children[1], l->type));
      }
      return FinishBinary(op, std::move(l), std::move(r));
    }
    ORQ_ASSIGN_OR_RETURN(ScalarExprPtr l, Bind(*ast.children[0]));
    ORQ_ASSIGN_OR_RETURN(ScalarExprPtr r, Bind(*ast.children[1]));
    return FinishBinary(op, std::move(l), std::move(r));
  }

  Result<ScalarExprPtr> FinishBinary(const std::string& op, ScalarExprPtr l,
                                     ScalarExprPtr r) {
    if (op == "AND") return MakeAnd2(std::move(l), std::move(r));
    if (op == "OR") return MakeOr({std::move(l), std::move(r)});
    if (op == "LIKE") return MakeLike(std::move(l), std::move(r));
    if (op == "+") return MakeArith(ArithOp::kAdd, std::move(l), std::move(r));
    if (op == "-") return MakeArith(ArithOp::kSub, std::move(l), std::move(r));
    if (op == "*") return MakeArith(ArithOp::kMul, std::move(l), std::move(r));
    if (op == "/") return MakeArith(ArithOp::kDiv, std::move(l), std::move(r));
    CompareOp cmp;
    if (op == "=") cmp = CompareOp::kEq;
    else if (op == "<>") cmp = CompareOp::kNe;
    else if (op == "<") cmp = CompareOp::kLt;
    else if (op == "<=") cmp = CompareOp::kLe;
    else if (op == ">") cmp = CompareOp::kGt;
    else if (op == ">=") cmp = CompareOp::kGe;
    else return Status::Unsupported("operator " + op);
    return MakeCompare(cmp, std::move(l), std::move(r));
  }

  Result<ScalarExprPtr> BindFunc(const AstExpr& ast) {
    if (!IsAggregateName(ast.name)) {
      return Status::Unsupported("function " + ast.name);
    }
    if (aggs_ == nullptr) {
      return Status::InvalidArgument(
          "aggregate " + ast.name + " not allowed in this context");
    }
    bool is_count_star =
        !ast.children.empty() && ast.children[0]->kind == AstExprKind::kStar;
    ScalarExprPtr arg;
    if (!is_count_star) {
      if (ast.children.size() != 1) {
        return Status::InvalidArgument(ast.name + " takes one argument");
      }
      // Aggregate arguments bind against the pre-aggregation scope; nested
      // aggregates are rejected.
      AggCollector* saved = aggs_;
      aggs_ = nullptr;
      Result<ScalarExprPtr> bound = Bind(*ast.children[0]);
      aggs_ = saved;
      if (!bound.ok()) return bound.status();
      arg = *bound;
    }
    if (EqualsIgnoreCase(ast.name, "count")) {
      if (is_count_star) {
        ColumnId id = aggs_->Register(AggFunc::kCountStar, nullptr, false,
                                      DataType::kInt64, "count");
        return CRef(id, DataType::kInt64);
      }
      ColumnId id = aggs_->Register(AggFunc::kCount, arg, ast.distinct,
                                    DataType::kInt64, "count");
      return CRef(id, DataType::kInt64);
    }
    if (EqualsIgnoreCase(ast.name, "sum")) {
      ColumnId id =
          aggs_->Register(AggFunc::kSum, arg, ast.distinct, arg->type, "sum");
      return CRef(id, arg->type);
    }
    if (EqualsIgnoreCase(ast.name, "min")) {
      ColumnId id =
          aggs_->Register(AggFunc::kMin, arg, false, arg->type, "min");
      return CRef(id, arg->type);
    }
    if (EqualsIgnoreCase(ast.name, "max")) {
      ColumnId id =
          aggs_->Register(AggFunc::kMax, arg, false, arg->type, "max");
      return CRef(id, arg->type);
    }
    // avg(e) decomposes into sum(e)/count(e), guarded against empty/all-NULL
    // groups (paper section 3.3: every aggregate gets local/global parts).
    DataType sum_type = arg->type;
    ColumnId sum_id =
        aggs_->Register(AggFunc::kSum, arg, ast.distinct, sum_type, "sum");
    ColumnId cnt_id = aggs_->Register(AggFunc::kCount, arg, ast.distinct,
                                      DataType::kInt64, "count");
    ScalarExprPtr cnt = CRef(cnt_id, DataType::kInt64);
    ScalarExprPtr division = MakeArith(
        ArithOp::kDiv,
        MakeArith(ArithOp::kMul, CRef(sum_id, sum_type), LitDouble(1.0)),
        cnt);
    return MakeCase({MakeCompare(CompareOp::kEq, cnt, LitInt(0)),
                     LitNull(DataType::kDouble), division},
                    DataType::kDouble);
  }

  Binder* binder_;
  Catalog* catalog_;
  ColumnManager* columns_;
  Binder::Scope* scope_;
  AggCollector* aggs_;
  std::function<Result<BoundQuery>(const SelectStmt&, Binder::Scope*)>
      bind_subquery_;
};

namespace {

bool AstHasAggregate(const AstExpr* ast) {
  if (ast == nullptr) return false;
  if (ast->kind == AstExprKind::kFuncCall && IsAggregateName(ast->name)) {
    return true;
  }
  // Do not descend into subqueries: their aggregates are theirs.
  for (const AstExprPtr& child : ast->children) {
    if (AstHasAggregate(child.get())) return true;
  }
  return false;
}

}  // namespace

Status Binder::RecordParam(int ordinal, DataType type) {
  if (ordinal < 0) {
    return Status::Internal("parameter with unassigned ordinal");
  }
  if (param_types_.size() <= static_cast<size_t>(ordinal)) {
    param_types_.resize(ordinal + 1, DataType::kInt64);
    param_seen_.resize(ordinal + 1, false);
  }
  if (param_seen_[ordinal]) {
    return Status::Internal("parameter ?" + std::to_string(ordinal + 1) +
                            " bound twice");
  }
  param_seen_[ordinal] = true;
  param_types_[ordinal] = type;
  return Status::OK();
}

Result<BoundQuery> Binder::Bind(const SelectStmt& stmt) {
  ORQ_ASSIGN_OR_RETURN(BoundQuery bound, BindSelect(stmt, nullptr));
  for (size_t i = 0; i < param_seen_.size(); ++i) {
    if (!param_seen_[i]) {
      return Status::InvalidArgument("parameter ?" + std::to_string(i + 1) +
                                     " was never bound");
    }
  }
  bound.param_types = param_types_;
  return bound;
}

Result<BoundQuery> Binder::BindSelect(const SelectStmt& stmt, Scope* outer) {
  ORQ_ASSIGN_OR_RETURN(BoundQuery left, BindBlock(stmt, outer));
  if (stmt.set_op == SelectStmt::SetOp::kNone) return left;
  ORQ_ASSIGN_OR_RETURN(BoundQuery right, BindSelect(*stmt.set_rhs, outer));
  if (left.output_cols.size() != right.output_cols.size()) {
    return Status::InvalidArgument("set operands have different arity");
  }
  std::vector<ColumnId> out_cols;
  for (size_t i = 0; i < left.output_cols.size(); ++i) {
    out_cols.push_back(columns_->NewColumn(
        left.output_names[i], columns_->type(left.output_cols[i]), true));
  }
  std::vector<std::vector<ColumnId>> maps = {left.output_cols,
                                             right.output_cols};
  BoundQuery result;
  result.output_cols = out_cols;
  result.output_names = left.output_names;
  if (stmt.set_op == SelectStmt::SetOp::kUnionAll) {
    result.root = MakeUnionAll({left.root, right.root}, std::move(out_cols),
                               std::move(maps));
  } else {
    result.root = MakeExceptAll(left.root, right.root, std::move(out_cols),
                                std::move(maps));
  }
  return result;
}

Result<BoundQuery> Binder::BindBlock(const SelectStmt& stmt, Scope* outer) {
  Scope scope;
  scope.parent = outer;

  // ---- FROM ----
  RelExprPtr rel;
  std::function<Result<RelExprPtr>(const TableRef&)> bind_ref =
      [&](const TableRef& ref) -> Result<RelExprPtr> {
    switch (ref.kind) {
      case TableRefKind::kBaseTable: {
        Table* table = catalog_->FindTable(ref.table_name);
        if (table == nullptr) {
          return Status::NotFound("unknown table: " + ref.table_name);
        }
        std::vector<ColumnId> ids;
        for (const ColumnSpec& col : table->columns()) {
          ColumnId id = columns_->NewColumn(col.name, col.type, col.nullable);
          ids.push_back(id);
          scope.Add(ref.alias, col.name, id);
        }
        return MakeGet(table, std::move(ids));
      }
      case TableRefKind::kDerivedTable: {
        // Derived tables are uncorrelated: bind against the outer scope
        // only (not FROM siblings).
        ORQ_ASSIGN_OR_RETURN(BoundQuery sub, BindSelect(*ref.derived, outer));
        for (size_t i = 0; i < sub.output_cols.size(); ++i) {
          scope.Add(ref.alias, sub.output_names[i], sub.output_cols[i]);
        }
        return sub.root;
      }
      case TableRefKind::kJoin: {
        ORQ_ASSIGN_OR_RETURN(RelExprPtr left, bind_ref(*ref.left));
        ORQ_ASSIGN_OR_RETURN(RelExprPtr right, bind_ref(*ref.right));
        ScalarExprPtr condition = TrueLiteral();
        if (ref.on_condition != nullptr) {
          ExprBinder expr_binder(
              this, catalog_, columns_.get(), &scope, nullptr,
              [this](const SelectStmt& sub, Scope* s) {
                return BindSelect(sub, s);
              });
          ORQ_ASSIGN_OR_RETURN(condition,
                               expr_binder.Bind(*ref.on_condition));
          if (condition->HasSubquery()) {
            return Status::Unsupported("subquery in ON clause");
          }
        }
        JoinKind kind =
            ref.join_kind == JoinKind::kCross ? JoinKind::kInner : ref.join_kind;
        return MakeJoin(kind, std::move(left), std::move(right),
                        std::move(condition));
      }
    }
    return Status::Internal("unhandled table ref");
  };

  if (stmt.from.empty()) {
    rel = MakeSingleRow();
  } else {
    ORQ_ASSIGN_OR_RETURN(rel, bind_ref(*stmt.from[0]));
    for (size_t i = 1; i < stmt.from.size(); ++i) {
      ORQ_ASSIGN_OR_RETURN(RelExprPtr next, bind_ref(*stmt.from[i]));
      rel = MakeJoin(JoinKind::kInner, std::move(rel), std::move(next),
                     TrueLiteral());
    }
  }

  auto subquery_binder = [this](const SelectStmt& sub, Scope* s) {
    return BindSelect(sub, s);
  };

  // ---- WHERE ----
  if (stmt.where != nullptr) {
    if (AstHasAggregate(stmt.where.get())) {
      return Status::InvalidArgument("aggregates not allowed in WHERE");
    }
    ExprBinder expr_binder(this, catalog_, columns_.get(), &scope, nullptr,
                           subquery_binder);
    ORQ_ASSIGN_OR_RETURN(ScalarExprPtr pred, expr_binder.Bind(*stmt.where));
    rel = MakeSelect(std::move(rel), std::move(pred));
  }

  // ---- aggregation ----
  bool has_group_by = !stmt.group_by.empty();
  bool has_aggs = AstHasAggregate(stmt.having.get());
  for (const SelectItem& item : stmt.items) {
    has_aggs |= AstHasAggregate(item.expr.get());
  }
  for (const OrderItem& item : stmt.order_by) {
    has_aggs |= AstHasAggregate(item.expr.get());
  }
  bool aggregate_query = has_group_by || has_aggs;

  ColumnSet group_cols;
  AggCollector collector;
  collector.columns = columns_.get();

  if (aggregate_query) {
    // Bind GROUP BY expressions. Plain column refs group directly; computed
    // expressions get a pre-projection.
    std::vector<ProjectItem> pre_items;
    // Computed grouping expressions; SELECT/HAVING occurrences of a
    // structurally equal expression resolve to the grouping column.
    std::vector<std::pair<ScalarExprPtr, ColumnId>> group_exprs;
    ExprBinder group_binder(this, catalog_, columns_.get(), &scope, nullptr,
                            subquery_binder);
    for (const AstExprPtr& g : stmt.group_by) {
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr bound, group_binder.Bind(*g));
      if (bound->HasSubquery()) {
        return Status::Unsupported("subquery in GROUP BY");
      }
      if (bound->kind == ScalarKind::kColumnRef) {
        group_cols.Add(bound->column);
      } else {
        ColumnId id = columns_->NewColumn("groupexpr", bound->type, true);
        pre_items.push_back(ProjectItem{id, bound});
        group_exprs.emplace_back(bound, id);
        group_cols.Add(id);
      }
    }
    if (!pre_items.empty()) {
      rel = MakeProject(rel, std::move(pre_items), rel->OutputSet());
    }
    std::function<ScalarExprPtr(const ScalarExprPtr&)> fold_group_exprs =
        [&](const ScalarExprPtr& e) -> ScalarExprPtr {
      if (e == nullptr) return e;
      for (const auto& [expr, id] : group_exprs) {
        if (ScalarEquals(e, expr)) return CRef(*columns_, id);
      }
      if (e->children.empty()) return e;
      auto copy = std::make_shared<ScalarExpr>(*e);
      for (ScalarExprPtr& child : copy->children) {
        child = fold_group_exprs(child);
      }
      return copy;
    };

    // Bind SELECT items and HAVING with aggregate collection.
    ExprBinder agg_binder(this, catalog_, columns_.get(), &scope, &collector,
                          subquery_binder);
    std::vector<ProjectItem> out_items;
    std::vector<std::string> out_names;
    ColumnSet group_or_agg = group_cols;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.expr == nullptr) {
        return Status::InvalidArgument("'*' not allowed with GROUP BY");
      }
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr bound, agg_binder.Bind(*item.expr));
      bound = fold_group_exprs(bound);
      std::string name =
          !item.alias.empty()
              ? item.alias
              : (item.expr->kind == AstExprKind::kColumn
                     ? item.expr->name
                     : "col" + std::to_string(i + 1));
      ColumnId id = columns_->NewColumn(name, bound->type, true);
      out_items.push_back(ProjectItem{id, std::move(bound)});
      out_names.push_back(name);
    }
    ScalarExprPtr having;
    if (stmt.having != nullptr) {
      ORQ_ASSIGN_OR_RETURN(having, agg_binder.Bind(*stmt.having));
      having = fold_group_exprs(having);
    }

    for (const AggItem& item : collector.items) group_or_agg.Add(item.output);
    // Validate: every free column in post-aggregation expressions must be a
    // grouping column or an aggregate output.
    for (const ProjectItem& item : out_items) {
      ColumnSet refs;
      CollectColumnRefsDeep(item.expr, &refs);
      // References bound from outer scopes are permitted (correlated
      // subquery within select list binds before aggregation... treated as
      // parameters); only columns visible in this block are checked.
      ColumnSet visible = rel->OutputSet();
      for (ColumnId id : refs) {
        if (visible.Contains(id) && !group_or_agg.Contains(id)) {
          return Status::InvalidArgument(
              "column " + columns_->name(id) +
              " must appear in GROUP BY or inside an aggregate");
        }
      }
    }

    rel = has_group_by
              ? MakeGroupBy(rel, group_cols, std::move(collector.items))
              : MakeScalarGroupBy(rel, std::move(collector.items));
    if (having != nullptr) {
      rel = MakeSelect(rel, std::move(having));
    }

    BoundQuery result;
    for (const ProjectItem& item : out_items) {
      result.output_cols.push_back(item.output);
    }
    result.output_names = std::move(out_names);
    std::vector<ProjectItem> items_copy = out_items;
    rel = MakeProject(rel, std::move(out_items), ColumnSet());
    ORQ_RETURN_IF_ERROR(
        ApplyOrderAndDistinct(stmt, &scope, items_copy, &rel, &result));
    result.root = rel;
    return result;
  }

  // ---- non-aggregate SELECT list ----
  ExprBinder expr_binder(this, catalog_, columns_.get(), &scope, nullptr,
                         subquery_binder);
  std::vector<ProjectItem> out_items;
  BoundQuery result;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.expr == nullptr) {
      // '*': every column of the FROM scope, in declaration order.
      for (const Scope::Entry& e : scope.entries) {
        ColumnId id =
            columns_->NewColumn(e.name, columns_->type(e.id), true);
        out_items.push_back(ProjectItem{id, CRef(*columns_, e.id)});
        result.output_cols.push_back(id);
        result.output_names.push_back(e.name);
      }
      continue;
    }
    ORQ_ASSIGN_OR_RETURN(ScalarExprPtr bound, expr_binder.Bind(*item.expr));
    std::string name =
        !item.alias.empty()
            ? item.alias
            : (item.expr->kind == AstExprKind::kColumn
                   ? item.expr->name
                   : "col" + std::to_string(i + 1));
    ColumnId id = columns_->NewColumn(name, bound->type, true);
    out_items.push_back(ProjectItem{id, std::move(bound)});
    result.output_cols.push_back(id);
    result.output_names.push_back(name);
  }
  std::vector<ProjectItem> items_copy = out_items;
  rel = MakeProject(rel, std::move(out_items), ColumnSet());
  ORQ_RETURN_IF_ERROR(
      ApplyOrderAndDistinct(stmt, &scope, items_copy, &rel, &result));
  result.root = rel;
  return result;
}

Status Binder::ApplyOrderAndDistinct(const SelectStmt& stmt, Scope* scope,
                                     const std::vector<ProjectItem>& out_items,
                                     RelExprPtr* rel, BoundQuery* result) {
  if (stmt.distinct) {
    *rel = MakeGroupBy(*rel, ColumnSet(result->output_cols), {});
  }
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    bool hidden_sort_cols = false;
    for (const OrderItem& item : stmt.order_by) {
      SortKey key;
      key.ascending = item.ascending;
      // ORDER BY <ordinal>
      if (item.expr->kind == AstExprKind::kLiteral &&
          item.expr->literal.type() == DataType::kInt64 &&
          !item.expr->literal.is_null()) {
        int64_t ordinal = item.expr->literal.int64_value();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(result->output_cols.size())) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        key.expr = CRef(*columns_, result->output_cols[ordinal - 1]);
        keys.push_back(std::move(key));
        continue;
      }
      // ORDER BY <output alias>
      if (item.expr->kind == AstExprKind::kColumn &&
          item.expr->qualifier.empty()) {
        bool matched = false;
        for (size_t i = 0; i < result->output_names.size(); ++i) {
          if (EqualsIgnoreCase(result->output_names[i], item.expr->name)) {
            key.expr = CRef(*columns_, result->output_cols[i]);
            matched = true;
            break;
          }
        }
        if (matched) {
          keys.push_back(std::move(key));
          continue;
        }
      }
      // Fall back to binding against the FROM scope; only valid when the
      // referenced columns survive into the sort input, which holds for
      // column refs that the select list projects — otherwise report.
      ExprBinder expr_binder(this, catalog_, columns_.get(), scope, nullptr,
                             [this](const SelectStmt& sub, Scope* s) {
                               return BindSelect(sub, s);
                             });
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr bound, expr_binder.Bind(*item.expr));
      // An expression structurally equal to a select item sorts by that
      // output column (e.g. ORDER BY c_nationkey when the select list
      // contains c_nationkey under a generated name).
      for (const ProjectItem& out : out_items) {
        if (ScalarEquals(bound, out.expr)) {
          bound = CRef(*columns_, out.output);
          break;
        }
      }
      ColumnSet refs;
      CollectColumnRefs(bound, &refs);
      ColumnSet missing = refs.Minus((*rel)->OutputSet());
      if (!missing.empty()) {
        // SQL permits ordering by columns the select list does not
        // project; forward them through the final Project as hidden
        // columns (trimmed again after the sort).
        if ((*rel)->kind == RelKind::kProject &&
            missing.IsSubsetOf((*rel)->children[0]->OutputSet())) {
          RelExprPtr widened = CloneWithChildren(**rel, (*rel)->children);
          widened->passthrough = widened->passthrough.Union(missing);
          *rel = widened;
          hidden_sort_cols = true;
        } else {
          return Status::Unsupported(
              "ORDER BY expression must reference output columns");
        }
      }
      key.expr = std::move(bound);
      keys.push_back(std::move(key));
    }
    *rel = MakeSort(*rel, std::move(keys), stmt.limit);
    if (hidden_sort_cols) {
      // Trim the hidden sort columns back out of the output.
      *rel = MakeProject(*rel, {}, ColumnSet(result->output_cols));
    }
  } else if (stmt.limit >= 0) {
    *rel = MakeSort(*rel, {}, stmt.limit);
  }
  return Status::OK();
}

}  // namespace orq
