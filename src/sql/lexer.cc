#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/str_util.h"

namespace orq {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "GROUP",   "BY",       "HAVING",
      "ORDER",  "ASC",    "DESC",   "LIMIT",   "AS",       "AND",
      "OR",     "NOT",    "IN",     "EXISTS",  "BETWEEN",  "LIKE",
      "IS",     "NULL",   "CASE",   "WHEN",    "THEN",     "ELSE",
      "END",    "JOIN",   "LEFT",   "RIGHT",   "OUTER",    "INNER",
      "CROSS",  "ON",     "UNION",  "ALL",     "ANY",      "SOME",
      "EXCEPT", "DISTINCT", "DATE", "TRUE",    "FALSE",    "TOP",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      for (char& ch : upper) ch = std::toupper(static_cast<unsigned char>(ch));
      if (Keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') is_float = true;
        ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      token.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      token.text = sql.substr(start, i - start);
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(token.position));
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
    } else {
      // Operators / punctuation, longest match first.
      static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "||"};
      token.type = TokenType::kOperator;
      bool matched = false;
      if (i + 1 < n) {
        std::string two = sql.substr(i, 2);
        for (const char* op : kTwoChar) {
          if (two == op) {
            token.text = two == "!=" ? "<>" : two;
            i += 2;
            matched = true;
            break;
          }
        }
      }
      if (!matched) {
        static const std::string kSingle = "+-*/%(),.<>=?";
        if (kSingle.find(c) == std::string::npos) {
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at " +
              std::to_string(i));
        }
        token.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace orq
