#ifndef ORQ_SQL_PARSER_H_
#define ORQ_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace orq {

/// Parses one SQL SELECT statement (optionally a UNION ALL / EXCEPT ALL
/// chain) into an AST. Errors carry the source offset.
Result<SelectStmtPtr> ParseSql(const std::string& sql);

}  // namespace orq

#endif  // ORQ_SQL_PARSER_H_
