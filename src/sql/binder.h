#ifndef ORQ_SQL_BINDER_H_
#define ORQ_SQL_BINDER_H_

#include <string>
#include <vector>

#include "algebra/rel_expr.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace orq {

/// Result of binding: a logical operator tree whose OutputColumns() are
/// exactly the SELECT-list columns, in order, plus their display names.
/// Subqueries are still embedded in scalar expressions (the mutual-recursion
/// form of paper section 2.1); ApplyIntroduction removes them.
struct BoundQuery {
  RelExprPtr root;
  std::vector<ColumnId> output_cols;
  std::vector<std::string> output_names;
  /// Types of `?` positional parameters, indexed by ordinal (parse order).
  /// Inferred from the bind site (comparison/arithmetic sibling, IN probe,
  /// BETWEEN bounds, subquery output column); binding fails when a
  /// parameter's type cannot be inferred. Only set on the top-level result.
  std::vector<DataType> param_types;
};

/// Translates a parsed AST into the algebra, resolving names against the
/// catalog, allocating column ids, decomposing avg into sum/count, and
/// normalizing DISTINCT into GroupBy.
class Binder {
 public:
  Binder(Catalog* catalog, ColumnManagerPtr columns)
      : catalog_(catalog), columns_(std::move(columns)) {}

  Result<BoundQuery> Bind(const SelectStmt& stmt);

 private:
  friend class ExprBinder;
  struct Scope;

  Result<BoundQuery> BindSelect(const SelectStmt& stmt, Scope* outer);
  Result<BoundQuery> BindBlock(const SelectStmt& stmt, Scope* outer);
  Status ApplyOrderAndDistinct(const SelectStmt& stmt, Scope* scope,
                               const std::vector<ProjectItem>& out_items,
                               RelExprPtr* rel, BoundQuery* result);
  Status RecordParam(int ordinal, DataType type);

  Catalog* catalog_;
  ColumnManagerPtr columns_;
  // Parameter ordinal -> inferred type, grown as `?` nodes are bound.
  std::vector<DataType> param_types_;
  std::vector<bool> param_seen_;
};

}  // namespace orq

#endif  // ORQ_SQL_BINDER_H_
