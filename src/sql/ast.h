#ifndef ORQ_SQL_AST_H_
#define ORQ_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/rel_expr.h"
#include "algebra/scalar_expr.h"
#include "common/value.h"

namespace orq {

struct AstExpr;
struct SelectStmt;
using AstExprPtr = std::unique_ptr<AstExpr>;
using SelectStmtPtr = std::unique_ptr<SelectStmt>;

enum class AstExprKind {
  kColumn,        // [qualifier.]name
  kLiteral,
  kParam,         // `?` positional parameter; param_index in parse order
  kStar,          // count(*) argument marker
  kBinary,        // op in {AND OR = <> < <= > >= + - * / LIKE}
  kUnary,         // op in {NOT, -}
  kIsNull,        // child0; payload negated for IS NOT NULL
  kFuncCall,      // name + args (+ distinct flag for aggregates)
  kCase,          // children: when,then,... [,else]
  kInList,        // child0 = probe; rest = list; negated for NOT IN
  kBetween,       // children: value, lo, hi; negated for NOT BETWEEN
  kScalarSubquery,
  kExists,        // negated for NOT EXISTS
  kInSubquery,    // child0 = probe; negated for NOT IN
  kQuantified,    // child0 = left; cmp + quantifier
};

/// Parsed (unbound) scalar expression.
struct AstExpr {
  AstExprKind kind;
  std::vector<AstExprPtr> children;

  std::string qualifier;  // kColumn: optional table alias
  std::string name;       // kColumn / kFuncCall
  Value literal;          // kLiteral
  std::string op;         // kBinary / kUnary, token text ("=", "AND", ...)
  bool negated = false;
  bool distinct = false;  // kFuncCall: count(distinct x)
  CompareOp cmp = CompareOp::kEq;        // kQuantified
  Quantifier quantifier = Quantifier::kAny;
  SelectStmtPtr subquery;  // subquery kinds
  int param_index = -1;    // kParam: 0-based ordinal in parse order
  size_t position = 0;     // source offset for error messages
};

enum class TableRefKind { kBaseTable, kDerivedTable, kJoin };

/// Parsed FROM-clause item.
struct TableRef {
  TableRefKind kind = TableRefKind::kBaseTable;
  // kBaseTable
  std::string table_name;
  std::string alias;  // also names kDerivedTable
  // kDerivedTable
  SelectStmtPtr derived;
  // kJoin
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  JoinKind join_kind = JoinKind::kInner;
  AstExprPtr on_condition;  // nullptr for CROSS JOIN
};

struct SelectItem {
  AstExprPtr expr;     // nullptr means bare '*'
  std::string alias;
};

struct OrderItem {
  AstExprPtr expr;
  bool ascending = true;
};

/// Parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::unique_ptr<TableRef>> from;  // comma-separated refs
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;
  AstExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
  // UNION ALL / EXCEPT ALL chain: when set, this stmt is `this_op` applied
  // to the current block and `set_rhs`.
  enum class SetOp { kNone, kUnionAll, kExceptAll };
  SetOp set_op = SetOp::kNone;
  SelectStmtPtr set_rhs;
};

}  // namespace orq

#endif  // ORQ_SQL_AST_H_
