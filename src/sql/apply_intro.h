#ifndef ORQ_SQL_APPLY_INTRO_H_
#define ORQ_SQL_APPLY_INTRO_H_

#include "algebra/rel_expr.h"
#include "common/result.h"

namespace orq {

/// Removes the mutual recursion between scalar and relational operators
/// (paper section 2.2): every subquery embedded in a scalar expression is
/// made explicit as an Apply operator below the consuming relational node,
/// and the scalar expression then refers to the Apply-produced column.
///
/// * EXISTS / IN / quantified comparisons that appear as top-level WHERE
///   conjuncts become Apply-semijoin / Apply-antijoin (section 2.4).
/// * Scalar subqueries become Apply-cross when the inner produces exactly
///   one row (scalar aggregate), otherwise OuterApply over Max1row.
/// * Boolean subqueries in other positions are rewritten through scalar
///   count aggregates with full three-valued-logic fidelity.
///
/// The result contains no ScalarKind::k*Subquery nodes.
Result<RelExprPtr> IntroduceApplies(RelExprPtr root, ColumnManager* columns);

}  // namespace orq

#endif  // ORQ_SQL_APPLY_INTRO_H_
