#ifndef ORQ_SQL_LEXER_H_
#define ORQ_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace orq {

enum class TokenType {
  kIdentifier,
  kKeyword,     // normalized upper-case in `text`
  kInteger,
  kFloat,
  kString,      // quoted content, unescaped
  kOperator,    // punctuation / comparison text, e.g. "<=", "(", ","
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t position = 0;  // byte offset for error messages
};

/// Tokenizes SQL text. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers keep their original spelling.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace orq

#endif  // ORQ_SQL_LEXER_H_
