#include "sql/apply_intro.h"

#include <functional>

#include "algebra/expr_util.h"
#include "algebra/props.h"

namespace orq {

namespace {

/// True when the tree is statically known to produce *exactly* one row
/// (scalar aggregates do; this is what lets a scalar subquery use plain
/// Apply-cross without a Max1row guard).
bool ExactlyOneRow(const RelExpr& expr) {
  switch (expr.kind) {
    case RelKind::kGroupBy:
      return expr.scalar_agg;
    case RelKind::kSingleRow:
      return true;
    case RelKind::kProject:
      return ExactlyOneRow(*expr.children[0]);
    case RelKind::kSort:
      return expr.limit != 0 && ExactlyOneRow(*expr.children[0]);
    default:
      return false;
  }
}

class ApplyIntroducer {
 public:
  explicit ApplyIntroducer(ColumnManager* columns) : columns_(columns) {}

  Result<RelExprPtr> Rewrite(const RelExprPtr& node) {
    // Children first (bottom-up).
    std::vector<RelExprPtr> children;
    bool changed = false;
    for (const RelExprPtr& child : node->children) {
      ORQ_ASSIGN_OR_RETURN(RelExprPtr rewritten, Rewrite(child));
      changed |= rewritten != child;
      children.push_back(std::move(rewritten));
    }
    RelExprPtr current =
        changed ? CloneWithChildren(*node, std::move(children)) : node;

    switch (current->kind) {
      case RelKind::kSelect:
        return RewriteSelect(current);
      case RelKind::kProject:
        return RewriteProject(current);
      default: {
        // No other operator may carry subqueries in its payload.
        if (PayloadHasSubquery(*current)) {
          return Status::Unsupported(
              "subquery in unsupported position (only WHERE/HAVING/SELECT "
              "list are supported)");
        }
        return current;
      }
    }
  }

 private:
  static bool PayloadHasSubquery(const RelExpr& node) {
    if (node.predicate && node.predicate->HasSubquery()) return true;
    for (const ProjectItem& item : node.proj_items) {
      if (item.expr->HasSubquery()) return true;
    }
    for (const AggItem& agg : node.aggs) {
      if (agg.arg && agg.arg->HasSubquery()) return true;
    }
    for (const SortKey& key : node.sort_keys) {
      if (key.expr && key.expr->HasSubquery()) return true;
    }
    return false;
  }

  /// Select: top-level existential conjuncts become semi/anti Apply;
  /// everything else goes through scalar extraction.
  Result<RelExprPtr> RewriteSelect(const RelExprPtr& node) {
    RelExprPtr input = node->children[0];
    std::vector<ScalarExprPtr> remaining;
    for (const ScalarExprPtr& conjunct : SplitConjuncts(node->predicate)) {
      switch (conjunct->kind) {
        case ScalarKind::kExistsSubquery: {
          ORQ_ASSIGN_OR_RETURN(RelExprPtr sub, Rewrite(conjunct->rel));
          input = MakeApply(
              conjunct->negated ? ApplyKind::kAnti : ApplyKind::kSemi, input,
              sub);
          continue;
        }
        case ScalarKind::kInSubquery: {
          if (conjunct->children[0]->HasSubquery()) break;  // nested: general
          ORQ_ASSIGN_OR_RETURN(RelExprPtr sub, Rewrite(conjunct->rel));
          ColumnId y = sub->OutputColumns()[0];
          ScalarExprPtr eq =
              Eq(conjunct->children[0], CRef(*columns_, y));
          if (!conjunct->negated) {
            input = MakeApply(ApplyKind::kSemi, input,
                              MakeSelect(sub, eq));
          } else {
            // NOT IN keeps a row only when no inner row makes (x = y)
            // true or unknown.
            ScalarExprPtr cond = MakeOr({eq, MakeIsNull(eq)});
            input = MakeApply(ApplyKind::kAnti, input,
                              MakeSelect(sub, cond));
          }
          continue;
        }
        case ScalarKind::kQuantifiedCompare: {
          if (conjunct->children[0]->HasSubquery()) break;
          ORQ_ASSIGN_OR_RETURN(RelExprPtr sub, Rewrite(conjunct->rel));
          ColumnId y = sub->OutputColumns()[0];
          ScalarExprPtr cmp = MakeCompare(
              conjunct->cmp, conjunct->children[0], CRef(*columns_, y));
          if (conjunct->quantifier == Quantifier::kAny) {
            input = MakeApply(ApplyKind::kSemi, input,
                              MakeSelect(sub, cmp));
          } else {
            // ALL: reject the row when some inner row makes the comparison
            // not-true (false or unknown).
            ScalarExprPtr not_true = MakeOr(
                {MakeCompare(NegateCompare(conjunct->cmp),
                             conjunct->children[0], CRef(*columns_, y)),
                 MakeIsNull(cmp)});
            input = MakeApply(ApplyKind::kAnti, input,
                              MakeSelect(sub, not_true));
          }
          continue;
        }
        default:
          break;
      }
      if (conjunct->HasSubquery()) {
        ORQ_ASSIGN_OR_RETURN(ScalarExprPtr rewritten,
                             ExtractSubqueries(conjunct, &input));
        remaining.push_back(std::move(rewritten));
      } else {
        remaining.push_back(conjunct);
      }
    }
    if (remaining.empty()) return input;
    return MakeSelect(input, MakeAnd(std::move(remaining)));
  }

  Result<RelExprPtr> RewriteProject(const RelExprPtr& node) {
    RelExprPtr input = node->children[0];
    std::vector<ProjectItem> items;
    bool changed = false;
    for (const ProjectItem& item : node->proj_items) {
      if (!item.expr->HasSubquery()) {
        items.push_back(item);
        continue;
      }
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr rewritten,
                           ExtractSubqueries(item.expr, &input));
      items.push_back(ProjectItem{item.output, std::move(rewritten)});
      changed = true;
    }
    if (!changed && input == node->children[0]) return node;
    RelExprPtr out = CloneWithChildren(*node, {input});
    out->proj_items = std::move(items);
    return out;
  }

  /// Rewrites every subquery node inside `expr`, stacking Apply operators
  /// onto `*input`, and returns the subquery-free expression.
  Result<ScalarExprPtr> ExtractSubqueries(const ScalarExprPtr& expr,
                                          RelExprPtr* input) {
    if (expr == nullptr) return expr;
    switch (expr->kind) {
      case ScalarKind::kScalarSubquery: {
        ORQ_ASSIGN_OR_RETURN(RelExprPtr sub, Rewrite(expr->rel));
        ColumnId value = sub->OutputColumns()[0];
        if (ExactlyOneRow(*sub)) {
          *input = MakeApply(ApplyKind::kCross, *input, sub);
        } else if (MaxOneRow(*sub)) {
          *input = MakeApply(ApplyKind::kOuter, *input, sub);
        } else {
          *input = MakeApply(ApplyKind::kOuter, *input, MakeMax1row(sub));
        }
        return CRef(*columns_, value);
      }
      case ScalarKind::kExistsSubquery: {
        // General-position EXISTS: count(*) > 0 (section 2.4).
        ORQ_ASSIGN_OR_RETURN(RelExprPtr sub, Rewrite(expr->rel));
        ColumnId cnt =
            columns_->NewColumn("cnt", DataType::kInt64, false);
        RelExprPtr agg = MakeScalarGroupBy(
            sub, {AggItem{AggFunc::kCountStar, nullptr, cnt, false}});
        *input = MakeApply(ApplyKind::kCross, *input, agg);
        CompareOp op = expr->negated ? CompareOp::kEq : CompareOp::kGt;
        return MakeCompare(op, CRef(cnt, DataType::kInt64), LitInt(0));
      }
      case ScalarKind::kInSubquery:
      case ScalarKind::kQuantifiedCompare: {
        // General-position IN / quantified comparison: two counters keep
        // the full three-valued result.
        ORQ_ASSIGN_OR_RETURN(ScalarExprPtr probe,
                             ExtractSubqueries(expr->children[0], input));
        ORQ_ASSIGN_OR_RETURN(RelExprPtr sub, Rewrite(expr->rel));
        ColumnId y = sub->OutputColumns()[0];
        ScalarExprPtr cmp;
        bool all_quantifier = false;
        if (expr->kind == ScalarKind::kInSubquery) {
          cmp = Eq(probe, CRef(*columns_, y));
        } else {
          all_quantifier = expr->quantifier == Quantifier::kAll;
          CompareOp op = all_quantifier ? NegateCompare(expr->cmp) : expr->cmp;
          cmp = MakeCompare(op, probe, CRef(*columns_, y));
        }
        // m = #rows where cmp is true; u = #rows where cmp is unknown.
        ScalarExprPtr one_if_match =
            MakeCase({cmp, LitInt(1)}, DataType::kInt64);
        ScalarExprPtr one_if_unknown =
            MakeCase({MakeIsNull(cmp), LitInt(1)}, DataType::kInt64);
        ColumnId m = columns_->NewColumn("m", DataType::kInt64, false);
        ColumnId u = columns_->NewColumn("u", DataType::kInt64, false);
        RelExprPtr agg = MakeScalarGroupBy(
            sub, {AggItem{AggFunc::kCount, one_if_match, m, false},
                  AggItem{AggFunc::kCount, one_if_unknown, u, false}});
        *input = MakeApply(ApplyKind::kCross, *input, agg);
        ScalarExprPtr m_pos =
            MakeCompare(CompareOp::kGt, CRef(m, DataType::kInt64), LitInt(0));
        ScalarExprPtr u_pos =
            MakeCompare(CompareOp::kGt, CRef(u, DataType::kInt64), LitInt(0));
        // IN / ANY:  m>0 -> TRUE; else u>0 -> NULL; else FALSE.
        // ALL (cmp negated above): m>0 -> FALSE; else u>0 -> NULL; else TRUE.
        ScalarExprPtr on_match = LitBool(!all_quantifier);
        ScalarExprPtr on_exhaust = LitBool(all_quantifier);
        ScalarExprPtr value =
            MakeCase({m_pos, on_match, u_pos, LitNull(DataType::kBool),
                      on_exhaust},
                     DataType::kBool);
        if (expr->kind == ScalarKind::kInSubquery && expr->negated) {
          return MakeNot(value);
        }
        return value;
      }
      default:
        break;
    }
    bool changed = false;
    std::vector<ScalarExprPtr> children;
    children.reserve(expr->children.size());
    for (const ScalarExprPtr& child : expr->children) {
      ORQ_ASSIGN_OR_RETURN(ScalarExprPtr rewritten,
                           ExtractSubqueries(child, input));
      changed |= rewritten != child;
      children.push_back(std::move(rewritten));
    }
    if (!changed) return expr;
    auto copy = std::make_shared<ScalarExpr>(*expr);
    copy->children = std::move(children);
    return copy;
  }

  ColumnManager* columns_;
};

}  // namespace

Result<RelExprPtr> IntroduceApplies(RelExprPtr root, ColumnManager* columns) {
  ApplyIntroducer introducer(columns);
  return introducer.Rewrite(root);
}

}  // namespace orq
