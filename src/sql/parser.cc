#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace orq {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmtPtr> ParseStatement() {
    ORQ_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect());
    if (!AtEnd()) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  // ---- token helpers ----
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool MatchKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool PeekOp(const std::string& op) const {
    return Peek().type == TokenType::kOperator && Peek().text == op;
  }
  bool MatchOp(const std::string& op) {
    if (PeekOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().position) +
                                   " (near '" + Peek().text + "')");
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) return Error("expected " + kw);
    return Status::OK();
  }
  Status ExpectOp(const std::string& op) {
    if (!MatchOp(op)) return Error("expected '" + op + "'");
    return Status::OK();
  }

  // ---- statement ----
  Result<SelectStmtPtr> ParseSelect() {
    ORQ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    if (MatchKeyword("TOP")) {
      if (Peek().type != TokenType::kInteger) return Error("expected count");
      stmt->limit = std::atoll(Advance().text.c_str());
    }
    if (MatchKeyword("DISTINCT")) stmt->distinct = true;
    // select list
    do {
      SelectItem item;
      if (PeekOp("*")) {
        ++pos_;
        item.expr = nullptr;
      } else {
        ORQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("AS")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected alias");
          }
          item.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
    } while (MatchOp(","));

    if (MatchKeyword("FROM")) {
      do {
        ORQ_ASSIGN_OR_RETURN(auto ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
      } while (MatchOp(","));
    }
    if (MatchKeyword("WHERE")) {
      ORQ_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      ORQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        ORQ_ASSIGN_OR_RETURN(auto expr, ParseExpr());
        stmt->group_by.push_back(std::move(expr));
      } while (MatchOp(","));
    }
    if (MatchKeyword("HAVING")) {
      ORQ_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    // Set operations bind before ORDER BY / LIMIT of the full statement;
    // for simplicity ORDER BY applies to the left block only if it precedes
    // the set op (we parse set-op first, standard enough for our subset).
    if (MatchKeyword("UNION")) {
      ORQ_RETURN_IF_ERROR(ExpectKeyword("ALL"));
      stmt->set_op = SelectStmt::SetOp::kUnionAll;
      ORQ_ASSIGN_OR_RETURN(stmt->set_rhs, ParseSelect());
      return stmt;
    }
    if (MatchKeyword("EXCEPT")) {
      ORQ_RETURN_IF_ERROR(ExpectKeyword("ALL"));
      stmt->set_op = SelectStmt::SetOp::kExceptAll;
      ORQ_ASSIGN_OR_RETURN(stmt->set_rhs, ParseSelect());
      return stmt;
    }
    if (MatchKeyword("ORDER")) {
      ORQ_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        ORQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          item.ascending = false;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (MatchOp(","));
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) return Error("expected count");
      stmt->limit = std::atoll(Advance().text.c_str());
    }
    return stmt;
  }

  // ---- FROM clause ----
  Result<std::unique_ptr<TableRef>> ParsePrimaryTableRef() {
    auto ref = std::make_unique<TableRef>();
    if (MatchOp("(")) {
      ref->kind = TableRefKind::kDerivedTable;
      ORQ_ASSIGN_OR_RETURN(ref->derived, ParseSelect());
      ORQ_RETURN_IF_ERROR(ExpectOp(")"));
      MatchKeyword("AS");
      if (Peek().type != TokenType::kIdentifier) {
        return Error("derived table requires an alias");
      }
      ref->alias = Advance().text;
      return ref;
    }
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected table name");
    }
    ref->kind = TableRefKind::kBaseTable;
    ref->table_name = Advance().text;
    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) return Error("expected alias");
      ref->alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref->alias = Advance().text;
    } else {
      ref->alias = ref->table_name;
    }
    return ref;
  }

  Result<std::unique_ptr<TableRef>> ParseTableRef() {
    ORQ_ASSIGN_OR_RETURN(auto left, ParsePrimaryTableRef());
    while (true) {
      JoinKind kind;
      bool has_on = true;
      if (MatchKeyword("JOIN") ||
          (PeekKeyword("INNER") && (Advance(), MatchKeyword("JOIN")))) {
        kind = JoinKind::kInner;
      } else if (PeekKeyword("LEFT")) {
        ++pos_;
        MatchKeyword("OUTER");
        ORQ_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        kind = JoinKind::kLeftOuter;
      } else if (PeekKeyword("CROSS")) {
        ++pos_;
        ORQ_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        kind = JoinKind::kCross;
        has_on = false;
      } else {
        break;
      }
      ORQ_ASSIGN_OR_RETURN(auto right, ParsePrimaryTableRef());
      auto join = std::make_unique<TableRef>();
      join->kind = TableRefKind::kJoin;
      join->join_kind = kind;
      join->left = std::move(left);
      join->right = std::move(right);
      if (has_on) {
        ORQ_RETURN_IF_ERROR(ExpectKeyword("ON"));
        ORQ_ASSIGN_OR_RETURN(join->on_condition, ParseExpr());
      }
      left = std::move(join);
    }
    return left;
  }

  // ---- expressions ----
  AstExprPtr NewExpr(AstExprKind kind) {
    auto e = std::make_unique<AstExpr>();
    e->kind = kind;
    e->position = Peek().position;
    return e;
  }

  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    ORQ_ASSIGN_OR_RETURN(auto left, ParseAnd());
    while (MatchKeyword("OR")) {
      ORQ_ASSIGN_OR_RETURN(auto right, ParseAnd());
      auto node = NewExpr(AstExprKind::kBinary);
      node->op = "OR";
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseAnd() {
    ORQ_ASSIGN_OR_RETURN(auto left, ParseNot());
    while (MatchKeyword("AND")) {
      ORQ_ASSIGN_OR_RETURN(auto right, ParseNot());
      auto node = NewExpr(AstExprKind::kBinary);
      node->op = "AND";
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      ORQ_ASSIGN_OR_RETURN(auto child, ParseNot());
      // NOT EXISTS / NOT IN get folded into the child's negated flag.
      if (child->kind == AstExprKind::kExists ||
          child->kind == AstExprKind::kInSubquery ||
          child->kind == AstExprKind::kInList ||
          child->kind == AstExprKind::kBetween ||
          child->kind == AstExprKind::kIsNull) {
        child->negated = !child->negated;
        return child;
      }
      auto node = NewExpr(AstExprKind::kUnary);
      node->op = "NOT";
      node->children.push_back(std::move(child));
      return node;
    }
    return ParsePredicate();
  }

  static bool TokenToCompareOp(const std::string& text, CompareOp* op) {
    if (text == "=") *op = CompareOp::kEq;
    else if (text == "<>") *op = CompareOp::kNe;
    else if (text == "<") *op = CompareOp::kLt;
    else if (text == "<=") *op = CompareOp::kLe;
    else if (text == ">") *op = CompareOp::kGt;
    else if (text == ">=") *op = CompareOp::kGe;
    else return false;
    return true;
  }

  Result<AstExprPtr> ParsePredicate() {
    ORQ_ASSIGN_OR_RETURN(auto left, ParseAddSub());
    // comparison / quantified comparison
    CompareOp cmp;
    if (Peek().type == TokenType::kOperator &&
        TokenToCompareOp(Peek().text, &cmp)) {
      ++pos_;
      if (PeekKeyword("ALL") || PeekKeyword("ANY") || PeekKeyword("SOME")) {
        Quantifier q = PeekKeyword("ALL") ? Quantifier::kAll : Quantifier::kAny;
        ++pos_;
        ORQ_RETURN_IF_ERROR(ExpectOp("("));
        ORQ_ASSIGN_OR_RETURN(auto sub, ParseSelect());
        ORQ_RETURN_IF_ERROR(ExpectOp(")"));
        auto node = NewExpr(AstExprKind::kQuantified);
        node->cmp = cmp;
        node->quantifier = q;
        node->children.push_back(std::move(left));
        node->subquery = std::move(sub);
        return node;
      }
      ORQ_ASSIGN_OR_RETURN(auto right, ParseAddSub());
      auto node = NewExpr(AstExprKind::kBinary);
      node->op = CompareOpName(cmp);
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      return node;
    }
    bool negated = false;
    if (PeekKeyword("NOT")) {
      // lookahead for NOT IN / NOT BETWEEN / NOT LIKE
      const Token& next = tokens_[pos_ + 1];
      if (next.type == TokenType::kKeyword &&
          (next.text == "IN" || next.text == "BETWEEN" ||
           next.text == "LIKE")) {
        ++pos_;
        negated = true;
      }
    }
    if (MatchKeyword("IN")) {
      ORQ_RETURN_IF_ERROR(ExpectOp("("));
      if (PeekKeyword("SELECT")) {
        ORQ_ASSIGN_OR_RETURN(auto sub, ParseSelect());
        ORQ_RETURN_IF_ERROR(ExpectOp(")"));
        auto node = NewExpr(AstExprKind::kInSubquery);
        node->negated = negated;
        node->children.push_back(std::move(left));
        node->subquery = std::move(sub);
        return node;
      }
      auto node = NewExpr(AstExprKind::kInList);
      node->negated = negated;
      node->children.push_back(std::move(left));
      do {
        ORQ_ASSIGN_OR_RETURN(auto item, ParseExpr());
        node->children.push_back(std::move(item));
      } while (MatchOp(","));
      ORQ_RETURN_IF_ERROR(ExpectOp(")"));
      return node;
    }
    if (MatchKeyword("BETWEEN")) {
      ORQ_ASSIGN_OR_RETURN(auto lo, ParseAddSub());
      ORQ_RETURN_IF_ERROR(ExpectKeyword("AND"));
      ORQ_ASSIGN_OR_RETURN(auto hi, ParseAddSub());
      auto node = NewExpr(AstExprKind::kBetween);
      node->negated = negated;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(lo));
      node->children.push_back(std::move(hi));
      return node;
    }
    if (MatchKeyword("LIKE")) {
      ORQ_ASSIGN_OR_RETURN(auto pattern, ParseAddSub());
      auto node = NewExpr(AstExprKind::kBinary);
      node->op = "LIKE";
      node->negated = negated;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(pattern));
      if (negated) {
        auto wrap = NewExpr(AstExprKind::kUnary);
        wrap->op = "NOT";
        node->negated = false;
        wrap->children.push_back(std::move(node));
        return wrap;
      }
      return node;
    }
    if (MatchKeyword("IS")) {
      bool not_null = MatchKeyword("NOT");
      ORQ_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto node = NewExpr(AstExprKind::kIsNull);
      node->negated = not_null;
      node->children.push_back(std::move(left));
      return node;
    }
    return left;
  }

  Result<AstExprPtr> ParseAddSub() {
    ORQ_ASSIGN_OR_RETURN(auto left, ParseMulDiv());
    while (PeekOp("+") || PeekOp("-")) {
      std::string op = Advance().text;
      ORQ_ASSIGN_OR_RETURN(auto right, ParseMulDiv());
      auto node = NewExpr(AstExprKind::kBinary);
      node->op = op;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseMulDiv() {
    ORQ_ASSIGN_OR_RETURN(auto left, ParseUnary());
    while (PeekOp("*") || PeekOp("/")) {
      std::string op = Advance().text;
      ORQ_ASSIGN_OR_RETURN(auto right, ParseUnary());
      auto node = NewExpr(AstExprKind::kBinary);
      node->op = op;
      node->children.push_back(std::move(left));
      node->children.push_back(std::move(right));
      left = std::move(node);
    }
    return left;
  }

  Result<AstExprPtr> ParseUnary() {
    if (MatchOp("-")) {
      ORQ_ASSIGN_OR_RETURN(auto child, ParseUnary());
      auto node = NewExpr(AstExprKind::kUnary);
      node->op = "-";
      node->children.push_back(std::move(child));
      return node;
    }
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kInteger: {
        auto node = NewExpr(AstExprKind::kLiteral);
        node->literal = Value::Int64(std::atoll(Advance().text.c_str()));
        return node;
      }
      case TokenType::kFloat: {
        auto node = NewExpr(AstExprKind::kLiteral);
        node->literal = Value::Double(std::atof(Advance().text.c_str()));
        return node;
      }
      case TokenType::kString: {
        auto node = NewExpr(AstExprKind::kLiteral);
        node->literal = Value::String(Advance().text);
        return node;
      }
      case TokenType::kKeyword: {
        if (MatchKeyword("NULL")) {
          auto node = NewExpr(AstExprKind::kLiteral);
          node->literal = Value::Null();
          return node;
        }
        if (MatchKeyword("TRUE")) {
          auto node = NewExpr(AstExprKind::kLiteral);
          node->literal = Value::Bool(true);
          return node;
        }
        if (MatchKeyword("FALSE")) {
          auto node = NewExpr(AstExprKind::kLiteral);
          node->literal = Value::Bool(false);
          return node;
        }
        if (MatchKeyword("DATE")) {
          if (Peek().type != TokenType::kString) {
            return Error("expected date string");
          }
          std::optional<int32_t> days = ParseDate(Advance().text);
          if (!days.has_value()) return Error("malformed date literal");
          auto node = NewExpr(AstExprKind::kLiteral);
          node->literal = Value::Date(*days);
          return node;
        }
        if (MatchKeyword("EXISTS")) {
          ORQ_RETURN_IF_ERROR(ExpectOp("("));
          ORQ_ASSIGN_OR_RETURN(auto sub, ParseSelect());
          ORQ_RETURN_IF_ERROR(ExpectOp(")"));
          auto node = NewExpr(AstExprKind::kExists);
          node->subquery = std::move(sub);
          return node;
        }
        if (MatchKeyword("CASE")) {
          auto node = NewExpr(AstExprKind::kCase);
          while (MatchKeyword("WHEN")) {
            ORQ_ASSIGN_OR_RETURN(auto when, ParseExpr());
            ORQ_RETURN_IF_ERROR(ExpectKeyword("THEN"));
            ORQ_ASSIGN_OR_RETURN(auto then, ParseExpr());
            node->children.push_back(std::move(when));
            node->children.push_back(std::move(then));
          }
          if (node->children.empty()) return Error("CASE requires WHEN");
          if (MatchKeyword("ELSE")) {
            ORQ_ASSIGN_OR_RETURN(auto other, ParseExpr());
            node->children.push_back(std::move(other));
          }
          ORQ_RETURN_IF_ERROR(ExpectKeyword("END"));
          return node;
        }
        return Error("unexpected keyword");
      }
      case TokenType::kOperator: {
        if (PeekOp("?")) {
          auto node = NewExpr(AstExprKind::kParam);
          ++pos_;
          node->param_index = num_params_++;
          return node;
        }
        if (MatchOp("(")) {
          if (PeekKeyword("SELECT")) {
            ORQ_ASSIGN_OR_RETURN(auto sub, ParseSelect());
            ORQ_RETURN_IF_ERROR(ExpectOp(")"));
            auto node = NewExpr(AstExprKind::kScalarSubquery);
            node->subquery = std::move(sub);
            return node;
          }
          ORQ_ASSIGN_OR_RETURN(auto inner, ParseExpr());
          ORQ_RETURN_IF_ERROR(ExpectOp(")"));
          return inner;
        }
        return Error("unexpected token");
      }
      case TokenType::kIdentifier: {
        std::string first = Advance().text;
        if (MatchOp("(")) {
          // function call
          auto node = NewExpr(AstExprKind::kFuncCall);
          node->name = first;
          if (MatchKeyword("DISTINCT")) node->distinct = true;
          if (MatchOp("*")) {
            auto star = NewExpr(AstExprKind::kStar);
            node->children.push_back(std::move(star));
          } else if (!PeekOp(")")) {
            do {
              ORQ_ASSIGN_OR_RETURN(auto arg, ParseExpr());
              node->children.push_back(std::move(arg));
            } while (MatchOp(","));
          }
          ORQ_RETURN_IF_ERROR(ExpectOp(")"));
          return node;
        }
        auto node = NewExpr(AstExprKind::kColumn);
        if (MatchOp(".")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected column name");
          }
          node->qualifier = first;
          node->name = Advance().text;
        } else {
          node->name = first;
        }
        return node;
      }
      case TokenType::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int num_params_ = 0;  // `?` ordinals, assigned in parse order
};

}  // namespace

Result<SelectStmtPtr> ParseSql(const std::string& sql) {
  ORQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace orq
