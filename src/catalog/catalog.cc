#include "catalog/catalog.h"

#include "common/str_util.h"

namespace orq {

namespace {

// Process-wide version source: see Catalog::version().
int64_t NextCatalogVersion() {
  static std::atomic<int64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Catalog::Catalog() : version_(NextCatalogVersion()) {}

void Catalog::BumpVersion() {
  version_.store(NextCatalogVersion(), std::memory_order_relaxed);
}

Result<Table*> Catalog::CreateTable(const std::string& name,
                                    std::vector<ColumnSpec> columns) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(columns));
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  BumpVersion();
  return ptr;
}

Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const TableStats& Catalog::GetStats(const Table& table) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto it = stats_.find(&table);
  if (it == stats_.end()) {
    // Computed under the lock: the first query over a table pays once and
    // concurrent racers wait for that computation instead of repeating it.
    it = stats_.emplace(&table, ComputeStats(table)).first;
  }
  return it->second;
}

void Catalog::InvalidateStats() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.clear();
  }
  // Fresh stats can change optimizer choices, so cached plans compiled
  // against the old statistics must not be reused.
  BumpVersion();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace orq
