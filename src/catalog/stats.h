#ifndef ORQ_CATALOG_STATS_H_
#define ORQ_CATALOG_STATS_H_

#include <vector>

#include "common/value.h"

namespace orq {

class Table;

/// Per-column statistics used by the cost model's cardinality estimation.
struct ColumnStats {
  double distinct_count = 1.0;
  double null_fraction = 0.0;
  Value min_value;  // NULL when the column is empty/all-NULL
  Value max_value;
};

/// Table-level statistics: row count plus per-column stats.
struct TableStats {
  double row_count = 0.0;
  std::vector<ColumnStats> columns;
};

/// Computes exact statistics by scanning the table (our tables are small;
/// a production system would sample or maintain histograms).
TableStats ComputeStats(const Table& table);

}  // namespace orq

#endif  // ORQ_CATALOG_STATS_H_
