#ifndef ORQ_CATALOG_CATALOG_H_
#define ORQ_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/stats.h"
#include "catalog/table.h"
#include "common/result.h"

namespace orq {

/// The database catalog: named tables plus cached statistics.
class Catalog {
 public:
  Catalog();
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; fails if the name exists.
  Result<Table*> CreateTable(const std::string& name,
                             std::vector<ColumnSpec> columns);

  /// Case-insensitive lookup; nullptr when absent.
  Table* FindTable(const std::string& name) const;

  /// Statistics for a table, computed lazily and cached. Safe under
  /// concurrent readers (the stats cache is internally synchronized; map
  /// nodes are stable, so returned references outlive the lock). Call
  /// InvalidateStats after bulk loads — but never while queries run.
  const TableStats& GetStats(const Table& table);
  void InvalidateStats();

  std::vector<std::string> TableNames() const;

  /// Monotonic schema/stats version for plan-cache invalidation. Values are
  /// drawn from one process-wide counter, so no two Catalog instances (or
  /// the same instance before/after a bump) ever share a version — a cache
  /// keyed on it cannot confuse snapshots. Bumped by CreateTable,
  /// InvalidateStats, and QueryServer::ReplaceCatalog.
  int64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }
  void BumpVersion();

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;  // lower-case keys
  std::mutex stats_mu_;  // guards stats_ (concurrent queries share a catalog)
  std::map<const Table*, TableStats> stats_;
  std::atomic<int64_t> version_;
};

}  // namespace orq

#endif  // ORQ_CATALOG_CATALOG_H_
