#ifndef ORQ_CATALOG_INDEX_H_
#define ORQ_CATALOG_INDEX_H_

#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace orq {

class Table;

/// An equality hash index over one or more columns of a base table. Maps a
/// key tuple to the list of matching row positions. NULL keys are indexed
/// but equality probes with NULL never match (SQL semantics), which probe
/// callers enforce by checking for NULLs before probing.
class TableIndex {
 public:
  TableIndex(const Table& table, std::vector<int> ordinals);

  const std::vector<int>& ordinals() const { return ordinals_; }

  /// Row positions whose key equals `key` (positional, same order as
  /// ordinals()).
  const std::vector<size_t>* Lookup(const Row& key) const;

  size_t num_entries() const { return map_.size(); }

 private:
  std::vector<int> ordinals_;
  std::unordered_map<Row, std::vector<size_t>, RowHash, RowGroupEq> map_;
};

}  // namespace orq

#endif  // ORQ_CATALOG_INDEX_H_
