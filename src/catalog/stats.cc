#include "catalog/stats.h"

#include <unordered_set>

#include "catalog/table.h"

namespace orq {

TableStats ComputeStats(const Table& table) {
  TableStats stats;
  stats.row_count = static_cast<double>(table.num_rows());
  stats.columns.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    ColumnStats& cs = stats.columns[c];
    std::unordered_set<size_t> hashes;
    size_t nulls = 0;
    bool have_minmax = false;
    for (const Row& row : table.rows()) {
      const Value& v = row[c];
      if (v.is_null()) {
        ++nulls;
        continue;
      }
      hashes.insert(v.Hash());
      if (!have_minmax) {
        cs.min_value = v;
        cs.max_value = v;
        have_minmax = true;
      } else {
        if (v.TotalCompare(cs.min_value) < 0) cs.min_value = v;
        if (v.TotalCompare(cs.max_value) > 0) cs.max_value = v;
      }
    }
    cs.distinct_count = hashes.empty() ? 1.0
                                       : static_cast<double>(hashes.size());
    cs.null_fraction = table.num_rows() == 0
                           ? 0.0
                           : static_cast<double>(nulls) / table.num_rows();
  }
  return stats;
}

}  // namespace orq
