#ifndef ORQ_CATALOG_TABLE_H_
#define ORQ_CATALOG_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/index.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace orq {

/// Definition of one base-table column.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;
};

/// An in-memory, row-major base table with declared keys and optional hash
/// indexes. Tables are append-only; statistics and indexes are built after
/// loading.
class Table {
 public:
  Table(std::string name, std::vector<ColumnSpec> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Ordinal of a column by (case-insensitive) name, or -1.
  int ColumnOrdinal(const std::string& name) const;

  /// Appends a row; the row must match the schema arity.
  Status Append(Row row);

  /// Declares the primary key (column ordinals). Keys feed the optimizer's
  /// key-derivation (identities 7-9 require keys; Max1row elimination uses
  /// them too).
  void SetPrimaryKey(std::vector<int> ordinals) {
    primary_key_ = std::move(ordinals);
    unique_keys_.push_back(primary_key_);
  }
  /// Declares an additional unique key.
  void AddUniqueKey(std::vector<int> ordinals) {
    unique_keys_.push_back(std::move(ordinals));
  }
  const std::vector<int>& primary_key() const { return primary_key_; }
  const std::vector<std::vector<int>>& unique_keys() const {
    return unique_keys_;
  }

  /// One table column transposed into a contiguous typed array, the
  /// storage behind zero-copy columnar scans. Dates/bools/int64s share the
  /// int64 array; strings are an arena plus n + 1 absolute offsets. A
  /// column whose values ever disagree with the declared type — or whose
  /// string arena would outgrow uint32 offsets — falls back to boxed
  /// `vals` (mixed = true); correctness never depends on the typed form.
  struct ColumnChunk {
    DataType type = DataType::kInt64;
    bool mixed = false;
    bool any_null = false;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::string chars;
    std::vector<uint32_t> offsets;  // n + 1, absolute into chars
    std::vector<Value> vals;        // boxed fallback when mixed
    std::vector<uint8_t> nulls;     // one byte per row, non-zero = NULL
  };

  /// The table transposed column-wise, built lazily on first use and
  /// rebuilt when rows were appended since (keyed on the row count; tables
  /// are append-only). Thread-safe: concurrent first calls serialize on an
  /// internal mutex, and the returned reference stays valid until the next
  /// Append-then-ColumnarChunks sequence.
  const std::vector<ColumnChunk>& ColumnarChunks() const;

  /// Builds (or rebuilds) a hash index over the given ordinals. Indexes
  /// enable the IndexApply physical strategy (correlated execution with
  /// index lookup, paper section 4).
  void BuildIndex(std::vector<int> ordinals);
  /// Returns an index exactly covering `ordinals` (order-insensitive), or
  /// nullptr.
  const TableIndex* FindIndex(const std::vector<int>& ordinals) const;
  const std::vector<std::unique_ptr<TableIndex>>& indexes() const {
    return indexes_;
  }

 private:
  std::string name_;
  std::vector<ColumnSpec> columns_;
  std::vector<Row> rows_;
  std::vector<int> primary_key_;
  std::vector<std::vector<int>> unique_keys_;
  std::vector<std::unique_ptr<TableIndex>> indexes_;

  mutable std::mutex chunks_mutex_;
  mutable std::vector<ColumnChunk> chunks_;
  /// Row count the chunks were built from; SIZE_MAX = never built.
  mutable size_t chunks_built_rows_ = static_cast<size_t>(-1);
};

}  // namespace orq

#endif  // ORQ_CATALOG_TABLE_H_
