#ifndef ORQ_CATALOG_TABLE_H_
#define ORQ_CATALOG_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/index.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace orq {

/// Definition of one base-table column.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;
};

/// An in-memory, row-major base table with declared keys and optional hash
/// indexes. Tables are append-only; statistics and indexes are built after
/// loading.
class Table {
 public:
  Table(std::string name, std::vector<ColumnSpec> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Ordinal of a column by (case-insensitive) name, or -1.
  int ColumnOrdinal(const std::string& name) const;

  /// Appends a row; the row must match the schema arity.
  Status Append(Row row);

  /// Declares the primary key (column ordinals). Keys feed the optimizer's
  /// key-derivation (identities 7-9 require keys; Max1row elimination uses
  /// them too).
  void SetPrimaryKey(std::vector<int> ordinals) {
    primary_key_ = std::move(ordinals);
    unique_keys_.push_back(primary_key_);
  }
  /// Declares an additional unique key.
  void AddUniqueKey(std::vector<int> ordinals) {
    unique_keys_.push_back(std::move(ordinals));
  }
  const std::vector<int>& primary_key() const { return primary_key_; }
  const std::vector<std::vector<int>>& unique_keys() const {
    return unique_keys_;
  }

  /// Builds (or rebuilds) a hash index over the given ordinals. Indexes
  /// enable the IndexApply physical strategy (correlated execution with
  /// index lookup, paper section 4).
  void BuildIndex(std::vector<int> ordinals);
  /// Returns an index exactly covering `ordinals` (order-insensitive), or
  /// nullptr.
  const TableIndex* FindIndex(const std::vector<int>& ordinals) const;
  const std::vector<std::unique_ptr<TableIndex>>& indexes() const {
    return indexes_;
  }

 private:
  std::string name_;
  std::vector<ColumnSpec> columns_;
  std::vector<Row> rows_;
  std::vector<int> primary_key_;
  std::vector<std::vector<int>> unique_keys_;
  std::vector<std::unique_ptr<TableIndex>> indexes_;
};

}  // namespace orq

#endif  // ORQ_CATALOG_TABLE_H_
