#ifndef ORQ_CATALOG_TABLE_H_
#define ORQ_CATALOG_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/index.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace orq {

/// Definition of one base-table column.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;
};

/// Storage encoding requested for columnar scans (`SET table_encoding`).
/// kAuto picks per column chunk by a cardinality/run-count heuristic;
/// the forced modes apply wherever the column type allows and fall back
/// to plain elsewhere. Values index the per-mode chunk caches.
enum class TableEncoding : uint8_t { kPlain, kDict, kRle, kAuto };
inline constexpr int kNumTableEncodings = 4;

/// Physical encoding one column chunk ended up with.
enum class ChunkEncoding : uint8_t { kPlain, kDict, kRle };

/// An in-memory, row-major base table with declared keys and optional hash
/// indexes. Tables are append-only; statistics and indexes are built after
/// loading.
class Table {
 public:
  Table(std::string name, std::vector<ColumnSpec> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {
    chunks_built_rows_.fill(static_cast<size_t>(-1));
  }

  const std::string& name() const { return name_; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Ordinal of a column by (case-insensitive) name, or -1.
  int ColumnOrdinal(const std::string& name) const;

  /// Appends a row; the row must match the schema arity.
  Status Append(Row row);

  /// Declares the primary key (column ordinals). Keys feed the optimizer's
  /// key-derivation (identities 7-9 require keys; Max1row elimination uses
  /// them too).
  void SetPrimaryKey(std::vector<int> ordinals) {
    primary_key_ = std::move(ordinals);
    unique_keys_.push_back(primary_key_);
  }
  /// Declares an additional unique key.
  void AddUniqueKey(std::vector<int> ordinals) {
    unique_keys_.push_back(std::move(ordinals));
  }
  const std::vector<int>& primary_key() const { return primary_key_; }
  const std::vector<std::vector<int>>& unique_keys() const {
    return unique_keys_;
  }

  /// One table column transposed into a contiguous typed array, the
  /// storage behind zero-copy columnar scans. Dates/bools/int64s share the
  /// int64 array; strings are an arena plus absolute offsets. A column
  /// whose values ever disagree with the declared type — or whose string
  /// arena would outgrow uint32 offsets — falls back to boxed `vals`
  /// (mixed = true); correctness never depends on the typed form.
  ///
  /// Encoded forms reuse the payload arrays at a different granularity:
  ///  - kDict: `codes` holds one uint32 per row indexing the payload
  ///    arrays, which hold one entry per distinct value (`dict_hashes`
  ///    pre-computes Value::Hash per entry so column-wise hashing never
  ///    touches the bytes). `nulls` stays one byte per row.
  ///  - kRle: payload arrays and `nulls` hold one entry per run;
  ///    `run_ends` is the cumulative row count (run r covers rows
  ///    [run_ends[r-1], run_ends[r])).
  struct ColumnChunk {
    DataType type = DataType::kInt64;
    bool mixed = false;
    bool any_null = false;
    ChunkEncoding encoding = ChunkEncoding::kPlain;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    std::string chars;
    std::vector<uint32_t> offsets;  // entries + 1, absolute into chars
    std::vector<Value> vals;        // boxed fallback when mixed
    std::vector<uint8_t> nulls;     // non-zero = NULL (per row; per run in RLE)
    std::vector<uint32_t> codes;       // kDict: one per row
    std::vector<size_t> dict_hashes;   // kDict: one per entry
    std::vector<uint32_t> run_ends;    // kRle: cumulative, one per run
    /// Footprint of this chunk's arrays and what the plain layout costs;
    /// the pair is the compression ratio the metrics/EXPLAIN report.
    size_t encoded_bytes = 0;
    size_t plain_bytes = 0;

    size_t dict_size() const { return dict_hashes.size(); }
    size_t num_runs() const { return run_ends.size(); }
  };

  /// The table transposed column-wise under the requested encoding, built
  /// lazily on first use and rebuilt when rows were appended since (keyed
  /// on the row count; tables are append-only). Each encoding mode caches
  /// its own chunk set. Thread-safe: concurrent first calls serialize on
  /// an internal mutex, and the returned reference stays valid until the
  /// next Append-then-ColumnarChunks sequence.
  const std::vector<ColumnChunk>& ColumnarChunks(
      TableEncoding mode = TableEncoding::kPlain) const;

  /// Builds (or rebuilds) a hash index over the given ordinals. Indexes
  /// enable the IndexApply physical strategy (correlated execution with
  /// index lookup, paper section 4).
  void BuildIndex(std::vector<int> ordinals);
  /// Returns an index exactly covering `ordinals` (order-insensitive), or
  /// nullptr.
  const TableIndex* FindIndex(const std::vector<int>& ordinals) const;
  const std::vector<std::unique_ptr<TableIndex>>& indexes() const {
    return indexes_;
  }

 private:
  std::string name_;
  std::vector<ColumnSpec> columns_;
  std::vector<Row> rows_;
  std::vector<int> primary_key_;
  std::vector<std::vector<int>> unique_keys_;
  std::vector<std::unique_ptr<TableIndex>> indexes_;

  mutable std::mutex chunks_mutex_;
  /// Chunk caches indexed by TableEncoding; only requested modes build.
  mutable std::array<std::vector<ColumnChunk>, kNumTableEncodings> chunks_;
  /// Row count each mode's chunks were built from; SIZE_MAX = never built.
  mutable std::array<size_t, kNumTableEncodings> chunks_built_rows_;
};

}  // namespace orq

#endif  // ORQ_CATALOG_TABLE_H_
