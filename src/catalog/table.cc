#include "catalog/table.h"

#include <algorithm>
#include <cstring>
#include <string_view>
#include <unordered_map>

#include "catalog/index.h"
#include "common/str_util.h"

namespace orq {

namespace {

/// Exact-representation cell equality on a plain chunk — the run test for
/// RLE. Deliberately NOT GroupEquals: -0.0 and 0.0 (or two different NaN
/// payloads) group-equal but must not merge into one run, because decode
/// has to reproduce the original bytes for result parity.
bool SameCell(const Table::ColumnChunk& c, size_t i, size_t j) {
  const bool ni = c.nulls[i] != 0;
  const bool nj = c.nulls[j] != 0;
  if (ni || nj) return ni && nj;
  switch (c.type) {
    case DataType::kString: {
      const size_t bi = c.offsets[i], ei = c.offsets[i + 1];
      const size_t bj = c.offsets[j], ej = c.offsets[j + 1];
      if (ei - bi != ej - bj) return false;
      return std::memcmp(c.chars.data() + bi, c.chars.data() + bj,
                         ei - bi) == 0;
    }
    case DataType::kDouble:
      return std::memcmp(&c.doubles[i], &c.doubles[j], sizeof(double)) == 0;
    default:
      return c.ints[i] == c.ints[j];
  }
}

size_t CountRuns(const Table::ColumnChunk& c, size_t n) {
  size_t runs = n > 0 ? 1 : 0;
  for (size_t i = 1; i < n; ++i) {
    if (!SameCell(c, i, i - 1)) ++runs;
  }
  return runs;
}

/// Total byte footprint of a chunk's arrays (boxed vals counted at the
/// inline Value size; their string heap is not tracked).
size_t ChunkBytes(const Table::ColumnChunk& c) {
  return c.ints.size() * sizeof(int64_t) +
         c.doubles.size() * sizeof(double) + c.chars.size() +
         c.offsets.size() * sizeof(uint32_t) + c.nulls.size() +
         c.codes.size() * sizeof(uint32_t) +
         c.dict_hashes.size() * sizeof(size_t) +
         c.run_ends.size() * sizeof(uint32_t) +
         c.vals.size() * sizeof(Value);
}

/// Rewrites a plain string/int64 chunk into dictionary form: one uint32
/// code per row indexing a first-appearance-ordered entry table, plus a
/// pre-computed Value::Hash per entry. NULL rows intern the zero value so
/// every code stays a valid index (nulls[] remains the truth). Returns
/// false (chunk untouched) when the entry count would exceed
/// `max_entries`.
bool EncodeDict(Table::ColumnChunk* c, size_t n, size_t max_entries) {
  std::vector<uint32_t> codes(n);
  if (c->type == DataType::kString) {
    std::unordered_map<std::string_view, uint32_t> intern;
    std::vector<std::string_view> entries;
    for (size_t i = 0; i < n; ++i) {
      std::string_view s(c->chars.data() + c->offsets[i],
                         c->offsets[i + 1] - c->offsets[i]);
      if (c->nulls[i] != 0) s = std::string_view();
      auto [it, added] = intern.emplace(s, entries.size());
      if (added) {
        if (entries.size() >= max_entries) return false;
        entries.push_back(s);
      }
      codes[i] = it->second;
    }
    std::string dict_chars;
    std::vector<uint32_t> dict_offsets;
    dict_offsets.reserve(entries.size() + 1);
    dict_offsets.push_back(0);
    std::vector<size_t> hashes;
    hashes.reserve(entries.size());
    for (std::string_view s : entries) {
      dict_chars.append(s);
      dict_offsets.push_back(static_cast<uint32_t>(dict_chars.size()));
      hashes.push_back(Value::String(std::string(s)).Hash());
    }
    c->chars = std::move(dict_chars);
    c->offsets = std::move(dict_offsets);
    c->dict_hashes = std::move(hashes);
  } else {
    std::unordered_map<int64_t, uint32_t> intern;
    std::vector<int64_t> entries;
    for (size_t i = 0; i < n; ++i) {
      const int64_t v = c->nulls[i] != 0 ? 0 : c->ints[i];
      auto [it, added] = intern.emplace(v, entries.size());
      if (added) {
        if (entries.size() >= max_entries) return false;
        entries.push_back(v);
      }
      codes[i] = it->second;
    }
    std::vector<size_t> hashes;
    hashes.reserve(entries.size());
    for (int64_t v : entries) hashes.push_back(Value::Int64(v).Hash());
    c->ints = std::move(entries);
    c->dict_hashes = std::move(hashes);
  }
  c->codes = std::move(codes);
  c->encoding = ChunkEncoding::kDict;
  return true;
}

/// Rewrites a plain chunk into run-length form: payload arrays and nulls
/// shrink to one entry per run; run_ends is the cumulative row count.
void EncodeRle(Table::ColumnChunk* c, size_t n) {
  std::vector<uint32_t> run_ends;
  std::vector<uint8_t> run_nulls;
  std::vector<int64_t> run_ints;
  std::vector<double> run_doubles;
  std::string run_chars;
  std::vector<uint32_t> run_offsets;
  if (c->type == DataType::kString) run_offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && SameCell(*c, i, i - 1)) {
      run_ends.back() = static_cast<uint32_t>(i + 1);
      continue;
    }
    run_ends.push_back(static_cast<uint32_t>(i + 1));
    run_nulls.push_back(c->nulls[i]);
    switch (c->type) {
      case DataType::kString:
        run_chars.append(c->chars.data() + c->offsets[i],
                         c->offsets[i + 1] - c->offsets[i]);
        run_offsets.push_back(static_cast<uint32_t>(run_chars.size()));
        break;
      case DataType::kDouble:
        run_doubles.push_back(c->doubles[i]);
        break;
      default:
        run_ints.push_back(c->ints[i]);
        break;
    }
  }
  c->run_ends = std::move(run_ends);
  c->nulls = std::move(run_nulls);
  c->ints = std::move(run_ints);
  c->doubles = std::move(run_doubles);
  c->chars = std::move(run_chars);
  c->offsets = std::move(run_offsets);
  c->encoding = ChunkEncoding::kRle;
}

/// Per-chunk encoding choice. Forced modes apply wherever the type allows
/// (dictionaries only make sense for strings and int64s; RLE works on any
/// typed column); kAuto takes RLE when the average run is >= 8 rows, else
/// a dictionary when the cardinality is low, else plain.
void MaybeEncodeChunk(Table::ColumnChunk* c, size_t n, TableEncoding mode) {
  if (c->mixed || n == 0 || n > static_cast<size_t>(UINT32_MAX)) return;
  const bool dictable =
      c->type == DataType::kString || c->type == DataType::kInt64;
  switch (mode) {
    case TableEncoding::kDict:
      if (dictable) EncodeDict(c, n, /*max_entries=*/size_t{1} << 16);
      break;
    case TableEncoding::kRle:
      EncodeRle(c, n);
      break;
    case TableEncoding::kAuto: {
      if (n < 32) return;  // tiny chunks: encoding overhead beats savings
      const size_t runs = CountRuns(*c, n);
      if (runs * 8 <= n) {
        EncodeRle(c, n);
      } else if (dictable) {
        EncodeDict(c, n, std::min<size_t>(4096, n / 4));
      }
      break;
    }
    case TableEncoding::kPlain:
      break;
  }
}

}  // namespace

int Table::ColumnOrdinal(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Append(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const std::vector<Table::ColumnChunk>& Table::ColumnarChunks(
    TableEncoding mode) const {
  std::lock_guard<std::mutex> lock(chunks_mutex_);
  const size_t m = static_cast<size_t>(mode);
  const size_t n = rows_.size();
  if (chunks_built_rows_[m] == n) return chunks_[m];
  constexpr size_t kPlainIdx = static_cast<size_t>(TableEncoding::kPlain);
  // Every mode derives from the plain transpose, so build (or refresh)
  // that first.
  if (chunks_built_rows_[kPlainIdx] != n) {
    const size_t ncols = columns_.size();
    std::vector<ColumnChunk>& chunks = chunks_[kPlainIdx];
    chunks.assign(ncols, ColumnChunk{});
    for (size_t c = 0; c < ncols; ++c) {
      ColumnChunk& chunk = chunks[c];
      chunk.type = columns_[c].type;
      chunk.nulls.assign(n, 0);
      if (chunk.type == DataType::kString) {
        chunk.offsets.reserve(n + 1);
        chunk.offsets.push_back(0);
      } else if (chunk.type == DataType::kDouble) {
        chunk.doubles.assign(n, 0.0);
      } else {
        // bool / int64 / date all carry their payload in the int64 slot.
        chunk.ints.assign(n, 0);
      }
    }
    // Row-major fill: one sequential pass over the row store, touching
    // each Row's heap block exactly once. The transposed
    // (column-at-a-time) order would re-walk every row header per column
    // — a cache miss per cell that dominated the first columnar query's
    // latency on large tables.
    for (size_t i = 0; i < n; ++i) {
      const Row& row = rows_[i];
      for (size_t c = 0; c < ncols; ++c) {
        ColumnChunk& chunk = chunks[c];
        if (chunk.mixed) continue;
        const Value& v = row[c];
        if (v.is_null()) {
          chunk.nulls[i] = 1;
          chunk.any_null = true;
          if (chunk.type == DataType::kString) {
            chunk.offsets.push_back(
                static_cast<uint32_t>(chunk.chars.size()));
          }
          continue;
        }
        if (v.type() != chunk.type) {
          chunk.mixed = true;
          continue;
        }
        switch (chunk.type) {
          case DataType::kString:
            if (chunk.chars.size() + v.string_value().size() >
                static_cast<size_t>(UINT32_MAX)) {
              chunk.mixed = true;
              continue;
            }
            chunk.chars.append(v.string_value());
            chunk.offsets.push_back(
                static_cast<uint32_t>(chunk.chars.size()));
            break;
          case DataType::kDouble:
            chunk.doubles[i] = v.double_value();
            break;
          default:
            chunk.ints[i] = v.int64_value();
            break;
        }
      }
    }
    // Columns whose runtime tags disagreed with the declared type (or
    // whose string arena outgrew uint32 offsets) degrade to the boxed
    // form in a second, per-column pass — rare enough that its
    // column-major order does not matter.
    for (size_t c = 0; c < ncols; ++c) {
      ColumnChunk& chunk = chunks[c];
      if (!chunk.mixed) continue;
      chunk.ints.clear();
      chunk.doubles.clear();
      chunk.chars.clear();
      chunk.offsets.clear();
      chunk.vals.resize(n);
      for (size_t i = 0; i < n; ++i) chunk.vals[i] = rows_[i][c];
    }
    for (ColumnChunk& chunk : chunks) {
      chunk.plain_bytes = ChunkBytes(chunk);
      chunk.encoded_bytes = chunk.plain_bytes;
    }
    chunks_built_rows_[kPlainIdx] = n;
    if (m == kPlainIdx) return chunks_[kPlainIdx];
  }
  // Encoded modes start from a copy of the plain chunks and rewrite
  // whatever the mode (or the auto heuristic) selects.
  chunks_[m] = chunks_[kPlainIdx];
  for (ColumnChunk& chunk : chunks_[m]) {
    MaybeEncodeChunk(&chunk, n, mode);
    chunk.encoded_bytes = ChunkBytes(chunk);
  }
  chunks_built_rows_[m] = n;
  return chunks_[m];
}

void Table::BuildIndex(std::vector<int> ordinals) {
  indexes_.push_back(std::make_unique<TableIndex>(*this, std::move(ordinals)));
}

const TableIndex* Table::FindIndex(const std::vector<int>& ordinals) const {
  std::vector<int> want = ordinals;
  std::sort(want.begin(), want.end());
  for (const auto& idx : indexes_) {
    std::vector<int> have = idx->ordinals();
    std::sort(have.begin(), have.end());
    if (have == want) return idx.get();
  }
  return nullptr;
}

}  // namespace orq
