#include "catalog/table.h"

#include <algorithm>

#include "catalog/index.h"
#include "common/str_util.h"

namespace orq {

int Table::ColumnOrdinal(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Append(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Table::BuildIndex(std::vector<int> ordinals) {
  indexes_.push_back(std::make_unique<TableIndex>(*this, std::move(ordinals)));
}

const TableIndex* Table::FindIndex(const std::vector<int>& ordinals) const {
  std::vector<int> want = ordinals;
  std::sort(want.begin(), want.end());
  for (const auto& idx : indexes_) {
    std::vector<int> have = idx->ordinals();
    std::sort(have.begin(), have.end());
    if (have == want) return idx.get();
  }
  return nullptr;
}

}  // namespace orq
