#include "catalog/table.h"

#include <algorithm>

#include "catalog/index.h"
#include "common/str_util.h"

namespace orq {

int Table::ColumnOrdinal(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Table::Append(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const std::vector<Table::ColumnChunk>& Table::ColumnarChunks() const {
  std::lock_guard<std::mutex> lock(chunks_mutex_);
  if (chunks_built_rows_ == rows_.size()) return chunks_;
  const size_t n = rows_.size();
  const size_t ncols = columns_.size();
  chunks_.assign(ncols, ColumnChunk{});
  for (size_t c = 0; c < ncols; ++c) {
    ColumnChunk& chunk = chunks_[c];
    chunk.type = columns_[c].type;
    chunk.nulls.assign(n, 0);
    if (chunk.type == DataType::kString) {
      chunk.offsets.reserve(n + 1);
      chunk.offsets.push_back(0);
    } else if (chunk.type == DataType::kDouble) {
      chunk.doubles.assign(n, 0.0);
    } else {
      // bool / int64 / date all carry their payload in the int64 slot.
      chunk.ints.assign(n, 0);
    }
  }
  // Row-major fill: one sequential pass over the row store, touching each
  // Row's heap block exactly once. The transposed (column-at-a-time) order
  // would re-walk every row header per column — a cache miss per cell that
  // dominated the first columnar query's latency on large tables.
  for (size_t i = 0; i < n; ++i) {
    const Row& row = rows_[i];
    for (size_t c = 0; c < ncols; ++c) {
      ColumnChunk& chunk = chunks_[c];
      if (chunk.mixed) continue;
      const Value& v = row[c];
      if (v.is_null()) {
        chunk.nulls[i] = 1;
        chunk.any_null = true;
        if (chunk.type == DataType::kString) {
          chunk.offsets.push_back(static_cast<uint32_t>(chunk.chars.size()));
        }
        continue;
      }
      if (v.type() != chunk.type) {
        chunk.mixed = true;
        continue;
      }
      switch (chunk.type) {
        case DataType::kString:
          if (chunk.chars.size() + v.string_value().size() >
              static_cast<size_t>(UINT32_MAX)) {
            chunk.mixed = true;
            continue;
          }
          chunk.chars.append(v.string_value());
          chunk.offsets.push_back(static_cast<uint32_t>(chunk.chars.size()));
          break;
        case DataType::kDouble:
          chunk.doubles[i] = v.double_value();
          break;
        default:
          chunk.ints[i] = v.int64_value();
          break;
      }
    }
  }
  // Columns whose runtime tags disagreed with the declared type (or whose
  // string arena outgrew uint32 offsets) degrade to the boxed form in a
  // second, per-column pass — rare enough that its column-major order
  // does not matter.
  for (size_t c = 0; c < ncols; ++c) {
    ColumnChunk& chunk = chunks_[c];
    if (!chunk.mixed) continue;
    chunk.ints.clear();
    chunk.doubles.clear();
    chunk.chars.clear();
    chunk.offsets.clear();
    chunk.vals.resize(n);
    for (size_t i = 0; i < n; ++i) chunk.vals[i] = rows_[i][c];
  }
  chunks_built_rows_ = n;
  return chunks_;
}

void Table::BuildIndex(std::vector<int> ordinals) {
  indexes_.push_back(std::make_unique<TableIndex>(*this, std::move(ordinals)));
}

const TableIndex* Table::FindIndex(const std::vector<int>& ordinals) const {
  std::vector<int> want = ordinals;
  std::sort(want.begin(), want.end());
  for (const auto& idx : indexes_) {
    std::vector<int> have = idx->ordinals();
    std::sort(have.begin(), have.end());
    if (have == want) return idx.get();
  }
  return nullptr;
}

}  // namespace orq
