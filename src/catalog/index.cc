#include "catalog/index.h"

#include "catalog/table.h"

namespace orq {

TableIndex::TableIndex(const Table& table, std::vector<int> ordinals)
    : ordinals_(std::move(ordinals)) {
  const std::vector<Row>& rows = table.rows();
  map_.reserve(rows.size());
  Row key(ordinals_.size());
  for (size_t pos = 0; pos < rows.size(); ++pos) {
    for (size_t i = 0; i < ordinals_.size(); ++i) {
      key[i] = rows[pos][ordinals_[i]];
    }
    map_[key].push_back(pos);
  }
}

const std::vector<size_t>* TableIndex::Lookup(const Row& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  return &it->second;
}

}  // namespace orq
