#include "algebra/expr_util.h"

#include <functional>

#include "algebra/props.h"
#include "catalog/table.h"

namespace orq {

void CollectColumnRefs(const ScalarExprPtr& expr, ColumnSet* out) {
  if (expr == nullptr) return;
  if (expr->kind == ScalarKind::kColumnRef) out->Add(expr->column);
  for (const auto& child : expr->children) CollectColumnRefs(child, out);
}

void CollectColumnRefsDeep(const ScalarExprPtr& expr, ColumnSet* out) {
  if (expr == nullptr) return;
  if (expr->kind == ScalarKind::kColumnRef) out->Add(expr->column);
  for (const auto& child : expr->children) CollectColumnRefsDeep(child, out);
  if (expr->rel != nullptr) out->AddAll(FreeVariables(*expr->rel));
}

ColumnSet NodeScalarRefs(const RelExpr& node) {
  ColumnSet refs;
  CollectColumnRefsDeep(node.predicate, &refs);
  for (const ProjectItem& item : node.proj_items) {
    CollectColumnRefsDeep(item.expr, &refs);
  }
  for (const AggItem& agg : node.aggs) {
    CollectColumnRefsDeep(agg.arg, &refs);
  }
  for (const SortKey& key : node.sort_keys) {
    CollectColumnRefsDeep(key.expr, &refs);
  }
  refs.AddAll(node.group_cols);
  refs.AddAll(node.segment_cols);
  return refs;
}

ScalarExprPtr RemapColumns(const ScalarExprPtr& expr,
                           const std::map<ColumnId, ColumnId>& mapping) {
  std::map<ColumnId, ScalarExprPtr> subst;
  // Lazy conversion: build substitution only for referenced ids.
  std::function<ScalarExprPtr(const ScalarExprPtr&)> walk =
      [&](const ScalarExprPtr& e) -> ScalarExprPtr {
    if (e == nullptr) return nullptr;
    if (e->kind == ScalarKind::kColumnRef) {
      auto it = mapping.find(e->column);
      if (it == mapping.end()) return e;
      auto copy = std::make_shared<ScalarExpr>(*e);
      copy->column = it->second;
      return copy;
    }
    bool changed = false;
    std::vector<ScalarExprPtr> children;
    children.reserve(e->children.size());
    for (const auto& child : e->children) {
      ScalarExprPtr walked = walk(child);
      changed |= walked != child;
      children.push_back(std::move(walked));
    }
    RelExprPtr rel = e->rel;
    if (rel != nullptr) {
      RelExprPtr remapped = RemapRelTree(rel, mapping);
      changed |= remapped != rel;
      rel = remapped;
    }
    if (!changed) return e;
    auto copy = std::make_shared<ScalarExpr>(*e);
    copy->children = std::move(children);
    copy->rel = std::move(rel);
    return copy;
  };
  return walk(expr);
}

ScalarExprPtr SubstituteColumns(
    const ScalarExprPtr& expr,
    const std::map<ColumnId, ScalarExprPtr>& mapping) {
  if (expr == nullptr) return nullptr;
  if (expr->kind == ScalarKind::kColumnRef) {
    auto it = mapping.find(expr->column);
    if (it == mapping.end()) return expr;
    return it->second;
  }
  bool changed = false;
  std::vector<ScalarExprPtr> children;
  children.reserve(expr->children.size());
  for (const auto& child : expr->children) {
    ScalarExprPtr walked = SubstituteColumns(child, mapping);
    changed |= walked != child;
    children.push_back(std::move(walked));
  }
  if (!changed) return expr;
  auto copy = std::make_shared<ScalarExpr>(*expr);
  copy->children = std::move(children);
  return copy;
}

std::vector<ScalarExprPtr> SplitConjuncts(const ScalarExprPtr& expr) {
  std::vector<ScalarExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind == ScalarKind::kAnd) {
    for (const auto& child : expr->children) {
      std::vector<ScalarExprPtr> sub = SplitConjuncts(child);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  if (IsTrueLiteral(expr)) return out;
  out.push_back(expr);
  return out;
}

bool IsTrueLiteral(const ScalarExprPtr& expr) {
  return expr != nullptr && expr->kind == ScalarKind::kLiteral &&
         !expr->literal.is_null() && expr->literal.type() == DataType::kBool &&
         expr->literal.bool_value();
}

bool IsFalseOrNullLiteral(const ScalarExprPtr& expr) {
  return expr != nullptr && expr->kind == ScalarKind::kLiteral &&
         (expr->literal.is_null() ||
          (expr->literal.type() == DataType::kBool &&
           !expr->literal.bool_value()));
}

bool ScalarEquals(const ScalarExprPtr& a, const ScalarExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->children.size() != b->children.size()) {
    return false;
  }
  switch (a->kind) {
    case ScalarKind::kColumnRef:
    case ScalarKind::kParam:
      if (a->column != b->column) return false;
      break;
    case ScalarKind::kLiteral:
      if (a->literal.is_null() != b->literal.is_null()) return false;
      if (!a->literal.is_null() &&
          a->literal.TotalCompare(b->literal) != 0) {
        return false;
      }
      if (a->literal.type() != b->literal.type()) return false;
      break;
    case ScalarKind::kCompare:
      if (a->cmp != b->cmp) return false;
      break;
    case ScalarKind::kArith:
      if (a->arith != b->arith) return false;
      break;
    case ScalarKind::kQuantifiedCompare:
      if (a->cmp != b->cmp || a->quantifier != b->quantifier) return false;
      break;
    default:
      break;
  }
  if (a->negated != b->negated) return false;
  if (a->rel != b->rel) return false;  // pointer identity for subquery rels
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!ScalarEquals(a->children[i], b->children[i])) return false;
  }
  return true;
}

size_t ScalarHash(const ScalarExprPtr& expr) {
  if (expr == nullptr) return 0;
  size_t h = static_cast<size_t>(expr->kind) * 1099511628211ull;
  switch (expr->kind) {
    case ScalarKind::kColumnRef:
      h ^= std::hash<int64_t>()(expr->column);
      break;
    case ScalarKind::kParam:
      h ^= std::hash<int64_t>()(expr->column) * 0x9e3779b97f4a7c15ull;
      break;
    case ScalarKind::kLiteral:
      h ^= expr->literal.Hash();
      break;
    case ScalarKind::kCompare:
      h ^= static_cast<size_t>(expr->cmp) << 8;
      break;
    case ScalarKind::kArith:
      h ^= static_cast<size_t>(expr->arith) << 8;
      break;
    default:
      break;
  }
  if (expr->negated) h ^= 0xdeadull;
  for (const auto& child : expr->children) {
    h = h * 31 + ScalarHash(child);
  }
  return h;
}

namespace {

/// Remaps every payload field of a shallow-copied node.
void RemapNodePayload(RelExpr* node,
                      const std::map<ColumnId, ColumnId>& mapping) {
  auto remap_id = [&mapping](ColumnId id) {
    auto it = mapping.find(id);
    return it == mapping.end() ? id : it->second;
  };
  auto remap_ids = [&](std::vector<ColumnId>* ids) {
    for (ColumnId& id : *ids) id = remap_id(id);
  };
  auto remap_set = [&](ColumnSet* set) {
    std::vector<ColumnId> ids = set->ids();
    for (ColumnId& id : ids) id = remap_id(id);
    *set = ColumnSet(std::move(ids));
  };
  remap_ids(&node->get_cols);
  if (node->predicate) node->predicate = RemapColumns(node->predicate, mapping);
  for (ProjectItem& item : node->proj_items) {
    item.output = remap_id(item.output);
    item.expr = RemapColumns(item.expr, mapping);
  }
  remap_set(&node->passthrough);
  remap_set(&node->group_cols);
  for (AggItem& agg : node->aggs) {
    agg.output = remap_id(agg.output);
    if (agg.arg) agg.arg = RemapColumns(agg.arg, mapping);
  }
  remap_set(&node->segment_cols);
  remap_ids(&node->segment_out_cols);
  remap_ids(&node->out_cols);
  for (auto& im : node->input_maps) remap_ids(&im);
  for (SortKey& key : node->sort_keys) {
    key.expr = RemapColumns(key.expr, mapping);
  }
}

}  // namespace

RelExprPtr CloneRelTree(const RelExprPtr& expr, ColumnManager* mgr,
                        std::map<ColumnId, ColumnId>* mapping) {
  // Clone children first so references to their outputs are in `mapping`.
  std::vector<RelExprPtr> children;
  children.reserve(expr->children.size());
  for (const auto& child : expr->children) {
    children.push_back(CloneRelTree(child, mgr, mapping));
  }
  RelExprPtr clone = CloneWithChildren(*expr, std::move(children));
  // Allocate fresh ids for columns this node defines.
  auto fresh = [&](ColumnId old_id) {
    const ColumnDef& def = mgr->def(old_id);
    ColumnId id = mgr->NewColumn(def.name, def.type, def.nullable);
    (*mapping)[old_id] = id;
    return id;
  };
  switch (clone->kind) {
    case RelKind::kGet:
      for (ColumnId& id : clone->get_cols) id = fresh(id);
      break;
    case RelKind::kProject:
      for (ProjectItem& item : clone->proj_items) {
        item.output = fresh(item.output);
      }
      break;
    case RelKind::kGroupBy:
    case RelKind::kLocalGroupBy:
      for (AggItem& agg : clone->aggs) agg.output = fresh(agg.output);
      break;
    case RelKind::kSegmentRef:
      for (ColumnId& id : clone->segment_out_cols) id = fresh(id);
      break;
    case RelKind::kUnionAll:
    case RelKind::kExceptAll:
      for (ColumnId& id : clone->out_cols) id = fresh(id);
      break;
    default:
      break;
  }
  // Now remap references (defined ids already replaced above are not in the
  // payload reference positions for kGet; for others RemapNodePayload would
  // re-remap outputs — so apply remap to the *reference* fields only by
  // remapping the whole payload after outputs were replaced: outputs now
  // hold fresh ids that are absent from `mapping`, so remapping is a no-op
  // on them).
  RemapNodePayload(clone.get(), *mapping);
  return clone;
}

RelExprPtr RemapRelTree(const RelExprPtr& expr,
                        const std::map<ColumnId, ColumnId>& mapping) {
  std::vector<RelExprPtr> children;
  children.reserve(expr->children.size());
  for (const auto& child : expr->children) {
    children.push_back(RemapRelTree(child, mapping));
  }
  RelExprPtr clone = CloneWithChildren(*expr, std::move(children));
  RemapNodePayload(clone.get(), mapping);
  return clone;
}

std::string ScalarToString(const ScalarExprPtr& expr,
                           const ColumnManager* mgr) {
  if (expr == nullptr) return "<null>";
  switch (expr->kind) {
    case ScalarKind::kColumnRef:
      if (mgr != nullptr) {
        return mgr->name(expr->column) + "#" + std::to_string(expr->column);
      }
      return "#" + std::to_string(expr->column);
    case ScalarKind::kLiteral:
      if (expr->literal.type() == DataType::kString &&
          !expr->literal.is_null()) {
        return "'" + expr->literal.ToString() + "'";
      }
      return expr->literal.ToString();
    case ScalarKind::kParam:
      return "$" + std::to_string(expr->column);
    case ScalarKind::kAnd: {
      std::string out = "(";
      for (size_t i = 0; i < expr->children.size(); ++i) {
        if (i > 0) out += " AND ";
        out += ScalarToString(expr->children[i], mgr);
      }
      return out + ")";
    }
    case ScalarKind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < expr->children.size(); ++i) {
        if (i > 0) out += " OR ";
        out += ScalarToString(expr->children[i], mgr);
      }
      return out + ")";
    }
    case ScalarKind::kNot:
      return "NOT " + ScalarToString(expr->children[0], mgr);
    case ScalarKind::kCompare:
      return "(" + ScalarToString(expr->children[0], mgr) + " " +
             CompareOpName(expr->cmp) + " " +
             ScalarToString(expr->children[1], mgr) + ")";
    case ScalarKind::kArith:
      return "(" + ScalarToString(expr->children[0], mgr) + " " +
             ArithOpName(expr->arith) + " " +
             ScalarToString(expr->children[1], mgr) + ")";
    case ScalarKind::kNegate:
      return "(-" + ScalarToString(expr->children[0], mgr) + ")";
    case ScalarKind::kIsNull:
      return ScalarToString(expr->children[0], mgr) + " IS NULL";
    case ScalarKind::kIsNotNull:
      return ScalarToString(expr->children[0], mgr) + " IS NOT NULL";
    case ScalarKind::kLike:
      return ScalarToString(expr->children[0], mgr) + " LIKE " +
             ScalarToString(expr->children[1], mgr);
    case ScalarKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      for (; i + 1 < expr->children.size(); i += 2) {
        out += " WHEN " + ScalarToString(expr->children[i], mgr) + " THEN " +
               ScalarToString(expr->children[i + 1], mgr);
      }
      if (i < expr->children.size()) {
        out += " ELSE " + ScalarToString(expr->children[i], mgr);
      }
      return out + " END";
    }
    case ScalarKind::kInList: {
      std::string out = ScalarToString(expr->children[0], mgr) + " IN (";
      for (size_t i = 1; i < expr->children.size(); ++i) {
        if (i > 1) out += ", ";
        out += ScalarToString(expr->children[i], mgr);
      }
      return out + ")";
    }
    case ScalarKind::kScalarSubquery:
      return "scalar-subquery(...)";
    case ScalarKind::kExistsSubquery:
      return expr->negated ? "NOT EXISTS(...)" : "EXISTS(...)";
    case ScalarKind::kInSubquery:
      return ScalarToString(expr->children[0], mgr) +
             (expr->negated ? " NOT IN (subquery)" : " IN (subquery)");
    case ScalarKind::kQuantifiedCompare:
      return ScalarToString(expr->children[0], mgr) + " " +
             CompareOpName(expr->cmp) +
             (expr->quantifier == Quantifier::kAll ? " ALL" : " ANY") +
             " (subquery)";
  }
  return "?";
}

int64_t CountRelNodes(const RelExpr& node) {
  int64_t count = 1;
  for (const RelExprPtr& child : node.children) {
    count += CountRelNodes(*child);
  }
  return count;
}

}  // namespace orq
