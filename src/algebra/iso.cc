#include "algebra/iso.h"

#include "algebra/expr_util.h"
#include "catalog/table.h"

namespace orq {

namespace {

bool ScalarEqualUnderMap(const ScalarExprPtr& a, const ScalarExprPtr& b,
                         const std::map<ColumnId, ColumnId>& mapping) {
  if (a == nullptr || b == nullptr) return a == b;
  return ScalarEquals(RemapColumns(a, mapping), b);
}

bool SetEqualUnderMap(const ColumnSet& a, const ColumnSet& b,
                      const std::map<ColumnId, ColumnId>& mapping) {
  if (a.size() != b.size()) return false;
  ColumnSet mapped;
  for (ColumnId id : a) {
    auto it = mapping.find(id);
    mapped.Add(it == mapping.end() ? id : it->second);
  }
  return mapped == b;
}

bool Iso(const RelExprPtr& a, const RelExprPtr& b,
         std::map<ColumnId, ColumnId>* mapping) {
  if (a->kind != b->kind) return false;
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!Iso(a->children[i], b->children[i], mapping)) return false;
  }
  switch (a->kind) {
    case RelKind::kGet: {
      if (a->table != b->table) return false;
      // `b` may carry extra columns (column pruning narrows the two
      // instances differently); every column of `a` must be present.
      for (size_t i = 0; i < a->get_ordinals.size(); ++i) {
        bool found = false;
        for (size_t k = 0; k < b->get_ordinals.size(); ++k) {
          if (b->get_ordinals[k] == a->get_ordinals[i]) {
            (*mapping)[a->get_cols[i]] = b->get_cols[k];
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
    case RelKind::kSelect:
      return ScalarEqualUnderMap(a->predicate, b->predicate, *mapping);
    case RelKind::kJoin:
      return a->join_kind == b->join_kind &&
             ScalarEqualUnderMap(a->predicate, b->predicate, *mapping);
    case RelKind::kApply:
      return a->apply_kind == b->apply_kind;
    case RelKind::kProject: {
      if (a->proj_items.size() != b->proj_items.size()) return false;
      if (!SetEqualUnderMap(a->passthrough, b->passthrough, *mapping)) {
        return false;
      }
      for (size_t i = 0; i < a->proj_items.size(); ++i) {
        if (!ScalarEqualUnderMap(a->proj_items[i].expr,
                                 b->proj_items[i].expr, *mapping)) {
          return false;
        }
        (*mapping)[a->proj_items[i].output] = b->proj_items[i].output;
      }
      return true;
    }
    case RelKind::kGroupBy:
    case RelKind::kLocalGroupBy: {
      if (a->scalar_agg != b->scalar_agg) return false;
      if (a->aggs.size() != b->aggs.size()) return false;
      if (!SetEqualUnderMap(a->group_cols, b->group_cols, *mapping)) {
        return false;
      }
      for (size_t i = 0; i < a->aggs.size(); ++i) {
        const AggItem& x = a->aggs[i];
        const AggItem& y = b->aggs[i];
        if (x.func != y.func || x.distinct != y.distinct) return false;
        if (!ScalarEqualUnderMap(x.arg, y.arg, *mapping)) return false;
        (*mapping)[x.output] = y.output;
      }
      return true;
    }
    case RelKind::kSort: {
      if (a->limit != b->limit) return false;
      if (a->sort_keys.size() != b->sort_keys.size()) return false;
      for (size_t i = 0; i < a->sort_keys.size(); ++i) {
        if (a->sort_keys[i].ascending != b->sort_keys[i].ascending) {
          return false;
        }
        if (!ScalarEqualUnderMap(a->sort_keys[i].expr, b->sort_keys[i].expr,
                                 *mapping)) {
          return false;
        }
      }
      return true;
    }
    case RelKind::kMax1row:
    case RelKind::kSingleRow:
      return true;
    case RelKind::kUnionAll:
    case RelKind::kExceptAll: {
      if (a->out_cols.size() != b->out_cols.size()) return false;
      // Input maps must correspond child-by-child under the mapping.
      for (size_t c = 0; c < a->input_maps.size(); ++c) {
        for (size_t i = 0; i < a->input_maps[c].size(); ++i) {
          ColumnId ai = a->input_maps[c][i];
          auto it = mapping->find(ai);
          ColumnId mapped = it == mapping->end() ? ai : it->second;
          if (mapped != b->input_maps[c][i]) return false;
        }
      }
      for (size_t i = 0; i < a->out_cols.size(); ++i) {
        (*mapping)[a->out_cols[i]] = b->out_cols[i];
      }
      return true;
    }
    case RelKind::kSegmentApply:
      return SetEqualUnderMap(a->segment_cols, b->segment_cols, *mapping);
    case RelKind::kSegmentRef: {
      if (a->segment_out_cols.size() != b->segment_out_cols.size()) {
        return false;
      }
      for (size_t i = 0; i < a->segment_out_cols.size(); ++i) {
        (*mapping)[a->segment_out_cols[i]] = b->segment_out_cols[i];
      }
      return true;
    }
  }
  return false;
}

}  // namespace

bool RelTreesIsomorphic(const RelExprPtr& a, const RelExprPtr& b,
                        std::map<ColumnId, ColumnId>* mapping) {
  std::map<ColumnId, ColumnId> local;
  if (!Iso(a, b, &local)) return false;
  mapping->insert(local.begin(), local.end());
  return true;
}

}  // namespace orq
