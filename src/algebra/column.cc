#include "algebra/column.h"

#include <algorithm>

namespace orq {

void ColumnSet::Normalize() {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool ColumnSet::Contains(ColumnId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool ColumnSet::ContainsAll(const ColumnSet& other) const {
  return std::includes(ids_.begin(), ids_.end(), other.ids_.begin(),
                       other.ids_.end());
}

bool ColumnSet::Intersects(const ColumnSet& other) const {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

void ColumnSet::Add(ColumnId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

void ColumnSet::AddAll(const ColumnSet& other) {
  for (ColumnId id : other.ids_) Add(id);
}

void ColumnSet::Remove(ColumnId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) ids_.erase(it);
}

ColumnSet ColumnSet::Union(const ColumnSet& other) const {
  ColumnSet out = *this;
  out.AddAll(other);
  return out;
}

ColumnSet ColumnSet::Intersect(const ColumnSet& other) const {
  ColumnSet out;
  for (ColumnId id : ids_) {
    if (other.Contains(id)) out.ids_.push_back(id);
  }
  return out;
}

ColumnSet ColumnSet::Minus(const ColumnSet& other) const {
  ColumnSet out;
  for (ColumnId id : ids_) {
    if (!other.Contains(id)) out.ids_.push_back(id);
  }
  return out;
}

std::string ColumnSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids_[i]);
  }
  out += "}";
  return out;
}

}  // namespace orq
