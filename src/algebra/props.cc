#include "algebra/props.h"

#include "algebra/expr_util.h"
#include "catalog/table.h"

namespace orq {

ColumnSet FreeVariables(const RelExpr& expr) {
  ColumnSet below;  // columns produced by children (visible to payload)
  ColumnSet free;
  for (const auto& child : expr.children) {
    free.AddAll(FreeVariables(*child));
    below.AddAll(child->OutputSet());
  }
  // Apply/SegmentApply: the right child's free variables may be bound by
  // the left child (that *is* correlation). They are bound, not free, at
  // this node.
  if (expr.kind == RelKind::kApply) {
    ColumnSet left_out = expr.children[0]->OutputSet();
    free = FreeVariables(*expr.children[0])
               .Union(FreeVariables(*expr.children[1]).Minus(left_out));
    below = left_out.Union(expr.children[1]->OutputSet());
  } else if (expr.kind == RelKind::kSegmentApply) {
    // Inner refers to the segment through its own SegmentRef ids; the
    // outer's columns are not visible inside.
    free = FreeVariables(*expr.children[0])
               .Union(FreeVariables(*expr.children[1]));
    below = expr.children[0]->OutputSet().Union(
        expr.children[1]->OutputSet());
  }
  ColumnSet payload = NodeScalarRefs(expr);
  free.AddAll(payload.Minus(below));
  return free;
}

namespace {

/// Equality conjuncts of `pred` of shape colref = colref; returns pairs.
std::vector<std::pair<ColumnId, ColumnId>> EqualityPairs(
    const ScalarExprPtr& pred) {
  std::vector<std::pair<ColumnId, ColumnId>> pairs;
  for (const ScalarExprPtr& c : SplitConjuncts(pred)) {
    if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq &&
        c->children[0]->kind == ScalarKind::kColumnRef &&
        c->children[1]->kind == ScalarKind::kColumnRef) {
      pairs.emplace_back(c->children[0]->column, c->children[1]->column);
    }
  }
  return pairs;
}

/// True if the join predicate equates some key of `side` entirely with
/// columns from the other side (each key column appears in an equality
/// conjunct whose other operand is from `other_cols`).
bool JoinEquatesKeyOf(const RelExpr& side, const ColumnSet& other_cols,
                      const ScalarExprPtr& pred) {
  ColumnSet side_cols = side.OutputSet();
  ColumnSet equated;
  for (const auto& [a, b] : EqualityPairs(pred)) {
    if (side_cols.Contains(a) && other_cols.Contains(b)) equated.Add(a);
    if (side_cols.Contains(b) && other_cols.Contains(a)) equated.Add(b);
  }
  for (const ColumnSet& key : DeriveKeys(side)) {
    if (key.IsSubsetOf(equated)) return true;
  }
  return false;
}

void AddKeyUnique(std::vector<ColumnSet>* keys, ColumnSet key) {
  for (const ColumnSet& existing : *keys) {
    if (existing == key) return;
  }
  keys->push_back(std::move(key));
}

}  // namespace

std::vector<ColumnSet> DeriveKeys(const RelExpr& expr) {
  std::vector<ColumnSet> keys;
  switch (expr.kind) {
    case RelKind::kGet: {
      for (const std::vector<int>& unique : expr.table->unique_keys()) {
        ColumnSet key;
        bool covered = true;
        for (int ordinal : unique) {
          ColumnId id = -1;
          for (size_t i = 0; i < expr.get_ordinals.size(); ++i) {
            if (expr.get_ordinals[i] == ordinal) {
              id = expr.get_cols[i];
              break;
            }
          }
          if (id < 0) {
            covered = false;
            break;
          }
          key.Add(id);
        }
        if (covered) AddKeyUnique(&keys, std::move(key));
      }
      break;
    }
    case RelKind::kSelect:
      return DeriveKeys(*expr.children[0]);
    case RelKind::kSort:
      return DeriveKeys(*expr.children[0]);
    case RelKind::kMax1row: {
      // At most one row: the empty set is a key.
      keys.push_back(ColumnSet());
      break;
    }
    case RelKind::kProject: {
      ColumnSet out = expr.OutputSet();
      for (const ColumnSet& key : DeriveKeys(*expr.children[0])) {
        if (key.IsSubsetOf(out)) AddKeyUnique(&keys, key);
      }
      break;
    }
    case RelKind::kJoin: {
      const RelExpr& left = *expr.children[0];
      if (expr.join_kind == JoinKind::kLeftSemi ||
          expr.join_kind == JoinKind::kLeftAnti) {
        return DeriveKeys(left);
      }
      const RelExpr& right = *expr.children[1];
      std::vector<ColumnSet> lkeys = DeriveKeys(left);
      std::vector<ColumnSet> rkeys = DeriveKeys(right);
      bool right_unique_per_left =
          (expr.join_kind == JoinKind::kInner ||
           expr.join_kind == JoinKind::kLeftOuter) &&
          JoinEquatesKeyOf(right, left.OutputSet(), expr.predicate);
      bool left_unique_per_right =
          expr.join_kind == JoinKind::kInner &&
          JoinEquatesKeyOf(left, right.OutputSet(), expr.predicate);
      if (right_unique_per_left) {
        for (const ColumnSet& k : lkeys) AddKeyUnique(&keys, k);
      }
      if (left_unique_per_right) {
        for (const ColumnSet& k : rkeys) AddKeyUnique(&keys, k);
      }
      if (keys.empty()) {
        for (const ColumnSet& lk : lkeys) {
          for (const ColumnSet& rk : rkeys) {
            AddKeyUnique(&keys, lk.Union(rk));
          }
        }
      }
      break;
    }
    case RelKind::kApply: {
      const RelExpr& left = *expr.children[0];
      if (expr.apply_kind == ApplyKind::kSemi ||
          expr.apply_kind == ApplyKind::kAnti) {
        return DeriveKeys(left);
      }
      std::vector<ColumnSet> lkeys = DeriveKeys(left);
      if (MaxOneRow(*expr.children[1])) return lkeys;
      std::vector<ColumnSet> rkeys = DeriveKeys(*expr.children[1]);
      for (const ColumnSet& lk : lkeys) {
        for (const ColumnSet& rk : rkeys) {
          AddKeyUnique(&keys, lk.Union(rk));
        }
      }
      break;
    }
    case RelKind::kGroupBy:
      if (expr.scalar_agg) {
        keys.push_back(ColumnSet());  // exactly one row
      } else {
        keys.push_back(expr.group_cols);
      }
      break;
    case RelKind::kLocalGroupBy:
      keys.push_back(expr.group_cols);
      break;
    case RelKind::kExceptAll:
      // Multiplicities only shrink; keys of the left input survive.
      for (const ColumnSet& key : DeriveKeys(*expr.children[0])) {
        ColumnSet mapped;
        bool ok = true;
        const std::vector<ColumnId> lout = expr.children[0]->OutputColumns();
        for (ColumnId id : key) {
          // Translate via positional input_maps.
          bool found = false;
          for (size_t i = 0; i < expr.input_maps[0].size(); ++i) {
            if (expr.input_maps[0][i] == id) {
              mapped.Add(expr.out_cols[i]);
              found = true;
              break;
            }
          }
          if (!found) {
            ok = false;
            break;
          }
        }
        if (ok) AddKeyUnique(&keys, std::move(mapped));
      }
      break;
    case RelKind::kSegmentApply: {
      // Rows are (outer-subset, inner-result) pairs; no generally valid key
      // beyond key(R) x key(inner). Conservative: none.
      break;
    }
    case RelKind::kSingleRow:
      keys.push_back(ColumnSet());
      break;
    case RelKind::kUnionAll:
    case RelKind::kSegmentRef:
      break;
  }
  return keys;
}

bool HasKeyWithin(const RelExpr& expr, const ColumnSet& cols) {
  for (const ColumnSet& key : DeriveKeys(expr)) {
    if (key.IsSubsetOf(cols)) return true;
  }
  return false;
}

ColumnSet NotNullColumns(const RelExpr& expr) {
  switch (expr.kind) {
    case RelKind::kGet: {
      ColumnSet out;
      const auto& specs = expr.table->columns();
      for (size_t i = 0; i < expr.get_ordinals.size(); ++i) {
        if (!specs[expr.get_ordinals[i]].nullable) out.Add(expr.get_cols[i]);
      }
      return out;
    }
    case RelKind::kSelect: {
      ColumnSet out = NotNullColumns(*expr.children[0]);
      out.AddAll(NullRejectedColumns(expr.predicate));
      return out.Intersect(expr.OutputSet());
    }
    case RelKind::kSort:
    case RelKind::kMax1row:
      return NotNullColumns(*expr.children[0]);
    case RelKind::kProject: {
      ColumnSet out =
          NotNullColumns(*expr.children[0]).Intersect(expr.passthrough);
      for (const ProjectItem& item : expr.proj_items) {
        if (item.expr->kind == ScalarKind::kLiteral &&
            !item.expr->literal.is_null()) {
          out.Add(item.output);
        }
      }
      return out;
    }
    case RelKind::kJoin: {
      ColumnSet left = NotNullColumns(*expr.children[0]);
      switch (expr.join_kind) {
        case JoinKind::kInner:
        case JoinKind::kCross: {
          ColumnSet out = left.Union(NotNullColumns(*expr.children[1]));
          out.AddAll(NullRejectedColumns(expr.predicate));
          return out;
        }
        case JoinKind::kLeftOuter:
        case JoinKind::kLeftSemi:
        case JoinKind::kLeftAnti:
          return left;
      }
      return left;
    }
    case RelKind::kApply: {
      ColumnSet left = NotNullColumns(*expr.children[0]);
      if (expr.apply_kind == ApplyKind::kCross) {
        return left.Union(NotNullColumns(*expr.children[1]));
      }
      return left;
    }
    case RelKind::kGroupBy:
    case RelKind::kLocalGroupBy: {
      ColumnSet out =
          NotNullColumns(*expr.children[0]).Intersect(expr.group_cols);
      for (const AggItem& agg : expr.aggs) {
        if (agg.func == AggFunc::kCountStar || agg.func == AggFunc::kCount) {
          out.Add(agg.output);
        }
      }
      return out;
    }
    case RelKind::kSegmentApply:
      return NotNullColumns(*expr.children[0])
          .Union(NotNullColumns(*expr.children[1]));
    default:
      return ColumnSet();
  }
}

bool MaxOneRow(const RelExpr& expr) {
  switch (expr.kind) {
    case RelKind::kMax1row:
    case RelKind::kSingleRow:
      return true;
    case RelKind::kGroupBy:
      return expr.scalar_agg;
    case RelKind::kSort:
      if (expr.limit == 1) return true;
      return MaxOneRow(*expr.children[0]);
    case RelKind::kProject:
      return MaxOneRow(*expr.children[0]);
    case RelKind::kSelect: {
      if (MaxOneRow(*expr.children[0])) return true;
      // Selection that pins a key of the child to expressions free of the
      // child's own columns (outer parameters or literals) yields <=1 row.
      const RelExpr& child = *expr.children[0];
      ColumnSet child_cols = child.OutputSet();
      ColumnSet pinned;
      for (const ScalarExprPtr& c : SplitConjuncts(expr.predicate)) {
        if (c->kind != ScalarKind::kCompare || c->cmp != CompareOp::kEq) {
          continue;
        }
        for (int side = 0; side < 2; ++side) {
          const ScalarExprPtr& l = c->children[side];
          const ScalarExprPtr& r = c->children[1 - side];
          if (l->kind != ScalarKind::kColumnRef) continue;
          if (!child_cols.Contains(l->column)) continue;
          ColumnSet rrefs;
          CollectColumnRefsDeep(r, &rrefs);
          if (!rrefs.Intersects(child_cols)) pinned.Add(l->column);
        }
      }
      return HasKeyWithin(child, pinned);
    }
    default:
      return false;
  }
}

bool ExprNullOnNull(const ScalarExprPtr& expr, const ColumnSet& null_cols) {
  if (expr == nullptr) return false;
  switch (expr->kind) {
    case ScalarKind::kColumnRef:
      return null_cols.Contains(expr->column);
    case ScalarKind::kLiteral:
      return expr->literal.is_null();
    case ScalarKind::kArith:
    case ScalarKind::kCompare:
    case ScalarKind::kLike:
      // Strict in every child: NULL if any child is NULL.
      for (const auto& child : expr->children) {
        if (ExprNullOnNull(child, null_cols)) return true;
      }
      return false;
    case ScalarKind::kNegate:
    case ScalarKind::kNot:
      return ExprNullOnNull(expr->children[0], null_cols);
    case ScalarKind::kInList:
      // NULL probe makes IN unknown only when no positive match is possible;
      // conservatively require the probe to be NULL and no literal matches —
      // too subtle: only claim NULL when the probe is NULL-valued and the
      // list is all non-NULL... skip (be conservative).
      return false;
    default:
      return false;
  }
}

bool PredicateNotTrueOnNull(const ScalarExprPtr& pred,
                            const ColumnSet& null_cols) {
  if (pred == nullptr) return false;
  if (ExprNullOnNull(pred, null_cols)) return true;  // NULL is not TRUE
  switch (pred->kind) {
    case ScalarKind::kAnd:
      for (const auto& child : pred->children) {
        if (PredicateNotTrueOnNull(child, null_cols)) return true;
      }
      return false;
    case ScalarKind::kOr:
      for (const auto& child : pred->children) {
        if (!PredicateNotTrueOnNull(child, null_cols)) return false;
      }
      return true;
    case ScalarKind::kIsNotNull:
      return ExprNullOnNull(pred->children[0], null_cols);
    case ScalarKind::kLiteral:
      return pred->literal.is_null() || !pred->literal.bool_value();
    default:
      return false;
  }
}

ColumnSet NullRejectedColumns(const ScalarExprPtr& pred) {
  ColumnSet out;
  for (const ScalarExprPtr& c : SplitConjuncts(pred)) {
    ColumnSet refs;
    CollectColumnRefs(c, &refs);
    for (ColumnId id : refs) {
      if (PredicateNotTrueOnNull(c, ColumnSet{id})) out.Add(id);
    }
  }
  return out;
}

}  // namespace orq
