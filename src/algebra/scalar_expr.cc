#include "algebra/scalar_expr.h"

namespace orq {

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kEq;
    case CompareOp::kNe: return CompareOp::kNe;
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
  }
  return op;
}

CompareOp NegateCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kNe;
    case CompareOp::kNe: return CompareOp::kEq;
    case CompareOp::kLt: return CompareOp::kGe;
    case CompareOp::kLe: return CompareOp::kGt;
    case CompareOp::kGt: return CompareOp::kLe;
    case CompareOp::kGe: return CompareOp::kLt;
  }
  return op;
}

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

std::string ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

bool ScalarExpr::HasSubquery() const {
  if (rel != nullptr) return true;
  for (const auto& child : children) {
    if (child->HasSubquery()) return true;
  }
  return false;
}

namespace {

ScalarExprPtr NewNode(ScalarKind kind, std::vector<ScalarExprPtr> children,
                      DataType type) {
  auto node = std::make_shared<ScalarExpr>();
  node->kind = kind;
  node->children = std::move(children);
  node->type = type;
  return node;
}

DataType ArithResultType(ArithOp op, DataType l, DataType r) {
  if (op == ArithOp::kDiv) {
    // SQL integer division truncates, but for optimizer-friendliness (avg
    // decomposition) we compute division in double when either side is
    // double; int/int stays int (truncating).
    if (l == DataType::kInt64 && r == DataType::kInt64) return DataType::kInt64;
    return DataType::kDouble;
  }
  // date +/- int -> date
  if (l == DataType::kDate || r == DataType::kDate) return DataType::kDate;
  if (l == DataType::kDouble || r == DataType::kDouble) {
    return DataType::kDouble;
  }
  return DataType::kInt64;
}

}  // namespace

ScalarExprPtr CRef(ColumnId id, DataType type) {
  auto node = NewNode(ScalarKind::kColumnRef, {}, type);
  node->column = id;
  return node;
}

ScalarExprPtr CRef(const ColumnManager& mgr, ColumnId id) {
  return CRef(id, mgr.type(id));
}

ScalarExprPtr Lit(Value v) {
  auto node = NewNode(ScalarKind::kLiteral, {}, v.type());
  node->literal = std::move(v);
  return node;
}

ScalarExprPtr LitInt(int64_t v) { return Lit(Value::Int64(v)); }
ScalarExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ScalarExprPtr LitString(std::string s) {
  return Lit(Value::String(std::move(s)));
}
ScalarExprPtr LitBool(bool b) { return Lit(Value::Bool(b)); }
ScalarExprPtr LitNull(DataType type) { return Lit(Value::Null(type)); }

ScalarExprPtr MakeParam(int ordinal, DataType type) {
  auto node = NewNode(ScalarKind::kParam, {}, type);
  node->column = ordinal;
  return node;
}

ScalarExprPtr TrueLiteral() { return LitBool(true); }

ScalarExprPtr MakeCompare(CompareOp op, ScalarExprPtr l, ScalarExprPtr r) {
  auto node = NewNode(ScalarKind::kCompare, {std::move(l), std::move(r)},
                      DataType::kBool);
  node->cmp = op;
  return node;
}

ScalarExprPtr Eq(ScalarExprPtr l, ScalarExprPtr r) {
  return MakeCompare(CompareOp::kEq, std::move(l), std::move(r));
}

ScalarExprPtr MakeArith(ArithOp op, ScalarExprPtr l, ScalarExprPtr r) {
  DataType type = ArithResultType(op, l->type, r->type);
  auto node =
      NewNode(ScalarKind::kArith, {std::move(l), std::move(r)}, type);
  node->arith = op;
  return node;
}

ScalarExprPtr MakeNot(ScalarExprPtr e) {
  return NewNode(ScalarKind::kNot, {std::move(e)}, DataType::kBool);
}

ScalarExprPtr MakeIsNull(ScalarExprPtr e) {
  return NewNode(ScalarKind::kIsNull, {std::move(e)}, DataType::kBool);
}

ScalarExprPtr MakeIsNotNull(ScalarExprPtr e) {
  return NewNode(ScalarKind::kIsNotNull, {std::move(e)}, DataType::kBool);
}

ScalarExprPtr MakeNegate(ScalarExprPtr e) {
  DataType type = e->type;
  return NewNode(ScalarKind::kNegate, {std::move(e)}, type);
}

ScalarExprPtr MakeLike(ScalarExprPtr value, ScalarExprPtr pattern) {
  return NewNode(ScalarKind::kLike, {std::move(value), std::move(pattern)},
                 DataType::kBool);
}

ScalarExprPtr MakeAnd(std::vector<ScalarExprPtr> conjuncts) {
  if (conjuncts.empty()) return TrueLiteral();
  if (conjuncts.size() == 1) return conjuncts[0];
  return NewNode(ScalarKind::kAnd, std::move(conjuncts), DataType::kBool);
}

ScalarExprPtr MakeAnd2(ScalarExprPtr a, ScalarExprPtr b) {
  return MakeAnd({std::move(a), std::move(b)});
}

ScalarExprPtr MakeOr(std::vector<ScalarExprPtr> disjuncts) {
  if (disjuncts.empty()) return LitBool(false);
  if (disjuncts.size() == 1) return disjuncts[0];
  return NewNode(ScalarKind::kOr, std::move(disjuncts), DataType::kBool);
}

ScalarExprPtr MakeCase(std::vector<ScalarExprPtr> children, DataType type) {
  return NewNode(ScalarKind::kCase, std::move(children), type);
}

ScalarExprPtr MakeInList(ScalarExprPtr probe,
                         std::vector<ScalarExprPtr> list) {
  std::vector<ScalarExprPtr> children;
  children.push_back(std::move(probe));
  for (auto& e : list) children.push_back(std::move(e));
  return NewNode(ScalarKind::kInList, std::move(children), DataType::kBool);
}

ScalarExprPtr MakeScalarSubquery(RelExprPtr rel, DataType type) {
  auto node = NewNode(ScalarKind::kScalarSubquery, {}, type);
  node->rel = std::move(rel);
  return node;
}

ScalarExprPtr MakeExists(RelExprPtr rel, bool negated) {
  auto node = NewNode(ScalarKind::kExistsSubquery, {}, DataType::kBool);
  node->rel = std::move(rel);
  node->negated = negated;
  return node;
}

ScalarExprPtr MakeInSubquery(ScalarExprPtr probe, RelExprPtr rel,
                             bool negated) {
  auto node = NewNode(ScalarKind::kInSubquery, {std::move(probe)},
                      DataType::kBool);
  node->rel = std::move(rel);
  node->negated = negated;
  return node;
}

ScalarExprPtr MakeQuantified(CompareOp op, Quantifier q, ScalarExprPtr left,
                             RelExprPtr rel) {
  auto node = NewNode(ScalarKind::kQuantifiedCompare, {std::move(left)},
                      DataType::kBool);
  node->cmp = op;
  node->quantifier = q;
  node->rel = std::move(rel);
  return node;
}

}  // namespace orq
