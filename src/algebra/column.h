#ifndef ORQ_ALGEBRA_COLUMN_H_
#define ORQ_ALGEBRA_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace orq {

/// Globally unique identifier of a column instance. Every reference to a
/// base table gets fresh ids for its columns, so two instances of the same
/// table (e.g. the two lineitem instances of TPC-H Q17) never collide, and
/// correlation is simply a reference to a column id produced elsewhere.
using ColumnId = int32_t;

/// Metadata for one column instance.
struct ColumnDef {
  ColumnId id = -1;
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;
};

/// Allocates column ids and records their definitions for one compilation.
/// Shared (via shared_ptr) by binder, normalizer, optimizer, and executor.
class ColumnManager {
 public:
  ColumnId NewColumn(std::string name, DataType type, bool nullable) {
    ColumnId id = static_cast<ColumnId>(defs_.size());
    defs_.push_back(ColumnDef{id, std::move(name), type, nullable});
    return id;
  }
  const ColumnDef& def(ColumnId id) const { return defs_[id]; }
  DataType type(ColumnId id) const { return defs_[id].type; }
  const std::string& name(ColumnId id) const { return defs_[id].name; }
  size_t size() const { return defs_.size(); }

 private:
  std::vector<ColumnDef> defs_;
};

using ColumnManagerPtr = std::shared_ptr<ColumnManager>;

/// An ordered set of column ids (kept sorted, deduplicated). Provides the
/// set algebra the rewrite rules are stated in.
class ColumnSet {
 public:
  ColumnSet() = default;
  ColumnSet(std::initializer_list<ColumnId> ids) : ids_(ids) { Normalize(); }
  explicit ColumnSet(std::vector<ColumnId> ids) : ids_(std::move(ids)) {
    Normalize();
  }

  bool empty() const { return ids_.empty(); }
  size_t size() const { return ids_.size(); }
  bool Contains(ColumnId id) const;
  bool ContainsAll(const ColumnSet& other) const;
  bool Intersects(const ColumnSet& other) const;
  bool IsSubsetOf(const ColumnSet& other) const {
    return other.ContainsAll(*this);
  }

  void Add(ColumnId id);
  void AddAll(const ColumnSet& other);
  void Remove(ColumnId id);

  ColumnSet Union(const ColumnSet& other) const;
  ColumnSet Intersect(const ColumnSet& other) const;
  ColumnSet Minus(const ColumnSet& other) const;

  const std::vector<ColumnId>& ids() const { return ids_; }
  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  bool operator==(const ColumnSet& other) const { return ids_ == other.ids_; }

  std::string ToString() const;

 private:
  void Normalize();
  std::vector<ColumnId> ids_;
};

}  // namespace orq

#endif  // ORQ_ALGEBRA_COLUMN_H_
