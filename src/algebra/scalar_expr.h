#ifndef ORQ_ALGEBRA_SCALAR_EXPR_H_
#define ORQ_ALGEBRA_SCALAR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/column.h"
#include "common/value.h"

namespace orq {

struct RelExpr;
using RelExprPtr = std::shared_ptr<RelExpr>;

/// Node kinds of scalar expression trees. The subquery-bearing kinds
/// (kScalarSubquery and later) hold a relational subtree — this is the
/// "mutual recursion" representation of paper section 2.1; Apply
/// introduction (section 2.2) eliminates them before normalization.
enum class ScalarKind {
  kColumnRef,
  kLiteral,
  kAnd,          // n-ary
  kOr,           // n-ary
  kNot,
  kCompare,      // binary, with CompareOp
  kArith,        // binary, with ArithOp
  kNegate,       // unary minus
  kIsNull,
  kIsNotNull,
  kLike,         // children: value, pattern
  kCase,         // children: when1, then1, ..., [else]
  kInList,       // children: probe, v1, v2, ...
  kParam,        // positional parameter; `column` holds the ordinal
  // --- subquery-bearing kinds (removed by Apply introduction) ---
  kScalarSubquery,     // rel: subquery producing one column
  kExistsSubquery,     // rel; payload `negated` for NOT EXISTS
  kInSubquery,         // child0 = probe; rel; payload `negated` for NOT IN
  kQuantifiedCompare,  // child0 = left operand; rel; cmp + quantifier
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };
enum class Quantifier { kAll, kAny };

CompareOp FlipCompare(CompareOp op);     // a op b  ->  b op' a
CompareOp NegateCompare(CompareOp op);   // NOT (a op b) -> a op' b
std::string CompareOpName(CompareOp op);
std::string ArithOpName(ArithOp op);

struct ScalarExpr;
using ScalarExprPtr = std::shared_ptr<ScalarExpr>;

/// A scalar expression node. Nodes are treated as immutable after
/// construction; rewrites build new nodes (structure sharing is fine).
struct ScalarExpr {
  ScalarKind kind;
  std::vector<ScalarExprPtr> children;

  ColumnId column = -1;                  // kColumnRef; kParam ordinal
  Value literal;                         // kLiteral
  CompareOp cmp = CompareOp::kEq;        // kCompare / kQuantifiedCompare
  ArithOp arith = ArithOp::kAdd;         // kArith
  Quantifier quantifier = Quantifier::kAny;  // kQuantifiedCompare
  bool negated = false;                  // kExistsSubquery / kInSubquery
  RelExprPtr rel;                        // subquery kinds
  DataType type = DataType::kBool;       // result type

  bool HasSubquery() const;
};

// ---- Factory helpers (the builder vocabulary used across the library) ----

ScalarExprPtr CRef(ColumnId id, DataType type);
/// Column reference taking its type from the manager.
ScalarExprPtr CRef(const ColumnManager& mgr, ColumnId id);
ScalarExprPtr Lit(Value v);
ScalarExprPtr LitInt(int64_t v);
ScalarExprPtr LitDouble(double v);
ScalarExprPtr LitString(std::string s);
ScalarExprPtr LitBool(bool b);
ScalarExprPtr LitNull(DataType type);
/// Positional parameter placeholder ($ordinal). Opaque to normalization and
/// optimization; SubstituteParams (engine/plan_cache.h) replaces it with a
/// literal before physical build, so execution never sees one.
ScalarExprPtr MakeParam(int ordinal, DataType type);

ScalarExprPtr MakeCompare(CompareOp op, ScalarExprPtr l, ScalarExprPtr r);
ScalarExprPtr Eq(ScalarExprPtr l, ScalarExprPtr r);
ScalarExprPtr MakeArith(ArithOp op, ScalarExprPtr l, ScalarExprPtr r);
ScalarExprPtr MakeNot(ScalarExprPtr e);
ScalarExprPtr MakeIsNull(ScalarExprPtr e);
ScalarExprPtr MakeIsNotNull(ScalarExprPtr e);
ScalarExprPtr MakeNegate(ScalarExprPtr e);
ScalarExprPtr MakeLike(ScalarExprPtr value, ScalarExprPtr pattern);
/// n-ary AND; returns TRUE literal when empty, the sole child when unary.
ScalarExprPtr MakeAnd(std::vector<ScalarExprPtr> conjuncts);
ScalarExprPtr MakeAnd2(ScalarExprPtr a, ScalarExprPtr b);
ScalarExprPtr MakeOr(std::vector<ScalarExprPtr> disjuncts);
ScalarExprPtr MakeCase(std::vector<ScalarExprPtr> children, DataType type);
ScalarExprPtr MakeInList(ScalarExprPtr probe, std::vector<ScalarExprPtr> list);

ScalarExprPtr MakeScalarSubquery(RelExprPtr rel, DataType type);
ScalarExprPtr MakeExists(RelExprPtr rel, bool negated);
ScalarExprPtr MakeInSubquery(ScalarExprPtr probe, RelExprPtr rel,
                             bool negated);
ScalarExprPtr MakeQuantified(CompareOp op, Quantifier q, ScalarExprPtr left,
                             RelExprPtr rel);

/// True literal convenience.
ScalarExprPtr TrueLiteral();

}  // namespace orq

#endif  // ORQ_ALGEBRA_SCALAR_EXPR_H_
