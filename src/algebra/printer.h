#ifndef ORQ_ALGEBRA_PRINTER_H_
#define ORQ_ALGEBRA_PRINTER_H_

#include <string>

#include "algebra/rel_expr.h"

namespace orq {

/// Renders a logical operator tree as an indented multi-line string, e.g.
///   Select ((1000000 < X#12))
///     Apply(cross)
///       Get customer [...]
///       ScalarGroupBy [X#12=sum(o_totalprice#7)]
///         Select ((o_custkey#5 = c_custkey#0))
///           Get orders [...]
std::string PrintRelTree(const RelExpr& expr, const ColumnManager* mgr);

/// One-line summary of a node (no children).
std::string PrintRelNode(const RelExpr& expr, const ColumnManager* mgr);

}  // namespace orq

#endif  // ORQ_ALGEBRA_PRINTER_H_
