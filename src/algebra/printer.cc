#include "algebra/printer.h"

#include "algebra/expr_util.h"
#include "catalog/table.h"

namespace orq {

namespace {

std::string ColName(ColumnId id, const ColumnManager* mgr) {
  if (mgr != nullptr) return mgr->name(id) + "#" + std::to_string(id);
  return "#" + std::to_string(id);
}

std::string ColList(const std::vector<ColumnId>& ids,
                    const ColumnManager* mgr) {
  std::string out = "[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ", ";
    out += ColName(ids[i], mgr);
  }
  return out + "]";
}

std::string ColSet(const ColumnSet& set, const ColumnManager* mgr) {
  return ColList(set.ids(), mgr);
}

std::string AggList(const std::vector<AggItem>& aggs,
                    const ColumnManager* mgr) {
  std::string out = "[";
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggItem& a = aggs[i];
    if (i > 0) out += ", ";
    out += ColName(a.output, mgr) + "=" + AggFuncName(a.func);
    if (a.func != AggFunc::kCountStar) {
      out += "(";
      if (a.distinct) out += "distinct ";
      out += ScalarToString(a.arg, mgr) + ")";
    }
  }
  return out + "]";
}

void PrintRec(const RelExpr& expr, const ColumnManager* mgr, int indent,
              std::string* out) {
  out->append(indent * 2, ' ');
  out->append(PrintRelNode(expr, mgr));
  out->push_back('\n');
  for (const auto& child : expr.children) {
    PrintRec(*child, mgr, indent + 1, out);
  }
  // Subquery rels embedded in scalar payloads (pre-Apply form).
  auto print_subqueries = [&](const ScalarExprPtr& e, auto&& self) -> void {
    if (e == nullptr) return;
    if (e->rel != nullptr) {
      out->append((indent + 1) * 2, ' ');
      out->append("(subquery)\n");
      PrintRec(*e->rel, mgr, indent + 2, out);
    }
    for (const auto& child : e->children) self(child, self);
  };
  print_subqueries(expr.predicate, print_subqueries);
  for (const ProjectItem& item : expr.proj_items) {
    print_subqueries(item.expr, print_subqueries);
  }
}

}  // namespace

std::string PrintRelNode(const RelExpr& expr, const ColumnManager* mgr) {
  switch (expr.kind) {
    case RelKind::kGet:
      return "Get " + expr.table->name() + " " +
             ColList(expr.get_cols, mgr);
    case RelKind::kSelect:
      return "Select " + ScalarToString(expr.predicate, mgr);
    case RelKind::kProject: {
      std::string out = "Project pass=" + ColSet(expr.passthrough, mgr);
      if (!expr.proj_items.empty()) {
        out += " compute=[";
        for (size_t i = 0; i < expr.proj_items.size(); ++i) {
          if (i > 0) out += ", ";
          out += ColName(expr.proj_items[i].output, mgr) + "=" +
                 ScalarToString(expr.proj_items[i].expr, mgr);
        }
        out += "]";
      }
      return out;
    }
    case RelKind::kJoin:
      return JoinKindName(expr.join_kind) + " " +
             ScalarToString(expr.predicate, mgr);
    case RelKind::kApply:
      return ApplyKindName(expr.apply_kind);
    case RelKind::kGroupBy:
      if (expr.scalar_agg) {
        return "ScalarGroupBy " + AggList(expr.aggs, mgr);
      }
      return "GroupBy " + ColSet(expr.group_cols, mgr) + " " +
             AggList(expr.aggs, mgr);
    case RelKind::kLocalGroupBy:
      return "LocalGroupBy " + ColSet(expr.group_cols, mgr) + " " +
             AggList(expr.aggs, mgr);
    case RelKind::kSegmentApply:
      return "SegmentApply " + ColSet(expr.segment_cols, mgr);
    case RelKind::kSegmentRef:
      return "SegmentRef " + ColList(expr.segment_out_cols, mgr);
    case RelKind::kMax1row:
      return "Max1row";
    case RelKind::kUnionAll:
      return "UnionAll " + ColList(expr.out_cols, mgr);
    case RelKind::kExceptAll:
      return "ExceptAll " + ColList(expr.out_cols, mgr);
    case RelKind::kSort: {
      std::string out = "Sort [";
      for (size_t i = 0; i < expr.sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += ScalarToString(expr.sort_keys[i].expr, mgr);
        out += expr.sort_keys[i].ascending ? " asc" : " desc";
      }
      out += "]";
      if (expr.limit >= 0) out += " limit=" + std::to_string(expr.limit);
      return out;
    }
    case RelKind::kSingleRow:
      return "SingleRow";
  }
  return "?";
}

std::string PrintRelTree(const RelExpr& expr, const ColumnManager* mgr) {
  std::string out;
  PrintRec(expr, mgr, 0, &out);
  return out;
}

}  // namespace orq
