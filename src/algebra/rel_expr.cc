#include "algebra/rel_expr.h"

namespace orq {

std::string JoinKindName(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner: return "Join";
    case JoinKind::kLeftOuter: return "LeftOuterJoin";
    case JoinKind::kLeftSemi: return "SemiJoin";
    case JoinKind::kLeftAnti: return "AntiJoin";
    case JoinKind::kCross: return "CrossJoin";
  }
  return "?";
}

std::string ApplyKindName(ApplyKind kind) {
  switch (kind) {
    case ApplyKind::kCross: return "Apply";
    case ApplyKind::kOuter: return "OuterApply";
    case ApplyKind::kSemi: return "SemiApply";
    case ApplyKind::kAnti: return "AntiApply";
  }
  return "?";
}

std::string AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar: return "count(*)";
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kMax1Row: return "max1row";
  }
  return "?";
}

bool AggNullOnEmpty(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return false;
    default:
      return true;
  }
}

std::vector<ColumnId> RelExpr::OutputColumns() const {
  switch (kind) {
    case RelKind::kGet:
      return get_cols;
    case RelKind::kSelect:
    case RelKind::kMax1row:
    case RelKind::kSort:
      return children[0]->OutputColumns();
    case RelKind::kProject: {
      std::vector<ColumnId> out;
      for (ColumnId id : children[0]->OutputColumns()) {
        if (passthrough.Contains(id)) out.push_back(id);
      }
      for (const ProjectItem& item : proj_items) out.push_back(item.output);
      return out;
    }
    case RelKind::kJoin: {
      std::vector<ColumnId> out = children[0]->OutputColumns();
      if (join_kind != JoinKind::kLeftSemi &&
          join_kind != JoinKind::kLeftAnti) {
        std::vector<ColumnId> right = children[1]->OutputColumns();
        out.insert(out.end(), right.begin(), right.end());
      }
      return out;
    }
    case RelKind::kApply: {
      std::vector<ColumnId> out = children[0]->OutputColumns();
      if (apply_kind == ApplyKind::kCross || apply_kind == ApplyKind::kOuter) {
        std::vector<ColumnId> right = children[1]->OutputColumns();
        out.insert(out.end(), right.begin(), right.end());
      }
      return out;
    }
    case RelKind::kGroupBy:
    case RelKind::kLocalGroupBy: {
      std::vector<ColumnId> out;
      // Group columns in child output order for determinism.
      for (ColumnId id : children[0]->OutputColumns()) {
        if (group_cols.Contains(id)) out.push_back(id);
      }
      for (const AggItem& agg : aggs) out.push_back(agg.output);
      return out;
    }
    case RelKind::kSegmentApply: {
      // R SA_A E = ∪_a ({a} × E(σ_{A=a} R)): the segment key plus the
      // inner expression's columns.
      std::vector<ColumnId> out;
      for (ColumnId id : children[0]->OutputColumns()) {
        if (segment_cols.Contains(id)) out.push_back(id);
      }
      std::vector<ColumnId> inner = children[1]->OutputColumns();
      out.insert(out.end(), inner.begin(), inner.end());
      return out;
    }
    case RelKind::kSegmentRef:
      return segment_out_cols;
    case RelKind::kUnionAll:
    case RelKind::kExceptAll:
      return out_cols;
    case RelKind::kSingleRow:
      return {};
  }
  return {};
}

namespace {

RelExprPtr NewNode(RelKind kind, std::vector<RelExprPtr> children) {
  auto node = std::make_shared<RelExpr>();
  node->kind = kind;
  node->children = std::move(children);
  return node;
}

}  // namespace

RelExprPtr MakeGet(const Table* table, std::vector<ColumnId> cols) {
  auto node = NewNode(RelKind::kGet, {});
  node->table = table;
  node->get_ordinals.resize(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    node->get_ordinals[i] = static_cast<int>(i);
  }
  node->get_cols = std::move(cols);
  return node;
}

RelExprPtr MakeSelect(RelExprPtr child, ScalarExprPtr predicate) {
  auto node = NewNode(RelKind::kSelect, {std::move(child)});
  node->predicate = std::move(predicate);
  return node;
}

RelExprPtr MakeProject(RelExprPtr child, std::vector<ProjectItem> items,
                       ColumnSet passthrough) {
  auto node = NewNode(RelKind::kProject, {std::move(child)});
  node->proj_items = std::move(items);
  node->passthrough = std::move(passthrough);
  return node;
}

RelExprPtr MakeJoin(JoinKind kind, RelExprPtr left, RelExprPtr right,
                    ScalarExprPtr predicate) {
  auto node = NewNode(RelKind::kJoin, {std::move(left), std::move(right)});
  node->join_kind = kind;
  node->predicate = predicate ? std::move(predicate) : TrueLiteral();
  return node;
}

RelExprPtr MakeApply(ApplyKind kind, RelExprPtr left, RelExprPtr right) {
  auto node = NewNode(RelKind::kApply, {std::move(left), std::move(right)});
  node->apply_kind = kind;
  return node;
}

RelExprPtr MakeGroupBy(RelExprPtr child, ColumnSet group_cols,
                       std::vector<AggItem> aggs) {
  auto node = NewNode(RelKind::kGroupBy, {std::move(child)});
  node->group_cols = std::move(group_cols);
  node->aggs = std::move(aggs);
  node->scalar_agg = false;
  return node;
}

RelExprPtr MakeScalarGroupBy(RelExprPtr child, std::vector<AggItem> aggs) {
  auto node = NewNode(RelKind::kGroupBy, {std::move(child)});
  node->aggs = std::move(aggs);
  node->scalar_agg = true;
  return node;
}

RelExprPtr MakeLocalGroupBy(RelExprPtr child, ColumnSet group_cols,
                            std::vector<AggItem> aggs) {
  auto node = NewNode(RelKind::kLocalGroupBy, {std::move(child)});
  node->group_cols = std::move(group_cols);
  node->aggs = std::move(aggs);
  return node;
}

RelExprPtr MakeSegmentApply(RelExprPtr input, RelExprPtr inner,
                            ColumnSet segment_cols,
                            std::vector<ColumnId> segment_out_cols) {
  auto node =
      NewNode(RelKind::kSegmentApply, {std::move(input), std::move(inner)});
  node->segment_cols = std::move(segment_cols);
  node->segment_out_cols = std::move(segment_out_cols);
  return node;
}

RelExprPtr MakeSegmentRef(std::vector<ColumnId> cols) {
  auto node = NewNode(RelKind::kSegmentRef, {});
  node->segment_out_cols = std::move(cols);
  return node;
}

RelExprPtr MakeMax1row(RelExprPtr child) {
  return NewNode(RelKind::kMax1row, {std::move(child)});
}

RelExprPtr MakeUnionAll(std::vector<RelExprPtr> children,
                        std::vector<ColumnId> out_cols,
                        std::vector<std::vector<ColumnId>> input_maps) {
  auto node = NewNode(RelKind::kUnionAll, std::move(children));
  node->out_cols = std::move(out_cols);
  node->input_maps = std::move(input_maps);
  return node;
}

RelExprPtr MakeExceptAll(RelExprPtr left, RelExprPtr right,
                         std::vector<ColumnId> out_cols,
                         std::vector<std::vector<ColumnId>> input_maps) {
  auto node =
      NewNode(RelKind::kExceptAll, {std::move(left), std::move(right)});
  node->out_cols = std::move(out_cols);
  node->input_maps = std::move(input_maps);
  return node;
}

RelExprPtr MakeSort(RelExprPtr child, std::vector<SortKey> keys,
                    int64_t limit) {
  auto node = NewNode(RelKind::kSort, {std::move(child)});
  node->sort_keys = std::move(keys);
  node->limit = limit;
  return node;
}

RelExprPtr MakeSingleRow() { return NewNode(RelKind::kSingleRow, {}); }

RelExprPtr CloneWithChildren(const RelExpr& node,
                             std::vector<RelExprPtr> children) {
  auto clone = std::make_shared<RelExpr>(node);
  clone->children = std::move(children);
  return clone;
}

}  // namespace orq
