#ifndef ORQ_ALGEBRA_PROPS_H_
#define ORQ_ALGEBRA_PROPS_H_

#include <vector>

#include "algebra/rel_expr.h"

namespace orq {

/// Free variables (outer references / parameters) of a relational tree:
/// columns referenced by scalar payloads that are not produced by any child.
/// An expression is "correlated" exactly when this set is non-empty
/// relative to its context (paper section 1.3).
ColumnSet FreeVariables(const RelExpr& expr);

/// Candidate keys derivable for the operator's output. Possibly empty; each
/// entry is a column set whose values are unique in the output bag.
std::vector<ColumnSet> DeriveKeys(const RelExpr& expr);

/// True when some derived key is a subset of `cols`.
bool HasKeyWithin(const RelExpr& expr, const ColumnSet& cols);

/// Output columns guaranteed non-NULL.
ColumnSet NotNullColumns(const RelExpr& expr);

/// True when the expression is statically known to produce at most one row
/// per invocation (scalar GroupBy, Max1row, key-covering selections...).
/// Used for Max1row elimination (paper section 2.4).
bool MaxOneRow(const RelExpr& expr);

/// True when `pred` cannot evaluate to TRUE on a tuple whose columns in
/// `null_cols` are all NULL (i.e. the predicate is null-rejecting on that
/// set). Drives outerjoin simplification [7].
bool PredicateNotTrueOnNull(const ScalarExprPtr& pred,
                            const ColumnSet& null_cols);

/// True when `expr`'s value is guaranteed NULL whenever all columns of
/// `null_cols` it references are NULL (strictness).
bool ExprNullOnNull(const ScalarExprPtr& expr, const ColumnSet& null_cols);

/// Columns c of `pred`'s references such that `pred` being TRUE implies c is
/// not NULL (per-column strictness). Feeds NotNullColumns through Select.
ColumnSet NullRejectedColumns(const ScalarExprPtr& pred);

}  // namespace orq

#endif  // ORQ_ALGEBRA_PROPS_H_
