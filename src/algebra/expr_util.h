#ifndef ORQ_ALGEBRA_EXPR_UTIL_H_
#define ORQ_ALGEBRA_EXPR_UTIL_H_

#include <map>
#include <vector>

#include "algebra/rel_expr.h"
#include "algebra/scalar_expr.h"

namespace orq {

/// Adds all column ids referenced by `expr` to `out`. Does not descend into
/// subquery relational trees (use CollectColumnRefsDeep for that).
void CollectColumnRefs(const ScalarExprPtr& expr, ColumnSet* out);

/// Like CollectColumnRefs but also collects the *free* variables of any
/// embedded subquery relational trees.
void CollectColumnRefsDeep(const ScalarExprPtr& expr, ColumnSet* out);

/// Column ids referenced directly by the payload of one relational node
/// (its predicate / project items / aggregate args / sort keys), not
/// descending into relational children but descending into subquery rels'
/// free variables.
ColumnSet NodeScalarRefs(const RelExpr& node);

/// Rewrites column references per `mapping` (ids absent from the map are
/// kept). Returns a new tree; shares untouched subtrees.
ScalarExprPtr RemapColumns(const ScalarExprPtr& expr,
                           const std::map<ColumnId, ColumnId>& mapping);

/// Replaces column references by arbitrary scalar expressions.
ScalarExprPtr SubstituteColumns(
    const ScalarExprPtr& expr,
    const std::map<ColumnId, ScalarExprPtr>& mapping);

/// Splits a predicate into its top-level conjuncts (flattening nested ANDs).
std::vector<ScalarExprPtr> SplitConjuncts(const ScalarExprPtr& expr);

bool IsTrueLiteral(const ScalarExprPtr& expr);
bool IsFalseOrNullLiteral(const ScalarExprPtr& expr);

/// Structural equality / hashing of scalar expressions (subquery rels are
/// compared by pointer identity; normalized trees contain none).
bool ScalarEquals(const ScalarExprPtr& a, const ScalarExprPtr& b);
size_t ScalarHash(const ScalarExprPtr& expr);

/// Deep-clones a relational tree, allocating fresh column ids for every
/// column the tree *defines* and rewriting internal references accordingly.
/// Free variables (outer references) are left untouched. `mapping`
/// accumulates old-id -> new-id for the tree's defined columns; callers use
/// it to translate predicates that referred to the original instance.
RelExprPtr CloneRelTree(const RelExprPtr& expr, ColumnManager* mgr,
                        std::map<ColumnId, ColumnId>* mapping);

/// Rewrites all column ids in a relational tree per `mapping` — both defined
/// columns and references. Used by SegmentApply construction.
RelExprPtr RemapRelTree(const RelExprPtr& expr,
                        const std::map<ColumnId, ColumnId>& mapping);

/// Pretty-printing for debugging (full form in printer.h).
std::string ScalarToString(const ScalarExprPtr& expr,
                           const ColumnManager* mgr = nullptr);

/// Number of relational operator nodes in the tree (rule-trace metric;
/// shared subtrees are counted once per occurrence).
int64_t CountRelNodes(const RelExpr& node);

}  // namespace orq

#endif  // ORQ_ALGEBRA_EXPR_UTIL_H_
