#ifndef ORQ_ALGEBRA_ISO_H_
#define ORQ_ALGEBRA_ISO_H_

#include <map>

#include "algebra/rel_expr.h"

namespace orq {

/// Structural isomorphism of two relational trees modulo column identity:
/// returns true when `a` and `b` are the same operator tree over the same
/// base tables with matching payloads once `a`'s defined columns are renamed
/// to `b`'s. On success `mapping` holds that renaming (a-id -> b-id).
///
/// This is the detector behind SegmentApply introduction (paper section
/// 3.4.1): "two instances of an expression connected by a join". Children
/// are compared positionally; commutative variants are expected to be
/// matched through the optimizer's exploration, not here.
bool RelTreesIsomorphic(const RelExprPtr& a, const RelExprPtr& b,
                        std::map<ColumnId, ColumnId>* mapping);

}  // namespace orq

#endif  // ORQ_ALGEBRA_ISO_H_
