#ifndef ORQ_ALGEBRA_REL_EXPR_H_
#define ORQ_ALGEBRA_REL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/column.h"
#include "algebra/scalar_expr.h"
#include "common/value.h"

namespace orq {

class Table;

/// Logical relational operators. All operators are bag-oriented (paper
/// section 1.3): union is UNION ALL, no implicit duplicate removal.
enum class RelKind {
  kGet,           // base-table access
  kSelect,        // filter
  kProject,       // computed columns + pass-through columns
  kJoin,          // inner / left-outer / semi / anti / cross, with predicate
  kApply,         // R Apply⊗ E(r): parameterized execution (section 1.3)
  kGroupBy,       // vector or scalar GroupBy (G_{A,F} / G_F per section 1.1)
  kLocalGroupBy,  // LG_{A,Fl}: local aggregate (section 3.3)
  kSegmentApply,  // R SA_A E(S): table-valued parameterization (section 3.4)
  kMax1row,       // run-time guard for scalar subqueries (section 2.4)
  kUnionAll,
  kExceptAll,     // bag difference (identity (6) requires it)
  kSort,          // ORDER BY [+ optional row limit]
  kSingleRow,     // constant relation of exactly one 0-column row
  kSegmentRef,    // leaf inside SegmentApply's inner expr: current segment S
};

enum class JoinKind { kInner, kLeftOuter, kLeftSemi, kLeftAnti, kCross };

/// The ⊗ variant of Apply (paper section 1.3). kCross is A×, kOuter is
/// A^LOJ, kSemi/kAnti are the existential variants.
enum class ApplyKind { kCross, kOuter, kSemi, kAnti };

std::string JoinKindName(JoinKind kind);
std::string ApplyKindName(ApplyKind kind);

/// Aggregate functions. avg is decomposed by the binder into sum/count so
/// that every aggregate here has local/global components (section 3.3).
/// kMax1Row implements the Max1row guard as an aggregate: returns the single
/// input value, NULL on empty input, and raises a run-time error when the
/// group has more than one row.
enum class AggFunc { kCountStar, kCount, kSum, kMin, kMax, kMax1Row };

std::string AggFuncName(AggFunc func);

/// True when f(empty group) is NULL (sum/min/max); count yields 0. Used by
/// the GroupBy-below-outerjoin computing project (section 3.2) and by
/// identity (9).
bool AggNullOnEmpty(AggFunc func);

/// One aggregate computation inside a GroupBy/LocalGroupBy.
struct AggItem {
  AggFunc func = AggFunc::kCountStar;
  ScalarExprPtr arg;        // nullptr for count(*)
  ColumnId output = -1;
  bool distinct = false;    // count(distinct x) etc.
};

/// One computed column inside a Project.
struct ProjectItem {
  ColumnId output = -1;
  ScalarExprPtr expr;
};

struct SortKey {
  ScalarExprPtr expr;
  bool ascending = true;
};

struct RelExpr;
using RelExprPtr = std::shared_ptr<RelExpr>;

/// A logical operator node. Treated as immutable after construction;
/// rewrites build new nodes and may share subtrees.
struct RelExpr {
  RelKind kind;
  std::vector<RelExprPtr> children;

  // kGet: reads table columns `get_ordinals[i]` as column ids `get_cols[i]`.
  // A freshly bound Get covers all columns; pruning narrows both vectors.
  const Table* table = nullptr;
  std::vector<ColumnId> get_cols;
  std::vector<int> get_ordinals;

  // kSelect / kJoin (predicate may be TRUE literal)
  ScalarExprPtr predicate;
  JoinKind join_kind = JoinKind::kInner;

  // kApply
  ApplyKind apply_kind = ApplyKind::kCross;

  // kProject
  std::vector<ProjectItem> proj_items;
  ColumnSet passthrough;            // child columns forwarded unchanged

  // kGroupBy / kLocalGroupBy
  ColumnSet group_cols;
  std::vector<AggItem> aggs;
  bool scalar_agg = false;          // G_F (exactly one output row) vs G_{A,F}

  // kSegmentApply: children[0]=input R, children[1]=inner E(S).
  ColumnSet segment_cols;           // segmenting columns A (from R's output)
  // kSegmentRef: output ids of the segment leaf, positionally matching R's
  // OutputColumns(). Set on both the kSegmentApply node (for bookkeeping)
  // and each kSegmentRef leaf.
  std::vector<ColumnId> segment_out_cols;

  // kUnionAll / kExceptAll: output ids; child i's columns are selected by
  // input_maps[i] (positional, same arity as out_cols).
  std::vector<ColumnId> out_cols;
  std::vector<std::vector<ColumnId>> input_maps;

  // kSort
  std::vector<SortKey> sort_keys;
  int64_t limit = -1;               // -1 = no limit

  /// Deterministic output column list (see props.cc for the ordering
  /// contract per operator).
  std::vector<ColumnId> OutputColumns() const;
  ColumnSet OutputSet() const { return ColumnSet(OutputColumns()); }
};

// ---- Factory helpers ----

RelExprPtr MakeGet(const Table* table, std::vector<ColumnId> cols);
RelExprPtr MakeSelect(RelExprPtr child, ScalarExprPtr predicate);
RelExprPtr MakeProject(RelExprPtr child, std::vector<ProjectItem> items,
                       ColumnSet passthrough);
RelExprPtr MakeJoin(JoinKind kind, RelExprPtr left, RelExprPtr right,
                    ScalarExprPtr predicate);
RelExprPtr MakeApply(ApplyKind kind, RelExprPtr left, RelExprPtr right);
RelExprPtr MakeGroupBy(RelExprPtr child, ColumnSet group_cols,
                       std::vector<AggItem> aggs);
RelExprPtr MakeScalarGroupBy(RelExprPtr child, std::vector<AggItem> aggs);
RelExprPtr MakeLocalGroupBy(RelExprPtr child, ColumnSet group_cols,
                            std::vector<AggItem> aggs);
RelExprPtr MakeSegmentApply(RelExprPtr input, RelExprPtr inner,
                            ColumnSet segment_cols,
                            std::vector<ColumnId> segment_out_cols);
RelExprPtr MakeSegmentRef(std::vector<ColumnId> cols);
RelExprPtr MakeMax1row(RelExprPtr child);
RelExprPtr MakeUnionAll(std::vector<RelExprPtr> children,
                        std::vector<ColumnId> out_cols,
                        std::vector<std::vector<ColumnId>> input_maps);
RelExprPtr MakeExceptAll(RelExprPtr left, RelExprPtr right,
                         std::vector<ColumnId> out_cols,
                         std::vector<std::vector<ColumnId>> input_maps);
RelExprPtr MakeSort(RelExprPtr child, std::vector<SortKey> keys,
                    int64_t limit);
RelExprPtr MakeSingleRow();

/// Shallow clone: same payload, new children vector (for child surgery).
RelExprPtr CloneWithChildren(const RelExpr& node,
                             std::vector<RelExprPtr> children);

}  // namespace orq

#endif  // ORQ_ALGEBRA_REL_EXPR_H_
