#include "difftest/qgen.h"

namespace orq {

namespace {

// ---- schema model (mirrors difftest/dataset.cc) ----------------------

struct ColDef {
  const char* name;
  char kind;  // 'i' int64, 'f' double, 's' string, 'd' date
};

struct TblDef {
  const char* name;
  std::vector<ColDef> cols;
  const char* key;  // single-column integer key ("" = composite/none)
};

const std::vector<TblDef>& Tables() {
  static const std::vector<TblDef> kTables = {
      {"nation",
       {{"n_nationkey", 'i'}, {"n_name", 's'}, {"n_regionkey", 'i'}},
       "n_nationkey"},
      {"customer",
       {{"c_custkey", 'i'},
        {"c_name", 's'},
        {"c_nationkey", 'i'},
        {"c_acctbal", 'f'},
        {"c_mktsegment", 's'}},
       "c_custkey"},
      {"orders",
       {{"o_orderkey", 'i'},
        {"o_custkey", 'i'},
        {"o_totalprice", 'f'},
        {"o_orderdate", 'd'},
        {"o_shippriority", 'i'}},
       "o_orderkey"},
      {"lineitem",
       {{"l_orderkey", 'i'},
        {"l_linenumber", 'i'},
        {"l_partkey", 'i'},
        {"l_quantity", 'f'},
        {"l_extendedprice", 'f'},
        {"l_shipdate", 'd'},
        {"l_returnflag", 's'}},
       ""},
      {"part",
       {{"p_partkey", 'i'}, {"p_brand", 's'}, {"p_size", 'i'}, {"p_retailprice", 'f'}},
       "p_partkey"},
  };
  return kTables;
}

const TblDef* FindTable(const std::string& name) {
  for (const TblDef& t : Tables()) {
    if (name == t.name) return &t;
  }
  return nullptr;
}

/// Foreign-key edges (child.col references parent.col). Correlated
/// subqueries are generated along these so they sometimes match, sometimes
/// hit empty groups (dangling keys), sometimes hit NULL keys.
struct Edge {
  const char* child_tbl;
  const char* child_col;
  const char* parent_tbl;
  const char* parent_col;
};

const std::vector<Edge>& Edges() {
  static const std::vector<Edge> kEdges = {
      {"orders", "o_custkey", "customer", "c_custkey"},
      {"lineitem", "l_orderkey", "orders", "o_orderkey"},
      {"lineitem", "l_partkey", "part", "p_partkey"},
      {"customer", "c_nationkey", "nation", "n_nationkey"},
  };
  return kEdges;
}

/// Segment columns: correlating a table with itself on these yields the
/// SegmentApply-eligible shapes of paper section 3.4.
struct SelfEdge {
  const char* tbl;
  const char* col;
};

const std::vector<SelfEdge>& SelfEdges() {
  static const std::vector<SelfEdge> kSelf = {
      {"lineitem", "l_orderkey"},
      {"orders", "o_custkey"},
      {"customer", "c_nationkey"},
  };
  return kSelf;
}

struct ScopeEntry {
  std::string alias;
  const TblDef* table;
};

std::string Q(const ScopeEntry& e, const char* col) {
  return e.alias + "." + col;
}

}  // namespace

// ---- rng -------------------------------------------------------------

uint64_t QueryGenerator::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int QueryGenerator::Uniform(int n) { return static_cast<int>(Next() % n); }

bool QueryGenerator::Chance(int num, int den) { return Uniform(den) < num; }

// ---- generation ------------------------------------------------------

namespace {

/// Everything below is stateless helpers taking the generator through a
/// tiny interface so they stay free functions.
struct Gen {
  QueryGenerator* g;
  int* alias_counter;
  int depth = 0;  // subquery nesting depth

  int U(int n) const { return gPick(n); }
  int gPick(int n) const;
  bool C(int num, int den) const;
  std::string NewAlias() const {
    return "q" + std::to_string((*alias_counter)++);
  }

  const ColDef* PickCol(const TblDef& t, const char* kinds) const {
    std::vector<const ColDef*> matching;
    for (const ColDef& c : t.cols) {
      for (const char* k = kinds; *k; ++k) {
        if (c.kind == *k) matching.push_back(&c);
      }
    }
    if (matching.empty()) return nullptr;
    return matching[U(static_cast<int>(matching.size()))];
  }

  std::string Literal(const ColDef& col) const {
    switch (col.kind) {
      case 'i': {
        // Keys are dense and small; sizes go to 50.
        if (std::string(col.name) == "p_size") return std::to_string(U(50));
        if (std::string(col.name) == "o_shippriority" ||
            std::string(col.name) == "n_regionkey") {
          return std::to_string(U(4));
        }
        if (std::string(col.name) == "l_linenumber") {
          return std::to_string(1 + U(4));
        }
        return std::to_string(U(24));
      }
      case 'f': {
        static const char* kPrices[] = {"0.0",   "1.5",   "42.25",
                                        "100.0", "850.5", "-17.5"};
        if (std::string(col.name) == "l_quantity") {
          return std::to_string(1 + U(10)) + ".0";
        }
        return kPrices[U(6)];
      }
      case 'd': {
        static const char* kDates[] = {"date '1995-06-17'",
                                       "date '1996-01-01'",
                                       "date '1997-03-15'",
                                       "date '1995-01-01'"};
        return kDates[U(4)];
      }
      case 's':
      default: {
        std::string name = col.name;
        if (name == "c_mktsegment") {
          static const char* kSegs[] = {"'AUTOMOBILE'", "'BUILDING'",
                                        "'FURNITURE'", "'MACHINERY'"};
          return kSegs[U(4)];
        }
        if (name == "l_returnflag") {
          static const char* kFlags[] = {"'A'", "'N'", "'R'"};
          return kFlags[U(3)];
        }
        if (name == "p_brand") {
          static const char* kBrands[] = {"'Brand#11'", "'Brand#12'",
                                          "'Brand#21'", "'Brand#22'"};
          return kBrands[U(4)];
        }
        if (name == "n_name") return "'NATION_" + std::to_string(U(6)) + "'";
        return "'Customer#" + std::to_string(U(15)) + "'";
      }
    }
  }

  std::string CmpOp() const {
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    return kOps[U(6)];
  }

  std::string Agg(const ScopeEntry& e) const {
    int roll = U(10);
    if (roll < 2) return "count(*)";
    const ColDef* col = PickCol(*e.table, "if");
    if (col == nullptr) return "count(*)";
    static const char* kFuncs[] = {"count", "sum", "min", "max", "avg"};
    return std::string(kFuncs[U(5)]) + "(" + Q(e, col->name) + ")";
  }

  /// Simple predicate over in-scope columns: comparisons, IS NULL,
  /// IN-list, occasionally column-to-column.
  std::string SimplePred(const std::vector<ScopeEntry>& scope) const {
    const ScopeEntry& e = scope[U(static_cast<int>(scope.size()))];
    const ColDef* col = &e.table->cols[U(static_cast<int>(e.table->cols.size()))];
    int roll = U(10);
    if (roll < 1) {
      return Q(e, col->name) +
             (C(1, 2) ? " is null" : " is not null");
    }
    if (roll < 3 && col->kind == 'i') {
      std::string list = Literal(*col);
      int n = 1 + U(3);
      for (int i = 0; i < n; ++i) list += ", " + Literal(*col);
      return Q(e, col->name) + (C(1, 3) ? " not in (" : " in (") + list + ")";
    }
    if (roll < 4) {
      // Column-to-column within scope (same kind).
      const ScopeEntry& e2 = scope[U(static_cast<int>(scope.size()))];
      const ColDef* col2 = PickCol(*e2.table, std::string(1, col->kind).c_str());
      if (col2 != nullptr) {
        return Q(e, col->name) + " " + CmpOp() + " " + Q(e2, col2->name);
      }
    }
    if (roll < 5 && (col->kind == 'i' || col->kind == 'f')) {
      // Small arithmetic on the column side.
      return Q(e, col->name) + " + 1 " + CmpOp() + " " + Literal(*col);
    }
    return Q(e, col->name) + " " + CmpOp() + " " + Literal(*col);
  }

  /// An optional extra predicate inside a subquery body (may nest further
  /// subqueries while depth allows).
  std::string SubqueryBodyPred(const std::vector<ScopeEntry>& scope) const {
    if (depth < 2 && C(15, 100)) {
      Gen nested{g, alias_counter, depth + 1};
      return nested.SubqueryPred(scope);
    }
    return SimplePred(scope);
  }

  /// EXISTS / IN / quantified / scalar-compare predicate whose right-hand
  /// side is a subquery correlated with `scope` (or deliberately
  /// uncorrelated).
  std::string SubqueryPred(const std::vector<ScopeEntry>& scope) const {
    int roll = U(100);
    if (roll < 30) return ExistsPred(scope);
    if (roll < 55) return InSubqueryPred(scope);
    if (roll < 65) return QuantifiedPred(scope);
    return ScalarComparePred(scope);
  }

  /// Picks (sub table, correlation conjunct) options for `scope`:
  /// fk edges in both directions plus self-correlation (segment shapes).
  struct SubLink {
    const TblDef* table;           // subquery's table
    std::string correlation;       // rendered conjunct, "" if none
  };
  SubLink PickLink(const std::vector<ScopeEntry>& scope,
                   const std::string& sub_alias) const {
    struct Option {
      const TblDef* table;
      const char* sub_col;
      std::string outer_col;
    };
    std::vector<Option> options;
    for (const ScopeEntry& e : scope) {
      std::string t = e.table->name;
      for (const Edge& edge : Edges()) {
        if (t == edge.parent_tbl) {
          options.push_back({FindTable(edge.child_tbl), edge.child_col,
                             Q(e, edge.parent_col)});
        }
        if (t == edge.child_tbl) {
          options.push_back({FindTable(edge.parent_tbl), edge.parent_col,
                             Q(e, edge.child_col)});
        }
      }
      for (const SelfEdge& self : SelfEdges()) {
        if (t == self.tbl) {
          options.push_back({e.table, self.col, Q(e, self.col)});
        }
      }
    }
    if (options.empty() || C(15, 100)) {
      // Uncorrelated subquery over a random table.
      const TblDef& t = Tables()[U(static_cast<int>(Tables().size()))];
      return SubLink{&t, ""};
    }
    const Option& opt = options[U(static_cast<int>(options.size()))];
    return SubLink{opt.table,
                   sub_alias + "." + opt.sub_col + " = " + opt.outer_col};
  }

  std::string ExistsPred(const std::vector<ScopeEntry>& scope) const {
    std::string alias = NewAlias();
    SubLink link = PickLink(scope, alias);
    std::vector<ScopeEntry> sub_scope = {{alias, link.table}};
    std::string where;
    if (!link.correlation.empty()) where = link.correlation;
    if (C(2, 5)) {
      std::string extra = SubqueryBodyPred(sub_scope);
      where = where.empty() ? extra : where + " and " + extra;
    }
    std::string sql = std::string(C(2, 5) ? "not exists (" : "exists (") +
                      "select * from " + link.table->name + " " + alias;
    if (!where.empty()) sql += " where " + where;
    return sql + ")";
  }

  std::string SubSelectBody(const std::vector<ScopeEntry>& scope, char kind,
                            std::string* out_col_expr) const {
    std::string alias = NewAlias();
    SubLink link = PickLink(scope, alias);
    std::vector<ScopeEntry> sub_scope = {{alias, link.table}};
    const ColDef* col = PickCol(*link.table, std::string(1, kind).c_str());
    if (col == nullptr) col = &link.table->cols[0];
    *out_col_expr = alias + "." + col->name;
    std::string sql = "select " + *out_col_expr + " from " +
                      std::string(link.table->name) + " " + alias;
    std::string where;
    if (!link.correlation.empty()) where = link.correlation;
    if (C(2, 5)) {
      std::string extra = SubqueryBodyPred(sub_scope);
      where = where.empty() ? extra : where + " and " + extra;
    }
    if (!where.empty()) sql += " where " + where;
    return sql;
  }

  std::string InSubqueryPred(const std::vector<ScopeEntry>& scope) const {
    const ScopeEntry& e = scope[U(static_cast<int>(scope.size()))];
    const ColDef* probe = PickCol(*e.table, C(1, 4) ? "f" : "i");
    if (probe == nullptr) probe = &e.table->cols[0];
    std::string col_expr;
    std::string body = SubSelectBody(scope, probe->kind, &col_expr);
    // Occasionally a UNION ALL body: identity (5) territory.
    if (C(1, 8)) {
      std::string col2;
      Gen nested{g, alias_counter, depth + 1};
      body += " union all " + nested.SubSelectBody(scope, probe->kind, &col2);
    }
    return Q(e, probe->name) + (C(2, 5) ? " not in (" : " in (") + body + ")";
  }

  std::string QuantifiedPred(const std::vector<ScopeEntry>& scope) const {
    const ScopeEntry& e = scope[U(static_cast<int>(scope.size()))];
    const ColDef* probe = PickCol(*e.table, "i");
    if (probe == nullptr) probe = &e.table->cols[0];
    std::string col_expr;
    std::string body = SubSelectBody(scope, probe->kind, &col_expr);
    return Q(e, probe->name) + " " + CmpOp() + (C(1, 2) ? " any (" : " all (") +
           body + ")";
  }

  /// `(select agg(x) from child where child.fk = outer.key)` compared to an
  /// outer column or literal. Rarely generates a bare (non-aggregate)
  /// correlated scalar subquery, whose Max1row guard may trip at run time.
  std::string ScalarComparePred(const std::vector<ScopeEntry>& scope) const {
    std::string sub = ScalarSubquery(scope);
    const ScopeEntry& e = scope[U(static_cast<int>(scope.size()))];
    const ColDef* col = PickCol(*e.table, "if");
    if (col != nullptr && C(1, 2)) {
      return Q(e, col->name) + " " + CmpOp() + " " + sub;
    }
    static const char* kLits[] = {"0", "1", "3", "42.25", "100.0"};
    return sub + " " + CmpOp() + " " + kLits[U(5)];
  }

  std::string ScalarSubquery(const std::vector<ScopeEntry>& scope) const {
    std::string alias = NewAlias();
    SubLink link = PickLink(scope, alias);
    std::vector<ScopeEntry> sub_scope = {{alias, link.table}};
    std::string item;
    if (C(1, 10) && link.table->key[0] != '\0' && !link.correlation.empty()) {
      // Bare column pinned by a (possibly non-unique) correlation: this is
      // the Max1row-guard shape; with a key-pinning correlation the guard
      // folds away, otherwise it can trip at run time on both paths.
      const ColDef* col = PickCol(*link.table, "if");
      item = Q(sub_scope[0], col == nullptr ? link.table->cols[0].name
                                            : col->name);
    } else {
      item = Agg(sub_scope[0]);
    }
    std::string sql = "(select " + item + " from " +
                      std::string(link.table->name) + " " + alias;
    std::string where;
    if (!link.correlation.empty()) where = link.correlation;
    if (C(2, 5)) {
      std::string extra = SubqueryBodyPred(sub_scope);
      where = where.empty() ? extra : where + " and " + extra;
    }
    if (!where.empty()) sql += " where " + where;
    return sql + ")";
  }
};

int Gen::gPick(int n) const { return g->Uniform(n); }

bool Gen::C(int num, int den) const { return gPick(den) < num; }

}  // namespace

QuerySpec QueryGenerator::Generate() {
  QuerySpec spec;
  Gen gen{this, &alias_counter_, 0};

  // FROM: base table, weighted toward the fact tables.
  static const char* kBases[] = {"orders",   "lineitem", "customer",
                                 "orders",   "lineitem", "customer",
                                 "part",     "nation"};
  spec.base_table = kBases[Uniform(8)];
  spec.base_alias = "t0";
  std::vector<ScopeEntry> scope = {{spec.base_alias, FindTable(spec.base_table)}};

  // 0-2 joins along fk edges touching the scope.
  int num_joins = Uniform(3);
  for (int j = 0; j < num_joins; ++j) {
    struct Option {
      const TblDef* table;
      const char* new_col;
      std::string old_col;
    };
    std::vector<Option> options;
    for (const ScopeEntry& e : scope) {
      std::string t = e.table->name;
      for (const Edge& edge : Edges()) {
        if (t == edge.parent_tbl) {
          options.push_back({FindTable(edge.child_tbl), edge.child_col,
                             Q(e, edge.parent_col)});
        }
        if (t == edge.child_tbl) {
          options.push_back({FindTable(edge.parent_tbl), edge.parent_col,
                             Q(e, edge.child_col)});
        }
      }
    }
    if (options.empty()) break;
    const Option& opt = options[Uniform(static_cast<int>(options.size()))];
    QuerySpec::Join join;
    join.left_outer = Chance(2, 5);
    join.table = opt.table->name;
    join.alias = "t" + std::to_string(j + 1);
    join.on = join.alias + "." + opt.new_col + " = " + opt.old_col;
    scope.push_back({join.alias, opt.table});
    spec.joins.push_back(std::move(join));
  }

  // GROUP BY (vector aggregation) or a plain select list.
  bool grouped = Chance(3, 10);
  if (grouped) {
    int num_keys = 1 + Uniform(2);
    for (int k = 0; k < num_keys; ++k) {
      const ScopeEntry& e = scope[Uniform(static_cast<int>(scope.size()))];
      const ColDef* col = gen.PickCol(*e.table, "isd");
      if (col == nullptr) col = &e.table->cols[0];
      std::string rendered = Q(e, col->name);
      bool duplicate = false;
      for (const QuerySpec::Piece& existing : spec.group_by) {
        duplicate |= existing.sql == rendered;
      }
      if (duplicate) continue;
      spec.group_by.push_back({rendered, true});
      spec.select_items.push_back({rendered, true});
    }
    int num_aggs = 1 + Uniform(2);
    for (int a = 0; a < num_aggs; ++a) {
      const ScopeEntry& e = scope[Uniform(static_cast<int>(scope.size()))];
      spec.select_items.push_back({gen.Agg(e), true});
    }
    if (Chance(1, 2)) {
      const ScopeEntry& e = scope[Uniform(static_cast<int>(scope.size()))];
      spec.having.push_back(
          {gen.Agg(e) + " " + gen.CmpOp() + " " +
               (Chance(1, 2) ? "1" : "100.0"),
           true});
    }
  } else {
    spec.distinct = Chance(3, 20);
    int num_items = 1 + Uniform(3);
    for (int i = 0; i < num_items; ++i) {
      const ScopeEntry& e = scope[Uniform(static_cast<int>(scope.size()))];
      const ColDef* col =
          &e.table->cols[Uniform(static_cast<int>(e.table->cols.size()))];
      spec.select_items.push_back({Q(e, col->name), true});
    }
    if (!spec.distinct && Chance(1, 4)) {
      // Correlated scalar subquery in the SELECT list.
      spec.select_items.push_back(
          {gen.ScalarSubquery(scope) + " as sub" +
               std::to_string(static_cast<int>(spec.select_items.size())),
           true});
    }
  }

  // WHERE: a mix of plain and subquery conjuncts.
  int num_conjuncts = Uniform(4);
  for (int c = 0; c < num_conjuncts; ++c) {
    std::string conjunct = Chance(11, 20) ? gen.SubqueryPred(scope)
                                          : gen.SimplePred(scope);
    spec.where.push_back({std::move(conjunct), true});
  }

  // ORDER BY on a scope column (bag compare ignores order; this just
  // exercises the Sort operator on both paths). Under DISTINCT the key
  // must be one of the output columns.
  if (!grouped && Chance(1, 4)) {
    std::string key;
    if (spec.distinct) {
      key = spec.select_items[Uniform(static_cast<int>(
                                  spec.select_items.size()))]
                .sql;
    } else {
      const ScopeEntry& e = scope[Uniform(static_cast<int>(scope.size()))];
      const ColDef* col = gen.PickCol(*e.table, "ifd");
      if (col != nullptr) key = Q(e, col->name);
    }
    if (!key.empty()) {
      spec.order_by.push_back({key + (Chance(1, 2) ? " desc" : ""), true});
    }
  }
  return spec;
}

std::string RenderSql(const QuerySpec& spec) {
  std::string sql = "select ";
  if (spec.distinct) sql += "distinct ";
  bool first = true;
  for (const QuerySpec::Piece& item : spec.select_items) {
    if (!item.enabled) continue;
    if (!first) sql += ", ";
    sql += item.sql;
    first = false;
  }
  if (first) sql += spec.select_items.empty() ? "1" : spec.select_items[0].sql;
  sql += " from " + spec.base_table + " " + spec.base_alias;
  for (const QuerySpec::Join& join : spec.joins) {
    if (!join.enabled) continue;
    sql += join.left_outer ? " left outer join " : " join ";
    sql += join.table + " " + join.alias + " on " + join.on;
  }
  first = true;
  for (const QuerySpec::Piece& conjunct : spec.where) {
    if (!conjunct.enabled) continue;
    sql += first ? " where " : " and ";
    sql += conjunct.sql;
    first = false;
  }
  first = true;
  for (const QuerySpec::Piece& key : spec.group_by) {
    if (!key.enabled) continue;
    sql += first ? " group by " : ", ";
    sql += key.sql;
    first = false;
  }
  first = true;
  for (const QuerySpec::Piece& conjunct : spec.having) {
    if (!conjunct.enabled) continue;
    sql += first ? " having " : " and ";
    sql += conjunct.sql;
    first = false;
  }
  first = true;
  for (const QuerySpec::Piece& key : spec.order_by) {
    if (!key.enabled) continue;
    sql += first ? " order by " : ", ";
    sql += key.sql;
    first = false;
  }
  return sql;
}

}  // namespace orq
