#include "difftest/oracle.h"

#include <algorithm>
#include <cstdio>

namespace orq {

EngineOptions NaiveReferenceOptions() {
  EngineOptions options;
  options.normalizer.remove_correlations = false;
  options.normalizer.decorrelate_class2 = false;
  options.normalizer.simplify_outerjoins = false;
  options.normalizer.pushdown_predicates = false;
  options.optimizer.enable = false;
  options.physical.use_hash_join = false;
  options.physical.use_index_seek = false;
  return options;
}

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kMatch: return "match";
    case Verdict::kBothError: return "both-error";
    case Verdict::kCardinalityTolerated: return "cardinality-tolerated";
    case Verdict::kTimeoutTolerated: return "timeout-tolerated";
    case Verdict::kResultMismatch: return "RESULT-MISMATCH";
    case Verdict::kErrorMismatch: return "ERROR-MISMATCH";
  }
  return "?";
}

namespace {

void AppendCanonicalValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->append("\xE2\x88\x85");  // ∅
    return;
  }
  switch (v.type()) {
    case DataType::kBool:
      out->append(v.bool_value() ? "T" : "F");
      break;
    case DataType::kInt64:
    case DataType::kDouble: {
      double d = v.AsDouble();
      if (d == 0.0) d = 0.0;  // collapse -0.0
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.9g", d);
      out->append(buf);
      break;
    }
    case DataType::kDate: {
      out->append("d");
      out->append(std::to_string(v.date_value()));
      break;
    }
    case DataType::kString:
      out->append("'");
      out->append(v.string_value());
      out->append("'");
      break;
  }
}

}  // namespace

std::string CanonicalRow(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.append("|");
    AppendCanonicalValue(row[i], &out);
  }
  return out;
}

std::vector<std::string> CanonicalBag(const QueryResult& result) {
  std::vector<std::string> bag;
  bag.reserve(result.rows.size());
  for (const Row& row : result.rows) bag.push_back(CanonicalRow(row));
  std::sort(bag.begin(), bag.end());
  return bag;
}

namespace {

std::string DescribeBagDiff(const std::vector<std::string>& naive,
                            const std::vector<std::string>& full) {
  std::string detail = "naive rows=" + std::to_string(naive.size()) +
                       " full rows=" + std::to_string(full.size());
  // First rows present on one side only (bags are sorted).
  size_t i = 0, j = 0;
  int shown = 0;
  while ((i < naive.size() || j < full.size()) && shown < 6) {
    if (j >= full.size() || (i < naive.size() && naive[i] < full[j])) {
      detail += "\n  naive-only: " + naive[i++];
      ++shown;
    } else if (i >= naive.size() || full[j] < naive[i]) {
      detail += "\n  full-only:  " + full[j++];
      ++shown;
    } else {
      ++i;
      ++j;
    }
  }
  return detail;
}

}  // namespace

DualOutcome DualOracle::Run(const std::string& sql) {
  DualOutcome out;
  // Each side gets its own freshly armed deadline: the naive reference is
  // routinely orders of magnitude slower, and sharing one token would
  // charge the second side for the first side's spend.
  CancelToken naive_token;
  CancelToken full_token;
  ExecControl naive_control;
  ExecControl full_control;
  if (timeout_ms_ > 0) {
    naive_token.SetTimeoutMs(timeout_ms_);
    naive_control.cancel = &naive_token;
  }
  Result<QueryResult> naive = naive_.Execute(sql, naive_control);
  if (timeout_ms_ > 0) {
    full_token.SetTimeoutMs(timeout_ms_);
    full_control.cancel = &full_token;
  }
  Result<QueryResult> full = full_.Execute(sql, full_control);
  out.naive_status = naive.ok() ? Status::OK() : naive.status();
  out.full_status = full.ok() ? Status::OK() : full.status();

  if (!naive.ok() && !full.ok()) {
    out.verdict = Verdict::kBothError;
    return out;
  }
  if (naive.ok() != full.ok()) {
    const Status& err = naive.ok() ? out.full_status : out.naive_status;
    if (err.code() == StatusCode::kCardinalityViolation) {
      // Predicate evaluation order is unspecified; one plan may filter the
      // offending outer row away before its scalar subquery runs.
      out.verdict = Verdict::kCardinalityTolerated;
    } else if (err.code() == StatusCode::kDeadlineExceeded ||
               err.code() == StatusCode::kCancelled) {
      out.verdict = Verdict::kTimeoutTolerated;
    } else {
      out.verdict = Verdict::kErrorMismatch;
      out.detail = std::string(naive.ok() ? "full" : "naive") +
                   " failed: " + err.ToString();
    }
    return out;
  }

  out.naive_bag = CanonicalBag(*naive);
  out.full_bag = CanonicalBag(*full);
  if (out.naive_bag == out.full_bag) {
    out.verdict = Verdict::kMatch;
  } else {
    out.verdict = Verdict::kResultMismatch;
    out.detail = DescribeBagDiff(out.naive_bag, out.full_bag);
  }
  return out;
}

}  // namespace orq
