#include "difftest/harness.h"

#include <cstdio>
#include <memory>

#include "difftest/dataset.h"
#include "difftest/minimize.h"
#include "difftest/qgen.h"

namespace orq {

namespace {

/// EXPLAIN ANALYZE when it works, plain EXPLAIN otherwise (e.g. when the
/// minimized query errors at run time), error text as a last resort.
std::string ExplainSide(QueryEngine& engine, const std::string& sql) {
  Result<std::string> analyzed = engine.ExplainAnalyze(sql);
  if (analyzed.ok()) return *analyzed;
  Result<std::string> plain = engine.Explain(sql);
  if (plain.ok()) return *plain + "(execution failed: " +
                         analyzed.status().ToString() + ")\n";
  return "explain failed: " + plain.status().ToString() + "\n";
}

/// Runs `sql` instrumented on `engine` and checks that the per-operator
/// stats tree accounts for every row the engine counted. A mismatch means
/// an operator bypassed its instrumented shell (or the collector attributed
/// rows to a stale operator) — exactly the regression the observability
/// layer must never ship with.
void CheckStatsInvariant(QueryEngine& engine, const char* side,
                         const std::string& sql, int query_index,
                         HarnessReport* report) {
  constexpr int kMaxViolations = 8;
  if (static_cast<int>(report->stats_violations.size()) >= kMaxViolations) {
    return;
  }
  Result<AnalyzedQuery> analyzed = engine.ExecuteAnalyzed(sql);
  // Runtime errors are the oracle's department; the invariant only
  // applies to queries that execute.
  if (!analyzed.ok()) return;
  ++report->stats_checked;
  const int64_t stats_rows = TotalRowsOut(analyzed->plan);
  const int64_t engine_rows = analyzed->result.rows_produced;
  if (stats_rows != engine_rows) {
    report->stats_violations.push_back(
        "query #" + std::to_string(query_index) + " (" + side +
        "): stats TotalRowsOut=" + std::to_string(stats_rows) +
        " != rows_produced=" + std::to_string(engine_rows) + "  sql: " + sql);
  }
}

/// Runs `sql` twice through one plan-cache-enabled engine: the first run
/// compiles the parameterized template cold, the second must serve it from
/// the cache. Both runs substitute the same literal values into the same
/// template, so any result difference is a caching bug, not noise — the
/// comparison is byte-level and order-sensitive (the engine is serial).
void CheckPlanCache(QueryEngine& engine, const std::string& sql,
                    int query_index, HarnessReport* report) {
  constexpr int kMaxDivergences = 8;
  if (static_cast<int>(report->plan_cache_divergences.size()) >=
      kMaxDivergences) {
    return;
  }
  Result<QueryResult> cold = engine.Execute(sql);
  Result<AnalyzedQuery> hot = engine.ExecuteAnalyzed(sql);
  ++report->plan_cache_checked;
  const std::string tag = "query #" + std::to_string(query_index);
  if (!cold.ok() || !hot.ok()) {
    if (cold.ok() != hot.ok()) {
      report->plan_cache_divergences.push_back(
          tag + ": cold/hot error mismatch: cold=" +
          (cold.ok() ? std::string("ok") : cold.status().ToString()) +
          " hot=" +
          (hot.ok() ? std::string("ok") : hot.status().ToString()) +
          "  sql: " + sql);
    }
    return;
  }
  if (hot->profile.cache != CacheOutcome::kHit) {
    report->plan_cache_divergences.push_back(
        tag + ": second execution was not a cache hit  sql: " + sql);
    return;
  }
  const QueryResult& a = cold.value();
  const QueryResult& b = hot->result;
  if (a.column_names != b.column_names) {
    report->plan_cache_divergences.push_back(
        tag + ": cached column names differ  sql: " + sql);
    return;
  }
  if (a.rows.size() != b.rows.size()) {
    report->plan_cache_divergences.push_back(
        tag + ": cold returned " + std::to_string(a.rows.size()) +
        " rows, cached " + std::to_string(b.rows.size()) + "  sql: " + sql);
    return;
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (CanonicalRow(a.rows[r]) != CanonicalRow(b.rows[r])) {
      report->plan_cache_divergences.push_back(
          tag + ": row " + std::to_string(r) + " differs: cold=" +
          CanonicalRow(a.rows[r]) + " cached=" + CanonicalRow(b.rows[r]) +
          "  sql: " + sql);
      return;
    }
  }
  const int64_t stats_rows = TotalRowsOut(hot->plan);
  if (stats_rows != b.rows_produced) {
    report->plan_cache_divergences.push_back(
        tag + ": hot-path stats TotalRowsOut=" + std::to_string(stats_rows) +
        " != rows_produced=" + std::to_string(b.rows_produced) +
        "  sql: " + sql);
  }
}

}  // namespace

std::string HarnessReport::Summary() const {
  std::string out = "difftest: seed=" + std::to_string(seed) +
                    " executed=" + std::to_string(executed) +
                    " match=" + std::to_string(matches) +
                    " both-error=" + std::to_string(both_error) +
                    " cardinality-tolerated=" +
                    std::to_string(cardinality_tolerated) +
                    " timeout-tolerated=" + std::to_string(timeout_tolerated) +
                    " divergences=" + std::to_string(failures.size()) +
                    " stats-checked=" + std::to_string(stats_checked) +
                    " stats-violations=" +
                    std::to_string(stats_violations.size()) +
                    " plan-cache-checked=" +
                    std::to_string(plan_cache_checked) +
                    " plan-cache-divergences=" +
                    std::to_string(plan_cache_divergences.size()) + "\n";
  for (const std::string& violation : stats_violations) {
    out += "  STATS " + violation + "\n";
  }
  for (const std::string& divergence : plan_cache_divergences) {
    out += "  PLAN-CACHE " + divergence + "\n";
  }
  for (const Failure& f : failures) {
    out += "\n=== divergence at query #" + std::to_string(f.query_index) +
           " (" + VerdictName(f.verdict) + ") ===\n";
    out += "original:  " + f.original_sql + "\n";
    out += "minimized: " + f.minimized_sql + "\n";
    if (!f.detail.empty()) out += f.detail + "\n";
    out += "--- reference plan (naive) ---\n" + f.naive_explain;
    out += "--- rewritten plan (full) ---\n" + f.full_explain;
  }
  return out;
}

Result<HarnessReport> RunDifftest(const HarnessOptions& options) {
  Catalog catalog;
  ORQ_RETURN_IF_ERROR(BuildDifftestCatalog(&catalog, options.seed));
  EngineOptions naive_options = NaiveReferenceOptions();
  naive_options.exec.batched =
      options.reference_batched || options.reference_columnar;
  naive_options.exec.columnar = options.reference_columnar;
  naive_options.exec.num_threads = options.reference_threads;
  naive_options.exec.morsel_rows = options.morsel_rows;
  EngineOptions full_options = EngineOptions::Full();
  full_options.exec.batched =
      options.test_batched || options.test_columnar;
  full_options.exec.columnar = options.test_columnar;
  full_options.exec.table_encoding = options.test_table_encoding;
  full_options.exec.num_threads = options.test_threads;
  full_options.exec.morsel_rows = options.morsel_rows;
  DualOracle oracle(&catalog, std::move(naive_options),
                    std::move(full_options));
  oracle.set_timeout_ms(options.timeout_ms);
  QueryGenerator generator(options.seed);

  // Cached-vs-cold oracle side: serial (deterministic row order, so the
  // comparison can be order-sensitive) and full-rewrite, with the cache on.
  std::unique_ptr<QueryEngine> cache_engine;
  if (options.plan_cache_check) {
    EngineOptions cache_options = EngineOptions::Full();
    cache_options.exec.batched =
        options.test_batched || options.test_columnar;
    cache_options.exec.columnar = options.test_columnar;
    cache_options.plan_cache.enable = true;
    cache_engine = std::make_unique<QueryEngine>(&catalog, cache_options);
  }

  HarnessReport report;
  report.seed = options.seed;
  for (int i = 0; i < options.num_queries; ++i) {
    QuerySpec spec = generator.Generate();
    std::string sql = RenderSql(spec);
    if (options.verbose) {
      std::fprintf(stderr, "[difftest] #%d: %s\n", i, sql.c_str());
    }
    DualOutcome outcome = oracle.Run(sql);
    ++report.executed;
    if (options.stats_check_every > 0 &&
        i % options.stats_check_every == 0 &&
        !IsDivergence(outcome.verdict)) {
      CheckStatsInvariant(oracle.naive_engine(), "naive", sql, i, &report);
      CheckStatsInvariant(oracle.full_engine(), "full", sql, i, &report);
    }
    if (cache_engine && !IsDivergence(outcome.verdict)) {
      CheckPlanCache(*cache_engine, sql, i, &report);
    }
    switch (outcome.verdict) {
      case Verdict::kMatch:
        ++report.matches;
        break;
      case Verdict::kBothError:
        ++report.both_error;
        break;
      case Verdict::kCardinalityTolerated:
        ++report.cardinality_tolerated;
        break;
      case Verdict::kTimeoutTolerated:
        ++report.timeout_tolerated;
        break;
      case Verdict::kResultMismatch:
      case Verdict::kErrorMismatch: {
        HarnessReport::Failure failure;
        failure.query_index = i;
        failure.original_sql = sql;
        QuerySpec minimized = MinimizeDivergence(spec, &oracle);
        failure.minimized_sql = RenderSql(minimized);
        DualOutcome final_outcome = oracle.Run(failure.minimized_sql);
        // Minimization preserves divergence by construction, but record
        // the final verdict it landed on.
        failure.verdict = IsDivergence(final_outcome.verdict)
                              ? final_outcome.verdict
                              : outcome.verdict;
        failure.detail = IsDivergence(final_outcome.verdict)
                             ? final_outcome.detail
                             : outcome.detail;
        failure.naive_explain =
            ExplainSide(oracle.naive_engine(), failure.minimized_sql);
        failure.full_explain =
            ExplainSide(oracle.full_engine(), failure.minimized_sql);
        report.failures.push_back(std::move(failure));
        if (static_cast<int>(report.failures.size()) >=
            options.max_failures) {
          return report;
        }
        break;
      }
    }
  }
  return report;
}

}  // namespace orq
