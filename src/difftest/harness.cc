#include "difftest/harness.h"

#include <cstdio>

#include "difftest/dataset.h"
#include "difftest/minimize.h"
#include "difftest/qgen.h"

namespace orq {

namespace {

/// EXPLAIN ANALYZE when it works, plain EXPLAIN otherwise (e.g. when the
/// minimized query errors at run time), error text as a last resort.
std::string ExplainSide(QueryEngine& engine, const std::string& sql) {
  Result<std::string> analyzed = engine.ExplainAnalyze(sql);
  if (analyzed.ok()) return *analyzed;
  Result<std::string> plain = engine.Explain(sql);
  if (plain.ok()) return *plain + "(execution failed: " +
                         analyzed.status().ToString() + ")\n";
  return "explain failed: " + plain.status().ToString() + "\n";
}

}  // namespace

std::string HarnessReport::Summary() const {
  std::string out = "difftest: seed=" + std::to_string(seed) +
                    " executed=" + std::to_string(executed) +
                    " match=" + std::to_string(matches) +
                    " both-error=" + std::to_string(both_error) +
                    " cardinality-tolerated=" +
                    std::to_string(cardinality_tolerated) +
                    " divergences=" + std::to_string(failures.size()) + "\n";
  for (const Failure& f : failures) {
    out += "\n=== divergence at query #" + std::to_string(f.query_index) +
           " (" + VerdictName(f.verdict) + ") ===\n";
    out += "original:  " + f.original_sql + "\n";
    out += "minimized: " + f.minimized_sql + "\n";
    if (!f.detail.empty()) out += f.detail + "\n";
    out += "--- reference plan (naive) ---\n" + f.naive_explain;
    out += "--- rewritten plan (full) ---\n" + f.full_explain;
  }
  return out;
}

Result<HarnessReport> RunDifftest(const HarnessOptions& options) {
  Catalog catalog;
  ORQ_RETURN_IF_ERROR(BuildDifftestCatalog(&catalog, options.seed));
  EngineOptions naive_options = NaiveReferenceOptions();
  naive_options.exec.batched = options.reference_batched;
  EngineOptions full_options = EngineOptions::Full();
  full_options.exec.batched = options.test_batched;
  DualOracle oracle(&catalog, std::move(naive_options),
                    std::move(full_options));
  QueryGenerator generator(options.seed);

  HarnessReport report;
  report.seed = options.seed;
  for (int i = 0; i < options.num_queries; ++i) {
    QuerySpec spec = generator.Generate();
    std::string sql = RenderSql(spec);
    if (options.verbose) {
      std::fprintf(stderr, "[difftest] #%d: %s\n", i, sql.c_str());
    }
    DualOutcome outcome = oracle.Run(sql);
    ++report.executed;
    switch (outcome.verdict) {
      case Verdict::kMatch:
        ++report.matches;
        break;
      case Verdict::kBothError:
        ++report.both_error;
        break;
      case Verdict::kCardinalityTolerated:
        ++report.cardinality_tolerated;
        break;
      case Verdict::kResultMismatch:
      case Verdict::kErrorMismatch: {
        HarnessReport::Failure failure;
        failure.query_index = i;
        failure.original_sql = sql;
        QuerySpec minimized = MinimizeDivergence(spec, &oracle);
        failure.minimized_sql = RenderSql(minimized);
        DualOutcome final_outcome = oracle.Run(failure.minimized_sql);
        // Minimization preserves divergence by construction, but record
        // the final verdict it landed on.
        failure.verdict = IsDivergence(final_outcome.verdict)
                              ? final_outcome.verdict
                              : outcome.verdict;
        failure.detail = IsDivergence(final_outcome.verdict)
                             ? final_outcome.detail
                             : outcome.detail;
        failure.naive_explain =
            ExplainSide(oracle.naive_engine(), failure.minimized_sql);
        failure.full_explain =
            ExplainSide(oracle.full_engine(), failure.minimized_sql);
        report.failures.push_back(std::move(failure));
        if (static_cast<int>(report.failures.size()) >=
            options.max_failures) {
          return report;
        }
        break;
      }
    }
  }
  return report;
}

}  // namespace orq
