#include "difftest/minimize.h"

namespace orq {

namespace {

using DivergePredicate = std::function<bool(const QuerySpec&)>;

bool StillDiverges(const QuerySpec& spec, const DivergePredicate& pred,
                   int* evals) {
  if (evals != nullptr) ++*evals;
  return pred(spec);
}

/// Tries disabling each enabled piece in `pieces`; keeps the removal when
/// the query still diverges. `min_enabled` guards the select list (SQL
/// needs at least one item).
bool ShrinkPieces(std::vector<QuerySpec::Piece>* pieces, QuerySpec* spec,
                  const DivergePredicate& pred, int* evals,
                  int min_enabled = 0) {
  bool changed = false;
  int enabled = 0;
  for (const QuerySpec::Piece& p : *pieces) enabled += p.enabled ? 1 : 0;
  for (QuerySpec::Piece& piece : *pieces) {
    if (!piece.enabled || enabled <= min_enabled) continue;
    piece.enabled = false;
    if (StillDiverges(*spec, pred, evals)) {
      changed = true;
      --enabled;
    } else {
      piece.enabled = true;
    }
  }
  return changed;
}

}  // namespace

QuerySpec MinimizeDivergence(QuerySpec spec, const DivergePredicate& pred,
                             int* evals) {
  bool changed = true;
  while (changed) {
    changed = false;
    changed |= ShrinkPieces(&spec.order_by, &spec, pred, evals);
    changed |= ShrinkPieces(&spec.having, &spec, pred, evals);
    changed |= ShrinkPieces(&spec.where, &spec, pred, evals);
    changed |= ShrinkPieces(&spec.select_items, &spec, pred, evals,
                            /*min_enabled=*/1);
    // Joins, innermost-last first: a join whose alias is still referenced
    // produces a bind error (identical on both paths) and reverts.
    for (auto it = spec.joins.rbegin(); it != spec.joins.rend(); ++it) {
      if (!it->enabled) continue;
      it->enabled = false;
      if (StillDiverges(spec, pred, evals)) {
        changed = true;
      } else {
        it->enabled = true;
      }
    }
    changed |= ShrinkPieces(&spec.group_by, &spec, pred, evals);
    if (spec.distinct) {
      spec.distinct = false;
      if (StillDiverges(spec, pred, evals)) {
        changed = true;
      } else {
        spec.distinct = true;
      }
    }
  }
  return spec;
}

QuerySpec MinimizeDivergence(QuerySpec spec, DualOracle* oracle, int* evals) {
  return MinimizeDivergence(
      std::move(spec),
      [oracle](const QuerySpec& candidate) {
        return IsDivergence(oracle->Run(RenderSql(candidate)).verdict);
      },
      evals);
}

}  // namespace orq
