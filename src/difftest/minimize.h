#ifndef ORQ_DIFFTEST_MINIMIZE_H_
#define ORQ_DIFFTEST_MINIMIZE_H_

#include <functional>

#include "difftest/oracle.h"
#include "difftest/qgen.h"

namespace orq {

/// Greedily shrinks a diverging query: repeatedly disables spec pieces
/// (ORDER BY keys, HAVING/WHERE conjuncts, select items, joins, GROUP BY
/// keys, DISTINCT) and keeps each removal only while `still_diverges`
/// holds for the shrunk spec. Runs to fixpoint. `evals`, if non-null,
/// counts predicate evaluations.
QuerySpec MinimizeDivergence(
    QuerySpec spec, const std::function<bool(const QuerySpec&)>& still_diverges,
    int* evals = nullptr);

/// Convenience overload: divergence judged by the dual-execution oracle.
/// Toggles that break name resolution fail binding identically on both
/// paths — which reads as agreement — so they revert automatically and
/// the minimizer needs no SQL understanding.
QuerySpec MinimizeDivergence(QuerySpec spec, DualOracle* oracle,
                             int* evals = nullptr);

}  // namespace orq

#endif  // ORQ_DIFFTEST_MINIMIZE_H_
