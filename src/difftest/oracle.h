#ifndef ORQ_DIFFTEST_ORACLE_H_
#define ORQ_DIFFTEST_ORACLE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "engine/engine.h"

namespace orq {

/// Engine configuration for the reference side of the differential oracle:
/// the query runs exactly as bound — Apply executed literally per outer
/// row, no correlation removal, no outer-join simplification, no predicate
/// pushdown, no cost-based optimization, nested-loops joins only, no index
/// seeks. Slow but semantically transparent.
EngineOptions NaiveReferenceOptions();

enum class Verdict {
  /// Both sides succeeded and produced the same bag of rows.
  kMatch,
  /// Both sides failed with an error (any error): semantics agree.
  kBothError,
  /// Exactly one side reported a cardinality violation. Evaluation order
  /// of predicates is unspecified, so a plan may or may not pull the
  /// second row out of a Max1row guard; tolerated, not a divergence.
  kCardinalityTolerated,
  /// Exactly one side hit the oracle's per-query deadline (the naive
  /// reference is often orders of magnitude slower). A timeout says
  /// nothing about semantics; tolerated, not a divergence.
  kTimeoutTolerated,
  /// Both sides succeeded but the bags differ. A rewrite bug.
  kResultMismatch,
  /// One side succeeded and the other failed (non-cardinality error).
  kErrorMismatch,
};

inline bool IsDivergence(Verdict v) {
  return v == Verdict::kResultMismatch || v == Verdict::kErrorMismatch;
}

const char* VerdictName(Verdict v);

/// Outcome of one dual execution.
struct DualOutcome {
  Verdict verdict = Verdict::kMatch;
  Status naive_status = Status::OK();
  Status full_status = Status::OK();
  /// Canonicalized sorted bags (present when the respective side succeeded).
  std::vector<std::string> naive_bag;
  std::vector<std::string> full_bag;
  /// Human-readable explanation of a mismatch (first differing rows, bag
  /// sizes, error texts).
  std::string detail;
};

/// Runs every query on two QueryEngine instances over the same catalog —
/// the naive reference and the full rewrite pipeline — and compares
/// results as bags.
class DualOracle {
 public:
  explicit DualOracle(Catalog* catalog)
      : DualOracle(catalog, NaiveReferenceOptions(), EngineOptions::Full()) {}

  /// Explicit per-side configurations — used to cross-check execution
  /// modes (e.g. row-at-a-time reference vs batched test engine).
  DualOracle(Catalog* catalog, EngineOptions naive_options,
             EngineOptions full_options)
      : naive_(catalog, std::move(naive_options)),
        full_(catalog, std::move(full_options)) {}

  DualOutcome Run(const std::string& sql);

  /// Per-query deadline applied to each side independently; 0 (default)
  /// runs unbounded. A query that times out on one side only is scored
  /// kTimeoutTolerated, never a divergence.
  void set_timeout_ms(int64_t timeout_ms) { timeout_ms_ = timeout_ms; }

  /// The full-pipeline engine (for EXPLAIN dumps on divergences).
  QueryEngine& full_engine() { return full_; }
  QueryEngine& naive_engine() { return naive_; }

 private:
  QueryEngine naive_;
  QueryEngine full_;
  int64_t timeout_ms_ = 0;
};

/// Canonical row text used for bag comparison. NULL renders as "∅";
/// numerics (int64/double) render through %.9g so Int64(5) and Double(5.0)
/// coincide and aggregate-reassociation FP noise below ~9 significant
/// digits is absorbed; -0.0 renders as 0.
std::string CanonicalRow(const Row& row);

/// Sorted canonical bag for a result.
std::vector<std::string> CanonicalBag(const QueryResult& result);

}  // namespace orq

#endif  // ORQ_DIFFTEST_ORACLE_H_
