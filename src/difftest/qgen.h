#ifndef ORQ_DIFFTEST_QGEN_H_
#define ORQ_DIFFTEST_QGEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace orq {

/// A generated query, kept as a bag of independently removable pieces so
/// the minimizer can shrink a failing query by toggling pieces off and
/// re-rendering, without understanding SQL. Pieces are rendered SQL
/// fragments; disabled pieces are skipped by RenderSql.
struct QuerySpec {
  struct Piece {
    std::string sql;
    bool enabled = true;
  };
  struct Join {
    bool left_outer = false;
    std::string table;
    std::string alias;
    std::string on;  // rendered ON condition
    bool enabled = true;
  };

  bool distinct = false;
  std::vector<Piece> select_items;  // >= 1 must stay enabled
  std::string base_table;
  std::string base_alias;
  std::vector<Join> joins;
  std::vector<Piece> where;     // WHERE conjuncts
  std::vector<Piece> group_by;  // GROUP BY columns (all-or-nothing-ish:
                                // dropping one may fail binding; the
                                // minimizer relies on bind errors hitting
                                // both paths identically, which reads as
                                // "no divergence" and reverts the toggle)
  std::vector<Piece> having;    // HAVING conjuncts
  std::vector<Piece> order_by;  // ORDER BY keys (bag compare ignores order,
                                // but ORDER BY exercises Sort plumbing)
};

std::string RenderSql(const QuerySpec& spec);

/// Seeded random query generator over the difftest catalog's schema
/// (difftest/dataset.h). Covers the paper's subquery taxonomy: correlated
/// scalar subqueries (SELECT list and WHERE), EXISTS/NOT EXISTS, IN/NOT IN,
/// quantified ANY/ALL, outer joins, scalar and vector GroupBy with HAVING,
/// and SegmentApply-eligible self-correlations. Deterministic per seed.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : state_(seed * 2 + 1) {}

  QuerySpec Generate();

  /// Raw RNG surface (splitmix64), public so generation helpers in the
  /// implementation file can share the stream.
  uint64_t Next();
  int Uniform(int n);
  bool Chance(int num, int den);

 private:
  uint64_t state_;
  int alias_counter_ = 0;
};

}  // namespace orq

#endif  // ORQ_DIFFTEST_QGEN_H_
