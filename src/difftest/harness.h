#ifndef ORQ_DIFFTEST_HARNESS_H_
#define ORQ_DIFFTEST_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "difftest/oracle.h"

namespace orq {

struct HarnessOptions {
  /// Seeds both the dataset and the query stream.
  uint64_t seed = 20260806;
  int num_queries = 500;
  /// Stop after this many divergences (each one is minimized, which costs
  /// many oracle executions).
  int max_failures = 8;
  /// Print each generated query as it runs (debugging).
  bool verbose = false;
  /// Execution mode per side. Defaults exercise the batched path on both;
  /// flipping reference_batched off cross-checks batched execution against
  /// the row-at-a-time Volcano engine (mixed mode).
  bool reference_batched = true;
  bool test_batched = true;
  /// Columnar execution per side (implies batched shells on that side);
  /// reference row vs test columnar is the columnar oracle.
  bool reference_columnar = false;
  bool test_columnar = false;
  /// Storage encoding for the test side's columnar scans (the reference
  /// side always reads plain). Row/batch modes ignore it, so pair it with
  /// test_columnar; reference row vs test columnar+auto is the encoded
  /// oracle difftest_smoke_encoded runs.
  TableEncoding test_table_encoding = TableEncoding::kPlain;
  /// Worker threads per side; 0 runs the classic serial engine. A positive
  /// count turns that side into the morsel-driven parallel engine, so e.g.
  /// reference row-mode vs test parallel is the parallel-vs-serial oracle.
  int reference_threads = 0;
  int test_threads = 0;
  /// Morsel size for parallel sides — tiny because the difftest tables
  /// are tiny (tens of rows): 8 makes even them split into enough morsels
  /// that workers genuinely interleave claims.
  int morsel_rows = 8;
  /// Per-query deadline applied to each oracle side independently; 0 runs
  /// unbounded. One-sided timeouts score kTimeoutTolerated (the naive
  /// reference is much slower), never a divergence.
  int64_t timeout_ms = 0;
  /// Every Nth query is additionally run instrumented on both engines to
  /// assert the stats invariant TotalRowsOut(plan) == rows_produced (the
  /// per-operator stats tree must account for every row the engine counts).
  /// 0 disables; kept sparse because instrumented re-runs triple the cost
  /// of the checked queries.
  int stats_check_every = 7;
  /// Cached-vs-cold oracle: run every generated query twice through one
  /// plan-cache-enabled engine (first execution compiles and caches, the
  /// second must hit) and assert byte-identical results, a kHit profile
  /// outcome, and TotalRowsOut == rows_produced on the hot path.
  bool plan_cache_check = false;
};

struct HarnessReport {
  struct Failure {
    int query_index = 0;
    Verdict verdict = Verdict::kResultMismatch;
    std::string original_sql;
    std::string minimized_sql;
    std::string detail;        // bag diff / error texts for the minimized query
    std::string naive_explain; // reference-side EXPLAIN ANALYZE
    std::string full_explain;  // rewrite-side EXPLAIN ANALYZE
  };

  uint64_t seed = 0;
  int executed = 0;
  int matches = 0;
  int both_error = 0;
  int cardinality_tolerated = 0;
  int timeout_tolerated = 0;
  std::vector<Failure> failures;
  /// Stats-invariant checks run / violations found (see stats_check_every).
  int stats_checked = 0;
  std::vector<std::string> stats_violations;
  /// Cached-vs-cold checks run / divergences found (see plan_cache_check).
  int plan_cache_checked = 0;
  std::vector<std::string> plan_cache_divergences;

  bool ok() const {
    return failures.empty() && stats_violations.empty() &&
           plan_cache_divergences.empty();
  }
  /// One-paragraph tally plus, for every failure, the minimized reproducer
  /// and both plans — ready to paste into a bug report.
  std::string Summary() const;
};

/// Builds the difftest catalog, then generates and dual-executes
/// `options.num_queries` random queries, minimizing every divergence.
Result<HarnessReport> RunDifftest(const HarnessOptions& options);

}  // namespace orq

#endif  // ORQ_DIFFTEST_HARNESS_H_
