#ifndef ORQ_DIFFTEST_DATASET_H_
#define ORQ_DIFFTEST_DATASET_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/status.h"

namespace orq {

/// Populates `catalog` with the differential-testing dataset: a miniature
/// TPC-H-shaped database (nation, customer, orders, lineitem, part) whose
/// data is deliberately hostile to rewrite bugs:
///
///   * foreign keys and measure columns are declared nullable and carry
///     injected NULLs (TPC-H proper has none), so NOT IN / anti-join /
///     outer-join three-valued logic actually gets exercised;
///   * some foreign keys dangle (no parent row), producing empty correlated
///     groups — the count-bug shapes of paper section 5.4;
///   * doubles include 0.0, -0.0 and repeated values so grouping and
///     hash-join key semantics are visible in results;
///   * primary keys and the benchmark index set are declared, so the
///     normalizer's key-based identities (7)-(9), Max1row elimination and
///     index-lookup-join all fire on generated queries.
///
/// Deterministic: the same seed always builds identical tables.
Status BuildDifftestCatalog(Catalog* catalog, uint64_t seed);

}  // namespace orq

#endif  // ORQ_DIFFTEST_DATASET_H_
