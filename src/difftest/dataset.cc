#include "difftest/dataset.h"

#include <string>
#include <vector>

namespace orq {

namespace {

/// splitmix64: tiny, portable, deterministic across platforms (std::
/// distributions are not specified bit-for-bit; raw engine output is).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n).
  int Uniform(int n) { return static_cast<int>(Next() % n); }

  /// True with probability num/den.
  bool Chance(int num, int den) { return Uniform(den) < num; }

 private:
  uint64_t state_;
};

Value MaybeNullInt(Rng& rng, int64_t v, int null_pct) {
  if (rng.Chance(null_pct, 100)) return Value::Null(DataType::kInt64);
  return Value::Int64(v);
}

Value MaybeNullDouble(Rng& rng, double v, int null_pct) {
  if (rng.Chance(null_pct, 100)) return Value::Null(DataType::kDouble);
  return Value::Double(v);
}

/// Money-ish palette with signed zeros and duplicates; grouping on these
/// must treat -0.0 and 0.0 as one group.
double PickPrice(Rng& rng) {
  static const double kPalette[] = {0.0,   -0.0,  1.5,    1.5,   42.25,
                                    100.0, 850.5, 1200.0, -17.5, 3.75};
  return kPalette[rng.Uniform(10)];
}

const char* PickSegment(Rng& rng) {
  static const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                    "MACHINERY", "HOUSEHOLD"};
  return kSegments[rng.Uniform(5)];
}

const char* PickFlag(Rng& rng) {
  static const char* kFlags[] = {"A", "N", "R"};
  return kFlags[rng.Uniform(3)];
}

const char* PickBrand(Rng& rng) {
  static const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#21",
                                  "Brand#22", "Brand#31"};
  return kBrands[rng.Uniform(5)];
}

}  // namespace

Status BuildDifftestCatalog(Catalog* catalog, uint64_t seed) {
  Rng rng(seed ^ 0xd1ff7e57ull);

  constexpr bool kNullable = true;
  constexpr bool kNotNull = false;
  constexpr int kNations = 6;
  constexpr int kCustomers = 15;
  constexpr int kOrders = 40;
  constexpr int kParts = 12;

  // -- nation ---------------------------------------------------------
  Result<Table*> nation = catalog->CreateTable(
      "nation", {{"n_nationkey", DataType::kInt64, kNotNull},
                 {"n_name", DataType::kString, kNotNull},
                 {"n_regionkey", DataType::kInt64, kNullable}});
  if (!nation.ok()) return nation.status();
  (*nation)->SetPrimaryKey({0});
  for (int i = 0; i < kNations; ++i) {
    ORQ_RETURN_IF_ERROR((*nation)->Append(
        {Value::Int64(i), Value::String("NATION_" + std::to_string(i)),
         MaybeNullInt(rng, i % 3, 20)}));
  }

  // -- customer -------------------------------------------------------
  Result<Table*> customer = catalog->CreateTable(
      "customer", {{"c_custkey", DataType::kInt64, kNotNull},
                   {"c_name", DataType::kString, kNotNull},
                   {"c_nationkey", DataType::kInt64, kNullable},
                   {"c_acctbal", DataType::kDouble, kNullable},
                   {"c_mktsegment", DataType::kString, kNullable}});
  if (!customer.ok()) return customer.status();
  (*customer)->SetPrimaryKey({0});
  for (int i = 0; i < kCustomers; ++i) {
    // nationkey 0..7: values 6,7 dangle (no nation row).
    ORQ_RETURN_IF_ERROR((*customer)->Append(
        {Value::Int64(i), Value::String("Customer#" + std::to_string(i)),
         MaybeNullInt(rng, rng.Uniform(8), 15),
         MaybeNullDouble(rng, PickPrice(rng), 15),
         rng.Chance(1, 10) ? Value::Null(DataType::kString)
                           : Value::String(PickSegment(rng))}));
  }

  // -- orders ---------------------------------------------------------
  Result<Table*> orders = catalog->CreateTable(
      "orders", {{"o_orderkey", DataType::kInt64, kNotNull},
                 {"o_custkey", DataType::kInt64, kNullable},
                 {"o_totalprice", DataType::kDouble, kNullable},
                 {"o_orderdate", DataType::kDate, kNotNull},
                 {"o_shippriority", DataType::kInt64, kNullable}});
  if (!orders.ok()) return orders.status();
  (*orders)->SetPrimaryKey({0});
  for (int i = 0; i < kOrders; ++i) {
    // custkey 0..19: values 15..19 dangle; ~12% NULL.
    ORQ_RETURN_IF_ERROR((*orders)->Append(
        {Value::Int64(i), MaybeNullInt(rng, rng.Uniform(20), 12),
         MaybeNullDouble(rng, PickPrice(rng), 12),
         Value::Date(9131 + rng.Uniform(1100)),  // 1995-01-01 + ~3 years
         MaybeNullInt(rng, rng.Uniform(3), 25)}));
  }

  // -- lineitem -------------------------------------------------------
  Result<Table*> lineitem = catalog->CreateTable(
      "lineitem", {{"l_orderkey", DataType::kInt64, kNotNull},
                   {"l_linenumber", DataType::kInt64, kNotNull},
                   {"l_partkey", DataType::kInt64, kNullable},
                   {"l_quantity", DataType::kDouble, kNullable},
                   {"l_extendedprice", DataType::kDouble, kNullable},
                   {"l_shipdate", DataType::kDate, kNullable},
                   {"l_returnflag", DataType::kString, kNotNull}});
  if (!lineitem.ok()) return lineitem.status();
  (*lineitem)->SetPrimaryKey({0, 1});
  for (int o = 0; o < kOrders; ++o) {
    if (rng.Chance(1, 5)) continue;  // ~20% of orders have no lineitems
    int lines = 1 + rng.Uniform(4);
    for (int l = 0; l < lines; ++l) {
      ORQ_RETURN_IF_ERROR((*lineitem)->Append(
          {Value::Int64(o), Value::Int64(l + 1),
           MaybeNullInt(rng, rng.Uniform(kParts + 3), 12),  // some dangle
           MaybeNullDouble(rng, 1.0 + rng.Uniform(10), 12),
           MaybeNullDouble(rng, PickPrice(rng), 12),
           rng.Chance(1, 8) ? Value::Null(DataType::kDate)
                            : Value::Date(9131 + rng.Uniform(1200)),
           Value::String(PickFlag(rng))}));
    }
  }

  // -- part -----------------------------------------------------------
  Result<Table*> part = catalog->CreateTable(
      "part", {{"p_partkey", DataType::kInt64, kNotNull},
               {"p_brand", DataType::kString, kNotNull},
               {"p_size", DataType::kInt64, kNullable},
               {"p_retailprice", DataType::kDouble, kNullable}});
  if (!part.ok()) return part.status();
  (*part)->SetPrimaryKey({0});
  for (int i = 0; i < kParts; ++i) {
    ORQ_RETURN_IF_ERROR((*part)->Append(
        {Value::Int64(i), Value::String(PickBrand(rng)),
         MaybeNullInt(rng, 1 + rng.Uniform(50), 20),
         MaybeNullDouble(rng, PickPrice(rng), 20)}));
  }

  // Benchmark-style index set: every pk plus the fks correlated plans use.
  struct IndexSpec {
    const char* table;
    std::vector<int> ordinals;
  };
  const IndexSpec specs[] = {
      {"nation", {0}},   {"customer", {0}}, {"customer", {2}},
      {"orders", {0}},   {"orders", {1}},   {"lineitem", {0}},
      {"lineitem", {2}}, {"part", {0}},
  };
  for (const IndexSpec& spec : specs) {
    catalog->FindTable(spec.table)->BuildIndex(spec.ordinals);
  }
  catalog->InvalidateStats();
  return Status::OK();
}

}  // namespace orq
