#ifndef ORQ_TPCH_TPCH_GEN_H_
#define ORQ_TPCH_TPCH_GEN_H_

#include "catalog/catalog.h"
#include "common/status.h"

namespace orq {

/// Options for the deterministic TPC-H data generator. The row-count
/// formulas follow dbgen's (scaled): supplier = 10000*SF, customer =
/// 150000*SF, part = 200000*SF, partsupp = 4*part, orders = 10*customer,
/// lineitem = 1-7 per order. Value distributions approximate the TPC-H
/// spec (uniform keys, Brand#MN / container / type vocabularies, prices).
struct TpchGenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 19940101;
  /// Builds the standard index set after loading (see BuildTpchIndexes).
  bool build_indexes = true;
};

/// Creates the TPC-H schema in `catalog` and populates it. Deterministic:
/// the same options always generate identical data.
Status GenerateTpch(Catalog* catalog, const TpchGenOptions& options);

}  // namespace orq

#endif  // ORQ_TPCH_TPCH_GEN_H_
