#ifndef ORQ_TPCH_TPCH_QUERIES_H_
#define ORQ_TPCH_TPCH_QUERIES_H_

#include <string>
#include <vector>

namespace orq {

/// One benchmark query, expressed in the SQL subset this library parses.
/// Queries follow the TPC-H definitions with small adaptations documented
/// in `notes` (e.g. Q22's substring() replaced by nation-key codes, date
/// intervals pre-computed).
struct TpchQuery {
  std::string id;      // "Q2", "Q17", ...
  std::string title;
  std::string sql;
  std::string notes;
  bool has_subquery = false;
};

/// The evaluation query set: every TPC-H query exercising subqueries
/// and/or aggregation that the paper's techniques apply to, plus Q1 as an
/// aggregation-only baseline.
const std::vector<TpchQuery>& TpchQuerySet();

/// Lookup by id ("Q17"); aborts on unknown id (programming error).
const TpchQuery& GetTpchQuery(const std::string& id);

}  // namespace orq

#endif  // ORQ_TPCH_TPCH_QUERIES_H_
