#include "tpch/tpch_schema.h"

namespace orq {

namespace {

constexpr bool kNullable = true;
constexpr bool kNotNull = false;

Status CreateOne(Catalog* catalog, const std::string& name,
                 std::vector<ColumnSpec> columns, std::vector<int> pk) {
  Result<Table*> table = catalog->CreateTable(name, std::move(columns));
  if (!table.ok()) return table.status();
  (*table)->SetPrimaryKey(std::move(pk));
  return Status::OK();
}

}  // namespace

Status CreateTpchSchema(Catalog* catalog) {
  ORQ_RETURN_IF_ERROR(CreateOne(
      catalog, "region",
      {{"r_regionkey", DataType::kInt64, kNotNull},
       {"r_name", DataType::kString, kNotNull},
       {"r_comment", DataType::kString, kNullable}},
      {0}));
  ORQ_RETURN_IF_ERROR(CreateOne(
      catalog, "nation",
      {{"n_nationkey", DataType::kInt64, kNotNull},
       {"n_name", DataType::kString, kNotNull},
       {"n_regionkey", DataType::kInt64, kNotNull},
       {"n_comment", DataType::kString, kNullable}},
      {0}));
  ORQ_RETURN_IF_ERROR(CreateOne(
      catalog, "supplier",
      {{"s_suppkey", DataType::kInt64, kNotNull},
       {"s_name", DataType::kString, kNotNull},
       {"s_address", DataType::kString, kNotNull},
       {"s_nationkey", DataType::kInt64, kNotNull},
       {"s_phone", DataType::kString, kNotNull},
       {"s_acctbal", DataType::kDouble, kNotNull},
       {"s_comment", DataType::kString, kNullable}},
      {0}));
  ORQ_RETURN_IF_ERROR(CreateOne(
      catalog, "customer",
      {{"c_custkey", DataType::kInt64, kNotNull},
       {"c_name", DataType::kString, kNotNull},
       {"c_address", DataType::kString, kNotNull},
       {"c_nationkey", DataType::kInt64, kNotNull},
       {"c_phone", DataType::kString, kNotNull},
       {"c_acctbal", DataType::kDouble, kNotNull},
       {"c_mktsegment", DataType::kString, kNotNull},
       {"c_comment", DataType::kString, kNullable}},
      {0}));
  ORQ_RETURN_IF_ERROR(CreateOne(
      catalog, "part",
      {{"p_partkey", DataType::kInt64, kNotNull},
       {"p_name", DataType::kString, kNotNull},
       {"p_mfgr", DataType::kString, kNotNull},
       {"p_brand", DataType::kString, kNotNull},
       {"p_type", DataType::kString, kNotNull},
       {"p_size", DataType::kInt64, kNotNull},
       {"p_container", DataType::kString, kNotNull},
       {"p_retailprice", DataType::kDouble, kNotNull},
       {"p_comment", DataType::kString, kNullable}},
      {0}));
  ORQ_RETURN_IF_ERROR(CreateOne(
      catalog, "partsupp",
      {{"ps_partkey", DataType::kInt64, kNotNull},
       {"ps_suppkey", DataType::kInt64, kNotNull},
       {"ps_availqty", DataType::kInt64, kNotNull},
       {"ps_supplycost", DataType::kDouble, kNotNull},
       {"ps_comment", DataType::kString, kNullable}},
      {0, 1}));
  ORQ_RETURN_IF_ERROR(CreateOne(
      catalog, "orders",
      {{"o_orderkey", DataType::kInt64, kNotNull},
       {"o_custkey", DataType::kInt64, kNotNull},
       {"o_orderstatus", DataType::kString, kNotNull},
       {"o_totalprice", DataType::kDouble, kNotNull},
       {"o_orderdate", DataType::kDate, kNotNull},
       {"o_orderpriority", DataType::kString, kNotNull},
       {"o_clerk", DataType::kString, kNotNull},
       {"o_shippriority", DataType::kInt64, kNotNull},
       {"o_comment", DataType::kString, kNullable}},
      {0}));
  ORQ_RETURN_IF_ERROR(CreateOne(
      catalog, "lineitem",
      {{"l_orderkey", DataType::kInt64, kNotNull},
       {"l_partkey", DataType::kInt64, kNotNull},
       {"l_suppkey", DataType::kInt64, kNotNull},
       {"l_linenumber", DataType::kInt64, kNotNull},
       {"l_quantity", DataType::kDouble, kNotNull},
       {"l_extendedprice", DataType::kDouble, kNotNull},
       {"l_discount", DataType::kDouble, kNotNull},
       {"l_tax", DataType::kDouble, kNotNull},
       {"l_returnflag", DataType::kString, kNotNull},
       {"l_linestatus", DataType::kString, kNotNull},
       {"l_shipdate", DataType::kDate, kNotNull},
       {"l_commitdate", DataType::kDate, kNotNull},
       {"l_receiptdate", DataType::kDate, kNotNull},
       {"l_shipinstruct", DataType::kString, kNotNull},
       {"l_shipmode", DataType::kString, kNotNull},
       {"l_comment", DataType::kString, kNullable}},
      {0, 3}));
  return Status::OK();
}

Status BuildTpchIndexes(Catalog* catalog) {
  struct IndexSpec {
    const char* table;
    std::vector<const char*> columns;
  };
  const IndexSpec specs[] = {
      {"region", {"r_regionkey"}},
      {"nation", {"n_nationkey"}},
      {"nation", {"n_regionkey"}},
      {"supplier", {"s_suppkey"}},
      {"supplier", {"s_nationkey"}},
      {"customer", {"c_custkey"}},
      {"customer", {"c_nationkey"}},
      {"part", {"p_partkey"}},
      {"partsupp", {"ps_partkey", "ps_suppkey"}},
      {"partsupp", {"ps_partkey"}},
      {"partsupp", {"ps_suppkey"}},
      {"orders", {"o_orderkey"}},
      {"orders", {"o_custkey"}},
      {"lineitem", {"l_orderkey"}},
      {"lineitem", {"l_partkey"}},
      {"lineitem", {"l_suppkey"}},
  };
  for (const IndexSpec& spec : specs) {
    Table* table = catalog->FindTable(spec.table);
    if (table == nullptr) return Status::NotFound(spec.table);
    std::vector<int> ordinals;
    for (const char* col : spec.columns) {
      int ordinal = table->ColumnOrdinal(col);
      if (ordinal < 0) return Status::NotFound(col);
      ordinals.push_back(ordinal);
    }
    table->BuildIndex(std::move(ordinals));
  }
  return Status::OK();
}

}  // namespace orq
