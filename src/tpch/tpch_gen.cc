#include "tpch/tpch_gen.h"

#include <cmath>
#include <cstdio>

#include "tpch/tpch_schema.h"

namespace orq {

namespace {

/// SplitMix64: small, fast, deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform integer in [lo, hi].
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % (hi - lo + 1));
  }
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * (Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// nation -> region mapping from the spec.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "HOUSEHOLD", "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG",
                              "PACK", "CAN", "DRUM"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                         "ECONOMY", "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                        "MAIL", "FOB"};
const char* kNameWords[] = {
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory"};

std::string PartName(Rng* rng) {
  std::string name;
  for (int i = 0; i < 3; ++i) {
    if (i > 0) name += " ";
    name += kNameWords[rng->Range(0, 39)];
  }
  return name;
}

std::string Phone(Rng* rng, int64_t nation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(10 + nation),
                static_cast<int>(rng->Range(100, 999)),
                static_cast<int>(rng->Range(100, 999)),
                static_cast<int>(rng->Range(1000, 9999)));
  return buf;
}

std::string Comment(Rng* rng) {
  static const char* words[] = {"carefully", "quickly", "furiously",
                                "ironic", "final", "pending", "regular",
                                "express", "deposits", "requests", "accounts",
                                "packages", "foxes", "theodolites", "ideas"};
  std::string out;
  int n = static_cast<int>(rng->Range(3, 8));
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += " ";
    out += words[rng->Range(0, 14)];
  }
  return out;
}

double Money(Rng* rng, double lo, double hi) {
  return std::round(rng->Uniform(lo, hi) * 100.0) / 100.0;
}

}  // namespace

Status GenerateTpch(Catalog* catalog, const TpchGenOptions& options) {
  ORQ_RETURN_IF_ERROR(CreateTpchSchema(catalog));
  const double sf = options.scale_factor;
  Rng rng(options.seed);

  const int64_t num_supplier = std::max<int64_t>(10, std::llround(10000 * sf));
  const int64_t num_customer =
      std::max<int64_t>(15, std::llround(150000 * sf));
  const int64_t num_part = std::max<int64_t>(20, std::llround(200000 * sf));
  const int64_t num_orders = num_customer * 10;

  const int32_t date_lo = *ParseDate("1992-01-01");
  const int32_t date_hi = *ParseDate("1998-08-02");

  Table* region = catalog->FindTable("region");
  for (int64_t i = 0; i < 5; ++i) {
    ORQ_RETURN_IF_ERROR(region->Append(
        {Value::Int64(i), Value::String(kRegions[i]),
         Value::String(Comment(&rng))}));
  }

  Table* nation = catalog->FindTable("nation");
  for (int64_t i = 0; i < 25; ++i) {
    ORQ_RETURN_IF_ERROR(nation->Append(
        {Value::Int64(i), Value::String(kNations[i]),
         Value::Int64(kNationRegion[i]), Value::String(Comment(&rng))}));
  }

  Table* supplier = catalog->FindTable("supplier");
  for (int64_t i = 1; i <= num_supplier; ++i) {
    int64_t nat = rng.Range(0, 24);
    char name[32];
    std::snprintf(name, sizeof(name), "Supplier#%09lld",
                  static_cast<long long>(i));
    ORQ_RETURN_IF_ERROR(supplier->Append(
        {Value::Int64(i), Value::String(name),
         Value::String("addr-" + std::to_string(rng.Range(1, 99999))),
         Value::Int64(nat), Value::String(Phone(&rng, nat)),
         Value::Double(Money(&rng, -999.99, 9999.99)),
         Value::String(Comment(&rng))}));
  }

  Table* customer = catalog->FindTable("customer");
  for (int64_t i = 1; i <= num_customer; ++i) {
    int64_t nat = rng.Range(0, 24);
    char name[32];
    std::snprintf(name, sizeof(name), "Customer#%09lld",
                  static_cast<long long>(i));
    ORQ_RETURN_IF_ERROR(customer->Append(
        {Value::Int64(i), Value::String(name),
         Value::String("addr-" + std::to_string(rng.Range(1, 99999))),
         Value::Int64(nat), Value::String(Phone(&rng, nat)),
         Value::Double(Money(&rng, -999.99, 9999.99)),
         Value::String(kSegments[rng.Range(0, 4)]),
         Value::String(Comment(&rng))}));
  }

  Table* part = catalog->FindTable("part");
  for (int64_t i = 1; i <= num_part; ++i) {
    char brand[16];
    std::snprintf(brand, sizeof(brand), "Brand#%d%d",
                  static_cast<int>(rng.Range(1, 5)),
                  static_cast<int>(rng.Range(1, 5)));
    std::string type = std::string(kTypes1[rng.Range(0, 5)]) + " " +
                       kTypes2[rng.Range(0, 4)] + " " +
                       kTypes3[rng.Range(0, 4)];
    std::string container = std::string(kContainers1[rng.Range(0, 4)]) +
                            " " + kContainers2[rng.Range(0, 7)];
    ORQ_RETURN_IF_ERROR(part->Append(
        {Value::Int64(i), Value::String(PartName(&rng)),
         Value::String("Manufacturer#" +
                       std::to_string(rng.Range(1, 5))),
         Value::String(brand), Value::String(type),
         Value::Int64(rng.Range(1, 50)), Value::String(container),
         Value::Double(Money(&rng, 900.0, 2000.0)),
         Value::String(Comment(&rng))}));
  }

  Table* partsupp = catalog->FindTable("partsupp");
  for (int64_t p = 1; p <= num_part; ++p) {
    // 4 suppliers per part, spread per the dbgen formula.
    for (int64_t s = 0; s < 4; ++s) {
      int64_t supp =
          1 + (p + s * ((num_supplier / 4) + ((p - 1) / num_supplier))) %
                  num_supplier;
      ORQ_RETURN_IF_ERROR(partsupp->Append(
          {Value::Int64(p), Value::Int64(supp), Value::Int64(rng.Range(1, 9999)),
           Value::Double(Money(&rng, 1.0, 1000.0)),
           Value::String(Comment(&rng))}));
    }
  }

  Table* orders = catalog->FindTable("orders");
  Table* lineitem = catalog->FindTable("lineitem");
  for (int64_t i = 1; i <= num_orders; ++i) {
    int64_t cust = rng.Range(1, num_customer);
    int32_t odate = static_cast<int32_t>(rng.Range(date_lo, date_hi - 151));
    int64_t nlines = rng.Range(1, 7);
    double total = 0.0;
    char clerk[32];
    std::snprintf(clerk, sizeof(clerk), "Clerk#%09d",
                  static_cast<int>(rng.Range(1, 1000)));
    for (int64_t ln = 1; ln <= nlines; ++ln) {
      int64_t pkey = rng.Range(1, num_part);
      int64_t skey = rng.Range(1, num_supplier);
      double qty = static_cast<double>(rng.Range(1, 50));
      double price = Money(&rng, 901.0, 2000.0) * qty / 10.0;
      double discount = rng.Range(0, 10) / 100.0;
      double tax = rng.Range(0, 8) / 100.0;
      int32_t ship = odate + static_cast<int32_t>(rng.Range(1, 121));
      int32_t commit = odate + static_cast<int32_t>(rng.Range(30, 90));
      int32_t receipt = ship + static_cast<int32_t>(rng.Range(1, 30));
      const char* rflag =
          receipt <= *ParseDate("1995-06-17") ? (rng.Range(0, 1) ? "R" : "A")
                                              : "N";
      const char* lstatus = ship > *ParseDate("1995-06-17") ? "O" : "F";
      total += price * (1 + tax) * (1 - discount);
      ORQ_RETURN_IF_ERROR(lineitem->Append(
          {Value::Int64(i), Value::Int64(pkey), Value::Int64(skey),
           Value::Int64(ln), Value::Double(qty), Value::Double(price),
           Value::Double(discount), Value::Double(tax), Value::String(rflag),
           Value::String(lstatus), Value::Date(ship), Value::Date(commit),
           Value::Date(receipt), Value::String(kInstructs[rng.Range(0, 3)]),
           Value::String(kModes[rng.Range(0, 6)]),
           Value::String(Comment(&rng))}));
    }
    const char* status = rng.Range(0, 1) ? "F" : "O";
    ORQ_RETURN_IF_ERROR(orders->Append(
        {Value::Int64(i), Value::Int64(cust), Value::String(status),
         Value::Double(std::round(total * 100.0) / 100.0), Value::Date(odate),
         Value::String(kPriorities[rng.Range(0, 4)]), Value::String(clerk),
         Value::Int64(0), Value::String(Comment(&rng))}));
  }

  if (options.build_indexes) {
    ORQ_RETURN_IF_ERROR(BuildTpchIndexes(catalog));
  }
  catalog->InvalidateStats();
  return Status::OK();
}

}  // namespace orq
