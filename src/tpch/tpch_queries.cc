#include "tpch/tpch_queries.h"

#include <cstdio>
#include <cstdlib>

namespace orq {

const std::vector<TpchQuery>& TpchQuerySet() {
  static const auto* kQueries = new std::vector<TpchQuery>{
      {"Q1", "Pricing summary report",
       "select l_returnflag, l_linestatus, "
       "  sum(l_quantity) as sum_qty, "
       "  sum(l_extendedprice) as sum_base_price, "
       "  sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, "
       "  sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, "
       "  avg(l_quantity) as avg_qty, "
       "  avg(l_extendedprice) as avg_price, "
       "  avg(l_discount) as avg_disc, "
       "  count(*) as count_order "
       "from lineitem "
       "where l_shipdate <= date '1998-09-02' "
       "group by l_returnflag, l_linestatus "
       "order by l_returnflag, l_linestatus",
       "interval arithmetic pre-computed (1998-12-01 - 90 days)", false},

      {"Q2", "Minimum cost supplier",
       "select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, "
       "  s_phone, s_comment "
       "from part, supplier, partsupp, nation, region "
       "where p_partkey = ps_partkey and s_suppkey = ps_suppkey "
       "  and p_size = 15 and p_type like '%BRASS' "
       "  and s_nationkey = n_nationkey and n_regionkey = r_regionkey "
       "  and r_name = 'EUROPE' "
       "  and ps_supplycost = "
       "    (select min(ps_supplycost) "
       "     from partsupp, supplier, nation, region "
       "     where p_partkey = ps_partkey and s_suppkey = ps_suppkey "
       "       and s_nationkey = n_nationkey "
       "       and n_regionkey = r_regionkey and r_name = 'EUROPE') "
       "order by s_acctbal desc, n_name, s_name, p_partkey "
       "limit 100",
       "verbatim TPC-H; correlated scalar min subquery", true},

      {"Q4", "Order priority checking",
       "select o_orderpriority, count(*) as order_count "
       "from orders "
       "where o_orderdate >= date '1993-07-01' "
       "  and o_orderdate < date '1993-10-01' "
       "  and exists (select * from lineitem "
       "              where l_orderkey = o_orderkey "
       "                and l_commitdate < l_receiptdate) "
       "group by o_orderpriority "
       "order by o_orderpriority",
       "verbatim TPC-H; EXISTS subquery", true},

      {"Q15", "Top supplier (view inlined)",
       "select s_suppkey, s_name, s_address, s_phone, total_revenue "
       "from supplier, "
       "  (select l_suppkey as supplier_no, "
       "     sum(l_extendedprice * (1 - l_discount)) as total_revenue "
       "   from lineitem "
       "   where l_shipdate >= date '1996-01-01' "
       "     and l_shipdate < date '1996-04-01' "
       "   group by l_suppkey) as revenue "
       "where s_suppkey = supplier_no "
       "  and total_revenue = "
       "    (select max(total_revenue) from "
       "       (select l_suppkey as supplier_no2, "
       "          sum(l_extendedprice * (1 - l_discount)) as total_revenue "
       "        from lineitem "
       "        where l_shipdate >= date '1996-01-01' "
       "          and l_shipdate < date '1996-04-01' "
       "        group by l_suppkey) as revenue2) "
       "order by s_suppkey",
       "CREATE VIEW replaced by inlined derived tables", true},

      {"Q16", "Parts/supplier relationship",
       "select p_brand, p_type, p_size, "
       "  count(distinct ps_suppkey) as supplier_cnt "
       "from partsupp, part "
       "where p_partkey = ps_partkey "
       "  and p_brand <> 'Brand#45' "
       "  and p_type not like 'MEDIUM POLISHED%' "
       "  and p_size in (49, 14, 23, 45, 19, 3, 36, 9) "
       "  and ps_suppkey not in "
       "    (select s_suppkey from supplier "
       "     where s_comment like '%ironic%') "
       "group by p_brand, p_type, p_size "
       "order by supplier_cnt desc, p_brand, p_type, p_size",
       "complaint-comment pattern adapted to the generator's vocabulary",
       true},

      {"Q17", "Small-quantity-order revenue",
       "select sum(l_extendedprice) / 7.0 as avg_yearly "
       "from lineitem, part "
       "where p_partkey = l_partkey "
       "  and p_brand = 'Brand#23' "
       "  and p_container = 'MED BOX' "
       "  and l_quantity < "
       "    (select 0.2 * avg(l_quantity) from lineitem l2 "
       "     where l2.l_partkey = p_partkey)",
       "verbatim TPC-H; the paper's SegmentApply showcase (section 3.4)",
       true},

      {"Q18", "Large volume customer",
       "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, "
       "  sum(l_quantity) as total_qty "
       "from customer, orders, lineitem "
       "where o_orderkey in "
       "    (select l_orderkey from lineitem "
       "     group by l_orderkey having sum(l_quantity) > 250) "
       "  and c_custkey = o_custkey and o_orderkey = l_orderkey "
       "group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice "
       "order by o_totalprice desc, o_orderdate "
       "limit 100",
       "threshold 300 -> 250 (the scaled-down generator caps at 7 lines "
       "per order)", true},

      {"Q20", "Potential part promotion",
       "select s_name, s_address "
       "from supplier, nation "
       "where s_suppkey in "
       "    (select ps_suppkey from partsupp "
       "     where ps_partkey in "
       "         (select p_partkey from part where p_name like 'forest%') "
       "       and ps_availqty > "
       "         (select 0.5 * sum(l_quantity) from lineitem "
       "          where l_partkey = ps_partkey "
       "            and l_suppkey = ps_suppkey "
       "            and l_shipdate >= date '1994-01-01' "
       "            and l_shipdate < date '1995-01-01') "
       "    ) "
       "  and s_nationkey = n_nationkey and n_name = 'CANADA' "
       "order by s_name",
       "verbatim TPC-H; nested IN + correlated scalar subquery", true},

      {"Q21", "Suppliers who kept orders waiting",
       "select s_name, count(*) as numwait "
       "from supplier, lineitem l1, orders, nation "
       "where s_suppkey = l1.l_suppkey "
       "  and o_orderkey = l1.l_orderkey and o_orderstatus = 'F' "
       "  and l1.l_receiptdate > l1.l_commitdate "
       "  and exists (select * from lineitem l2 "
       "              where l2.l_orderkey = l1.l_orderkey "
       "                and l2.l_suppkey <> l1.l_suppkey) "
       "  and not exists (select * from lineitem l3 "
       "                  where l3.l_orderkey = l1.l_orderkey "
       "                    and l3.l_suppkey <> l1.l_suppkey "
       "                    and l3.l_receiptdate > l3.l_commitdate) "
       "  and s_nationkey = n_nationkey and n_name = 'SAUDI ARABIA' "
       "group by s_name "
       "order by numwait desc, s_name "
       "limit 100",
       "verbatim TPC-H; EXISTS + NOT EXISTS over multiple lineitem "
       "instances", true},

      {"Q22", "Global sales opportunity",
       "select cntrycode, count(*) as numcust, sum(c_acctbal) as totacctbal "
       "from (select c_nationkey as cntrycode, c_acctbal, c_custkey "
       "      from customer "
       "      where c_nationkey in (13, 31, 23, 29, 30, 18, 17) "
       "        and c_acctbal > "
       "          (select avg(c_acctbal) from customer c2 "
       "           where c2.c_acctbal > 0.0 "
       "             and c2.c_nationkey in (13, 31, 23, 29, 30, 18, 17)) "
       "     ) as custsale "
       "where not exists (select * from orders where o_custkey = c_custkey) "
       "group by cntrycode "
       "order by cntrycode",
       "substring(c_phone,1,2) country codes replaced by c_nationkey "
       "(our generator derives phone codes from the nation key)", true},
  };
  return *kQueries;
}

const TpchQuery& GetTpchQuery(const std::string& id) {
  for (const TpchQuery& q : TpchQuerySet()) {
    if (q.id == id) return q;
  }
  std::fprintf(stderr, "unknown TPC-H query id: %s\n", id.c_str());
  std::abort();
}

}  // namespace orq
