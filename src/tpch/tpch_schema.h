#ifndef ORQ_TPCH_TPCH_SCHEMA_H_
#define ORQ_TPCH_TPCH_SCHEMA_H_

#include "catalog/catalog.h"
#include "common/status.h"

namespace orq {

/// Creates the eight TPC-H tables (empty) in `catalog`, with primary keys
/// declared. Column types: keys int64, money/quantity double, flags and
/// names string, dates date.
Status CreateTpchSchema(Catalog* catalog);

/// Builds the index set used by the benchmarks: hash indexes on every
/// primary key plus the foreign keys exercised by correlated plans
/// (o_custkey, l_partkey, l_suppkey, l_orderkey, ps_partkey, ps_suppkey,
/// s_nationkey, c_nationkey). TPC-H rules allow indexes on keys; these are
/// what make the re-introduced correlated strategies competitive.
Status BuildTpchIndexes(Catalog* catalog);

}  // namespace orq

#endif  // ORQ_TPCH_TPCH_SCHEMA_H_
