#include <functional>
#include <map>

#include "algebra/expr_util.h"
#include "algebra/iso.h"
#include "algebra/props.h"
#include "opt/rules.h"

namespace orq {

namespace {

/// Collects column-equality classes implied by selections and inner-join
/// predicates inside `node` (stopping at operators that do not guarantee
/// the equalities at the output, e.g. outer joins' inner sides).
void CollectEqualities(const RelExprPtr& node,
                       std::vector<std::pair<ColumnId, ColumnId>>* pairs) {
  auto from_pred = [&pairs](const ScalarExprPtr& pred) {
    for (const ScalarExprPtr& c : SplitConjuncts(pred)) {
      if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq &&
          c->children[0]->kind == ScalarKind::kColumnRef &&
          c->children[1]->kind == ScalarKind::kColumnRef) {
        pairs->emplace_back(c->children[0]->column, c->children[1]->column);
      }
    }
  };
  switch (node->kind) {
    case RelKind::kSelect:
      from_pred(node->predicate);
      CollectEqualities(node->children[0], pairs);
      break;
    case RelKind::kJoin:
      if (node->join_kind == JoinKind::kInner) {
        from_pred(node->predicate);
        CollectEqualities(node->children[0], pairs);
        CollectEqualities(node->children[1], pairs);
      }
      break;
    case RelKind::kProject:
      CollectEqualities(node->children[0], pairs);
      break;
    default:
      break;
  }
}

/// Union-find view over the collected equalities.
class Closure {
 public:
  explicit Closure(const std::vector<std::pair<ColumnId, ColumnId>>& pairs) {
    for (const auto& [a, b] : pairs) Union(a, b);
  }
  bool Equal(ColumnId a, ColumnId b) {
    if (a == b) return true;
    return Find(a) == Find(b);
  }

 private:
  ColumnId Find(ColumnId id) {
    auto it = parent_.find(id);
    if (it == parent_.end() || it->second == id) {
      parent_[id] = id;
      return id;
    }
    return parent_[id] = Find(it->second);
  }
  void Union(ColumnId a, ColumnId b) { parent_[Find(a)] = Find(b); }
  std::map<ColumnId, ColumnId> parent_;
};

/// Descends X through selections and inner joins looking for a subtree
/// isomorphic to E2 whose context preserves segments (the validation
/// described in DESIGN.md): sibling join inputs must join on
/// segment-equivalent columns and be keyed by them (all-or-none, at most
/// one row per segment), and selections on the path must not filter T's
/// own non-segment columns.
bool FindIsomorphicSubtree(
    const RelExprPtr& x, const RelExprPtr& e2, Closure* closure,
    const std::vector<std::pair<ColumnId, ColumnId>>& links,
    std::map<ColumnId, ColumnId>* iso_map) {
  std::map<ColumnId, ColumnId> m;
  if (RelTreesIsomorphic(e2, x, &m)) {
    bool linked = true;
    for (const auto& [e2_id, x_id] : links) {
      auto it = m.find(e2_id);
      if (it == m.end() || !closure->Equal(it->second, x_id)) {
        linked = false;
        break;
      }
    }
    if (linked) {
      *iso_map = std::move(m);
      return true;
    }
  }
  auto segment_equiv = [&](ColumnId id) {
    for (const auto& [e2_id, x_id] : links) {
      if (closure->Equal(id, x_id)) return true;
    }
    return false;
  };
  switch (x->kind) {
    case RelKind::kSelect: {
      const RelExprPtr& child = x->children[0];
      if (!FindIsomorphicSubtree(child, e2, closure, links, iso_map)) {
        return false;
      }
      // The selection must not filter individual T rows: every referenced
      // T column must be segment-equivalent.
      ColumnSet t_cols;
      for (const auto& [e2_id, t_id] : *iso_map) t_cols.Add(t_id);
      ColumnSet refs;
      CollectColumnRefsDeep(x->predicate, &refs);
      for (ColumnId id : refs) {
        if (t_cols.Contains(id) && !segment_equiv(id)) return false;
      }
      return true;
    }
    case RelKind::kJoin: {
      if (x->join_kind != JoinKind::kInner) return false;
      for (int side = 0; side < 2; ++side) {
        std::map<ColumnId, ColumnId> local;
        if (!FindIsomorphicSubtree(x->children[side], e2, closure, links,
                                   &local)) {
          continue;
        }
        const RelExprPtr& z = x->children[1 - side];
        ColumnSet z_cols = z->OutputSet();
        // Join conjuncts: segment-equivalent or Z columns only; collect
        // the Z columns equated to segment columns.
        ColumnSet z_equated;
        bool ok = true;
        for (const ScalarExprPtr& c : SplitConjuncts(x->predicate)) {
          ColumnSet refs;
          CollectColumnRefsDeep(c, &refs);
          for (ColumnId id : refs) {
            if (!z_cols.Contains(id) && !segment_equiv(id)) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
          if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq &&
              c->children[0]->kind == ScalarKind::kColumnRef &&
              c->children[1]->kind == ScalarKind::kColumnRef) {
            ColumnId a = c->children[0]->column;
            ColumnId b = c->children[1]->column;
            if (z_cols.Contains(a) && segment_equiv(b)) z_equated.Add(a);
            if (z_cols.Contains(b) && segment_equiv(a)) z_equated.Add(b);
          }
        }
        if (!ok) continue;
        // Z contributes at most one row per segment: a key of Z must be
        // covered by the equated columns.
        if (!HasKeyWithin(*z, z_equated)) continue;
        *iso_map = std::move(local);
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

/// Shared detection + construction for SegmentApply introduction. Given
/// X, E2 and the linking equalities, validates the pattern and produces
/// the SegmentApply core: SA_{SC}(X, Join_{residual}(S1, G_F1(S2))).
struct SegmentBuild {
  bool ok = false;
  RelExprPtr sa;                       // the SegmentApply node
  std::map<ColumnId, ColumnId> x_to_s1;  // X output id -> S1 id
  ColumnSet segment_cols;
};

SegmentBuild BuildSegmentApplyCore(
    const RelExprPtr& x, const RelExprPtr& e2,
    const std::vector<std::pair<ColumnId, ColumnId>>& links,
    const std::vector<AggItem>& aggs, const ScalarExprPtr& residual,
    ColumnManager* columns) {
  SegmentBuild out;
  if (links.empty()) return out;
  if (!FreeVariables(*e2).empty()) return out;
  // NULL-valued segment keys would form segments (grouping semantics)
  // although SQL equality never matches NULL: require non-NULL links.
  ColumnSet x_not_null = NotNullColumns(*x);
  for (const auto& [e2_id, x_id] : links) {
    if (!x_not_null.Contains(x_id)) return out;
  }
  std::vector<std::pair<ColumnId, ColumnId>> eq_pairs;
  CollectEqualities(x, &eq_pairs);
  Closure closure(eq_pairs);
  std::map<ColumnId, ColumnId> iso_map;  // E2 id -> T id
  if (!FindIsomorphicSubtree(x, e2, &closure, links, &iso_map)) return out;

  std::vector<ColumnId> x_out = x->OutputColumns();
  std::vector<ColumnId> s1_ids, s2_ids;
  std::map<ColumnId, ColumnId> x_to_s2;
  for (ColumnId id : x_out) {
    ColumnId s1 =
        columns->NewColumn(columns->name(id), columns->type(id), true);
    ColumnId s2 =
        columns->NewColumn(columns->name(id), columns->type(id), true);
    s1_ids.push_back(s1);
    s2_ids.push_back(s2);
    out.x_to_s1[id] = s1;
    x_to_s2[id] = s2;
  }
  // Aggregate args: E2 id -> T id (iso) -> S2 id (positional).
  std::map<ColumnId, ColumnId> arg_map;
  for (const auto& [e2_id, t_id] : iso_map) {
    auto it = x_to_s2.find(t_id);
    if (it != x_to_s2.end()) arg_map[e2_id] = it->second;
  }
  std::vector<AggItem> seg_aggs;
  for (const AggItem& agg : aggs) {
    AggItem copy = agg;
    if (copy.arg != nullptr) {
      ScalarExprPtr remapped = RemapColumns(copy.arg, arg_map);
      ColumnSet refs;
      CollectColumnRefs(remapped, &refs);
      if (!refs.IsSubsetOf(ColumnSet(s2_ids))) return out;
      copy.arg = std::move(remapped);
    }
    seg_aggs.push_back(std::move(copy));
  }
  ScalarExprPtr inner_pred = TrueLiteral();
  if (residual != nullptr) {
    inner_pred = RemapColumns(residual, out.x_to_s1);
  }
  RelExprPtr inner = MakeJoin(
      JoinKind::kInner, MakeSegmentRef(s1_ids),
      MakeScalarGroupBy(MakeSegmentRef(s2_ids), std::move(seg_aggs)),
      std::move(inner_pred));
  for (const auto& [e2_id, x_id] : links) out.segment_cols.Add(x_id);
  out.sa = MakeSegmentApply(x, std::move(inner), out.segment_cols, s1_ids);
  out.ok = true;
  return out;
}

/// SegmentApply introduction, pattern A (paper section 3.4.1): the shape
/// correlation removal produces for scalar-aggregate subqueries:
///
///   G_{A,F}( X ⋈p E2 )    (⋈ inner / left outer / the re-correlated
///                          Apply(X, sigma_p(E2)) the greedy pass forms)
///
/// becomes  π( X SA_{SC} ( S1 × G_F1(S2) ) ).
class SegmentApplyIntroRule : public Rule {
 public:
  const char* name() const override { return "SegmentApplyIntro"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node,
                                ColumnManager* columns,
                                CostModel* cost) const override {
    std::vector<RelExprPtr> out = ApplyOriented(node, false, columns);
    if (out.empty()) out = ApplyOriented(node, true, columns);
    (void)cost;
    return out;
  }

 private:
  std::vector<RelExprPtr> ApplyOriented(const RelExprPtr& node, bool swapped,
                                        ColumnManager* columns) const {
    if (node->kind != RelKind::kGroupBy || node->scalar_agg) return {};
    const RelExprPtr& join = node->children[0];
    RelExprPtr x, e2;
    ScalarExprPtr link_pred;
    if (join->kind == RelKind::kJoin &&
        (join->join_kind == JoinKind::kInner ||
         (join->join_kind == JoinKind::kLeftOuter && !swapped))) {
      // Inner joins may sit commuted (the E2 instance on the left).
      x = join->children[swapped ? 1 : 0];
      e2 = join->children[swapped ? 0 : 1];
      if (swapped && join->join_kind != JoinKind::kInner) return {};
      link_pred = join->predicate;
    } else if (!swapped && join->kind == RelKind::kApply &&
               (join->apply_kind == ApplyKind::kCross ||
                join->apply_kind == ApplyKind::kOuter) &&
               join->children[1]->kind == RelKind::kSelect) {
      x = join->children[0];
      e2 = join->children[1]->children[0];
      link_pred = join->children[1]->predicate;
    } else {
      return {};
    }
    ColumnSet x_cols = x->OutputSet();
    ColumnSet e2_cols = e2->OutputSet();

    // Per-X-row grouping over X columns only.
    if (!node->group_cols.IsSubsetOf(x_cols)) return {};
    if (!HasKeyWithin(*x, node->group_cols)) return {};
    for (const AggItem& agg : node->aggs) {
      ColumnSet refs;
      CollectColumnRefsDeep(agg.arg, &refs);
      if (!refs.IsSubsetOf(e2_cols)) return {};
      if (agg.distinct) return {};
    }
    // The join predicate must consist solely of E2-col = X-col equalities.
    std::vector<std::pair<ColumnId, ColumnId>> links;  // (e2col, xcol)
    for (const ScalarExprPtr& c : SplitConjuncts(link_pred)) {
      if (c->kind != ScalarKind::kCompare || c->cmp != CompareOp::kEq ||
          c->children[0]->kind != ScalarKind::kColumnRef ||
          c->children[1]->kind != ScalarKind::kColumnRef) {
        return {};
      }
      ColumnId a = c->children[0]->column;
      ColumnId b = c->children[1]->column;
      if (e2_cols.Contains(a) && x_cols.Contains(b)) {
        links.emplace_back(a, b);
      } else if (e2_cols.Contains(b) && x_cols.Contains(a)) {
        links.emplace_back(b, a);
      } else {
        return {};
      }
    }
    SegmentBuild build = BuildSegmentApplyCore(x, e2, links, node->aggs,
                                               nullptr, columns);
    if (!build.ok) return {};
    // Restore the original output ids: grouping columns through S1, the
    // aggregate outputs pass through.
    std::vector<ProjectItem> items;
    ColumnSet pass;
    for (ColumnId a : node->group_cols) {
      if (build.segment_cols.Contains(a)) {
        pass.Add(a);
      } else {
        items.push_back(ProjectItem{a, CRef(*columns, build.x_to_s1.at(a))});
      }
    }
    for (const AggItem& agg : node->aggs) pass.Add(agg.output);
    return {MakeProject(build.sa, std::move(items), std::move(pass))};
  }
};

/// SegmentApply introduction, pattern B (the paper's own presentation in
/// 3.4.1, Fig. 6): "two instances of an expression connected by a join,
/// where one of the expressions may optionally have an extra aggregate":
///
///   X ⋈p G_{A2,F2}(E2)
///
/// with p = linking equalities ∧ residual (e.g. l_quantity < x). The
/// residual moves inside the segment: X SA_{SC}(Join_{res}(S1, G_F1(S2))).
class SegmentApplyJoinIntroRule : public Rule {
 public:
  const char* name() const override { return "SegmentApplyJoinIntro"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node,
                                ColumnManager* columns,
                                CostModel* cost) const override {
    std::vector<RelExprPtr> out = ApplyOriented(node, false, columns);
    if (out.empty()) out = ApplyOriented(node, true, columns);
    (void)cost;
    return out;
  }

 private:
  std::vector<RelExprPtr> ApplyOriented(const RelExprPtr& node, bool swapped,
                                        ColumnManager* columns) const {
    if (node->kind != RelKind::kJoin || node->join_kind != JoinKind::kInner) {
      return {};
    }
    const RelExprPtr& x = node->children[swapped ? 1 : 0];
    RelExprPtr right = node->children[swapped ? 0 : 1];
    // A derived-table formulation computes the aggregate expression in a
    // Project above the GroupBy (e.g. x = 0.2 * avg): look through it by
    // substituting its items into the join predicate.
    ScalarExprPtr predicate = node->predicate;
    std::vector<ProjectItem> restore_items;
    if (right->kind == RelKind::kProject) {
      std::map<ColumnId, ScalarExprPtr> defs;
      for (const ProjectItem& item : right->proj_items) {
        defs[item.output] = item.expr;
        restore_items.push_back(item);
      }
      predicate = SubstituteColumns(predicate, defs);
      right = right->children[0];
    }
    const RelExprPtr& group = right;
    if (group->kind != RelKind::kGroupBy || group->scalar_agg) return {};
    const RelExprPtr& e2 = group->children[0];
    ColumnSet x_cols = x->OutputSet();
    ColumnSet group_out = group->OutputSet();

    for (const AggItem& agg : group->aggs) {
      if (agg.distinct) return {};
    }
    // Split the predicate into linking equalities (grouping col = X col)
    // and residual conjuncts over X cols + aggregate outputs.
    std::vector<std::pair<ColumnId, ColumnId>> links;  // (A2 col, x col)
    std::vector<ScalarExprPtr> residual;
    ColumnSet linked_a2;
    for (const ScalarExprPtr& c : SplitConjuncts(predicate)) {
      bool is_link = false;
      if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq &&
          c->children[0]->kind == ScalarKind::kColumnRef &&
          c->children[1]->kind == ScalarKind::kColumnRef) {
        ColumnId a = c->children[0]->column;
        ColumnId b = c->children[1]->column;
        if (group->group_cols.Contains(a) && x_cols.Contains(b)) {
          links.emplace_back(a, b);
          linked_a2.Add(a);
          is_link = true;
        } else if (group->group_cols.Contains(b) && x_cols.Contains(a)) {
          links.emplace_back(b, a);
          linked_a2.Add(b);
          is_link = true;
        }
      }
      if (!is_link) residual.push_back(c);
    }
    // Every grouping column must be linked: the aggregate is then exactly
    // one row per segment.
    if (!group->group_cols.IsSubsetOf(linked_a2)) return {};
    for (const ScalarExprPtr& c : residual) {
      ColumnSet refs;
      CollectColumnRefsDeep(c, &refs);
      if (!refs.IsSubsetOf(x_cols.Union(group_out))) return {};
    }

    SegmentBuild build = BuildSegmentApplyCore(
        x, e2, links, group->aggs,
        residual.empty() ? nullptr : MakeAnd(residual), columns);
    if (!build.ok) return {};
    // Restore the original output shape. Grouping columns equal their
    // linked segment column on every surviving row; Project-computed
    // expressions are recomputed from the segment aggregates.
    std::map<ColumnId, ColumnId> a2_to_x;
    for (const auto& [a2_id, x_id] : links) a2_to_x[a2_id] = x_id;
    ColumnSet agg_outs;
    for (const AggItem& agg : group->aggs) agg_outs.Add(agg.output);

    std::vector<ProjectItem> items;
    ColumnSet pass = build.segment_cols;
    for (ColumnId id : x->OutputColumns()) {
      if (!build.segment_cols.Contains(id)) {
        items.push_back(ProjectItem{id, CRef(*columns, build.x_to_s1.at(id))});
      }
    }
    const RelExprPtr& original_right = node->children[swapped ? 0 : 1];
    if (original_right->kind == RelKind::kProject) {
      for (const ProjectItem& item : restore_items) {
        items.push_back(
            ProjectItem{item.output, RemapColumns(item.expr, a2_to_x)});
      }
      for (ColumnId p : original_right->passthrough) {
        if (agg_outs.Contains(p)) {
          pass.Add(p);
        } else if (a2_to_x.count(p) > 0) {
          items.push_back(ProjectItem{p, CRef(*columns, a2_to_x.at(p))});
        } else {
          return {};  // untraceable passthrough column
        }
      }
    } else {
      for (const auto& [a2_id, x_id] : links) {
        items.push_back(ProjectItem{a2_id, CRef(*columns, x_id)});
      }
      for (const AggItem& agg : group->aggs) pass.Add(agg.output);
    }
    return {MakeProject(build.sa, std::move(items), std::move(pass))};
  }
};

/// SegmentApply introduction for existential subqueries (paper 3.4.1:
/// "Removing correlations for an existential subquery generates a
/// semijoin, or antisemijoin. The argument in the previous section is
/// valid for those operators too ... The only difference is in the
/// correlated expression"):
///
///   X ⋉p E2   (or ▷p)   with  iso(T ⊆ X, E2),  p = links ∧ residual
///   ->  π( X SA_{SC}( S1 ⋉_{residual'} S2 ) )
class SegmentApplySemiJoinIntroRule : public Rule {
 public:
  const char* name() const override { return "SegmentApplySemiJoinIntro"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node,
                                ColumnManager* columns,
                                CostModel*) const override {
    if (node->kind != RelKind::kJoin ||
        (node->join_kind != JoinKind::kLeftSemi &&
         node->join_kind != JoinKind::kLeftAnti)) {
      return {};
    }
    const RelExprPtr& x = node->children[0];
    const RelExprPtr& e2 = node->children[1];
    ColumnSet x_cols = x->OutputSet();
    ColumnSet e2_cols = e2->OutputSet();
    if (!FreeVariables(*e2).empty()) return {};

    std::vector<std::pair<ColumnId, ColumnId>> links;  // (e2col, xcol)
    std::vector<ScalarExprPtr> residual;
    for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
      bool is_link = false;
      if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq &&
          c->children[0]->kind == ScalarKind::kColumnRef &&
          c->children[1]->kind == ScalarKind::kColumnRef) {
        ColumnId a = c->children[0]->column;
        ColumnId b = c->children[1]->column;
        if (e2_cols.Contains(a) && x_cols.Contains(b)) {
          links.emplace_back(a, b);
          is_link = true;
        } else if (e2_cols.Contains(b) && x_cols.Contains(a)) {
          links.emplace_back(b, a);
          is_link = true;
        }
      }
      if (!is_link) residual.push_back(c);
    }
    if (links.empty()) return {};
    ColumnSet x_not_null = NotNullColumns(*x);
    for (const auto& [e2_id, x_id] : links) {
      if (!x_not_null.Contains(x_id)) return {};
    }
    std::vector<std::pair<ColumnId, ColumnId>> eq_pairs;
    CollectEqualities(x, &eq_pairs);
    Closure closure(eq_pairs);
    std::map<ColumnId, ColumnId> iso_map;
    if (!FindIsomorphicSubtree(x, e2, &closure, links, &iso_map)) return {};

    // Segment scans: S1 streams the segment (X rows), S2 replays it as
    // the inner instance; residual conjuncts remap X -> S1, E2 -> S2.
    std::vector<ColumnId> x_out = x->OutputColumns();
    std::vector<ColumnId> s1_ids, s2_ids;
    std::map<ColumnId, ColumnId> remap;   // X id -> S1 id, E2 id -> S2 id
    std::map<ColumnId, ColumnId> x_to_s1;
    std::map<ColumnId, ColumnId> t_to_s2;
    for (ColumnId id : x_out) {
      ColumnId s1 =
          columns->NewColumn(columns->name(id), columns->type(id), true);
      ColumnId s2 =
          columns->NewColumn(columns->name(id), columns->type(id), true);
      s1_ids.push_back(s1);
      s2_ids.push_back(s2);
      x_to_s1[id] = s1;
      t_to_s2[id] = s2;
      remap[id] = s1;
    }
    for (const auto& [e2_id, t_id] : iso_map) {
      auto it = t_to_s2.find(t_id);
      if (it == t_to_s2.end()) return {};
      remap[e2_id] = it->second;
    }
    std::vector<ScalarExprPtr> inner_pred;
    for (const ScalarExprPtr& c : residual) {
      ScalarExprPtr remapped = RemapColumns(c, remap);
      ColumnSet refs;
      CollectColumnRefs(remapped, &refs);
      if (!refs.IsSubsetOf(ColumnSet(s1_ids).Union(ColumnSet(s2_ids)))) {
        return {};
      }
      inner_pred.push_back(std::move(remapped));
    }
    JoinKind inner_kind = node->join_kind;  // semi stays semi, anti anti
    RelExprPtr inner =
        MakeJoin(inner_kind, MakeSegmentRef(s1_ids), MakeSegmentRef(s2_ids),
                 MakeAnd(std::move(inner_pred)));
    ColumnSet segment_cols;
    for (const auto& [e2_id, x_id] : links) segment_cols.Add(x_id);
    RelExprPtr sa =
        MakeSegmentApply(x, std::move(inner), segment_cols, s1_ids);
    // Restore X's output ids (the semijoin exposes only the left side).
    std::vector<ProjectItem> items;
    ColumnSet pass = segment_cols;
    for (ColumnId id : x_out) {
      if (!segment_cols.Contains(id)) {
        items.push_back(ProjectItem{id, CRef(*columns, x_to_s1.at(id))});
      }
    }
    return {MakeProject(std::move(sa), std::move(items), std::move(pass))};
  }
};

/// (R SA_A E) ⋈p Z  =  (R ⋈p Z) SA_{A ∪ cols(Z)} E
/// iff cols(p) ⊆ A ∪ cols(Z)  (paper section 3.4.2).
class JoinPushBelowSegmentApplyRule : public Rule {
 public:
  const char* name() const override { return "JoinPushBelowSegmentApply"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node,
                                ColumnManager* columns,
                                CostModel*) const override {
    if (node->kind != RelKind::kJoin || node->join_kind != JoinKind::kInner) {
      return {};
    }
    const RelExprPtr& sa = node->children[0];
    const RelExprPtr& z = node->children[1];
    if (sa->kind != RelKind::kSegmentApply) return {};
    ColumnSet z_cols = z->OutputSet();
    ColumnSet pred_refs;
    CollectColumnRefsDeep(node->predicate, &pred_refs);
    if (!pred_refs.IsSubsetOf(sa->segment_cols.Union(z_cols))) return {};

    RelExprPtr new_input = MakeJoin(JoinKind::kInner, sa->children[0], z,
                                    node->predicate);
    // SegmentRef leaves widen positionally: the joined Z columns get fresh
    // ids appended to each segment reference.
    std::vector<ColumnId> z_out = z->OutputColumns();
    std::function<RelExprPtr(const RelExprPtr&)> widen =
        [&](const RelExprPtr& n) -> RelExprPtr {
      if (n->kind == RelKind::kSegmentRef) {
        std::vector<ColumnId> cols = n->segment_out_cols;
        for (ColumnId zc : z_out) {
          cols.push_back(columns->NewColumn(columns->name(zc),
                                            columns->type(zc), true));
        }
        return MakeSegmentRef(std::move(cols));
      }
      std::vector<RelExprPtr> children;
      for (const RelExprPtr& child : n->children) {
        children.push_back(widen(child));
      }
      return CloneWithChildren(*n, std::move(children));
    };
    RelExprPtr new_inner = widen(sa->children[1]);
    RelExprPtr new_sa = MakeSegmentApply(
        std::move(new_input), std::move(new_inner),
        sa->segment_cols.Union(z_cols), sa->segment_out_cols);
    // Output shape: the pushed form exposes segment cols (now incl. Z) +
    // inner outputs; the original exposed SA outputs + Z cols — same set.
    return {new_sa};
  }
};

}  // namespace

std::unique_ptr<Rule> MakeSegmentApplyIntroRule() {
  return std::make_unique<SegmentApplyIntroRule>();
}

std::unique_ptr<Rule> MakeSegmentApplyJoinIntroRule() {
  return std::make_unique<SegmentApplyJoinIntroRule>();
}

std::unique_ptr<Rule> MakeSegmentApplySemiJoinIntroRule() {
  return std::make_unique<SegmentApplySemiJoinIntroRule>();
}

std::unique_ptr<Rule> MakeJoinPushBelowSegmentApplyRule() {
  return std::make_unique<JoinPushBelowSegmentApplyRule>();
}

}  // namespace orq
