#ifndef ORQ_OPT_COST_H_
#define ORQ_OPT_COST_H_

#include <map>

#include "algebra/rel_expr.h"
#include "catalog/catalog.h"

namespace orq {

/// Cardinality and cost estimate for a (sub)plan. Costs are abstract work
/// units roughly proportional to rows touched; they only need to rank
/// alternatives consistently.
struct PlanEstimate {
  double rows = 0.0;
  double cost = 0.0;
};

/// Cardinality estimation + costing over logical trees. The model assumes
/// the physical mapping of physical.cc: equi-joins hash, other joins nest,
/// correlated applies re-execute their inner per outer row with index
/// lookups priced through the catalog's indexes, aggregations hash.
class CostModel {
 public:
  explicit CostModel(Catalog* catalog) : catalog_(catalog) {}

  /// Estimate for a subtree. Cached by node identity.
  const PlanEstimate& Estimate(const RelExprPtr& node);

  /// Estimated number of distinct values of `col` in the subtree's output;
  /// falls back to the subtree's cardinality when untraceable.
  double EstimateDistinct(const RelExprPtr& node, ColumnId col);

  /// Estimated selectivity of a predicate at `node`'s input.
  double EstimateSelectivity(const RelExprPtr& input,
                             const ScalarExprPtr& pred);

 private:
  PlanEstimate Compute(const RelExprPtr& node);
  /// Per-invocation estimate of a correlated inner: parameters are assumed
  /// bound, index lookups priced as bucket-sized scans.
  PlanEstimate EstimateCorrelatedInner(const RelExprPtr& node,
                                       const ColumnSet& params);

  Catalog* catalog_;
  // Keyed by shared_ptr: keeps the nodes alive so addresses are never
  // recycled into stale cache hits.
  std::map<RelExprPtr, PlanEstimate> cache_;
};

}  // namespace orq

#endif  // ORQ_OPT_COST_H_
