#ifndef ORQ_OPT_RULES_H_
#define ORQ_OPT_RULES_H_

#include <memory>
#include <vector>

#include "algebra/rel_expr.h"
#include "opt/cost.h"
#include "opt/optimizer.h"

namespace orq {

/// A transformation rule: given a node (whose children are already
/// optimized), produce zero or more semantically equivalent alternatives.
/// The optimizer costs them against the original.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual std::vector<RelExprPtr> Apply(const RelExprPtr& node,
                                        ColumnManager* columns,
                                        CostModel* cost) const = 0;
};

/// Instantiates the rule set enabled by `options`. Rules defined across
/// rules.cc (commutativity, correlated re-introduction),
/// groupby_rules.cc (sections 3.1-3.3) and segment_rules.cc (section 3.4).
std::vector<std::unique_ptr<Rule>> BuildRuleSet(
    const OptimizerOptions& options);

// Individual factories (exposed for targeted tests).
std::unique_ptr<Rule> MakeJoinCommuteRule();
std::unique_ptr<Rule> MakeCorrelatedReintroductionRule();
std::unique_ptr<Rule> MakeGroupByPushBelowJoinRule();
std::unique_ptr<Rule> MakeGroupByPullAboveJoinRule();
std::unique_ptr<Rule> MakeGroupByPushBelowOuterJoinRule();
std::unique_ptr<Rule> MakeLocalAggregateSplitRule();
std::unique_ptr<Rule> MakeSemiJoinToJoinDistinctRule();
std::unique_ptr<Rule> MakeSemiJoinPushBelowGroupByRule();
std::unique_ptr<Rule> MakeSegmentApplyIntroRule();
std::unique_ptr<Rule> MakeSegmentApplyJoinIntroRule();
std::unique_ptr<Rule> MakeSegmentApplySemiJoinIntroRule();
std::unique_ptr<Rule> MakeJoinPushBelowSegmentApplyRule();

}  // namespace orq

#endif  // ORQ_OPT_RULES_H_
