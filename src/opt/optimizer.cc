#include "opt/optimizer.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "algebra/expr_util.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "opt/cost.h"
#include "opt/rules.h"

namespace orq {

namespace {

class GreedyOptimizer {
 public:
  GreedyOptimizer(Catalog* catalog, ColumnManager* columns,
                  const OptimizerOptions& options)
      : columns_(columns),
        options_(options),
        cost_(catalog),
        rules_(BuildRuleSet(options)) {}

  RelExprPtr Optimize(const RelExprPtr& node, int depth) {
    auto memo = memo_.find(node);
    if (memo != memo_.end()) return memo->second;

    // Children first.
    std::vector<RelExprPtr> children;
    bool changed = false;
    for (const RelExprPtr& child : node->children) {
      RelExprPtr optimized = Optimize(child, depth);
      changed |= optimized != child;
      children.push_back(std::move(optimized));
    }
    RelExprPtr current =
        changed ? CloneWithChildren(*node, std::move(children)) : node;

    if (depth < options_.max_depth) {
      for (int round = 0; round < 4; ++round) {
        double current_cost = cost_.Estimate(current).cost;
        RelExprPtr best = current;
        double best_cost = current_cost;
        const char* best_rule = nullptr;
        // Candidate-evaluation wall time of the rule that ends up winning
        // this round; clock reads only happen with a trace attached.
        int64_t best_eval_nanos = 0;
        for (const auto& rule : rules_) {
          const int64_t rule_start =
              options_.trace != nullptr ? ObsNowNanos() : 0;
          for (RelExprPtr& alt : rule->Apply(current, columns_, &cost_)) {
            // Give the alternative's subtrees their own shot (e.g. a
            // pushed-down GroupBy may enable a further local split).
            RelExprPtr refined = OptimizeChildren(alt, depth + 1);
            double c = cost_.Estimate(refined).cost;
            const char* dbg = std::getenv("ORQ_OPT_DEBUG");
            if (dbg != nullptr && dbg[0] == '2') {
              std::fprintf(stderr, "[opt] candidate %s: %.0f (current %.0f)\n",
                           rule->name(), c, current_cost);
            }
            if (c < best_cost * 0.9999) {  // strict improvement only
              best = refined;
              best_cost = c;
              best_rule = rule->name();
            }
          }
          if (options_.trace != nullptr && best_rule == rule->name()) {
            best_eval_nanos = ObsNowNanos() - rule_start;
          }
        }
        if (best == current) break;
        if (std::getenv("ORQ_OPT_DEBUG") != nullptr) {
          std::fprintf(stderr, "[opt] %s: %.0f -> %.0f\n", best_rule,
                       current_cost, best_cost);
        }
        if (options_.trace != nullptr) {
          TraceEvent event{TraceEvent::Stage::kOptimize,
                           TraceEvent::Kind::kRule, best_rule,
                           CountRelNodes(*current), CountRelNodes(*best),
                           current_cost, best_cost};
          event.wall_nanos = best_eval_nanos;
          options_.trace->Record(std::move(event));
        }
        current = best;
      }
    }
    memo_[node] = current;
    return current;
  }

 private:
  RelExprPtr OptimizeChildren(const RelExprPtr& node, int depth) {
    if (depth >= options_.max_depth) return node;
    std::vector<RelExprPtr> children;
    bool changed = false;
    for (const RelExprPtr& child : node->children) {
      RelExprPtr optimized = Optimize(child, depth);
      changed |= optimized != child;
      children.push_back(std::move(optimized));
    }
    return changed ? CloneWithChildren(*node, std::move(children)) : node;
  }

  ColumnManager* columns_;
  const OptimizerOptions& options_;
  CostModel cost_;
  std::vector<std::unique_ptr<Rule>> rules_;
  // Keyed by shared_ptr: keeps source nodes alive so recycled addresses
  // cannot alias memo entries.
  std::map<RelExprPtr, RelExprPtr> memo_;
};

}  // namespace

Result<RelExprPtr> OptimizeTree(RelExprPtr root, Catalog* catalog,
                                ColumnManager* columns,
                                const OptimizerOptions& options) {
  if (!options.enable) return root;
  GreedyOptimizer optimizer(catalog, columns, options);
  return optimizer.Optimize(root, 0);
}

}  // namespace orq
