#include "opt/physical.h"

#include <unordered_map>

#include "algebra/expr_util.h"
#include "algebra/props.h"
#include "catalog/table.h"
#include "opt/cost.h"

namespace orq {

namespace {

bool ContainsGet(const RelExpr& node) {
  if (node.kind == RelKind::kGet) return true;
  for (const RelExprPtr& child : node.children) {
    if (ContainsGet(*child)) return true;
  }
  return false;
}

bool ContainsSegmentRef(const RelExpr& node) {
  if (node.kind == RelKind::kSegmentRef) return true;
  for (const RelExprPtr& child : node.children) {
    if (ContainsSegmentRef(*child)) return true;
  }
  return false;
}

/// Aggregates whose per-worker partials cannot be folded together:
/// DISTINCT needs a global duplicate set, Max1Row a global row count.
bool HasUnmergeableAgg(const RelExpr& node) {
  for (const AggItem& agg : node.aggs) {
    if (agg.distinct || agg.func == AggFunc::kMax1Row) return true;
  }
  return false;
}

class PlanBuilder {
 public:
  PlanBuilder(const ColumnManager& columns,
              const PhysicalBuildOptions& options, CostModel* cost)
      : columns_(columns), options_(options), cost_(cost) {}

  /// Builds the operator for `node` and, when a cost model is attached,
  /// stamps it with the logical node's estimates (the EXPLAIN ANALYZE
  /// actual-vs-estimated hook). In parallel mode the first node whose
  /// whole subtree is region-eligible becomes the plan's (single)
  /// Exchange; descent continues serially everywhere else.
  Result<PhysicalOpPtr> Build(const RelExprPtr& node) {
    PhysicalOpPtr op;
    if (ShouldInsertExchange(node)) {
      ORQ_ASSIGN_OR_RETURN(op, BuildExchange(node));
    } else {
      ORQ_ASSIGN_OR_RETURN(op, BuildNode(node));
    }
    if (cost_ != nullptr) {
      const PlanEstimate& estimate = cost_->Estimate(node);
      op->set_estimates(estimate.rows, estimate.cost);
    }
    return op;
  }

 private:
  /// A subtree becomes a parallel region when (a) parallel mode is on and
  /// no exchange exists yet (one per plan in v1 — gangs never compete for
  /// pool threads), (b) we are not under a rebinding Apply or SegmentApply
  /// inner (those re-open per outer row; a gang per re-open is v2), (c) it
  /// actually scans something and is more than a bare scan (a lone Get has
  /// nothing to amortize the queue against), (d) it is closed — no free
  /// variables — and (e) every operator in it has a parallel form.
  bool ShouldInsertExchange(const RelExprPtr& node) const {
    return options_.num_threads > 0 && region_worker_ < 0 &&
           allow_exchange_ && !exchange_done_ &&
           node->kind != RelKind::kGet && ContainsGet(*node) &&
           FreeVariables(*node).empty() && EligibleRegion(node);
  }

  /// Whole-subtree recursion behind ShouldInsertExchange's clause (e):
  /// scans split into morsels, filters/projections replicate, hash joins
  /// build via partition+merge, aggregations merge partials — anything
  /// else (sorts, applies, set ops, segments, unmergeable aggs) keeps the
  /// region boundary below itself.
  bool EligibleRegion(const RelExprPtr& node) const {
    switch (node->kind) {
      case RelKind::kGet:
        return true;
      case RelKind::kSelect:
        // A constant-empty Select compiles to a zero-row op; let the
        // serial shortcut prune it instead of spinning up a gang.
        if (node->predicate->kind == ScalarKind::kLiteral &&
            IsFalseOrNullLiteral(node->predicate)) {
          return false;
        }
        return EligibleRegion(node->children[0]);
      case RelKind::kProject:
        return EligibleRegion(node->children[0]);
      case RelKind::kJoin: {
        if (!options_.use_hash_join) return false;
        JoinSplit split = SplitJoinPredicate(node);
        if (split.keys.empty()) return false;
        if (ToPhysJoinKind(node->join_kind) == PhysJoinKind::kLeftAnti &&
            !split.residual.empty()) {
          return false;
        }
        return EligibleRegion(node->children[0]) &&
               EligibleRegion(node->children[1]);
      }
      case RelKind::kGroupBy:
      case RelKind::kLocalGroupBy:
        if (HasUnmergeableAgg(*node)) return false;
        return EligibleRegion(node->children[0]);
      default:
        return false;
    }
  }

  /// Builds N instances of the region subtree — each shares the same
  /// morsel cursors / build barriers via shared_by_node_ — and seals them
  /// under one Exchange.
  Result<PhysicalOpPtr> BuildExchange(const RelExprPtr& node) {
    exchange_done_ = true;
    shared_by_node_.clear();
    region_shared_.clear();
    std::vector<PhysicalOpPtr> instances;
    for (int w = 0; w < options_.num_threads; ++w) {
      region_worker_ = w;
      Result<PhysicalOpPtr> instance = Build(node);
      region_worker_ = -1;
      if (!instance.ok()) return instance.status();
      instances.push_back(std::move(*instance));
    }
    shared_by_node_.clear();
    std::vector<ColumnId> layout = instances[0]->layout();
    return MakeExchangeOp(std::move(instances), std::move(region_shared_),
                          std::move(layout));
  }

  /// The shared state all N instances of one logical node rendezvous on;
  /// worker 0's build creates it, the others look it up.
  template <typename MakeFn>
  SharedRegionStatePtr SharedForNode(const RelExpr* node, MakeFn make) {
    auto it = shared_by_node_.find(node);
    if (it != shared_by_node_.end()) return it->second;
    SharedRegionStatePtr state = make();
    shared_by_node_.emplace(node, state);
    region_shared_.push_back(state);
    return state;
  }
  Result<PhysicalOpPtr> BuildNode(const RelExprPtr& node) {
    switch (node->kind) {
      case RelKind::kGet:
        if (region_worker_ >= 0) {
          SharedRegionStatePtr source = SharedForNode(
              node.get(), [] { return MakeMorselSource(); });
          return MakeMorselScan(node->table, node->get_ordinals,
                                node->get_cols, std::move(source));
        }
        return MakeTableScan(node->table, node->get_ordinals,
                             node->get_cols);
      case RelKind::kSelect:
        return BuildSelect(node);
      case RelKind::kProject: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child, Build(node->children[0]));
        std::vector<ColumnId> pass;
        for (ColumnId id : node->children[0]->OutputColumns()) {
          if (node->passthrough.Contains(id)) pass.push_back(id);
        }
        return MakeComputeOp(std::move(child), node->proj_items,
                             std::move(pass));
      }
      case RelKind::kJoin:
        return BuildJoin(node);
      case RelKind::kApply:
        return BuildApply(node);
      case RelKind::kGroupBy:
      case RelKind::kLocalGroupBy: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child, Build(node->children[0]));
        std::vector<ColumnId> group_cols;
        for (ColumnId id : node->children[0]->OutputColumns()) {
          if (node->group_cols.Contains(id)) group_cols.push_back(id);
        }
        SharedRegionStatePtr shared;
        if (region_worker_ >= 0) {
          shared = SharedForNode(node.get(), [this] {
            return MakeSharedAggState(options_.num_threads);
          });
        }
        return MakeHashAggregateOp(std::move(child), std::move(group_cols),
                                   node->aggs, node->scalar_agg,
                                   std::move(shared),
                                   region_worker_ >= 0 ? region_worker_ : 0);
      }
      case RelKind::kSegmentApply: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr input, Build(node->children[0]));
        const bool saved_allow = allow_exchange_;
        allow_exchange_ = false;  // inner re-opens once per segment
        Result<PhysicalOpPtr> inner_built = Build(node->children[1]);
        allow_exchange_ = saved_allow;
        ORQ_RETURN_IF_ERROR(inner_built.status());
        PhysicalOpPtr inner = std::move(*inner_built);
        std::vector<int> key_slots;
        const std::vector<ColumnId>& in_layout = input->layout();
        std::vector<ColumnId> layout;
        for (size_t i = 0; i < in_layout.size(); ++i) {
          if (node->segment_cols.Contains(in_layout[i])) {
            key_slots.push_back(static_cast<int>(i));
            layout.push_back(in_layout[i]);
          }
        }
        layout.insert(layout.end(), inner->layout().begin(),
                      inner->layout().end());
        return MakeSegmentApplyOp(std::move(input), std::move(inner),
                                  std::move(key_slots), std::move(layout));
      }
      case RelKind::kSegmentRef:
        return MakeSegmentScanOp(node->segment_out_cols);
      case RelKind::kMax1row: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child, Build(node->children[0]));
        return MakeMax1rowOp(std::move(child));
      }
      case RelKind::kUnionAll: {
        std::vector<PhysicalOpPtr> children;
        for (size_t i = 0; i < node->children.size(); ++i) {
          ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                               BuildAligned(node->children[i],
                                            node->input_maps[i],
                                            node->out_cols));
          children.push_back(std::move(child));
        }
        return MakeUnionAllOp(std::move(children), node->out_cols);
      }
      case RelKind::kExceptAll: {
        ORQ_ASSIGN_OR_RETURN(
            PhysicalOpPtr left,
            BuildAligned(node->children[0], node->input_maps[0],
                         node->out_cols));
        ORQ_ASSIGN_OR_RETURN(
            PhysicalOpPtr right,
            BuildAligned(node->children[1], node->input_maps[1],
                         node->out_cols));
        return MakeExceptAllOp(std::move(left), std::move(right),
                               node->out_cols);
      }
      case RelKind::kSort: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child, Build(node->children[0]));
        return MakeSortOp(std::move(child), node->sort_keys, node->limit);
      }
      case RelKind::kSingleRow:
        return MakeSingleRowOp();
    }
    return Status::Internal("unhandled logical operator");
  }

  /// Wraps a set-operation branch so its layout positionally matches the
  /// parent's output columns.
  Result<PhysicalOpPtr> BuildAligned(const RelExprPtr& child,
                                     const std::vector<ColumnId>& input_map,
                                     const std::vector<ColumnId>& out_cols) {
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr built, Build(child));
    std::vector<ProjectItem> items;
    for (size_t i = 0; i < out_cols.size(); ++i) {
      items.push_back(
          ProjectItem{out_cols[i], CRef(columns_, input_map[i])});
    }
    return MakeComputeOp(std::move(built), std::move(items), {});
  }

  Result<PhysicalOpPtr> BuildSelect(const RelExprPtr& node) {
    const RelExprPtr& child = node->children[0];
    // A constant FALSE/NULL predicate is the canonical empty relation
    // (normalize/fold.h): compile it to a zero-row operator without
    // building the pruned subtree at all.
    if (node->predicate->kind == ScalarKind::kLiteral &&
        IsFalseOrNullLiteral(node->predicate)) {
      return MakeEmptyOp(child->OutputColumns());
    }
    // Select-over-Get with a key-covering equality -> index seek. The
    // equality's other side may be a literal or a correlated parameter;
    // under a rebinding Apply this becomes index-lookup-join. Disabled
    // inside parallel regions: a seek scans no morsels, so N instances
    // would each emit the full match set.
    if (options_.use_index_seek && region_worker_ < 0 &&
        child->kind == RelKind::kGet) {
      ColumnSet child_cols = child->OutputSet();
      std::vector<ScalarExprPtr> residual;
      std::vector<int> key_ordinals;
      std::vector<ScalarExprPtr> key_exprs;
      for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
        bool used = false;
        if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq) {
          for (int side = 0; side < 2 && !used; ++side) {
            const ScalarExprPtr& l = c->children[side];
            const ScalarExprPtr& r = c->children[1 - side];
            if (l->kind != ScalarKind::kColumnRef) continue;
            if (!child_cols.Contains(l->column)) continue;
            ColumnSet rrefs;
            CollectColumnRefs(r, &rrefs);
            if (rrefs.Intersects(child_cols)) continue;
            // Map the column id back to its table ordinal.
            for (size_t i = 0; i < child->get_cols.size(); ++i) {
              if (child->get_cols[i] == l->column) {
                key_ordinals.push_back(child->get_ordinals[i]);
                key_exprs.push_back(r);
                used = true;
                break;
              }
            }
          }
        }
        if (!used) residual.push_back(c);
      }
      if (!key_ordinals.empty()) {
        const TableIndex* index = child->table->FindIndex(key_ordinals);
        if (index != nullptr) {
          // Key expressions must line up with the index's ordinal order.
          std::vector<ScalarExprPtr> ordered(key_ordinals.size());
          for (size_t i = 0; i < index->ordinals().size(); ++i) {
            for (size_t k = 0; k < key_ordinals.size(); ++k) {
              if (key_ordinals[k] == index->ordinals()[i]) {
                ordered[i] = key_exprs[k];
              }
            }
          }
          ScalarExprPtr res =
              residual.empty() ? nullptr : MakeAnd(std::move(residual));
          return MakeIndexSeek(child->table, index, std::move(ordered),
                               child->get_ordinals, child->get_cols,
                               std::move(res));
        }
      }
    }
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr built, Build(child));
    return MakeFilterOp(std::move(built), node->predicate);
  }

  static PhysJoinKind ToPhysJoinKind(JoinKind kind) {
    switch (kind) {
      case JoinKind::kInner:
      case JoinKind::kCross:
        return PhysJoinKind::kInner;
      case JoinKind::kLeftOuter:
        return PhysJoinKind::kLeftOuter;
      case JoinKind::kLeftSemi:
        return PhysJoinKind::kLeftSemi;
      case JoinKind::kLeftAnti:
        return PhysJoinKind::kLeftAnti;
    }
    return PhysJoinKind::kInner;
  }

  /// Declared types of a build/inner side's layout, used to type the NULL
  /// padding of unmatched left-outer rows.
  std::vector<DataType> LayoutTypes(const PhysicalOp& op) const {
    std::vector<DataType> types;
    types.reserve(op.layout().size());
    for (ColumnId id : op.layout()) types.push_back(columns_.type(id));
    return types;
  }

  /// Equi-key extraction shared by BuildJoin and region eligibility: each
  /// top-level equality whose sides reference only one input becomes a
  /// hash key pair (left expr, right expr); everything else is residual.
  struct JoinSplit {
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys;
    std::vector<ScalarExprPtr> residual;
  };

  static JoinSplit SplitJoinPredicate(const RelExprPtr& node) {
    JoinSplit split;
    ColumnSet left_cols = node->children[0]->OutputSet();
    ColumnSet right_cols = node->children[1]->OutputSet();
    for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
      bool is_key = false;
      if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq) {
        ColumnSet lrefs, rrefs;
        CollectColumnRefs(c->children[0], &lrefs);
        CollectColumnRefs(c->children[1], &rrefs);
        if (lrefs.IsSubsetOf(left_cols) && rrefs.IsSubsetOf(right_cols)) {
          split.keys.emplace_back(c->children[0], c->children[1]);
          is_key = true;
        } else if (lrefs.IsSubsetOf(right_cols) &&
                   rrefs.IsSubsetOf(left_cols)) {
          split.keys.emplace_back(c->children[1], c->children[0]);
          is_key = true;
        }
      }
      if (!is_key) split.residual.push_back(c);
    }
    return split;
  }

  /// An inner/build side whose result cannot change across re-opens: no
  /// free variables (correlated parameters) and no segment reads. Such a
  /// side may be spooled once and replayed.
  static bool SideIsStable(const RelExpr& side) {
    return FreeVariables(side).empty() && !ContainsSegmentRef(side);
  }

  Result<PhysicalOpPtr> BuildJoin(const RelExprPtr& node) {
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr left, Build(node->children[0]));
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr right, Build(node->children[1]));
    PhysJoinKind kind = ToPhysJoinKind(node->join_kind);
    if (options_.use_hash_join) {
      JoinSplit split = SplitJoinPredicate(node);
      if (!split.keys.empty()) {
        // Residuals on anti joins are only correct when they reject the
        // row strictly; nested loops keeps full generality there.
        bool anti_with_residual =
            kind == PhysJoinKind::kLeftAnti && !split.residual.empty();
        if (!anti_with_residual) {
          ScalarExprPtr res = split.residual.empty()
                                  ? nullptr
                                  : MakeAnd(std::move(split.residual));
          std::vector<DataType> right_types = LayoutTypes(*right);
          SharedRegionStatePtr shared;
          if (region_worker_ >= 0) {
            shared = SharedForNode(node.get(), [this] {
              return MakeSharedJoinState(options_.num_threads);
            });
          }
          const bool cache_build =
              shared == nullptr && SideIsStable(*node->children[1]);
          return MakeHashJoinOp(kind, std::move(left), std::move(right),
                                std::move(split.keys), std::move(res),
                                std::move(right_types), cache_build,
                                std::move(shared),
                                region_worker_ >= 0 ? region_worker_ : 0);
        }
      }
    }
    std::vector<DataType> right_types = LayoutTypes(*right);
    const bool cache_inner = SideIsStable(*node->children[1]);
    return MakeNLJoinOp(kind, std::move(left), std::move(right),
                        node->predicate, /*rebind_inner=*/false,
                        std::move(right_types), cache_inner);
  }

  Result<PhysicalOpPtr> BuildApply(const RelExprPtr& node) {
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr left, Build(node->children[0]));
    bool correlated = FreeVariables(*node->children[1])
                          .Intersects(node->children[0]->OutputSet());
    const bool saved_allow = allow_exchange_;
    if (correlated) allow_exchange_ = false;  // inner re-opens per row
    Result<PhysicalOpPtr> right_built = Build(node->children[1]);
    allow_exchange_ = saved_allow;
    ORQ_RETURN_IF_ERROR(right_built.status());
    PhysicalOpPtr right = std::move(*right_built);
    PhysJoinKind kind = PhysJoinKind::kInner;
    switch (node->apply_kind) {
      case ApplyKind::kCross: kind = PhysJoinKind::kInner; break;
      case ApplyKind::kOuter: kind = PhysJoinKind::kLeftOuter; break;
      case ApplyKind::kSemi: kind = PhysJoinKind::kLeftSemi; break;
      case ApplyKind::kAnti: kind = PhysJoinKind::kLeftAnti; break;
    }
    std::vector<DataType> right_types = LayoutTypes(*right);
    const bool cache_inner =
        !correlated && SideIsStable(*node->children[1]);
    return MakeNLJoinOp(kind, std::move(left), std::move(right),
                        TrueLiteral(), correlated, std::move(right_types),
                        cache_inner);
  }

  const ColumnManager& columns_;
  const PhysicalBuildOptions& options_;
  CostModel* cost_;
  /// Parallel-region build state: the worker index the subtree currently
  /// being built belongs to (-1 = serial), whether an exchange may still
  /// be placed here (false under rebinding Apply / SegmentApply inners),
  /// and whether the plan already has its one exchange.
  int region_worker_ = -1;
  bool allow_exchange_ = true;
  bool exchange_done_ = false;
  /// Shared states of the region being built: by logical node for lookup
  /// across worker instances, in creation order for the ExchangeOp.
  std::unordered_map<const RelExpr*, SharedRegionStatePtr> shared_by_node_;
  std::vector<SharedRegionStatePtr> region_shared_;
};

}  // namespace

Result<PhysicalOpPtr> BuildPhysicalPlan(const RelExprPtr& logical,
                                        const ColumnManager& columns,
                                        const PhysicalBuildOptions& options,
                                        CostModel* cost) {
  PlanBuilder builder(columns, options, cost);
  return builder.Build(logical);
}

}  // namespace orq
