#include "opt/physical.h"

#include "algebra/expr_util.h"
#include "algebra/props.h"
#include "catalog/table.h"
#include "opt/cost.h"

namespace orq {

namespace {

class PlanBuilder {
 public:
  PlanBuilder(const ColumnManager& columns,
              const PhysicalBuildOptions& options, CostModel* cost)
      : columns_(columns), options_(options), cost_(cost) {}

  /// Builds the operator for `node` and, when a cost model is attached,
  /// stamps it with the logical node's estimates (the EXPLAIN ANALYZE
  /// actual-vs-estimated hook).
  Result<PhysicalOpPtr> Build(const RelExprPtr& node) {
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr op, BuildNode(node));
    if (cost_ != nullptr) {
      const PlanEstimate& estimate = cost_->Estimate(node);
      op->set_estimates(estimate.rows, estimate.cost);
    }
    return op;
  }

 private:
  Result<PhysicalOpPtr> BuildNode(const RelExprPtr& node) {
    switch (node->kind) {
      case RelKind::kGet:
        return MakeTableScan(node->table, node->get_ordinals,
                             node->get_cols);
      case RelKind::kSelect:
        return BuildSelect(node);
      case RelKind::kProject: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child, Build(node->children[0]));
        std::vector<ColumnId> pass;
        for (ColumnId id : node->children[0]->OutputColumns()) {
          if (node->passthrough.Contains(id)) pass.push_back(id);
        }
        return MakeComputeOp(std::move(child), node->proj_items,
                             std::move(pass));
      }
      case RelKind::kJoin:
        return BuildJoin(node);
      case RelKind::kApply:
        return BuildApply(node);
      case RelKind::kGroupBy:
      case RelKind::kLocalGroupBy: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child, Build(node->children[0]));
        std::vector<ColumnId> group_cols;
        for (ColumnId id : node->children[0]->OutputColumns()) {
          if (node->group_cols.Contains(id)) group_cols.push_back(id);
        }
        return MakeHashAggregateOp(std::move(child), std::move(group_cols),
                                   node->aggs, node->scalar_agg);
      }
      case RelKind::kSegmentApply: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr input, Build(node->children[0]));
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr inner, Build(node->children[1]));
        std::vector<int> key_slots;
        const std::vector<ColumnId>& in_layout = input->layout();
        std::vector<ColumnId> layout;
        for (size_t i = 0; i < in_layout.size(); ++i) {
          if (node->segment_cols.Contains(in_layout[i])) {
            key_slots.push_back(static_cast<int>(i));
            layout.push_back(in_layout[i]);
          }
        }
        layout.insert(layout.end(), inner->layout().begin(),
                      inner->layout().end());
        return MakeSegmentApplyOp(std::move(input), std::move(inner),
                                  std::move(key_slots), std::move(layout));
      }
      case RelKind::kSegmentRef:
        return MakeSegmentScanOp(node->segment_out_cols);
      case RelKind::kMax1row: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child, Build(node->children[0]));
        return MakeMax1rowOp(std::move(child));
      }
      case RelKind::kUnionAll: {
        std::vector<PhysicalOpPtr> children;
        for (size_t i = 0; i < node->children.size(); ++i) {
          ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child,
                               BuildAligned(node->children[i],
                                            node->input_maps[i],
                                            node->out_cols));
          children.push_back(std::move(child));
        }
        return MakeUnionAllOp(std::move(children), node->out_cols);
      }
      case RelKind::kExceptAll: {
        ORQ_ASSIGN_OR_RETURN(
            PhysicalOpPtr left,
            BuildAligned(node->children[0], node->input_maps[0],
                         node->out_cols));
        ORQ_ASSIGN_OR_RETURN(
            PhysicalOpPtr right,
            BuildAligned(node->children[1], node->input_maps[1],
                         node->out_cols));
        return MakeExceptAllOp(std::move(left), std::move(right),
                               node->out_cols);
      }
      case RelKind::kSort: {
        ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr child, Build(node->children[0]));
        return MakeSortOp(std::move(child), node->sort_keys, node->limit);
      }
      case RelKind::kSingleRow:
        return MakeSingleRowOp();
    }
    return Status::Internal("unhandled logical operator");
  }

  /// Wraps a set-operation branch so its layout positionally matches the
  /// parent's output columns.
  Result<PhysicalOpPtr> BuildAligned(const RelExprPtr& child,
                                     const std::vector<ColumnId>& input_map,
                                     const std::vector<ColumnId>& out_cols) {
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr built, Build(child));
    std::vector<ProjectItem> items;
    for (size_t i = 0; i < out_cols.size(); ++i) {
      items.push_back(
          ProjectItem{out_cols[i], CRef(columns_, input_map[i])});
    }
    return MakeComputeOp(std::move(built), std::move(items), {});
  }

  Result<PhysicalOpPtr> BuildSelect(const RelExprPtr& node) {
    const RelExprPtr& child = node->children[0];
    // A constant FALSE/NULL predicate is the canonical empty relation
    // (normalize/fold.h): compile it to a zero-row operator without
    // building the pruned subtree at all.
    if (node->predicate->kind == ScalarKind::kLiteral &&
        IsFalseOrNullLiteral(node->predicate)) {
      return MakeEmptyOp(child->OutputColumns());
    }
    // Select-over-Get with a key-covering equality -> index seek. The
    // equality's other side may be a literal or a correlated parameter;
    // under a rebinding Apply this becomes index-lookup-join.
    if (options_.use_index_seek && child->kind == RelKind::kGet) {
      ColumnSet child_cols = child->OutputSet();
      std::vector<ScalarExprPtr> residual;
      std::vector<int> key_ordinals;
      std::vector<ScalarExprPtr> key_exprs;
      for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
        bool used = false;
        if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq) {
          for (int side = 0; side < 2 && !used; ++side) {
            const ScalarExprPtr& l = c->children[side];
            const ScalarExprPtr& r = c->children[1 - side];
            if (l->kind != ScalarKind::kColumnRef) continue;
            if (!child_cols.Contains(l->column)) continue;
            ColumnSet rrefs;
            CollectColumnRefs(r, &rrefs);
            if (rrefs.Intersects(child_cols)) continue;
            // Map the column id back to its table ordinal.
            for (size_t i = 0; i < child->get_cols.size(); ++i) {
              if (child->get_cols[i] == l->column) {
                key_ordinals.push_back(child->get_ordinals[i]);
                key_exprs.push_back(r);
                used = true;
                break;
              }
            }
          }
        }
        if (!used) residual.push_back(c);
      }
      if (!key_ordinals.empty()) {
        const TableIndex* index = child->table->FindIndex(key_ordinals);
        if (index != nullptr) {
          // Key expressions must line up with the index's ordinal order.
          std::vector<ScalarExprPtr> ordered(key_ordinals.size());
          for (size_t i = 0; i < index->ordinals().size(); ++i) {
            for (size_t k = 0; k < key_ordinals.size(); ++k) {
              if (key_ordinals[k] == index->ordinals()[i]) {
                ordered[i] = key_exprs[k];
              }
            }
          }
          ScalarExprPtr res =
              residual.empty() ? nullptr : MakeAnd(std::move(residual));
          return MakeIndexSeek(child->table, index, std::move(ordered),
                               child->get_ordinals, child->get_cols,
                               std::move(res));
        }
      }
    }
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr built, Build(child));
    return MakeFilterOp(std::move(built), node->predicate);
  }

  static PhysJoinKind ToPhysJoinKind(JoinKind kind) {
    switch (kind) {
      case JoinKind::kInner:
      case JoinKind::kCross:
        return PhysJoinKind::kInner;
      case JoinKind::kLeftOuter:
        return PhysJoinKind::kLeftOuter;
      case JoinKind::kLeftSemi:
        return PhysJoinKind::kLeftSemi;
      case JoinKind::kLeftAnti:
        return PhysJoinKind::kLeftAnti;
    }
    return PhysJoinKind::kInner;
  }

  /// Declared types of a build/inner side's layout, used to type the NULL
  /// padding of unmatched left-outer rows.
  std::vector<DataType> LayoutTypes(const PhysicalOp& op) const {
    std::vector<DataType> types;
    types.reserve(op.layout().size());
    for (ColumnId id : op.layout()) types.push_back(columns_.type(id));
    return types;
  }

  Result<PhysicalOpPtr> BuildJoin(const RelExprPtr& node) {
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr left, Build(node->children[0]));
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr right, Build(node->children[1]));
    PhysJoinKind kind = ToPhysJoinKind(node->join_kind);
    if (options_.use_hash_join) {
      ColumnSet left_cols = node->children[0]->OutputSet();
      ColumnSet right_cols = node->children[1]->OutputSet();
      std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys;
      std::vector<ScalarExprPtr> residual;
      for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
        bool is_key = false;
        if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq) {
          ColumnSet lrefs, rrefs;
          CollectColumnRefs(c->children[0], &lrefs);
          CollectColumnRefs(c->children[1], &rrefs);
          if (lrefs.IsSubsetOf(left_cols) && rrefs.IsSubsetOf(right_cols)) {
            keys.emplace_back(c->children[0], c->children[1]);
            is_key = true;
          } else if (lrefs.IsSubsetOf(right_cols) &&
                     rrefs.IsSubsetOf(left_cols)) {
            keys.emplace_back(c->children[1], c->children[0]);
            is_key = true;
          }
        }
        if (!is_key) residual.push_back(c);
      }
      if (!keys.empty()) {
        // Residuals on anti joins are only correct when they reject the
        // row strictly; nested loops keeps full generality there.
        bool anti_with_residual =
            kind == PhysJoinKind::kLeftAnti && !residual.empty();
        if (!anti_with_residual) {
          ScalarExprPtr res =
              residual.empty() ? nullptr : MakeAnd(std::move(residual));
          std::vector<DataType> right_types = LayoutTypes(*right);
          return MakeHashJoinOp(kind, std::move(left), std::move(right),
                                std::move(keys), std::move(res),
                                std::move(right_types));
        }
      }
    }
    std::vector<DataType> right_types = LayoutTypes(*right);
    return MakeNLJoinOp(kind, std::move(left), std::move(right),
                        node->predicate, /*rebind_inner=*/false,
                        std::move(right_types));
  }

  Result<PhysicalOpPtr> BuildApply(const RelExprPtr& node) {
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr left, Build(node->children[0]));
    ORQ_ASSIGN_OR_RETURN(PhysicalOpPtr right, Build(node->children[1]));
    bool correlated = FreeVariables(*node->children[1])
                          .Intersects(node->children[0]->OutputSet());
    PhysJoinKind kind = PhysJoinKind::kInner;
    switch (node->apply_kind) {
      case ApplyKind::kCross: kind = PhysJoinKind::kInner; break;
      case ApplyKind::kOuter: kind = PhysJoinKind::kLeftOuter; break;
      case ApplyKind::kSemi: kind = PhysJoinKind::kLeftSemi; break;
      case ApplyKind::kAnti: kind = PhysJoinKind::kLeftAnti; break;
    }
    std::vector<DataType> right_types = LayoutTypes(*right);
    return MakeNLJoinOp(kind, std::move(left), std::move(right),
                        TrueLiteral(), correlated, std::move(right_types));
  }

  const ColumnManager& columns_;
  const PhysicalBuildOptions& options_;
  CostModel* cost_;
};

}  // namespace

Result<PhysicalOpPtr> BuildPhysicalPlan(const RelExprPtr& logical,
                                        const ColumnManager& columns,
                                        const PhysicalBuildOptions& options,
                                        CostModel* cost) {
  PlanBuilder builder(columns, options, cost);
  return builder.Build(logical);
}

}  // namespace orq
