#include "opt/cost.h"

#include <algorithm>
#include <cmath>

#include "algebra/expr_util.h"
#include "algebra/props.h"
#include "catalog/table.h"

namespace orq {

namespace {

constexpr double kHashBuildFactor = 1.6;   // per build row
constexpr double kAggFactor = 1.4;         // per input row
constexpr double kSeekCost = 2.0;          // per index probe
constexpr double kReopenCost = 0.5;        // per correlated re-open

double Clamp1(double v) { return v < 1.0 ? 1.0 : v; }

}  // namespace

const PlanEstimate& CostModel::Estimate(const RelExprPtr& node) {
  auto it = cache_.find(node);
  if (it == cache_.end()) {
    it = cache_.emplace(node, Compute(node)).first;
  }
  return it->second;
}

double CostModel::EstimateDistinct(const RelExprPtr& node, ColumnId col) {
  double rows = Estimate(node).rows;
  switch (node->kind) {
    case RelKind::kGet: {
      for (size_t i = 0; i < node->get_cols.size(); ++i) {
        if (node->get_cols[i] == col) {
          const TableStats& stats = catalog_->GetStats(*node->table);
          return std::min(rows,
                          stats.columns[node->get_ordinals[i]].distinct_count);
        }
      }
      return rows;
    }
    case RelKind::kSelect:
    case RelKind::kSort:
    case RelKind::kMax1row:
      return std::min(rows, EstimateDistinct(node->children[0], col));
    case RelKind::kProject:
      if (node->passthrough.Contains(col)) {
        return std::min(rows, EstimateDistinct(node->children[0], col));
      }
      return rows;
    case RelKind::kJoin:
    case RelKind::kApply:
    case RelKind::kSegmentApply: {
      for (const RelExprPtr& child : node->children) {
        if (child->OutputSet().Contains(col)) {
          return std::min(rows, EstimateDistinct(child, col));
        }
      }
      return rows;
    }
    case RelKind::kGroupBy:
    case RelKind::kLocalGroupBy:
      if (node->group_cols.Contains(col)) {
        return std::min(rows, EstimateDistinct(node->children[0], col));
      }
      return rows;
    default:
      return rows;
  }
}

double CostModel::EstimateSelectivity(const RelExprPtr& input,
                                      const ScalarExprPtr& pred) {
  double selectivity = 1.0;
  for (const ScalarExprPtr& c : SplitConjuncts(pred)) {
    double s = 0.5;
    switch (c->kind) {
      case ScalarKind::kCompare: {
        const ScalarExprPtr& l = c->children[0];
        const ScalarExprPtr& r = c->children[1];
        bool l_col = l->kind == ScalarKind::kColumnRef;
        bool r_col = r->kind == ScalarKind::kColumnRef;
        if (c->cmp == CompareOp::kEq) {
          if (l_col && r_col) {
            double dl = EstimateDistinct(input, l->column);
            double dr = EstimateDistinct(input, r->column);
            s = 1.0 / Clamp1(std::max(dl, dr));
          } else if (l_col || r_col) {
            ColumnId col = l_col ? l->column : r->column;
            s = 1.0 / Clamp1(EstimateDistinct(input, col));
          } else {
            s = 0.1;
          }
        } else if (c->cmp == CompareOp::kNe) {
          s = 0.9;
        } else {
          s = 0.33;
        }
        break;
      }
      case ScalarKind::kLike:
        s = 0.15;
        break;
      case ScalarKind::kInList:
        s = std::min(0.9, 0.05 * (c->children.size() - 1));
        break;
      case ScalarKind::kIsNull:
        s = 0.05;
        break;
      case ScalarKind::kIsNotNull:
        s = 0.95;
        break;
      case ScalarKind::kLiteral:
        s = IsTrueLiteral(c) ? 1.0 : 0.0;
        break;
      case ScalarKind::kOr:
        s = 0.6;
        break;
      default:
        s = 0.5;
        break;
    }
    selectivity *= s;
  }
  return std::max(selectivity, 1e-7);
}

PlanEstimate CostModel::Compute(const RelExprPtr& node) {
  switch (node->kind) {
    case RelKind::kGet: {
      double rows = catalog_->GetStats(*node->table).row_count;
      return {rows, rows};
    }
    case RelKind::kSingleRow:
      return {1.0, 0.1};
    case RelKind::kSegmentRef:
      // Estimated in segment context; standalone use gets a nominal size.
      return {100.0, 100.0};
    case RelKind::kSelect: {
      PlanEstimate child = Estimate(node->children[0]);
      double sel = EstimateSelectivity(node->children[0], node->predicate);
      return {Clamp1(child.rows * sel), child.cost + child.rows * 0.2};
    }
    case RelKind::kProject: {
      PlanEstimate child = Estimate(node->children[0]);
      return {child.rows,
              child.cost + child.rows * (0.05 * (1 + node->proj_items.size()))};
    }
    case RelKind::kJoin: {
      PlanEstimate left = Estimate(node->children[0]);
      PlanEstimate right = Estimate(node->children[1]);
      // Join selectivity from equality conjuncts.
      double sel = 1.0;
      bool has_equi = false;
      for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
        if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq &&
            c->children[0]->kind == ScalarKind::kColumnRef &&
            c->children[1]->kind == ScalarKind::kColumnRef) {
          ColumnId a = c->children[0]->column;
          ColumnId b = c->children[1]->column;
          const RelExprPtr& left_child = node->children[0];
          const RelExprPtr& right_child = node->children[1];
          ColumnId lcol = left_child->OutputSet().Contains(a) ? a : b;
          ColumnId rcol = lcol == a ? b : a;
          double dl = EstimateDistinct(left_child, lcol);
          double dr = EstimateDistinct(right_child, rcol);
          sel *= 1.0 / Clamp1(std::max(dl, dr));
          has_equi = true;
        } else if (!IsTrueLiteral(c)) {
          sel *= 0.4;
        }
      }
      double cross = left.rows * right.rows;
      double out_rows = Clamp1(cross * sel);
      double cost;
      if (has_equi) {
        cost = left.cost + right.cost + left.rows +
               right.rows * kHashBuildFactor + out_rows * 0.2;
      } else {
        cost = left.cost + right.cost + left.rows * right.rows * 0.25;
      }
      switch (node->join_kind) {
        case JoinKind::kLeftSemi:
          out_rows = Clamp1(std::min(left.rows,
                                     left.rows * sel * right.rows));
          break;
        case JoinKind::kLeftAnti:
          out_rows = Clamp1(left.rows -
                            std::min(left.rows, left.rows * sel * right.rows));
          break;
        case JoinKind::kLeftOuter:
          out_rows = std::max(out_rows, left.rows);
          break;
        default:
          break;
      }
      return {out_rows, cost};
    }
    case RelKind::kApply: {
      PlanEstimate left = Estimate(node->children[0]);
      ColumnSet params = FreeVariables(*node->children[1])
                             .Intersect(node->children[0]->OutputSet());
      PlanEstimate inner =
          EstimateCorrelatedInner(node->children[1], params);
      double per_row = inner.cost + kReopenCost;
      double rows;
      switch (node->apply_kind) {
        case ApplyKind::kCross:
          rows = Clamp1(left.rows * inner.rows);
          break;
        case ApplyKind::kOuter:
          rows = Clamp1(left.rows * std::max(1.0, inner.rows));
          break;
        case ApplyKind::kSemi:
          rows = Clamp1(left.rows * 0.5);
          break;
        case ApplyKind::kAnti:
          rows = Clamp1(left.rows * 0.5);
          break;
      }
      return {rows, left.cost + left.rows * per_row};
    }
    case RelKind::kGroupBy:
    case RelKind::kLocalGroupBy: {
      PlanEstimate child = Estimate(node->children[0]);
      double groups;
      if (node->scalar_agg) {
        groups = 1.0;
      } else {
        groups = 1.0;
        for (ColumnId col : node->group_cols) {
          groups *= Clamp1(EstimateDistinct(node->children[0], col));
          if (groups > child.rows) break;
        }
        groups = std::min(groups, child.rows);
        groups = Clamp1(groups);
      }
      return {groups, child.cost + child.rows * kAggFactor};
    }
    case RelKind::kSegmentApply: {
      PlanEstimate input = Estimate(node->children[0]);
      double segments = 1.0;
      for (ColumnId col : node->segment_cols) {
        segments *= Clamp1(EstimateDistinct(node->children[0], col));
        if (segments > input.rows) break;
      }
      segments = Clamp1(std::min(segments, input.rows));
      // Inner runs once per segment over ~input.rows/segments rows. The
      // SegmentRef leaf is priced via its nominal estimate; scale the
      // inner's cost to the segment size instead.
      PlanEstimate inner = Estimate(node->children[1]);
      double segment_rows = input.rows / segments;
      double inner_scale = segment_rows / 100.0;  // nominal SegmentRef size
      double inner_cost = inner.cost * std::max(inner_scale, 0.05);
      double inner_rows = std::max(1.0, inner.rows * inner_scale);
      return {Clamp1(segments * inner_rows),
              input.cost + input.rows * kHashBuildFactor +
                  segments * (inner_cost + kReopenCost)};
    }
    case RelKind::kMax1row: {
      PlanEstimate child = Estimate(node->children[0]);
      return {std::min(child.rows, 1.0), child.cost};
    }
    case RelKind::kUnionAll: {
      PlanEstimate total{0.0, 0.0};
      for (const RelExprPtr& child : node->children) {
        PlanEstimate e = Estimate(child);
        total.rows += e.rows;
        total.cost += e.cost;
      }
      return total;
    }
    case RelKind::kExceptAll: {
      PlanEstimate left = Estimate(node->children[0]);
      PlanEstimate right = Estimate(node->children[1]);
      return {Clamp1(left.rows * 0.5),
              left.cost + right.cost + right.rows * kHashBuildFactor +
                  left.rows};
    }
    case RelKind::kSort: {
      PlanEstimate child = Estimate(node->children[0]);
      double rows = child.rows;
      if (node->limit >= 0) rows = std::min(rows, double(node->limit));
      return {Clamp1(rows),
              child.cost + child.rows * std::log2(child.rows + 2.0)};
    }
  }
  return {1.0, 1.0};
}

PlanEstimate CostModel::EstimateCorrelatedInner(const RelExprPtr& node,
                                                const ColumnSet& params) {
  // Select over Get whose equality conjuncts against parameters are covered
  // by an index: price as a probe returning the expected bucket size.
  if (node->kind == RelKind::kSelect &&
      node->children[0]->kind == RelKind::kGet) {
    const RelExprPtr& get = node->children[0];
    ColumnSet get_cols = get->OutputSet();
    std::vector<int> key_ordinals;
    double residual_sel = 1.0;
    for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
      bool is_param_eq = false;
      if (c->kind == ScalarKind::kCompare && c->cmp == CompareOp::kEq) {
        for (int side = 0; side < 2; ++side) {
          const ScalarExprPtr& l = c->children[side];
          const ScalarExprPtr& r = c->children[1 - side];
          if (l->kind != ScalarKind::kColumnRef) continue;
          if (!get_cols.Contains(l->column)) continue;
          ColumnSet rrefs;
          CollectColumnRefs(r, &rrefs);
          if (rrefs.Intersects(get_cols)) continue;
          for (size_t i = 0; i < get->get_cols.size(); ++i) {
            if (get->get_cols[i] == l->column) {
              key_ordinals.push_back(get->get_ordinals[i]);
              is_param_eq = true;
            }
          }
          if (is_param_eq) break;
        }
      }
      if (!is_param_eq) {
        residual_sel *= 0.4;
      }
    }
    if (!key_ordinals.empty() &&
        get->table->FindIndex(key_ordinals) != nullptr) {
      const TableStats& stats = catalog_->GetStats(*get->table);
      double distinct = 1.0;
      for (int ordinal : key_ordinals) {
        distinct *= Clamp1(stats.columns[ordinal].distinct_count);
      }
      double bucket = Clamp1(stats.row_count / Clamp1(distinct));
      double rows = Clamp1(bucket * residual_sel);
      return {rows, kSeekCost + bucket * 0.3};
    }
  }
  // Generic: children of the same shape recurse; other operators price as
  // their uncorrelated estimate (the inner is re-executed fully per row).
  switch (node->kind) {
    case RelKind::kSelect: {
      PlanEstimate child =
          EstimateCorrelatedInner(node->children[0], params);
      double sel = EstimateSelectivity(node->children[0], node->predicate);
      return {Clamp1(child.rows * sel), child.cost + child.rows * 0.2};
    }
    case RelKind::kProject: {
      PlanEstimate child =
          EstimateCorrelatedInner(node->children[0], params);
      return {child.rows, child.cost + child.rows * 0.1};
    }
    case RelKind::kGroupBy:
      if (node->scalar_agg) {
        PlanEstimate child =
            EstimateCorrelatedInner(node->children[0], params);
        return {1.0, child.cost + child.rows * kAggFactor};
      }
      [[fallthrough]];
    default: {
      return Estimate(node);
    }
  }
}

}  // namespace orq
