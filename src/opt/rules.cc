#include "opt/rules.h"

#include "algebra/expr_util.h"
#include "algebra/props.h"
#include "catalog/table.h"

namespace orq {

namespace {

/// Inner-join commutativity: affects which side the hash join builds on.
class JoinCommuteRule : public Rule {
 public:
  const char* name() const override { return "JoinCommute"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node, ColumnManager*,
                                CostModel*) const override {
    if (node->kind != RelKind::kJoin ||
        (node->join_kind != JoinKind::kInner &&
         node->join_kind != JoinKind::kCross)) {
      return {};
    }
    return {MakeJoin(node->join_kind, node->children[1], node->children[0],
                     node->predicate)};
  }
};

/// Re-introduction of correlated execution (paper section 4: "the simplest
/// and most common being index-lookup-join"). Joins whose right side is a
/// base-table access become Apply with the join predicate as a
/// parameterized selection — profitable when the outer is small and an
/// index serves the selection.
class CorrelatedReintroductionRule : public Rule {
 public:
  const char* name() const override { return "CorrelatedReintroduction"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node, ColumnManager*,
                                CostModel*) const override {
    std::vector<RelExprPtr> out;
    if (node->kind == RelKind::kJoin) {
      const RelExprPtr& right = node->children[1];
      if (!SimpleInner(right)) return {};
      if (IsTrueLiteral(node->predicate)) return {};
      ApplyKind kind;
      switch (node->join_kind) {
        case JoinKind::kInner: kind = ApplyKind::kCross; break;
        case JoinKind::kLeftOuter: kind = ApplyKind::kOuter; break;
        case JoinKind::kLeftSemi: kind = ApplyKind::kSemi; break;
        case JoinKind::kLeftAnti: kind = ApplyKind::kAnti; break;
        default: return {};
      }
      // Merge into an existing selection so index detection (which looks
      // for Select-over-Get) sees a single predicate.
      RelExprPtr inner =
          right->kind == RelKind::kSelect
              ? MakeSelect(right->children[0],
                           MakeAnd2(node->predicate, right->predicate))
              : MakeSelect(right, node->predicate);
      out.push_back(MakeApply(kind, node->children[0], std::move(inner)));
    }
    return out;
  }

 private:
  /// Base table, possibly filtered — the shapes IndexSeek can serve.
  static bool SimpleInner(const RelExprPtr& node) {
    if (node->kind == RelKind::kGet) return true;
    if (node->kind == RelKind::kSelect) return SimpleInner(node->children[0]);
    return false;
  }
};

/// sigma_q(G_{A,F}(Join_p(R,S))) -> sigma_q(Apply-cross(R, G_F1(sigma_p S)))
/// — the full circle back to the paper's "correlated execution" strategy of
/// section 1.1, valid when q rejects the rows an inner join would have
/// dropped (NULL/0 aggregate results of unmatched outer rows).
class CorrelatedAggregateRule : public Rule {
 public:
  const char* name() const override { return "CorrelatedAggregate"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node, ColumnManager*,
                                CostModel*) const override {
    if (node->kind != RelKind::kSelect) return {};
    const RelExprPtr& agg = node->children[0];
    if (agg->kind != RelKind::kGroupBy || agg->scalar_agg) return {};
    const RelExprPtr& join = agg->children[0];
    if (join->kind != RelKind::kJoin ||
        (join->join_kind != JoinKind::kInner &&
         join->join_kind != JoinKind::kLeftOuter)) {
      return {};
    }
    const RelExprPtr& outer = join->children[0];
    const RelExprPtr& inner = join->children[1];
    ColumnSet outer_cols = outer->OutputSet();
    ColumnSet inner_cols = inner->OutputSet();
    // Grouping must be the outer's columns with a key (per-outer-row agg).
    if (!agg->group_cols.IsSubsetOf(outer_cols)) return {};
    if (!HasKeyWithin(*outer, agg->group_cols)) return {};
    // Aggregate arguments must come from the inner side.
    ColumnSet null_cols;  // aggregate outputs that are NULL/0 when unmatched
    for (const AggItem& item : agg->aggs) {
      ColumnSet refs;
      CollectColumnRefsDeep(item.arg, &refs);
      if (!refs.IsSubsetOf(inner_cols)) return {};
      if (item.func == AggFunc::kCountStar) {
        // Over an outer join, count(*) sees the padded row (1), while the
        // correlated form sees the empty input (0): not equivalent.
        if (join->join_kind == JoinKind::kLeftOuter) return {};
      } else if (item.func != AggFunc::kCount) {
        null_cols.Add(item.output);
      }
    }
    if (join->join_kind == JoinKind::kInner) {
      // The filter must reject what correlated execution would add back:
      // unmatched outer rows, whose NULL-on-empty aggregates are NULL.
      if (!PredicateNotTrueOnNull(node->predicate, null_cols)) return {};
    }
    RelExprPtr correlated = MakeApply(
        ApplyKind::kCross, outer,
        MakeScalarGroupBy(MakeSelect(inner, join->predicate), agg->aggs));
    return {MakeSelect(std::move(correlated), node->predicate)};
  }
};

}  // namespace

std::unique_ptr<Rule> MakeJoinCommuteRule() {
  return std::make_unique<JoinCommuteRule>();
}

std::unique_ptr<Rule> MakeCorrelatedReintroductionRule() {
  return std::make_unique<CorrelatedReintroductionRule>();
}

std::vector<std::unique_ptr<Rule>> BuildRuleSet(
    const OptimizerOptions& options) {
  std::vector<std::unique_ptr<Rule>> rules;
  if (options.join_commute) {
    rules.push_back(MakeJoinCommuteRule());
  }
  if (options.reorder_groupby) {
    rules.push_back(MakeGroupByPushBelowJoinRule());
    rules.push_back(MakeGroupByPullAboveJoinRule());
    rules.push_back(MakeSemiJoinToJoinDistinctRule());
    rules.push_back(MakeSemiJoinPushBelowGroupByRule());
  }
  if (options.reorder_groupby_outerjoin) {
    rules.push_back(MakeGroupByPushBelowOuterJoinRule());
  }
  if (options.local_aggregates) {
    rules.push_back(MakeLocalAggregateSplitRule());
  }
  if (options.segment_apply) {
    rules.push_back(MakeSegmentApplyIntroRule());
    rules.push_back(MakeSegmentApplyJoinIntroRule());
    rules.push_back(MakeSegmentApplySemiJoinIntroRule());
    rules.push_back(MakeJoinPushBelowSegmentApplyRule());
  }
  if (options.correlated_reintroduction) {
    rules.push_back(MakeCorrelatedReintroductionRule());
    rules.push_back(std::make_unique<CorrelatedAggregateRule>());
  }
  return rules;
}

}  // namespace orq
