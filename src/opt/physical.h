#ifndef ORQ_OPT_PHYSICAL_H_
#define ORQ_OPT_PHYSICAL_H_

#include "algebra/rel_expr.h"
#include "common/result.h"
#include "exec/ops.h"

namespace orq {

class CostModel;

/// Implementation choices for the logical -> physical translation.
struct PhysicalBuildOptions {
  /// Use hash joins for equi-joins (otherwise nested loops).
  bool use_hash_join = true;
  /// Turn Select-over-Get with key-equality into index seeks when a
  /// matching index exists — under a correlated Apply this is the
  /// index-lookup-join of paper section 4.
  bool use_index_seek = true;
  /// When > 0, wrap the topmost parallel-eligible subtree in an Exchange
  /// over this many replicated plan instances (morsel-driven execution).
  /// Eligible subtrees are closed-form Get/Select/Project/hash-Join/
  /// GroupBy pipelines: no correlation, no segments, no DISTINCT or
  /// Max1Row aggregates. 0 compiles the classic serial plan.
  int num_threads = 0;
};

/// Translates a logical tree into an executable plan. Joins pick hash vs
/// nested-loops locally; Apply executes as rebinding nested loops.
/// (The cost-based optimizer produces the logical tree; see optimizer.h.)
///
/// When `cost` is supplied, each physical operator implementing a logical
/// node is annotated with that node's estimated rows/cost so EXPLAIN
/// ANALYZE can print actual-vs-estimated side by side. Auxiliary operators
/// the translation inserts (e.g. alignment projections) stay unannotated.
Result<PhysicalOpPtr> BuildPhysicalPlan(const RelExprPtr& logical,
                                        const ColumnManager& columns,
                                        const PhysicalBuildOptions& options,
                                        CostModel* cost = nullptr);

}  // namespace orq

#endif  // ORQ_OPT_PHYSICAL_H_
