#include "opt/rules.h"

#include "algebra/expr_util.h"
#include "algebra/props.h"

namespace orq {

namespace {

/// Shared condition checks for moving a GroupBy through a join whose
/// preserved side is S and aggregated side is R (paper section 3.1):
///   (1) every join conjunct keeps S-row multiplicities intact after the
///       push (see AdmitConjunct),
///   (2) a key of S is part of the grouping columns,
///   (3) aggregate arguments only use columns of R.
struct PushAnalysis {
  bool ok = false;
  ColumnSet pushed_grouping;  // grouping for the pushed-down GroupBy
};

/// Decides whether one join conjunct is compatible with pushing the
/// GroupBy to R, extending `grouping` as needed. Without a re-aggregation
/// on top, the rejoin must match each S row with at most one pushed group:
///   * S-only conjuncts don't constrain R groups at all;
///   * conjuncts whose R columns are all original grouping columns are
///     uniform within each group (filtering groups == filtering rows);
///   * an equality S-expr = R-column pins that R column to one value per
///     S row, so adding it to the grouping stays single-match.
/// Anything else (e.g. a range predicate on a non-grouping R column, which
/// predicate pushdown happily merges into outer-join ON conditions) would
/// multiply S rows by the number of matching groups — reject.
bool AdmitConjunct(const ScalarExprPtr& conjunct, const ColumnSet& r_cols,
                   const ColumnSet& original_grouping, ColumnSet* grouping) {
  ColumnSet refs;
  CollectColumnRefsDeep(conjunct, &refs);
  ColumnSet r_refs = refs.Intersect(r_cols);
  if (r_refs.empty()) return true;
  if (r_refs.IsSubsetOf(original_grouping)) {
    grouping->AddAll(r_refs);
    return true;
  }
  if (conjunct->kind != ScalarKind::kCompare ||
      conjunct->cmp != CompareOp::kEq) {
    return false;
  }
  for (int r_child = 0; r_child < 2; ++r_child) {
    const ScalarExprPtr& r_expr = conjunct->children[r_child];
    const ScalarExprPtr& s_expr = conjunct->children[1 - r_child];
    ColumnSet s_expr_refs;
    CollectColumnRefsDeep(s_expr, &s_expr_refs);
    if (r_expr->kind == ScalarKind::kColumnRef &&
        r_cols.Contains(r_expr->column) && !s_expr_refs.Intersects(r_cols)) {
      grouping->Add(r_expr->column);
      return true;
    }
  }
  return false;
}

PushAnalysis AnalyzePush(const RelExprPtr& group, const RelExprPtr& join,
                         const RelExprPtr& s_side, const RelExprPtr& r_side) {
  PushAnalysis out;
  ColumnSet s_cols = s_side->OutputSet();
  ColumnSet r_cols = r_side->OutputSet();
  if (!HasKeyWithin(*s_side, group->group_cols.Intersect(s_cols))) {
    return out;  // condition (2)
  }
  for (const AggItem& agg : group->aggs) {
    ColumnSet refs;
    CollectColumnRefsDeep(agg.arg, &refs);
    if (!refs.IsSubsetOf(r_cols)) return out;  // condition (3)
  }
  out.pushed_grouping = group->group_cols.Intersect(r_cols);
  for (const ScalarExprPtr& conjunct : SplitConjuncts(join->predicate)) {
    if (!AdmitConjunct(conjunct, r_cols, group->group_cols,
                       &out.pushed_grouping)) {
      return out;  // condition (1) violated
    }
  }
  out.ok = true;
  return out;
}

/// G_{A,F}(S ⋈p R)  ->  π_{A∪F}(S ⋈p G_{A',F}(R))   (eager aggregation)
class GroupByPushBelowJoinRule : public Rule {
 public:
  const char* name() const override { return "GroupByPushBelowJoin"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node, ColumnManager*,
                                CostModel*) const override {
    if (node->kind != RelKind::kGroupBy || node->scalar_agg) return {};
    const RelExprPtr& join = node->children[0];
    if (join->kind != RelKind::kJoin ||
        join->join_kind != JoinKind::kInner) {
      return {};
    }
    std::vector<RelExprPtr> out;
    for (int r_is_right = 0; r_is_right < 2; ++r_is_right) {
      const RelExprPtr& s_side = join->children[r_is_right ? 0 : 1];
      const RelExprPtr& r_side = join->children[r_is_right ? 1 : 0];
      PushAnalysis a = AnalyzePush(node, join, s_side, r_side);
      if (!a.ok) continue;
      RelExprPtr pushed =
          MakeGroupBy(r_side, a.pushed_grouping, node->aggs);
      RelExprPtr joined =
          r_is_right ? MakeJoin(JoinKind::kInner, s_side, pushed,
                                join->predicate)
                     : MakeJoin(JoinKind::kInner, pushed, s_side,
                                join->predicate);
      // Trim to the original GroupBy's output set.
      ColumnSet keep = node->group_cols;
      for (const AggItem& agg : node->aggs) keep.Add(agg.output);
      out.push_back(MakeProject(std::move(joined), {}, keep));
    }
    return out;
  }
};

/// S ⋈p (G_{A,F} R)  ->  σ_{p_agg}(G_{A∪cols(S),F}(S ⋈_{p_plain} R))
/// (lazy aggregation; conjuncts using aggregate results become a filter).
class GroupByPullAboveJoinRule : public Rule {
 public:
  const char* name() const override { return "GroupByPullAboveJoin"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node, ColumnManager*,
                                CostModel*) const override {
    if (node->kind != RelKind::kJoin || node->join_kind != JoinKind::kInner) {
      return {};
    }
    const RelExprPtr& s_side = node->children[0];
    const RelExprPtr& group = node->children[1];
    if (group->kind != RelKind::kGroupBy || group->scalar_agg) return {};
    if (!HasKeyWithin(*s_side, s_side->OutputSet())) return {};
    ColumnSet agg_outs;
    for (const AggItem& agg : group->aggs) agg_outs.Add(agg.output);
    std::vector<ScalarExprPtr> plain, on_aggs;
    for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
      ColumnSet refs;
      CollectColumnRefsDeep(c, &refs);
      (refs.Intersects(agg_outs) ? on_aggs : plain).push_back(c);
    }
    RelExprPtr joined = MakeJoin(JoinKind::kInner, s_side,
                                 group->children[0], MakeAnd(plain));
    RelExprPtr pulled = MakeGroupBy(
        std::move(joined), group->group_cols.Union(s_side->OutputSet()),
        group->aggs);
    if (on_aggs.empty()) return {pulled};
    return {MakeSelect(std::move(pulled), MakeAnd(on_aggs))};
  }
};

/// G_{A,F}(S LOJ_p R) -> π_c(S LOJ_p (G_{A',F} R))  (paper section 3.2).
/// The computing project replaces count results on unmatched rows by the
/// aggregate's value on a single all-NULL row (count(*) -> 1, count(x) ->
/// 0); NULL-on-NULL aggregates need no repair.
class GroupByPushBelowOuterJoinRule : public Rule {
 public:
  const char* name() const override { return "GroupByPushBelowOuterJoin"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node,
                                ColumnManager* columns,
                                CostModel*) const override {
    if (node->kind != RelKind::kGroupBy || node->scalar_agg) return {};
    const RelExprPtr& join = node->children[0];
    if (join->kind != RelKind::kJoin ||
        join->join_kind != JoinKind::kLeftOuter) {
      return {};
    }
    const RelExprPtr& s_side = join->children[0];
    const RelExprPtr& r_side = join->children[1];
    PushAnalysis a = AnalyzePush(node, join, s_side, r_side);
    if (!a.ok) return {};

    std::vector<AggItem> aggs = node->aggs;
    bool needs_project = false;
    for (const AggItem& agg : aggs) {
      needs_project |= !AggNullOnEmpty(agg.func);
    }
    RelExprPtr pushed = MakeGroupBy(r_side, a.pushed_grouping, aggs);
    // Detector for unmatched rows: any non-NULL output of the pushed
    // GroupBy (count outputs are never NULL for real groups; fall back to
    // an extra count(*)).
    ColumnId detector = -1;
    if (needs_project) {
      for (const AggItem& agg : aggs) {
        if (!AggNullOnEmpty(agg.func)) {
          detector = agg.output;
          break;
        }
      }
    }
    RelExprPtr joined =
        MakeJoin(JoinKind::kLeftOuter, s_side, pushed, join->predicate);
    ColumnSet keep = node->group_cols;
    for (const AggItem& agg : node->aggs) keep.Add(agg.output);
    if (!needs_project) {
      return {MakeProject(std::move(joined), {}, keep)};
    }
    // Computing project: repair count outputs on NULL-padded rows.
    std::vector<ProjectItem> items;
    ColumnSet pass = keep;
    for (const AggItem& agg : node->aggs) {
      if (AggNullOnEmpty(agg.func)) continue;
      // The original group of an unmatched S row is the single padded row:
      // count(*) = 1, count(x over R) = 0.
      int64_t constant = agg.func == AggFunc::kCountStar ? 1 : 0;
      ScalarExprPtr repaired = MakeCase(
          {MakeIsNull(CRef(*columns, detector)), LitInt(constant),
           CRef(*columns, agg.output)},
          DataType::kInt64);
      items.push_back(ProjectItem{agg.output, std::move(repaired)});
      pass.Remove(agg.output);
    }
    return {MakeProject(std::move(joined), std::move(items), pass)};
  }
};

/// G_{A,F}(S ⋈p R) -> G_{A,Fg}(S ⋈p LG_{A',Fl}(R))  (paper section 3.3):
/// split aggregates into local/global parts and aggregate R early. Unlike
/// the full pushdown this needs no key on S — LocalGroupBy's grouping can
/// be extended freely.
class LocalAggregateSplitRule : public Rule {
 public:
  const char* name() const override { return "LocalAggregateSplit"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node,
                                ColumnManager* columns,
                                CostModel*) const override {
    if (node->kind != RelKind::kGroupBy) return {};
    const RelExprPtr& join = node->children[0];
    if (join->kind != RelKind::kJoin ||
        join->join_kind != JoinKind::kInner) {
      return {};
    }
    std::vector<RelExprPtr> out;
    for (int r_is_right = 0; r_is_right < 2; ++r_is_right) {
      const RelExprPtr& s_side = join->children[r_is_right ? 0 : 1];
      const RelExprPtr& r_side = join->children[r_is_right ? 1 : 0];
      ColumnSet r_cols = r_side->OutputSet();
      // All aggregate args must be computable on R; every aggregate must
      // be splittable (Max1Row and DISTINCT are not).
      bool applicable = !node->aggs.empty();
      for (const AggItem& agg : node->aggs) {
        if (agg.func == AggFunc::kMax1Row || agg.distinct) {
          applicable = false;
          break;
        }
        ColumnSet refs;
        CollectColumnRefsDeep(agg.arg, &refs);
        if (!refs.IsSubsetOf(r_cols)) {
          applicable = false;
          break;
        }
      }
      if (!applicable) continue;
      ColumnSet pred_refs;
      CollectColumnRefsDeep(join->predicate, &pred_refs);
      ColumnSet local_grouping =
          node->group_cols.Union(pred_refs).Intersect(r_cols);
      std::vector<AggItem> local, global;
      for (const AggItem& agg : node->aggs) {
        AggFunc local_func = agg.func;
        AggFunc global_func;
        switch (agg.func) {
          case AggFunc::kSum: global_func = AggFunc::kSum; break;
          case AggFunc::kMin: global_func = AggFunc::kMin; break;
          case AggFunc::kMax: global_func = AggFunc::kMax; break;
          case AggFunc::kCount:
          case AggFunc::kCountStar:
            global_func = AggFunc::kSum;
            break;
          default:
            continue;
        }
        DataType local_type =
            agg.func == AggFunc::kCount || agg.func == AggFunc::kCountStar
                ? DataType::kInt64
                : (agg.arg != nullptr ? agg.arg->type : DataType::kInt64);
        ColumnId partial = columns->NewColumn("partial", local_type, true);
        local.push_back(AggItem{local_func, agg.arg, partial, false});
        global.push_back(AggItem{global_func, CRef(partial, local_type),
                                 agg.output, false});
      }
      RelExprPtr lg = MakeLocalGroupBy(r_side, local_grouping,
                                       std::move(local));
      RelExprPtr joined =
          r_is_right
              ? MakeJoin(JoinKind::kInner, s_side, lg, join->predicate)
              : MakeJoin(JoinKind::kInner, lg, s_side, join->predicate);
      RelExprPtr top =
          node->scalar_agg
              ? MakeScalarGroupBy(std::move(joined), std::move(global))
              : MakeGroupBy(std::move(joined), node->group_cols,
                            std::move(global));
      out.push_back(std::move(top));
    }
    return out;
  }
};

/// R ⋉p S  ->  π_{cols(R)}(G_{cols(R)}(R ⋈p S))   (paper section 2.4:
/// "for the resulting semijoin, we consider execution as join followed by
/// GroupBy (distincting)"). Requires a key on R so that grouping by R's
/// columns restores R's multiplicities; the introduced GroupBy is itself
/// subject to the reordering rules, covering [14]'s semijoin strategies.
class SemiJoinToJoinDistinctRule : public Rule {
 public:
  const char* name() const override { return "SemiJoinToJoinDistinct"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node, ColumnManager*,
                                CostModel*) const override {
    if (node->kind != RelKind::kJoin ||
        node->join_kind != JoinKind::kLeftSemi) {
      return {};
    }
    const RelExprPtr& left = node->children[0];
    ColumnSet left_cols = left->OutputSet();
    if (!HasKeyWithin(*left, left_cols)) return {};
    RelExprPtr joined = MakeJoin(JoinKind::kInner, left, node->children[1],
                                 node->predicate);
    RelExprPtr grouped = MakeGroupBy(std::move(joined), left_cols, {});
    return {MakeProject(std::move(grouped), {}, left_cols)};
  }
};

/// (G_{A,F} R) ⋉p S  ->  G_{A,F}(R ⋉p S)  — and the same for antijoin —
/// iff p does not use aggregate results and every non-S column of p is a
/// grouping column (paper section 3.1, last paragraph: semijoins act as
/// filters, so the filter/GroupBy reorder condition applies).
class SemiJoinPushBelowGroupByRule : public Rule {
 public:
  const char* name() const override { return "SemiJoinPushBelowGroupBy"; }

  std::vector<RelExprPtr> Apply(const RelExprPtr& node, ColumnManager*,
                                CostModel*) const override {
    if (node->kind != RelKind::kJoin ||
        (node->join_kind != JoinKind::kLeftSemi &&
         node->join_kind != JoinKind::kLeftAnti)) {
      return {};
    }
    const RelExprPtr& group = node->children[0];
    if (group->kind != RelKind::kGroupBy || group->scalar_agg) return {};
    const RelExprPtr& s_side = node->children[1];
    ColumnSet s_cols = s_side->OutputSet();
    ColumnSet pred_refs;
    CollectColumnRefsDeep(node->predicate, &pred_refs);
    if (!pred_refs.Minus(s_cols).IsSubsetOf(group->group_cols)) return {};
    RelExprPtr pushed = MakeJoin(node->join_kind, group->children[0],
                                 s_side, node->predicate);
    return {MakeGroupBy(std::move(pushed), group->group_cols, group->aggs)};
  }
};

}  // namespace

std::unique_ptr<Rule> MakeSemiJoinToJoinDistinctRule() {
  return std::make_unique<SemiJoinToJoinDistinctRule>();
}
std::unique_ptr<Rule> MakeSemiJoinPushBelowGroupByRule() {
  return std::make_unique<SemiJoinPushBelowGroupByRule>();
}

std::unique_ptr<Rule> MakeGroupByPushBelowJoinRule() {
  return std::make_unique<GroupByPushBelowJoinRule>();
}
std::unique_ptr<Rule> MakeGroupByPullAboveJoinRule() {
  return std::make_unique<GroupByPullAboveJoinRule>();
}
std::unique_ptr<Rule> MakeGroupByPushBelowOuterJoinRule() {
  return std::make_unique<GroupByPushBelowOuterJoinRule>();
}
std::unique_ptr<Rule> MakeLocalAggregateSplitRule() {
  return std::make_unique<LocalAggregateSplitRule>();
}

}  // namespace orq
