#ifndef ORQ_OPT_OPTIMIZER_H_
#define ORQ_OPT_OPTIMIZER_H_

#include "algebra/rel_expr.h"
#include "catalog/catalog.h"
#include "common/result.h"

namespace orq {

class TraceLog;

/// Cost-based optimization switches, one per orthogonal technique of the
/// paper's section 3 plus general exploration.
struct OptimizerOptions {
  /// Master switch; off leaves the normalized tree untouched.
  bool enable = true;
  /// GroupBy reordering around joins and filters (section 3.1).
  bool reorder_groupby = true;
  /// GroupBy pushdown below outer joins with computing project (3.2).
  bool reorder_groupby_outerjoin = true;
  /// Local/global aggregate split and LocalGroupBy pushdown (3.3).
  bool local_aggregates = true;
  /// SegmentApply introduction and join pushdown (3.4).
  bool segment_apply = true;
  /// Re-introduction of correlated execution (index-lookup-join, section 4).
  bool correlated_reintroduction = true;
  /// Inner-join commutativity (hash build-side choice).
  bool join_commute = true;
  /// Cap on greedy improvement recursion.
  int max_depth = 8;
  /// Optional rule-firing trace (obs/trace.h), not owned. Records each
  /// accepted (cost-improving) transformation with before/after costs.
  TraceLog* trace = nullptr;
};

/// Cost-guided transformation search: bottom-up greedy application of the
/// paper's rules, keeping an alternative only when the cost model ranks it
/// strictly cheaper. (A full Volcano/Cascades memo would explore the same
/// rule set exhaustively; the greedy search finds the paper's plans on all
/// evaluated queries at a fraction of the implementation and search cost —
/// see DESIGN.md.)
Result<RelExprPtr> OptimizeTree(RelExprPtr root, Catalog* catalog,
                                ColumnManager* columns,
                                const OptimizerOptions& options);

}  // namespace orq

#endif  // ORQ_OPT_OPTIMIZER_H_
