#ifndef ORQ_NORMALIZE_SUBQUERY_CLASS_H_
#define ORQ_NORMALIZE_SUBQUERY_CLASS_H_

#include <string>
#include <vector>

#include "algebra/rel_expr.h"

namespace orq {

/// The paper's three broad subquery classes (section 2.5).
enum class SubqueryClass {
  /// Removable without introducing common subexpressions (simple
  /// select/project/join/aggregate blocks).
  kClass1,
  /// Removable only by duplicating common subexpressions (identities
  /// (5)-(7): set operations or joins parameterized on both sides).
  kClass2,
  /// Exception subqueries: need scalar-specific run-time behaviour
  /// (Max1row that key analysis cannot eliminate).
  kClass3,
};

std::string SubqueryClassName(SubqueryClass c);

struct ClassifiedApply {
  const RelExpr* apply = nullptr;
  SubqueryClass cls = SubqueryClass::kClass1;
};

/// Classifies every *correlated* Apply in a post-Apply-introduction tree.
/// Uncorrelated applies are trivial joins and are not reported.
std::vector<ClassifiedApply> ClassifySubqueries(const RelExprPtr& root);

}  // namespace orq

#endif  // ORQ_NORMALIZE_SUBQUERY_CLASS_H_
