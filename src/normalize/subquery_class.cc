#include "normalize/subquery_class.h"

#include "algebra/props.h"

namespace orq {

std::string SubqueryClassName(SubqueryClass c) {
  switch (c) {
    case SubqueryClass::kClass1: return "Class1";
    case SubqueryClass::kClass2: return "Class2";
    case SubqueryClass::kClass3: return "Class3";
  }
  return "?";
}

namespace {

/// Does removing this apply need common-subexpression duplication?
/// True when a set operation, or an inner join parameterized on both
/// sides, sits on the parameterized path.
bool NeedsDuplication(const RelExpr& node, const ColumnSet& outer_cols) {
  bool param_here = FreeVariables(node).Intersects(outer_cols);
  if (!param_here) return false;
  switch (node.kind) {
    case RelKind::kUnionAll:
    case RelKind::kExceptAll:
      return true;
    case RelKind::kJoin: {
      bool left = FreeVariables(*node.children[0]).Intersects(outer_cols);
      bool right = FreeVariables(*node.children[1]).Intersects(outer_cols);
      if (left && right) return true;
      break;
    }
    default:
      break;
  }
  for (const auto& child : node.children) {
    if (NeedsDuplication(*child, outer_cols)) return true;
  }
  return false;
}

/// Does the parameterized path contain a Max1row guard that key analysis
/// cannot remove (exception subquery)?
bool HasIrreducibleMax1row(const RelExpr& node, const ColumnSet& outer_cols) {
  if (node.kind == RelKind::kMax1row &&
      FreeVariables(node).Intersects(outer_cols) &&
      !MaxOneRow(*node.children[0])) {
    return true;
  }
  for (const auto& child : node.children) {
    if (HasIrreducibleMax1row(*child, outer_cols)) return true;
  }
  return false;
}

void Walk(const RelExprPtr& node, std::vector<ClassifiedApply>* out) {
  for (const RelExprPtr& child : node->children) Walk(child, out);
  if (node->kind != RelKind::kApply) return;
  const RelExprPtr& outer = node->children[0];
  const RelExprPtr& inner = node->children[1];
  ColumnSet outer_cols = outer->OutputSet();
  if (!FreeVariables(*inner).Intersects(outer_cols)) return;  // uncorrelated
  ClassifiedApply entry;
  entry.apply = node.get();
  if (HasIrreducibleMax1row(*inner, outer_cols)) {
    entry.cls = SubqueryClass::kClass3;
  } else if (NeedsDuplication(*inner, outer_cols)) {
    entry.cls = SubqueryClass::kClass2;
  } else {
    entry.cls = SubqueryClass::kClass1;
  }
  out->push_back(entry);
}

}  // namespace

std::vector<ClassifiedApply> ClassifySubqueries(const RelExprPtr& root) {
  std::vector<ClassifiedApply> out;
  Walk(root, &out);
  return out;
}

}  // namespace orq
