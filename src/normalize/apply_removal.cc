#include "normalize/apply_removal.h"

#include <map>

#include "algebra/expr_util.h"
#include "algebra/props.h"
#include "obs/trace.h"

namespace orq {

namespace {

JoinKind ApplyToJoinKind(ApplyKind kind) {
  switch (kind) {
    case ApplyKind::kCross: return JoinKind::kInner;
    case ApplyKind::kOuter: return JoinKind::kLeftOuter;
    case ApplyKind::kSemi: return JoinKind::kLeftSemi;
    case ApplyKind::kAnti: return JoinKind::kLeftAnti;
  }
  return JoinKind::kInner;
}

/// Exactly one row, statically (scalar aggregates and friends).
bool ExactlyOneRow(const RelExpr& expr) {
  switch (expr.kind) {
    case RelKind::kGroupBy: return expr.scalar_agg;
    case RelKind::kSingleRow: return true;
    case RelKind::kProject: return ExactlyOneRow(*expr.children[0]);
    default: return false;
  }
}

class ApplyRemover {
 public:
  ApplyRemover(ColumnManager* columns, const NormalizerOptions& options)
      : columns_(columns), options_(options) {}

  Result<RelExprPtr> Rewrite(const RelExprPtr& node) {
    std::vector<RelExprPtr> children;
    bool changed = false;
    for (const RelExprPtr& child : node->children) {
      ORQ_ASSIGN_OR_RETURN(RelExprPtr rewritten, Rewrite(child));
      changed |= rewritten != child;
      children.push_back(std::move(rewritten));
    }
    RelExprPtr current =
        changed ? CloneWithChildren(*node, std::move(children)) : node;
    // Merge stacked selections so identity (2) sees one predicate.
    if (current->kind == RelKind::kSelect &&
        current->children[0]->kind == RelKind::kSelect) {
      const RelExprPtr& child = current->children[0];
      current = MakeSelect(child->children[0],
                           MakeAnd2(current->predicate, child->predicate));
    }
    if (current->kind == RelKind::kApply) {
      return RewriteApply(current);
    }
    return current;
  }

 private:
  /// Columns of `R` that `E` references as parameters.
  static ColumnSet Params(const RelExpr& outer, const RelExpr& inner) {
    return FreeVariables(inner).Intersect(outer.OutputSet());
  }

  /// Trace shim: records that `rule` rewrote the `before` subtree into the
  /// (successful) `after` subtree, then forwards the result. Every identity
  /// application funnels its return through here.
  Result<RelExprPtr> Fired(const char* rule, const RelExprPtr& before,
                           Result<RelExprPtr> after) {
    if (options_.trace != nullptr && after.ok()) {
      options_.trace->Record(TraceEvent{
          TraceEvent::Stage::kNormalize, TraceEvent::Kind::kRule, rule,
          CountRelNodes(*before), CountRelNodes(**after), -1.0, -1.0});
    }
    return after;
  }

  /// Applies one Fig. 4 identity at `apply` and recurses; returns the apply
  /// unchanged when no rule fits (it stays correlated at execution).
  Result<RelExprPtr> RewriteApply(const RelExprPtr& apply) {
    const RelExprPtr& outer = apply->children[0];
    const RelExprPtr& inner = apply->children[1];
    ApplyKind kind = apply->apply_kind;

    if (!options_.remove_correlations) return apply;

    // ---- identities (1) and (2): inner no longer parameterized ----
    if (inner->kind == RelKind::kSelect &&
        Params(*outer, *inner->children[0]).empty()) {
      return Fired("identity(2)", apply,
                   MakeJoin(ApplyToJoinKind(kind), outer,
                            inner->children[0], inner->predicate));
    }
    if (Params(*outer, *inner).empty()) {
      return Fired(
          "identity(1)", apply,
          MakeJoin(ApplyToJoinKind(kind), outer, inner, TrueLiteral()));
    }

    switch (kind) {
      case ApplyKind::kCross:
        return RewriteCross(apply);
      case ApplyKind::kOuter:
        return RewriteOuter(apply);
      case ApplyKind::kSemi:
      case ApplyKind::kAnti:
        return RewriteExistential(apply);
    }
    return apply;
  }

  Result<RelExprPtr> RewriteCross(const RelExprPtr& apply) {
    const RelExprPtr& outer = apply->children[0];
    const RelExprPtr& inner = apply->children[1];
    switch (inner->kind) {
      case RelKind::kSelect: {
        // (3): hoist the selection above the apply.
        ORQ_ASSIGN_OR_RETURN(
            RelExprPtr pushed,
            RewriteApply(
                MakeApply(ApplyKind::kCross, outer, inner->children[0])));
        return Fired("identity(3)", apply,
                     MakeSelect(std::move(pushed), inner->predicate));
      }
      case RelKind::kProject: {
        // (4): hoist the projection, forwarding outer columns.
        ORQ_ASSIGN_OR_RETURN(
            RelExprPtr pushed,
            RewriteApply(
                MakeApply(ApplyKind::kCross, outer, inner->children[0])));
        return Fired(
            "identity(4)", apply,
            MakeProject(std::move(pushed), inner->proj_items,
                        inner->passthrough.Union(outer->OutputSet())));
      }
      case RelKind::kGroupBy: {
        if (!HasKeyWithin(*outer, outer->OutputSet())) return apply;
        if (inner->scalar_agg) return RewriteIdentity9(apply);
        // (8): vector GroupBy — group additionally by all outer columns.
        ORQ_ASSIGN_OR_RETURN(
            RelExprPtr pushed,
            RewriteApply(
                MakeApply(ApplyKind::kCross, outer, inner->children[0])));
        return Fired(
            "identity(8)", apply,
            MakeGroupBy(std::move(pushed),
                        inner->group_cols.Union(outer->OutputSet()),
                        inner->aggs));
      }
      case RelKind::kJoin: {
        return RewriteCrossOverJoin(apply);
      }
      case RelKind::kUnionAll:
      case RelKind::kExceptAll: {
        // (5)/(6): distribute the apply over the set operation, duplicating
        // the outer input (Class-2 territory, section 2.5).
        if (!options_.decorrelate_class2) return apply;
        return RewriteOverSetOp(apply);
      }
      case RelKind::kSort: {
        if (inner->limit >= 0) return apply;  // correlated TOP: leave
        // Row order inside a subquery is immaterial: drop the sort.
        return Fired("drop-subquery-sort", apply,
                     RewriteApply(MakeApply(ApplyKind::kCross, outer,
                                            inner->children[0])));
      }
      case RelKind::kMax1row: {
        if (MaxOneRow(*inner->children[0])) {
          return Fired("max1row-elim", apply,
                       RewriteApply(MakeApply(ApplyKind::kCross, outer,
                                              inner->children[0])));
        }
        return apply;
      }
      default:
        return apply;
    }
  }

  /// (9): R A× (G{F1} E)  =  G{cols(R), F'} (R A^LOJ E), with count(*)
  /// rewritten to count over a non-nullable inner column.
  Result<RelExprPtr> RewriteIdentity9(const RelExprPtr& apply) {
    const RelExprPtr& outer = apply->children[0];
    const RelExprPtr& inner = apply->children[1];  // scalar GroupBy
    RelExprPtr agg_input = inner->children[0];

    std::vector<AggItem> aggs = inner->aggs;
    bool needs_count_fix = false;
    for (const AggItem& agg : aggs) {
      needs_count_fix |= agg.func == AggFunc::kCountStar;
    }
    if (needs_count_fix) {
      ColumnSet not_null = NotNullColumns(*agg_input);
      ScalarExprPtr guard;
      if (!not_null.empty()) {
        guard = CRef(*columns_, not_null.ids()[0]);
      } else {
        // Manufacture a non-nullable column (paper, footnote to (9)).
        ColumnId one = columns_->NewColumn("one", DataType::kInt64, false);
        agg_input = MakeProject(agg_input, {ProjectItem{one, LitInt(1)}},
                                agg_input->OutputSet());
        guard = CRef(one, DataType::kInt64);
      }
      for (AggItem& agg : aggs) {
        if (agg.func == AggFunc::kCountStar) {
          agg.func = AggFunc::kCount;
          agg.arg = guard;
        }
      }
    }
    ORQ_ASSIGN_OR_RETURN(
        RelExprPtr pushed,
        RewriteApply(MakeApply(ApplyKind::kOuter, outer, agg_input)));
    return Fired("identity(9)", apply,
                 MakeGroupBy(std::move(pushed), outer->OutputSet(),
                             std::move(aggs)));
  }

  /// Cross apply over an inner join: route the apply into the parameterized
  /// side(s); with both sides parameterized use identity (7) through
  /// select-over-cross-product.
  Result<RelExprPtr> RewriteCrossOverJoin(const RelExprPtr& apply) {
    const RelExprPtr& outer = apply->children[0];
    const RelExprPtr& join = apply->children[1];
    const RelExprPtr& left = join->children[0];
    const RelExprPtr& right = join->children[1];
    bool left_param = !Params(*outer, *left).empty();
    bool right_param = !Params(*outer, *right).empty();

    if (join->join_kind == JoinKind::kLeftOuter) {
      // A×(R, E1 LOJq E2) = A×(R,E1) LOJq E2 when E2 and q only reference
      // E1/E2 columns (q referencing R is fine for the inner side of the
      // LOJ? No: q on R columns changes padding per row — keep q free of R).
      ColumnSet qrefs;
      CollectColumnRefsDeep(join->predicate, &qrefs);
      if (!right_param && !qrefs.Intersects(outer->OutputSet())) {
        ORQ_ASSIGN_OR_RETURN(
            RelExprPtr pushed,
            RewriteApply(MakeApply(ApplyKind::kCross, outer, left)));
        return Fired("apply-over-outerjoin", apply,
                     MakeJoin(JoinKind::kLeftOuter, std::move(pushed), right,
                              join->predicate));
      }
      return apply;
    }
    if (join->join_kind != JoinKind::kInner &&
        join->join_kind != JoinKind::kCross) {
      return apply;  // semi/anti joins inside the inner: leave correlated
    }

    if (!right_param && !left_param) {
      // Only the predicate is parameterized.
      ORQ_ASSIGN_OR_RETURN(
          RelExprPtr pushed,
          RewriteApply(MakeApply(ApplyKind::kCross, outer, left)));
      return Fired("apply-over-join", apply,
                   MakeJoin(JoinKind::kInner, std::move(pushed), right,
                            join->predicate));
    }
    if (!right_param) {
      ORQ_ASSIGN_OR_RETURN(
          RelExprPtr pushed,
          RewriteApply(MakeApply(ApplyKind::kCross, outer, left)));
      return Fired("apply-over-join", apply,
                   MakeJoin(JoinKind::kInner, std::move(pushed), right,
                            join->predicate));
    }
    if (!left_param) {
      ORQ_ASSIGN_OR_RETURN(
          RelExprPtr pushed,
          RewriteApply(MakeApply(ApplyKind::kCross, outer, right)));
      return Fired("apply-over-join", apply,
                   MakeJoin(JoinKind::kInner, std::move(pushed), left,
                            join->predicate));
    }
    // (7): both sides parameterized — duplicate R, join on its key.
    if (!options_.decorrelate_class2) return apply;
    std::vector<ColumnSet> keys = DeriveKeys(*outer);
    if (keys.empty()) return apply;
    const ColumnSet& key = keys[0];
    std::map<ColumnId, ColumnId> clone_map;
    RelExprPtr outer_clone = CloneRelTree(outer, columns_, &clone_map);
    RelExprPtr right_remapped = RemapRelTree(right, clone_map);
    ORQ_ASSIGN_OR_RETURN(
        RelExprPtr branch1,
        RewriteApply(MakeApply(ApplyKind::kCross, outer, left)));
    ORQ_ASSIGN_OR_RETURN(
        RelExprPtr branch2,
        RewriteApply(
            MakeApply(ApplyKind::kCross, outer_clone, right_remapped)));
    std::vector<ScalarExprPtr> key_eq;
    for (ColumnId id : key) {
      key_eq.push_back(Eq(CRef(*columns_, id),
                          CRef(*columns_, clone_map.at(id))));
    }
    RelExprPtr joined =
        MakeJoin(JoinKind::kInner, std::move(branch1), std::move(branch2),
                 MakeAnd(std::move(key_eq)));
    ScalarExprPtr join_pred = join->predicate;
    if (!IsTrueLiteral(join_pred)) {
      joined = MakeSelect(std::move(joined), join_pred);
    }
    // Drop the duplicated outer columns.
    ColumnSet keep = outer->OutputSet()
                         .Union(left->OutputSet())
                         .Union(right->OutputSet());
    return Fired("identity(7)", apply,
                 MakeProject(std::move(joined), {}, keep));
  }

  /// (5)/(6): distribute over UnionAll / ExceptAll.
  Result<RelExprPtr> RewriteOverSetOp(const RelExprPtr& apply) {
    const RelExprPtr& outer = apply->children[0];
    const RelExprPtr& setop = apply->children[1];
    std::vector<ColumnId> outer_cols = outer->OutputColumns();

    std::vector<RelExprPtr> branches;
    std::vector<std::vector<ColumnId>> maps;
    for (size_t i = 0; i < setop->children.size(); ++i) {
      RelExprPtr branch_outer = outer;
      std::vector<ColumnId> branch_outer_cols = outer_cols;
      std::vector<ColumnId> child_map = setop->input_maps[i];
      RelExprPtr child = setop->children[i];
      if (i > 0) {
        std::map<ColumnId, ColumnId> clone_map;
        branch_outer = CloneRelTree(outer, columns_, &clone_map);
        child = RemapRelTree(child, clone_map);
        for (ColumnId& id : branch_outer_cols) id = clone_map.at(id);
        // Note: child's own defined ids are untouched (clone_map only maps
        // outer-defined ids), so child_map stays valid.
      }
      ORQ_ASSIGN_OR_RETURN(
          RelExprPtr branch,
          RewriteApply(MakeApply(ApplyKind::kCross, branch_outer, child)));
      branches.push_back(std::move(branch));
      std::vector<ColumnId> map = branch_outer_cols;
      map.insert(map.end(), child_map.begin(), child_map.end());
      maps.push_back(std::move(map));
    }
    std::vector<ColumnId> out_cols = outer_cols;  // reuse outer ids
    out_cols.insert(out_cols.end(), setop->out_cols.begin(),
                    setop->out_cols.end());
    if (setop->kind == RelKind::kUnionAll) {
      return Fired("identity(5)", apply,
                   MakeUnionAll(std::move(branches), std::move(out_cols),
                                std::move(maps)));
    }
    return Fired("identity(6)", apply,
                 MakeExceptAll(branches[0], branches[1],
                               std::move(out_cols), std::move(maps)));
  }

  Result<RelExprPtr> RewriteOuter(const RelExprPtr& apply) {
    const RelExprPtr& outer = apply->children[0];
    const RelExprPtr& inner = apply->children[1];
    if (ExactlyOneRow(*inner)) {
      return Fired("outer-to-cross", apply,
                   RewriteApply(MakeApply(ApplyKind::kCross, outer, inner)));
    }
    if (inner->kind == RelKind::kMax1row) {
      RelExprPtr guarded = inner->children[0];
      if (MaxOneRow(*guarded)) {
        // Key information proves at most one row: drop the guard
        // (section 2.4) and keep the outer apply.
        return Fired(
            "max1row-elim", apply,
            RewriteApply(MakeApply(ApplyKind::kOuter, outer, guarded)));
      }
      // Absorb the guard into a scalar GroupBy of Max1Row aggregates so
      // identity (9) applies; the aggregate raises the run-time error when
      // a group holds more than one row.
      return Fired("max1row-absorb", apply,
                   RewriteApply(MakeApply(ApplyKind::kCross, outer,
                                          AbsorbIntoMax1RowAgg(guarded))));
    }
    if (inner->kind == RelKind::kProject) {
      // OuterApply commutes with a strict projection (NULL-padded inner
      // columns keep computing to NULL).
      ColumnSet inner_cols = inner->children[0]->OutputSet();
      bool all_strict = true;
      for (const ProjectItem& item : inner->proj_items) {
        all_strict &= ExprNullOnNull(item.expr, inner_cols);
      }
      if (all_strict) {
        ORQ_ASSIGN_OR_RETURN(
            RelExprPtr pushed,
            RewriteApply(
                MakeApply(ApplyKind::kOuter, outer, inner->children[0])));
        return Fired(
            "outerapply-project", apply,
            MakeProject(std::move(pushed), inner->proj_items,
                        inner->passthrough.Union(outer->OutputSet())));
      }
    }
    if (MaxOneRow(*inner)) {
      return Fired("max1row-absorb", apply,
                   RewriteApply(MakeApply(ApplyKind::kCross, outer,
                                          AbsorbIntoMax1RowAgg(inner))));
    }
    return apply;
  }

  /// Wraps `rel` in a scalar GroupBy computing Max1Row over each output
  /// column; output ids are reused so consumers are unaffected.
  RelExprPtr AbsorbIntoMax1RowAgg(const RelExprPtr& rel) {
    std::vector<AggItem> aggs;
    for (ColumnId id : rel->OutputColumns()) {
      aggs.push_back(
          AggItem{AggFunc::kMax1Row, CRef(*columns_, id), id, false});
    }
    return MakeScalarGroupBy(rel, std::move(aggs));
  }

  Result<RelExprPtr> RewriteExistential(const RelExprPtr& apply) {
    const RelExprPtr& outer = apply->children[0];
    const RelExprPtr& inner = apply->children[1];
    ApplyKind kind = apply->apply_kind;
    switch (inner->kind) {
      case RelKind::kProject:
      case RelKind::kMax1row:
        // Projection / guard do not affect existence.
        return Fired(
            "exists-strip-project", apply,
            RewriteApply(MakeApply(kind, outer, inner->children[0])));
      case RelKind::kGroupBy:
        if (inner->scalar_agg) {
          // Scalar aggregation always yields one row: EXISTS is TRUE.
          return Fired("exists-const", apply,
                       kind == ApplyKind::kSemi
                           ? Result<RelExprPtr>(outer)
                           : MakeSelect(outer, LitBool(false)));
        }
        // Vector GroupBy output is empty iff its input is empty.
        return Fired(
            "exists-strip-groupby", apply,
            RewriteApply(MakeApply(kind, outer, inner->children[0])));
      case RelKind::kSort: {
        if (inner->limit == 0) {
          return Fired("exists-const", apply,
                       kind == ApplyKind::kAnti
                           ? Result<RelExprPtr>(outer)
                           : MakeSelect(outer, LitBool(false)));
        }
        return Fired(
            "exists-strip-sort", apply,
            RewriteApply(MakeApply(kind, outer, inner->children[0])));
      }
      default: {
        // General fallback (section 2.4): rewrite the boolean subquery as
        // a scalar count aggregate and compare against zero.
        ColumnId cnt = columns_->NewColumn("cnt", DataType::kInt64, false);
        RelExprPtr agg = MakeScalarGroupBy(
            inner, {AggItem{AggFunc::kCountStar, nullptr, cnt, false}});
        ORQ_ASSIGN_OR_RETURN(
            RelExprPtr pushed,
            RewriteApply(MakeApply(ApplyKind::kCross, outer, agg)));
        CompareOp op =
            kind == ApplyKind::kSemi ? CompareOp::kGt : CompareOp::kEq;
        RelExprPtr selected = MakeSelect(
            std::move(pushed),
            MakeCompare(op, CRef(cnt, DataType::kInt64), LitInt(0)));
        // Project away the count column to restore semijoin's output shape.
        return Fired(
            "exists-to-count", apply,
            MakeProject(std::move(selected), {}, outer->OutputSet()));
      }
    }
  }

  ColumnManager* columns_;
  const NormalizerOptions& options_;
};

}  // namespace

Result<RelExprPtr> RemoveApplies(RelExprPtr root, ColumnManager* columns,
                                 const NormalizerOptions& options) {
  ApplyRemover remover(columns, options);
  return remover.Rewrite(root);
}

}  // namespace orq
