#include "normalize/fold.h"

#include "algebra/expr_util.h"
#include "exec/evaluator.h"

namespace orq {

namespace {

bool IsLiteral(const ScalarExprPtr& e) {
  return e->kind == ScalarKind::kLiteral;
}

bool IsFalseLike(const ScalarExprPtr& e) { return IsFalseOrNullLiteral(e); }

}  // namespace

ScalarExprPtr FoldScalar(const ScalarExprPtr& expr) {
  if (expr == nullptr || expr->kind == ScalarKind::kLiteral ||
      expr->kind == ScalarKind::kColumnRef) {
    return expr;
  }
  // Fold children first.
  bool changed = false;
  std::vector<ScalarExprPtr> children;
  children.reserve(expr->children.size());
  for (const ScalarExprPtr& child : expr->children) {
    ScalarExprPtr folded = FoldScalar(child);
    changed |= folded != child;
    children.push_back(std::move(folded));
  }
  ScalarExprPtr current = expr;
  if (changed) {
    auto copy = std::make_shared<ScalarExpr>(*expr);
    copy->children = std::move(children);
    current = copy;
  }
  switch (current->kind) {
    case ScalarKind::kAnd: {
      std::vector<ScalarExprPtr> keep;
      for (const ScalarExprPtr& c : current->children) {
        if (IsTrueLiteral(c)) continue;          // TRUE is neutral
        if (IsLiteral(c) && IsFalseLike(c) && !c->literal.is_null()) {
          return LitBool(false);                 // FALSE dominates
        }
        keep.push_back(c);
      }
      if (keep.size() != current->children.size()) return MakeAnd(keep);
      break;
    }
    case ScalarKind::kOr: {
      std::vector<ScalarExprPtr> keep;
      for (const ScalarExprPtr& c : current->children) {
        if (IsTrueLiteral(c)) return LitBool(true);  // TRUE dominates
        if (IsLiteral(c) && !c->literal.is_null() &&
            c->literal.type() == DataType::kBool && !c->literal.bool_value()) {
          continue;                                   // FALSE is neutral
        }
        keep.push_back(c);
      }
      if (keep.size() != current->children.size()) return MakeOr(keep);
      break;
    }
    case ScalarKind::kNot:
      // NOT(NOT(x)) = x (three-valued logic preserves this).
      if (current->children[0]->kind == ScalarKind::kNot) {
        return current->children[0]->children[0];
      }
      break;
    default:
      break;
  }
  // All-literal subtrees evaluate now; evaluation errors (division by
  // zero) stay in the tree and fire at run time.
  bool all_literal = !current->children.empty() && current->rel == nullptr;
  for (const ScalarExprPtr& c : current->children) {
    all_literal &= IsLiteral(c);
  }
  if (all_literal && current->kind != ScalarKind::kCase) {
    Evaluator evaluator(current, {});
    ExecContext ctx;
    Result<Value> value = evaluator.Eval({}, &ctx);
    if (value.ok()) return Lit(*value);
  }
  return current;
}

bool IsProvablyEmpty(const RelExprPtr& node) {
  return node->kind == RelKind::kSelect &&
         node->predicate != nullptr &&
         node->predicate->kind == ScalarKind::kLiteral &&
         IsFalseOrNullLiteral(node->predicate);
}

namespace {

/// Canonical empty relation with `node`'s output columns.
RelExprPtr MakeEmpty(const RelExprPtr& node) {
  if (IsProvablyEmpty(node)) return node;
  return MakeSelect(node, LitBool(false));
}

class Folder {
 public:
  explicit Folder(ColumnManager* columns) : columns_(columns) {}

  RelExprPtr Fold(const RelExprPtr& node) {
    std::vector<RelExprPtr> children;
    bool changed = false;
    for (const RelExprPtr& child : node->children) {
      RelExprPtr folded = Fold(child);
      changed |= folded != child;
      children.push_back(std::move(folded));
    }
    RelExprPtr current =
        changed ? CloneWithChildren(*node, std::move(children)) : node;
    current = FoldPayload(current);
    return DetectEmpty(current);
  }

 private:
  RelExprPtr FoldPayload(const RelExprPtr& node) {
    bool changed = false;
    RelExprPtr current = node;
    auto ensure_copy = [&]() {
      if (!changed) {
        current = CloneWithChildren(*node, node->children);
        changed = true;
      }
    };
    if (node->predicate != nullptr) {
      ScalarExprPtr folded = FoldScalar(node->predicate);
      if (folded != node->predicate) {
        ensure_copy();
        current->predicate = folded;
      }
    }
    if (!node->proj_items.empty()) {
      std::vector<ProjectItem> items = node->proj_items;
      bool item_changed = false;
      for (ProjectItem& item : items) {
        ScalarExprPtr folded = FoldScalar(item.expr);
        item_changed |= folded != item.expr;
        item.expr = std::move(folded);
      }
      if (item_changed) {
        ensure_copy();
        current->proj_items = std::move(items);
      }
    }
    return current;
  }

  RelExprPtr DetectEmpty(const RelExprPtr& node) {
    switch (node->kind) {
      case RelKind::kSelect:
        if (IsProvablyEmpty(node->children[0])) return MakeEmpty(node);
        return node;
      case RelKind::kProject:
      case RelKind::kSort:
      case RelKind::kMax1row:
      case RelKind::kLocalGroupBy:
      case RelKind::kSegmentApply:
        if (IsProvablyEmpty(node->children[0])) return MakeEmpty(node);
        return node;
      case RelKind::kGroupBy:
        // A vector aggregate of nothing is nothing; a scalar aggregate of
        // nothing still produces its one row (section 1.1!).
        if (!node->scalar_agg && IsProvablyEmpty(node->children[0])) {
          return MakeEmpty(node);
        }
        return node;
      case RelKind::kJoin: {
        bool left_empty = IsProvablyEmpty(node->children[0]);
        bool right_empty = IsProvablyEmpty(node->children[1]);
        switch (node->join_kind) {
          case JoinKind::kInner:
          case JoinKind::kCross:
            if (left_empty || right_empty) return MakeEmpty(node);
            break;
          case JoinKind::kLeftSemi:
            if (left_empty || right_empty) return MakeEmpty(node);
            break;
          case JoinKind::kLeftAnti:
            if (left_empty) return MakeEmpty(node);
            // Nothing to reject against: the antijoin is its left input.
            if (right_empty) return node->children[0];
            break;
          case JoinKind::kLeftOuter:
            if (left_empty) return MakeEmpty(node);
            if (right_empty) {
              // Degenerates to NULL-padding the left side.
              std::vector<ProjectItem> items;
              for (ColumnId id : node->children[1]->OutputColumns()) {
                items.push_back(
                    ProjectItem{id, LitNull(columns_->type(id))});
              }
              return MakeProject(node->children[0], std::move(items),
                                 node->children[0]->OutputSet());
            }
            break;
        }
        return node;
      }
      case RelKind::kApply: {
        if (IsProvablyEmpty(node->children[0])) return MakeEmpty(node);
        return node;
      }
      case RelKind::kUnionAll: {
        std::vector<RelExprPtr> keep;
        std::vector<std::vector<ColumnId>> maps;
        for (size_t i = 0; i < node->children.size(); ++i) {
          if (IsProvablyEmpty(node->children[i])) continue;
          keep.push_back(node->children[i]);
          maps.push_back(node->input_maps[i]);
        }
        if (keep.size() == node->children.size()) return node;
        if (keep.empty()) return MakeEmpty(node);
        if (keep.size() == 1) {
          // Single surviving branch: rename its columns to the union's.
          std::vector<ProjectItem> items;
          for (size_t i = 0; i < node->out_cols.size(); ++i) {
            items.push_back(ProjectItem{
                node->out_cols[i], CRef(*columns_, maps[0][i])});
          }
          return MakeProject(keep[0], std::move(items), ColumnSet());
        }
        return MakeUnionAll(std::move(keep), node->out_cols,
                            std::move(maps));
      }
      case RelKind::kExceptAll: {
        if (IsProvablyEmpty(node->children[0])) return MakeEmpty(node);
        if (IsProvablyEmpty(node->children[1])) {
          // Nothing to subtract: the difference is its left input.
          std::vector<ProjectItem> items;
          for (size_t i = 0; i < node->out_cols.size(); ++i) {
            items.push_back(ProjectItem{
                node->out_cols[i],
                CRef(*columns_, node->input_maps[0][i])});
          }
          return MakeProject(node->children[0], std::move(items),
                             ColumnSet());
        }
        return node;
      }
      default:
        return node;
    }
  }

  ColumnManager* columns_;
};

}  // namespace

RelExprPtr FoldAndDetectEmpty(const RelExprPtr& root,
                              ColumnManager* columns) {
  Folder folder(columns);
  return folder.Fold(root);
}

}  // namespace orq
