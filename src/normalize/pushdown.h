#ifndef ORQ_NORMALIZE_PUSHDOWN_H_
#define ORQ_NORMALIZE_PUSHDOWN_H_

#include "algebra/rel_expr.h"
#include "common/result.h"

namespace orq {

/// Predicate pushdown and tree tidying:
///  * merges stacked Selects and drops TRUE predicates,
///  * pushes Selects through Projects (substituting computed columns),
///  * pushes single-side conjuncts below inner joins and the left side of
///    outer joins,
///  * moves filters below GroupBy when all referenced columns are grouping
///    columns (paper section 3.1's filter/GroupBy reorder),
///  * distributes filters into UnionAll branches,
///  * infers the equality closure across join/filter conjuncts (enables
///    SegmentApply detection on Q17-style plans),
///  * merges stacked Projects.
RelExprPtr PushdownPredicates(RelExprPtr root, ColumnManager* columns);

/// Removes columns not needed by ancestors: narrows Get nodes, drops unused
/// Project items and passthrough columns. `needed` for the root is its full
/// output (callers keep the root's output stable).
RelExprPtr PruneColumns(const RelExprPtr& root, ColumnManager* columns);

}  // namespace orq

#endif  // ORQ_NORMALIZE_PUSHDOWN_H_
