#ifndef ORQ_NORMALIZE_APPLY_REMOVAL_H_
#define ORQ_NORMALIZE_APPLY_REMOVAL_H_

#include "algebra/rel_expr.h"
#include "common/result.h"
#include "normalize/normalizer.h"

namespace orq {

/// Removes Apply operators by pushing them toward the leaves until the
/// right child is no longer parameterized on the left (paper section 2.3,
/// the identities of Fig. 4):
///
///   (1) R A⊗ E            = R ⊗true E            E unparameterized
///   (2) R A⊗ (σp E)       = R ⊗p E               E unparameterized
///   (3) R A× (σp E)       = σp (R A× E)
///   (4) R A× (πv E)       = π{v ∪ cols(R)} (R A× E)
///   (5) R A× (E1 ∪ E2)    = (R A× E1) ∪ (R A× E2)
///   (6) R A× (E1 − E2)    = (R A× E1) − (R A× E2)
///   (7) R A× (E1 × E2)    = (R A× E1) ⋈R.key (R A× E2)
///   (8) R A× (G{A,F} E)   = G{A ∪ cols(R), F} (R A× E)
///   (9) R A× (G{F1} E)    = G{cols(R), F'} (R A^LOJ E)
///
/// plus the Max1row handling of section 2.4 (elimination when key
/// information proves at most one row, absorption into a Max1Row aggregate
/// otherwise) and the existential conversions of section 2.4.
///
/// Applies whose inner cannot be normalized (e.g. correlated TOP) are left
/// in place; execution supports them directly.
Result<RelExprPtr> RemoveApplies(RelExprPtr root, ColumnManager* columns,
                                 const NormalizerOptions& options);

}  // namespace orq

#endif  // ORQ_NORMALIZE_APPLY_REMOVAL_H_
