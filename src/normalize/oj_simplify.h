#ifndef ORQ_NORMALIZE_OJ_SIMPLIFY_H_
#define ORQ_NORMALIZE_OJ_SIMPLIFY_H_

#include "algebra/rel_expr.h"

namespace orq {

/// Simplifies left outer joins to inner joins when an ancestor predicate
/// rejects NULLs on columns of the join's inner (right) side, following
/// Galindo-Legaria & Rosenthal [7], extended — as the paper describes in
/// section 1.2 — with derivation of null-rejection *through GroupBy*: a
/// filter rejecting NULL on sum(x) rejects NULL on x below the aggregate,
/// because sum yields NULL exactly when the group saw only NULLs.
RelExprPtr SimplifyOuterJoins(const RelExprPtr& root);

}  // namespace orq

#endif  // ORQ_NORMALIZE_OJ_SIMPLIFY_H_
