#include "normalize/normalizer.h"

#include "normalize/apply_removal.h"
#include "normalize/fold.h"
#include "normalize/oj_simplify.h"
#include "normalize/pushdown.h"

namespace orq {

Result<RelExprPtr> Normalize(RelExprPtr root, ColumnManager* columns,
                             const NormalizerOptions& options) {
  // The phases interact: pushdown exposes identity-(2) shapes to Apply
  // removal; Apply removal produces outerjoins for simplification, which in
  // turn unlocks further pushdown. Three rounds reach fixpoint on all the
  // plan shapes this library generates.
  RelExprPtr current = std::move(root);
  for (int round = 0; round < 3; ++round) {
    if (options.pushdown_predicates) {
      current = PushdownPredicates(current, columns);
    }
    if (options.remove_correlations) {
      ORQ_ASSIGN_OR_RETURN(current,
                           RemoveApplies(current, columns, options));
    }
    if (options.simplify_outerjoins) {
      current = SimplifyOuterJoins(current);
    }
  }
  if (options.pushdown_predicates) {
    current = PushdownPredicates(current, columns);
    // Constant folding + empty-subexpression detection (section 4), then
    // one more pushdown round to let the simplified tree settle.
    current = FoldAndDetectEmpty(current, columns);
    current = PushdownPredicates(current, columns);
    current = FoldAndDetectEmpty(current, columns);
    current = PruneColumns(current, columns);
  }
  return current;
}

}  // namespace orq
