#include "normalize/normalizer.h"

#include "algebra/expr_util.h"
#include "normalize/apply_removal.h"
#include "normalize/fold.h"
#include "normalize/oj_simplify.h"
#include "normalize/pushdown.h"
#include "obs/trace.h"

namespace orq {

namespace {

/// Records one whole-tree pass when tracing is on and the pass changed the
/// tree (pointer inequality is a cheap proxy; rewrites share unchanged
/// subtrees, so an untouched tree comes back as the same root).
void TracePhase(const NormalizerOptions& options, const char* phase,
                const RelExprPtr& before, const RelExprPtr& after) {
  if (options.trace == nullptr || before == after) return;
  options.trace->Record(TraceEvent{
      TraceEvent::Stage::kNormalize, TraceEvent::Kind::kPhase, phase,
      CountRelNodes(*before), CountRelNodes(*after), -1.0, -1.0});
}

}  // namespace

Result<RelExprPtr> Normalize(RelExprPtr root, ColumnManager* columns,
                             const NormalizerOptions& options) {
  // The phases interact: pushdown exposes identity-(2) shapes to Apply
  // removal; Apply removal produces outerjoins for simplification, which in
  // turn unlocks further pushdown. Three rounds reach fixpoint on all the
  // plan shapes this library generates.
  RelExprPtr current = std::move(root);
  RelExprPtr before;
  for (int round = 0; round < 3; ++round) {
    if (options.pushdown_predicates) {
      before = current;
      current = PushdownPredicates(current, columns);
      TracePhase(options, "pushdown", before, current);
    }
    if (options.remove_correlations) {
      before = current;
      ORQ_ASSIGN_OR_RETURN(current,
                           RemoveApplies(current, columns, options));
      TracePhase(options, "apply_removal", before, current);
    }
    if (options.simplify_outerjoins) {
      before = current;
      current = SimplifyOuterJoins(current);
      TracePhase(options, "oj_simplify", before, current);
    }
  }
  if (options.pushdown_predicates) {
    before = current;
    current = PushdownPredicates(current, columns);
    // Constant folding + empty-subexpression detection (section 4), then
    // one more pushdown round to let the simplified tree settle.
    current = FoldAndDetectEmpty(current, columns);
    TracePhase(options, "fold", before, current);
    before = current;
    current = PushdownPredicates(current, columns);
    current = FoldAndDetectEmpty(current, columns);
    current = PruneColumns(current, columns);
    TracePhase(options, "prune", before, current);
  }
  return current;
}

}  // namespace orq
