#include "normalize/normalizer.h"

#include "algebra/expr_util.h"
#include "normalize/apply_removal.h"
#include "normalize/fold.h"
#include "normalize/oj_simplify.h"
#include "normalize/pushdown.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace orq {

namespace {

/// Records one whole-tree pass when tracing is on and the pass changed the
/// tree (pointer inequality is a cheap proxy; rewrites share unchanged
/// subtrees, so an untouched tree comes back as the same root).
/// `start_nanos` is the pass entry time; the event carries the pass's wall
/// time so compile time is attributable per pass (nested identity firings
/// recorded by apply_removal are inside this window and stay untimed).
void TracePhase(const NormalizerOptions& options, const char* phase,
                const RelExprPtr& before, const RelExprPtr& after,
                int64_t start_nanos) {
  if (options.trace == nullptr || before == after) return;
  TraceEvent event{TraceEvent::Stage::kNormalize, TraceEvent::Kind::kPhase,
                   phase, CountRelNodes(*before), CountRelNodes(*after),
                   -1.0, -1.0};
  event.wall_nanos = ObsNowNanos() - start_nanos;
  options.trace->Record(std::move(event));
}

/// Pass entry stamp; skipped (zero) when tracing is off so the untraced
/// compile path takes no clock readings.
int64_t PassStart(const NormalizerOptions& options) {
  return options.trace != nullptr ? ObsNowNanos() : 0;
}

}  // namespace

Result<RelExprPtr> Normalize(RelExprPtr root, ColumnManager* columns,
                             const NormalizerOptions& options) {
  // The phases interact: pushdown exposes identity-(2) shapes to Apply
  // removal; Apply removal produces outerjoins for simplification, which in
  // turn unlocks further pushdown. Three rounds reach fixpoint on all the
  // plan shapes this library generates.
  RelExprPtr current = std::move(root);
  RelExprPtr before;
  int64_t start = 0;
  for (int round = 0; round < 3; ++round) {
    if (options.pushdown_predicates) {
      before = current;
      start = PassStart(options);
      current = PushdownPredicates(current, columns);
      TracePhase(options, "pushdown", before, current, start);
    }
    if (options.remove_correlations) {
      before = current;
      start = PassStart(options);
      ORQ_ASSIGN_OR_RETURN(current,
                           RemoveApplies(current, columns, options));
      TracePhase(options, "apply_removal", before, current, start);
    }
    if (options.simplify_outerjoins) {
      before = current;
      start = PassStart(options);
      current = SimplifyOuterJoins(current);
      TracePhase(options, "oj_simplify", before, current, start);
    }
  }
  if (options.pushdown_predicates) {
    before = current;
    start = PassStart(options);
    current = PushdownPredicates(current, columns);
    // Constant folding + empty-subexpression detection (section 4), then
    // one more pushdown round to let the simplified tree settle.
    current = FoldAndDetectEmpty(current, columns);
    TracePhase(options, "fold", before, current, start);
    before = current;
    start = PassStart(options);
    current = PushdownPredicates(current, columns);
    current = FoldAndDetectEmpty(current, columns);
    current = PruneColumns(current, columns);
    TracePhase(options, "prune", before, current, start);
  }
  return current;
}

}  // namespace orq
