#ifndef ORQ_NORMALIZE_FOLD_H_
#define ORQ_NORMALIZE_FOLD_H_

#include "algebra/rel_expr.h"

namespace orq {

/// Constant-folds a scalar expression: literal-only subtrees are evaluated
/// (run-time errors such as division by zero are left in place to fire at
/// execution), AND/OR collapse around TRUE/FALSE, double negation drops.
ScalarExprPtr FoldScalar(const ScalarExprPtr& expr);

/// True when the subtree provably produces no rows (its canonical form is
/// a Select with a constant FALSE/NULL predicate).
bool IsProvablyEmpty(const RelExprPtr& node);

/// Query-normalization simplifications of paper section 4: folds constants
/// in every predicate/projection, and detects + propagates empty
/// subexpressions (an inner join with an empty input is empty, empty
/// UNION ALL branches are dropped, an outer join with an empty inner side
/// degenerates to NULL-padding, an antijoin with an empty right side is
/// its left input, ...). Empty subtrees are canonicalized to
/// Select(FALSE)(child); the physical builder compiles that shape to a
/// zero-row operator without even opening the child.
RelExprPtr FoldAndDetectEmpty(const RelExprPtr& root,
                              ColumnManager* columns);

}  // namespace orq

#endif  // ORQ_NORMALIZE_FOLD_H_
