#include "normalize/pushdown.h"

#include <algorithm>
#include <map>

#include "algebra/expr_util.h"
#include "algebra/props.h"
#include "catalog/table.h"

namespace orq {

namespace {

/// Union-find over column ids for equality-closure inference.
class EqClasses {
 public:
  ColumnId Find(ColumnId id) {
    auto it = parent_.find(id);
    if (it == parent_.end()) {
      parent_[id] = id;
      return id;
    }
    if (it->second == id) return id;
    ColumnId root = Find(it->second);
    parent_[id] = root;
    return root;
  }
  void Union(ColumnId a, ColumnId b) { parent_[Find(a)] = Find(b); }
  const std::map<ColumnId, ColumnId>& parents() const { return parent_; }

 private:
  std::map<ColumnId, ColumnId> parent_;
};

bool IsColEqCol(const ScalarExprPtr& e, ColumnId* a, ColumnId* b) {
  if (e->kind != ScalarKind::kCompare || e->cmp != CompareOp::kEq) {
    return false;
  }
  if (e->children[0]->kind != ScalarKind::kColumnRef ||
      e->children[1]->kind != ScalarKind::kColumnRef) {
    return false;
  }
  *a = e->children[0]->column;
  *b = e->children[1]->column;
  return true;
}

/// Adds implied column equalities (transitive closure) to `conjuncts`.
void AddEqualityClosure(std::vector<ScalarExprPtr>* conjuncts,
                        ColumnManager* columns) {
  EqClasses classes;
  std::vector<std::pair<ColumnId, ColumnId>> present;
  for (const ScalarExprPtr& c : *conjuncts) {
    ColumnId a, b;
    if (IsColEqCol(c, &a, &b)) {
      classes.Union(a, b);
      present.emplace_back(std::min(a, b), std::max(a, b));
    }
  }
  if (present.empty()) return;
  // Group members per class root.
  std::map<ColumnId, std::vector<ColumnId>> members;
  for (const auto& [id, unused] : classes.parents()) {
    members[classes.Find(id)].push_back(id);
  }
  auto has_pair = [&present](ColumnId a, ColumnId b) {
    return std::find(present.begin(), present.end(),
                     std::make_pair(std::min(a, b), std::max(a, b))) !=
           present.end();
  };
  for (const auto& [root, ids] : members) {
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        if (!has_pair(ids[i], ids[j])) {
          conjuncts->push_back(Eq(CRef(*columns, ids[i]),
                                  CRef(*columns, ids[j])));
          present.emplace_back(std::min(ids[i], ids[j]),
                               std::max(ids[i], ids[j]));
        }
      }
    }
  }
}

class Pushdown {
 public:
  explicit Pushdown(ColumnManager* columns) : columns_(columns) {}

  RelExprPtr Rewrite(const RelExprPtr& node) {
    std::vector<RelExprPtr> children;
    bool changed = false;
    for (const RelExprPtr& child : node->children) {
      RelExprPtr rewritten = Rewrite(child);
      changed |= rewritten != child;
      children.push_back(std::move(rewritten));
    }
    RelExprPtr current =
        changed ? CloneWithChildren(*node, std::move(children)) : node;
    // Iterate local rules to a bounded fixpoint.
    for (int round = 0; round < 8; ++round) {
      RelExprPtr next = Step(current);
      if (next == current) break;
      current = next;
    }
    return current;
  }

 private:
  RelExprPtr Step(const RelExprPtr& node) {
    switch (node->kind) {
      case RelKind::kSelect:
        return StepSelect(node);
      case RelKind::kProject:
        return StepProject(node);
      case RelKind::kJoin:
        return StepJoin(node);
      default:
        return node;
    }
  }

  RelExprPtr StepSelect(const RelExprPtr& node) {
    const RelExprPtr& child = node->children[0];
    if (IsTrueLiteral(node->predicate)) return child;
    switch (child->kind) {
      case RelKind::kSelect: {
        return MakeSelect(child->children[0],
                          MakeAnd2(child->predicate, node->predicate));
      }
      case RelKind::kProject: {
        // sigma_p(pi(X)) = pi(sigma_p'(X)), substituting computed columns.
        std::map<ColumnId, ScalarExprPtr> defs;
        for (const ProjectItem& item : child->proj_items) {
          defs[item.output] = item.expr;
        }
        ScalarExprPtr substituted =
            SubstituteColumns(node->predicate, defs);
        return CloneWithChildren(
            *child, {MakeSelect(child->children[0], substituted)});
      }
      case RelKind::kJoin: {
        JoinKind jk = child->join_kind;
        ColumnSet left_cols = child->children[0]->OutputSet();
        ColumnSet right_cols =
            (jk == JoinKind::kLeftSemi || jk == JoinKind::kLeftAnti)
                ? ColumnSet()
                : child->children[1]->OutputSet();
        std::vector<ScalarExprPtr> stay, to_left, to_right, to_join;
        for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
          ColumnSet refs;
          CollectColumnRefsDeep(c, &refs);
          if (refs.IsSubsetOf(left_cols)) {
            to_left.push_back(c);
          } else if (jk == JoinKind::kInner &&
                     refs.IsSubsetOf(right_cols)) {
            to_right.push_back(c);
          } else if (jk == JoinKind::kInner || jk == JoinKind::kCross) {
            to_join.push_back(c);
          } else {
            stay.push_back(c);
          }
        }
        if (to_left.empty() && to_right.empty() && to_join.empty()) {
          return node;
        }
        RelExprPtr left = child->children[0];
        RelExprPtr right = child->children[1];
        if (!to_left.empty()) left = MakeSelect(left, MakeAnd(to_left));
        if (!to_right.empty()) right = MakeSelect(right, MakeAnd(to_right));
        ScalarExprPtr pred = child->predicate;
        if (!to_join.empty()) {
          to_join.push_back(pred);
          pred = MakeAnd(to_join);
        }
        JoinKind new_kind =
            (jk == JoinKind::kCross && !IsTrueLiteral(pred)) ? JoinKind::kInner
                                                             : jk;
        RelExprPtr joined = MakeJoin(new_kind, left, right, pred);
        if (stay.empty()) return joined;
        return MakeSelect(joined, MakeAnd(stay));
      }
      case RelKind::kGroupBy:
      case RelKind::kLocalGroupBy: {
        // Filter/GroupBy reorder (section 3.1): push conjuncts whose
        // columns are all grouping columns.
        if (child->scalar_agg) return node;
        std::vector<ScalarExprPtr> stay, push;
        for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
          ColumnSet refs;
          CollectColumnRefsDeep(c, &refs);
          (refs.IsSubsetOf(child->group_cols) ? push : stay).push_back(c);
        }
        if (push.empty()) return node;
        RelExprPtr pushed = CloneWithChildren(
            *child, {MakeSelect(child->children[0], MakeAnd(push))});
        if (stay.empty()) return pushed;
        return MakeSelect(pushed, MakeAnd(stay));
      }
      case RelKind::kUnionAll: {
        // Distribute the filter into every branch (remapped).
        std::vector<RelExprPtr> branches;
        for (size_t i = 0; i < child->children.size(); ++i) {
          std::map<ColumnId, ColumnId> remap;
          for (size_t k = 0; k < child->out_cols.size(); ++k) {
            remap[child->out_cols[k]] = child->input_maps[i][k];
          }
          branches.push_back(MakeSelect(
              child->children[i], RemapColumns(node->predicate, remap)));
        }
        return CloneWithChildren(*child, std::move(branches));
      }
      case RelKind::kApply: {
        // Conjuncts over outer columns only can filter before the apply.
        ColumnSet left_cols = child->children[0]->OutputSet();
        std::vector<ScalarExprPtr> stay, push;
        for (const ScalarExprPtr& c : SplitConjuncts(node->predicate)) {
          ColumnSet refs;
          CollectColumnRefsDeep(c, &refs);
          (refs.IsSubsetOf(left_cols) ? push : stay).push_back(c);
        }
        if (push.empty()) return node;
        RelExprPtr pushed = CloneWithChildren(
            *child, {MakeSelect(child->children[0], MakeAnd(push)),
                     child->children[1]});
        if (stay.empty()) return pushed;
        return MakeSelect(pushed, MakeAnd(stay));
      }
      case RelKind::kSort: {
        if (child->limit >= 0) return node;
        return CloneWithChildren(
            *child, {MakeSelect(child->children[0], node->predicate)});
      }
      default:
        return node;
    }
  }

  RelExprPtr StepProject(const RelExprPtr& node) {
    const RelExprPtr& child = node->children[0];
    // Identity project: nothing computed, everything passes.
    if (node->proj_items.empty() &&
        node->passthrough.ContainsAll(child->OutputSet())) {
      return child;
    }
    if (child->kind != RelKind::kProject) return node;
    std::map<ColumnId, ScalarExprPtr> defs;
    for (const ProjectItem& item : child->proj_items) {
      defs[item.output] = item.expr;
    }
    std::vector<ProjectItem> items;
    for (const ProjectItem& item : node->proj_items) {
      items.push_back(
          ProjectItem{item.output, SubstituteColumns(item.expr, defs)});
    }
    // Inner computed columns that the outer forwards must stay computed.
    ColumnSet pass;
    for (ColumnId id : node->passthrough) {
      auto it = defs.find(id);
      if (it != defs.end()) {
        items.push_back(ProjectItem{id, it->second});
      } else if (child->passthrough.Contains(id)) {
        pass.Add(id);
      }
    }
    return MakeProject(child->children[0], std::move(items), std::move(pass));
  }

  RelExprPtr StepJoin(const RelExprPtr& node) {
    if (node->join_kind != JoinKind::kInner) return node;
    std::vector<ScalarExprPtr> conjuncts = SplitConjuncts(node->predicate);
    size_t before = conjuncts.size();
    AddEqualityClosure(&conjuncts, columns_);
    ColumnSet left_cols = node->children[0]->OutputSet();
    ColumnSet right_cols = node->children[1]->OutputSet();
    std::vector<ScalarExprPtr> keep, to_left, to_right;
    for (const ScalarExprPtr& c : conjuncts) {
      ColumnSet refs;
      CollectColumnRefsDeep(c, &refs);
      if (refs.IsSubsetOf(left_cols)) {
        to_left.push_back(c);
      } else if (refs.IsSubsetOf(right_cols)) {
        to_right.push_back(c);
      } else {
        keep.push_back(c);
      }
    }
    if (to_left.empty() && to_right.empty() && conjuncts.size() == before) {
      return node;
    }
    RelExprPtr left = node->children[0];
    RelExprPtr right = node->children[1];
    if (!to_left.empty()) left = MakeSelect(left, MakeAnd(to_left));
    if (!to_right.empty()) right = MakeSelect(right, MakeAnd(to_right));
    return MakeJoin(JoinKind::kInner, std::move(left), std::move(right),
                    MakeAnd(std::move(keep)));
  }

  ColumnManager* columns_;
};

// ---- column pruning ----

/// Functional dependencies from base-table keys: for every Get in the
/// tree, its key columns determine its other columns.
void CollectBaseKeyFds(const RelExprPtr& node,
                       std::vector<std::pair<ColumnSet, ColumnSet>>* fds) {
  if (node->kind == RelKind::kGet) {
    ColumnSet all(node->get_cols);
    for (const std::vector<int>& unique : node->table->unique_keys()) {
      ColumnSet key;
      bool covered = true;
      for (int ordinal : unique) {
        bool found = false;
        for (size_t i = 0; i < node->get_ordinals.size(); ++i) {
          if (node->get_ordinals[i] == ordinal) {
            key.Add(node->get_cols[i]);
            found = true;
          }
        }
        if (!found) covered = false;
      }
      if (covered) fds->emplace_back(std::move(key), all);
    }
    return;
  }
  for (const RelExprPtr& child : node->children) {
    CollectBaseKeyFds(child, fds);
  }
}

class Pruner {
 public:
  explicit Pruner(ColumnManager* columns) : columns_(columns) {}

  RelExprPtr Prune(const RelExprPtr& node, const ColumnSet& needed_in) {
    ColumnSet needed = needed_in;
    switch (node->kind) {
      case RelKind::kGet: {
        // Keep needed columns plus the primary key (key derivations feed
        // the reorder rules; see DESIGN.md).
        std::vector<ColumnId> cols;
        std::vector<int> ordinals;
        ColumnSet keep = needed;
        for (const std::vector<int>& key : node->table->unique_keys()) {
          for (int ordinal : key) {
            for (size_t i = 0; i < node->get_ordinals.size(); ++i) {
              if (node->get_ordinals[i] == ordinal) {
                keep.Add(node->get_cols[i]);
              }
            }
          }
        }
        for (size_t i = 0; i < node->get_cols.size(); ++i) {
          if (keep.Contains(node->get_cols[i])) {
            cols.push_back(node->get_cols[i]);
            ordinals.push_back(node->get_ordinals[i]);
          }
        }
        if (cols.size() == node->get_cols.size()) return node;
        RelExprPtr out = CloneWithChildren(*node, {});
        out->get_cols = std::move(cols);
        out->get_ordinals = std::move(ordinals);
        return out;
      }
      case RelKind::kSelect: {
        CollectColumnRefsDeep(node->predicate, &needed);
        return CloneWithChildren(*node,
                                 {Prune(node->children[0], needed)});
      }
      case RelKind::kProject: {
        std::vector<ProjectItem> items;
        ColumnSet child_needed;
        ColumnSet pass;
        for (const ProjectItem& item : node->proj_items) {
          if (!needed.Contains(item.output)) continue;
          items.push_back(item);
          CollectColumnRefsDeep(item.expr, &child_needed);
        }
        for (ColumnId id : node->passthrough) {
          if (needed.Contains(id)) {
            pass.Add(id);
            child_needed.Add(id);
          }
        }
        RelExprPtr child = Prune(node->children[0], child_needed);
        if (items.empty() && pass.ContainsAll(child->OutputSet())) {
          return child;
        }
        return MakeProject(std::move(child), std::move(items),
                           std::move(pass));
      }
      case RelKind::kJoin: {
        CollectColumnRefsDeep(node->predicate, &needed);
        ColumnSet left_needed =
            needed.Intersect(node->children[0]->OutputSet());
        ColumnSet right_needed =
            needed.Intersect(node->children[1]->OutputSet());
        return CloneWithChildren(
            *node, {Prune(node->children[0], left_needed),
                    Prune(node->children[1], right_needed)});
      }
      case RelKind::kApply: {
        ColumnSet params = FreeVariables(*node->children[1])
                               .Intersect(node->children[0]->OutputSet());
        ColumnSet left_needed =
            needed.Intersect(node->children[0]->OutputSet()).Union(params);
        ColumnSet right_needed =
            needed.Intersect(node->children[1]->OutputSet());
        return CloneWithChildren(
            *node, {Prune(node->children[0], left_needed),
                    Prune(node->children[1], right_needed)});
      }
      case RelKind::kGroupBy:
      case RelKind::kLocalGroupBy: {
        // Grouping columns not needed above can be dropped when they are
        // functionally determined by grouping columns that remain (a base
        // table's key determines its other columns), so groups are
        // unchanged.
        ColumnSet group_cols = node->group_cols;
        if (node->kind == RelKind::kGroupBy && !node->scalar_agg) {
          std::vector<std::pair<ColumnSet, ColumnSet>> fds;
          CollectBaseKeyFds(node->children[0], &fds);
          for (const auto& [key, determined] : fds) {
            if (!key.IsSubsetOf(group_cols)) continue;
            ColumnSet droppable =
                group_cols.Intersect(determined).Minus(key).Minus(needed);
            group_cols = group_cols.Minus(droppable);
          }
        }
        std::vector<AggItem> aggs;
        ColumnSet child_needed = group_cols;
        for (const AggItem& agg : node->aggs) {
          if (!needed.Contains(agg.output)) continue;
          aggs.push_back(agg);
          CollectColumnRefsDeep(agg.arg, &child_needed);
        }
        RelExprPtr out = CloneWithChildren(
            *node, {Prune(node->children[0], child_needed)});
        out->group_cols = std::move(group_cols);
        out->aggs = std::move(aggs);
        return out;
      }
      case RelKind::kSort: {
        for (const SortKey& key : node->sort_keys) {
          CollectColumnRefsDeep(key.expr, &needed);
        }
        return CloneWithChildren(*node,
                                 {Prune(node->children[0], needed)});
      }
      case RelKind::kUnionAll: {
        std::vector<ColumnId> out_cols;
        std::vector<size_t> kept_positions;
        for (size_t i = 0; i < node->out_cols.size(); ++i) {
          if (needed.Contains(node->out_cols[i])) {
            out_cols.push_back(node->out_cols[i]);
            kept_positions.push_back(i);
          }
        }
        std::vector<RelExprPtr> children;
        std::vector<std::vector<ColumnId>> maps;
        for (size_t c = 0; c < node->children.size(); ++c) {
          std::vector<ColumnId> map;
          ColumnSet child_needed;
          for (size_t i : kept_positions) {
            map.push_back(node->input_maps[c][i]);
            child_needed.Add(node->input_maps[c][i]);
          }
          children.push_back(Prune(node->children[c], child_needed));
          maps.push_back(std::move(map));
        }
        RelExprPtr out = CloneWithChildren(*node, std::move(children));
        out->out_cols = std::move(out_cols);
        out->input_maps = std::move(maps);
        return out;
      }
      case RelKind::kExceptAll: {
        // Bag difference compares whole rows: keep everything.
        std::vector<RelExprPtr> children;
        for (size_t c = 0; c < node->children.size(); ++c) {
          ColumnSet all(node->input_maps[c]);
          children.push_back(Prune(node->children[c], all));
        }
        return CloneWithChildren(*node, std::move(children));
      }
      case RelKind::kMax1row: {
        return CloneWithChildren(
            *node, {Prune(node->children[0],
                          node->children[0]->OutputSet())});
      }
      case RelKind::kSegmentApply: {
        // Segment arity is positional: no pruning through it.
        return CloneWithChildren(
            *node,
            {Prune(node->children[0], node->children[0]->OutputSet()),
             Prune(node->children[1], node->children[1]->OutputSet())});
      }
      case RelKind::kSegmentRef:
      case RelKind::kSingleRow:
        return node;
    }
    return node;
  }

 private:
  ColumnManager* columns_;
};

}  // namespace

RelExprPtr PushdownPredicates(RelExprPtr root, ColumnManager* columns) {
  Pushdown pushdown(columns);
  return pushdown.Rewrite(root);
}

RelExprPtr PruneColumns(const RelExprPtr& root, ColumnManager* columns) {
  Pruner pruner(columns);
  return pruner.Prune(root, root->OutputSet());
}

}  // namespace orq
