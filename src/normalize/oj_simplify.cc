#include "normalize/oj_simplify.h"

#include "algebra/expr_util.h"
#include "algebra/props.h"

namespace orq {

namespace {

/// `rejected` carries columns on which some ancestor filter rejects NULLs.
RelExprPtr Simplify(const RelExprPtr& node, ColumnSet rejected) {
  switch (node->kind) {
    case RelKind::kSelect: {
      ColumnSet down = rejected.Union(NullRejectedColumns(node->predicate));
      return CloneWithChildren(*node, {Simplify(node->children[0], down)});
    }
    case RelKind::kProject: {
      // Translate rejection on computed outputs to their strict inputs.
      ColumnSet child_cols = node->children[0]->OutputSet();
      ColumnSet down = rejected.Intersect(node->passthrough);
      for (const ProjectItem& item : node->proj_items) {
        if (!rejected.Contains(item.output)) continue;
        // If the expression is NULL whenever column c is NULL, rejecting
        // NULL on the output rejects NULL on c.
        ColumnSet refs;
        CollectColumnRefs(item.expr, &refs);
        for (ColumnId c : refs) {
          if (child_cols.Contains(c) &&
              ExprNullOnNull(item.expr, ColumnSet{c})) {
            down.Add(c);
          }
        }
      }
      return CloneWithChildren(*node, {Simplify(node->children[0], down)});
    }
    case RelKind::kGroupBy:
    case RelKind::kLocalGroupBy: {
      // The paper's extension: rejection on an aggregate output transfers
      // to the aggregate's input columns for NULL-on-all-NULL aggregates
      // (sum/min/max/max1row — not count, whose result is never NULL).
      ColumnSet down = rejected.Intersect(node->group_cols);
      for (const AggItem& agg : node->aggs) {
        if (!rejected.Contains(agg.output)) continue;
        if (agg.func == AggFunc::kCount || agg.func == AggFunc::kCountStar) {
          continue;
        }
        ColumnSet refs;
        CollectColumnRefs(agg.arg, &refs);
        for (ColumnId c : refs) {
          if (ExprNullOnNull(agg.arg, ColumnSet{c})) down.Add(c);
        }
      }
      return CloneWithChildren(*node, {Simplify(node->children[0], down)});
    }
    case RelKind::kJoin: {
      ColumnSet left_cols = node->children[0]->OutputSet();
      JoinKind kind = node->join_kind;
      if (kind == JoinKind::kLeftOuter) {
        ColumnSet right_cols = node->children[1]->OutputSet();
        if (rejected.Intersects(right_cols)) {
          kind = JoinKind::kInner;  // the simplification
        }
      }
      ColumnSet pred_rejects = NullRejectedColumns(node->predicate);
      ColumnSet left_down = rejected.Intersect(left_cols);
      ColumnSet right_down;
      if (kind == JoinKind::kInner || kind == JoinKind::kCross) {
        left_down.AddAll(pred_rejects.Intersect(left_cols));
        right_down = rejected.Union(pred_rejects)
                         .Intersect(node->children[1]->OutputSet());
      } else if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti) {
        right_down = ColumnSet();  // right side not produced
      }
      RelExprPtr out = CloneWithChildren(
          *node, {Simplify(node->children[0], left_down),
                  Simplify(node->children[1], right_down)});
      out->join_kind = kind;
      return out;
    }
    case RelKind::kApply: {
      ColumnSet left_cols = node->children[0]->OutputSet();
      ApplyKind kind = node->apply_kind;
      if (kind == ApplyKind::kOuter) {
        ColumnSet right_cols = node->children[1]->OutputSet();
        if (rejected.Intersects(right_cols)) kind = ApplyKind::kCross;
      }
      RelExprPtr out = CloneWithChildren(
          *node, {Simplify(node->children[0], rejected.Intersect(left_cols)),
                  Simplify(node->children[1], ColumnSet())});
      out->apply_kind = kind;
      return out;
    }
    case RelKind::kSort:
    case RelKind::kMax1row:
      return CloneWithChildren(*node,
                               {Simplify(node->children[0], rejected)});
    case RelKind::kUnionAll: {
      std::vector<RelExprPtr> children;
      for (size_t i = 0; i < node->children.size(); ++i) {
        ColumnSet down;
        for (size_t k = 0; k < node->out_cols.size(); ++k) {
          if (rejected.Contains(node->out_cols[k])) {
            down.Add(node->input_maps[i][k]);
          }
        }
        children.push_back(Simplify(node->children[i], down));
      }
      return CloneWithChildren(*node, std::move(children));
    }
    default: {
      std::vector<RelExprPtr> children;
      for (const RelExprPtr& child : node->children) {
        children.push_back(Simplify(child, ColumnSet()));
      }
      return CloneWithChildren(*node, std::move(children));
    }
  }
}

}  // namespace

RelExprPtr SimplifyOuterJoins(const RelExprPtr& root) {
  return Simplify(root, ColumnSet());
}

}  // namespace orq
