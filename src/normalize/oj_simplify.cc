#include "normalize/oj_simplify.h"

#include "algebra/expr_util.h"
#include "algebra/props.h"

namespace orq {

namespace {

/// Null-rejection evidence carried down the tree.
///
/// `plain` columns are rejected directly by an ancestor predicate (or via
/// strict projections): any NULL in them eliminates the row, so an outer
/// join producing them can always be simplified.
///
/// `via_agg` columns are rejected through an ancestor GroupBy's aggregate
/// arguments (HAVING sum(x) > 0 style). That derivation is sound only
/// when no group can mix NULL-padded and real rows of the outer join being
/// simplified — which holds iff the deriving GroupBy's grouping columns
/// (`guard`) contain a key of the join's preserved side. With scalar
/// aggregation or non-key grouping, a padded row shares its group with
/// real rows, the NULL-skipping aggregate never sees its NULLs, and
/// simplification would wrongly drop the preserved row from other
/// aggregates of the same group.
struct Rejection {
  ColumnSet plain;
  ColumnSet via_agg;
  ColumnSet guard;  // grouping columns of the via_agg derivation

  bool Intersects(const ColumnSet& cols) const {
    return plain.Intersects(cols) || via_agg.Intersects(cols);
  }
};

RelExprPtr Simplify(const RelExprPtr& node, Rejection rejected) {
  switch (node->kind) {
    case RelKind::kSelect: {
      Rejection down = rejected;
      down.plain.AddAll(NullRejectedColumns(node->predicate));
      return CloneWithChildren(*node, {Simplify(node->children[0], down)});
    }
    case RelKind::kProject: {
      // Translate rejection on computed outputs to their strict inputs.
      ColumnSet child_cols = node->children[0]->OutputSet();
      Rejection down;
      down.plain = rejected.plain.Intersect(node->passthrough);
      down.via_agg = rejected.via_agg.Intersect(node->passthrough);
      down.guard = rejected.guard;
      for (const ProjectItem& item : node->proj_items) {
        bool plain_out = rejected.plain.Contains(item.output);
        bool agg_out = rejected.via_agg.Contains(item.output);
        if (!plain_out && !agg_out) continue;
        // If the expression is NULL whenever column c is NULL, rejecting
        // NULL on the output rejects NULL on c.
        ColumnSet refs;
        CollectColumnRefs(item.expr, &refs);
        for (ColumnId c : refs) {
          if (child_cols.Contains(c) &&
              ExprNullOnNull(item.expr, ColumnSet{c})) {
            (plain_out ? down.plain : down.via_agg).Add(c);
          }
        }
      }
      return CloneWithChildren(*node, {Simplify(node->children[0], down)});
    }
    case RelKind::kGroupBy:
    case RelKind::kLocalGroupBy: {
      Rejection down;
      // Rejection on grouping columns stays valid: a padded row has NULL
      // group keys, so it can only live in a group the predicate rejects
      // wholesale.
      down.plain = rejected.plain.Intersect(node->group_cols);
      // The paper's extension: rejection on an aggregate output transfers
      // to the aggregate's input columns for NULL-on-all-NULL aggregates
      // (sum/min/max/max1row — not count, whose result is never NULL),
      // guarded by this GroupBy's grouping columns. Only plain rejection
      // is re-derived; via_agg evidence from an outer GroupBy would need
      // its own (stacked) guard, so it conservatively stops here.
      for (const AggItem& agg : node->aggs) {
        if (!rejected.plain.Contains(agg.output)) continue;
        if (agg.func == AggFunc::kCount || agg.func == AggFunc::kCountStar) {
          continue;
        }
        ColumnSet refs;
        CollectColumnRefs(agg.arg, &refs);
        for (ColumnId c : refs) {
          if (ExprNullOnNull(agg.arg, ColumnSet{c})) down.via_agg.Add(c);
        }
      }
      down.guard = node->group_cols;
      return CloneWithChildren(*node, {Simplify(node->children[0], down)});
    }
    case RelKind::kJoin: {
      const RelExprPtr& left = node->children[0];
      ColumnSet left_cols = left->OutputSet();
      JoinKind kind = node->join_kind;
      if (kind == JoinKind::kLeftOuter) {
        ColumnSet right_cols = node->children[1]->OutputSet();
        bool convert = rejected.plain.Intersects(right_cols);
        if (!convert && rejected.via_agg.Intersects(right_cols)) {
          // Aggregate-derived rejection: every group of the deriving
          // GroupBy must hold at most one preserved-side row's output.
          convert = HasKeyWithin(*left, rejected.guard.Intersect(left_cols));
        }
        if (convert) kind = JoinKind::kInner;  // the simplification
      }
      ColumnSet pred_rejects = NullRejectedColumns(node->predicate);
      Rejection left_down;
      left_down.plain = rejected.plain.Intersect(left_cols);
      left_down.via_agg = rejected.via_agg.Intersect(left_cols);
      left_down.guard = rejected.guard;
      Rejection right_down;
      if (kind == JoinKind::kInner || kind == JoinKind::kCross) {
        left_down.plain.AddAll(pred_rejects.Intersect(left_cols));
        ColumnSet right_cols = node->children[1]->OutputSet();
        right_down.plain =
            rejected.plain.Union(pred_rejects).Intersect(right_cols);
        right_down.via_agg = rejected.via_agg.Intersect(right_cols);
        right_down.guard = rejected.guard;
      }
      // kLeftSemi/kLeftAnti: right side is not produced; kLeftOuter that
      // stayed outer: rejection does not pass into the null-supplying side.
      RelExprPtr out =
          CloneWithChildren(*node, {Simplify(left, left_down),
                                    Simplify(node->children[1], right_down)});
      out->join_kind = kind;
      return out;
    }
    case RelKind::kApply: {
      const RelExprPtr& left = node->children[0];
      ColumnSet left_cols = left->OutputSet();
      ApplyKind kind = node->apply_kind;
      if (kind == ApplyKind::kOuter) {
        ColumnSet right_cols = node->children[1]->OutputSet();
        bool convert = rejected.plain.Intersects(right_cols);
        if (!convert && rejected.via_agg.Intersects(right_cols)) {
          convert = HasKeyWithin(*left, rejected.guard.Intersect(left_cols));
        }
        if (convert) kind = ApplyKind::kCross;
      }
      Rejection left_down;
      left_down.plain = rejected.plain.Intersect(left_cols);
      left_down.via_agg = rejected.via_agg.Intersect(left_cols);
      left_down.guard = rejected.guard;
      RelExprPtr out = CloneWithChildren(
          *node, {Simplify(left, left_down),
                  Simplify(node->children[1], Rejection{})});
      out->apply_kind = kind;
      return out;
    }
    case RelKind::kSort:
    case RelKind::kMax1row:
      return CloneWithChildren(*node,
                               {Simplify(node->children[0], rejected)});
    case RelKind::kUnionAll: {
      std::vector<RelExprPtr> children;
      for (size_t i = 0; i < node->children.size(); ++i) {
        // Only plain rejection maps through: a via_agg guard names columns
        // that do not exist inside the branch, so its key test could never
        // be re-validated below the union.
        Rejection down;
        for (size_t k = 0; k < node->out_cols.size(); ++k) {
          if (rejected.plain.Contains(node->out_cols[k])) {
            down.plain.Add(node->input_maps[i][k]);
          }
        }
        children.push_back(Simplify(node->children[i], down));
      }
      return CloneWithChildren(*node, std::move(children));
    }
    default: {
      std::vector<RelExprPtr> children;
      for (const RelExprPtr& child : node->children) {
        children.push_back(Simplify(child, Rejection{}));
      }
      return CloneWithChildren(*node, std::move(children));
    }
  }
}

}  // namespace

RelExprPtr SimplifyOuterJoins(const RelExprPtr& root) {
  return Simplify(root, Rejection{});
}

}  // namespace orq
