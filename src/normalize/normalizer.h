#ifndef ORQ_NORMALIZE_NORMALIZER_H_
#define ORQ_NORMALIZE_NORMALIZER_H_

#include "algebra/rel_expr.h"
#include "common/result.h"

namespace orq {

class TraceLog;

/// Knobs for query normalization. Each switch corresponds to one of the
/// paper's orthogonal primitives so benchmarks can ablate them.
struct NormalizerOptions {
  /// Rewrite Apply into standard operators (paper section 2.3, Fig. 4).
  bool remove_correlations = true;
  /// Allow identities (5)-(7), which duplicate common subexpressions
  /// (Class-2 subqueries, section 2.5). The paper's system leaves these
  /// correlated during normalization; we remove them by default because our
  /// engine has no spool, and expose the flag for fidelity experiments.
  bool decorrelate_class2 = true;
  /// Simplify outerjoin to join under null-rejecting predicates, deriving
  /// null-rejection through GroupBy (section 1.2).
  bool simplify_outerjoins = true;
  /// Push selections/predicates down and infer the equality closure.
  bool pushdown_predicates = true;
  /// Optional rule-firing trace (obs/trace.h), not owned. Null disables
  /// tracing; EXPLAIN ANALYZE points it at the query's TraceLog.
  TraceLog* trace = nullptr;
};

/// Runs the normalization pipeline: Apply removal to fixpoint, outerjoin
/// simplification, predicate pushdown/merging, Max1row elimination. The
/// input must already be free of embedded scalar subqueries (run
/// IntroduceApplies first).
Result<RelExprPtr> Normalize(RelExprPtr root, ColumnManager* columns,
                             const NormalizerOptions& options);

}  // namespace orq

#endif  // ORQ_NORMALIZE_NORMALIZER_H_
