#ifndef ORQ_EXEC_CANCEL_H_
#define ORQ_EXEC_CANCEL_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "obs/stats.h"

namespace orq {

/// Cooperative cancellation handle for one query execution. The submitting
/// side (a server session, a CLI with --timeout-ms, a test) owns the token
/// and may cancel it or arm a deadline from any thread; the executing side
/// polls Check() from the PhysicalOp Open/Next/NextBatch shells — the
/// single accounting sites every operator pull goes through — so a firing
/// token unwinds the whole plan as an error within roughly one batch of
/// work, releasing spools and hash arenas through the normal Close/
/// destructor path.
///
/// All state is atomic: one token may be observed by every worker of a
/// parallel gang while the session thread cancels it.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation (idempotent, thread-safe).
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute deadline on the ObsNowNanos timeline; <= 0 disarms.
  void SetDeadlineNanos(int64_t deadline_nanos) {
    deadline_nanos_.store(deadline_nanos, std::memory_order_relaxed);
  }

  /// Arms a deadline `timeout_ms` from now; <= 0 disarms.
  void SetTimeoutMs(int64_t timeout_ms) {
    SetDeadlineNanos(timeout_ms > 0 ? ObsNowNanos() + timeout_ms * 1000000
                                    : 0);
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// OK while the query may continue; Cancelled / DeadlineExceeded once it
  /// must stop. Reads the clock only when a deadline is armed. A deadline
  /// that fires latches the token, so later checks (and other workers)
  /// agree on DeadlineExceeded without re-reading the clock.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return deadline_hit_.load(std::memory_order_relaxed)
                 ? Status::DeadlineExceeded("query deadline exceeded")
                 : Status::Cancelled("query cancelled");
    }
    const int64_t deadline = deadline_nanos_.load(std::memory_order_relaxed);
    if (deadline > 0 && ObsNowNanos() >= deadline) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      cancelled_.store(true, std::memory_order_relaxed);
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  std::atomic<int64_t> deadline_nanos_{0};
};

}  // namespace orq

#endif  // ORQ_EXEC_CANCEL_H_
