#ifndef ORQ_EXEC_EVALUATOR_H_
#define ORQ_EXEC_EVALUATOR_H_

#include <vector>

#include "algebra/scalar_expr.h"
#include "common/result.h"
#include "exec/exec.h"

namespace orq {

/// Binary arithmetic with SQL semantics: NULL propagation, date ± days and
/// date − date, int64 arithmetic with division-by-zero errors, and
/// int64→double promotion. Shared by the row evaluator and the columnar
/// kernels' boxed fallback path so the two cannot drift.
Result<Value> EvalArith(ArithOp op, const Value& l, const Value& r,
                        DataType out_type);

/// Maps a three-way comparison result to the boolean a CompareOp demands.
Value CompareResult(CompareOp op, int cmp);

/// Compiles a scalar expression against an input layout and evaluates it
/// with SQL three-valued-logic semantics. Column references not found in
/// the layout resolve through ExecContext::params (correlated parameters).
class Evaluator {
 public:
  Evaluator() = default;
  Evaluator(ScalarExprPtr expr, const std::vector<ColumnId>& layout);

  /// Evaluates against `row` (positionally matching the layout).
  Result<Value> Eval(const Row& row, ExecContext* ctx) const;

  /// Convenience: evaluates as a predicate; NULL counts as not-TRUE.
  Result<bool> EvalPredicate(const Row& row, ExecContext* ctx) const;

  const ScalarExprPtr& expr() const { return expr_; }

 private:
  Result<Value> EvalNode(const ScalarExpr& node, const Row& row,
                         ExecContext* ctx) const;

  ScalarExprPtr expr_;
  std::unordered_map<ColumnId, int> slots_;
};

}  // namespace orq

#endif  // ORQ_EXEC_EVALUATOR_H_
