#include "exec/packed_key.h"

#include "exec/column_batch.h"

namespace orq {

bool PackedKeyEq::operator()(const PackedKey& a, const ColumnKeyRef& b) const {
  if (a.hash != b.hash) return false;
  if (a.values.size() != b.num_keys) return false;
  for (size_t k = 0; k < b.num_keys; ++k) {
    if (!GroupEqualsRefs(LoadValue(a.values[k]),
                         LoadElem(b.batch->col(b.slots[k]), b.row))) {
      return false;
    }
  }
  return true;
}

}  // namespace orq
