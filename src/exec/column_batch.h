#ifndef ORQ_EXEC_COLUMN_BATCH_H_
#define ORQ_EXEC_COLUMN_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"

namespace orq {

/// Physical representation of one column inside a ColumnBatch.
///
///   kInts     — bool / int64 / date, one int64 per row.
///   kDoubles  — double, one double per row.
///   kStrings  — offset + arena: offsets[i]..offsets[i+1] into `chars`
///               (n + 1 offsets, monotone; absolute, so a view may start
///               at any row of a larger arena).
///   kValues   — boxed fallback: one Value per row. Used for columns with
///               mixed tags (a CASE that yields int64 on one branch and
///               double on another) and for per-row-evaluated results.
enum class ColumnRep : uint8_t { kInts, kDoubles, kStrings, kValues };

/// Storage encoding of a ColumnVec view, orthogonal to ColumnRep (which
/// stays the *logical* representation).
///
///   kNone — payload arrays hold one entry per row (the plain layout).
///   kDict — `codes()` holds one uint32 per row indexing the payload
///           arrays, which hold one entry per distinct value; the null
///           mask stays per-row. `dict_hashes()` pre-computes Value::Hash
///           per entry.
///   kRle  — payload arrays and the null mask hold one entry per run;
///           absolute cumulative `run_ends` (minus the view's row base)
///           map rows to runs.
///
/// The typed accessors (IntAt/DoubleAt/StrAt/IsNull/GetValue) decode
/// transparently, so every generic consumer is encoding-correct untouched.
/// Kernels must check is_plain() before indexing the raw arrays per row,
/// and may instead exploit the code/run structure directly.
enum class ColumnEnc : uint8_t { kNone, kDict, kRle };

/// The typed representation a column of `type` uses.
inline ColumnRep RepForType(DataType type) {
  switch (type) {
    case DataType::kDouble: return ColumnRep::kDoubles;
    case DataType::kString: return ColumnRep::kStrings;
    default: return ColumnRep::kInts;
  }
}

/// One column of a ColumnBatch: a typed array view plus an optional null
/// mask (one byte per row, non-zero = NULL; no mask means no NULLs).
///
/// A ColumnVec is either a *view* over storage someone else owns (a table
/// column chunk, another batch's column) or *owned*, backed by the own_*
/// members. Views are how scans and pass-through projection stay
/// zero-copy. All indices are physical row positions in [0, size()); the
/// batch-level selection vector decides which positions are live.
///
/// Owned columns are built one of two ways:
///   * sequentially — StartBuild() then Append*() per row, Seal() last.
///     Used by the row→column transpose adapter and join output gather.
///     AppendValue() degrades the column to kValues on the first value
///     whose tag does not match the declared type, preserving exact tags.
///   * scattered — PrepareScatter() sizes typed storage up front (sealed
///     immediately) and kernels write through MutableInts()/
///     MutableDoubles()/MutableNulls() at selected positions only.
///     Unselected slots hold garbage; they are unreachable through the
///     selection vector.
class ColumnVec {
 public:
  DataType type() const { return type_; }
  ColumnRep rep() const { return rep_; }
  uint32_t size() const { return size_; }

  bool IsNull(uint32_t i) const {
    if (rep_ == ColumnRep::kValues) return vals_[i].is_null();
    if (enc_ == ColumnEnc::kRle) {
      return run_nulls_ != nullptr && run_nulls_[RunOf(i)] != 0;
    }
    return nulls_ != nullptr && nulls_[i] != 0;
  }
  bool has_nulls() const {
    return nulls_ != nullptr || run_nulls_ != nullptr;
  }
  /// Per-row null mask — valid for plain and dict columns only (RLE keeps
  /// nulls per run; use IsNull or run_nulls there).
  const uint8_t* nulls() const { return nulls_; }

  int64_t IntAt(uint32_t i) const {
    return ints_[enc_ == ColumnEnc::kNone ? i : PhysIndex(i)];
  }
  double DoubleAt(uint32_t i) const {
    return doubles_[enc_ == ColumnEnc::kNone ? i : PhysIndex(i)];
  }
  std::string_view StrAt(uint32_t i) const {
    const uint32_t p = enc_ == ColumnEnc::kNone ? i : PhysIndex(i);
    return std::string_view(chars_ + offsets_[p], offsets_[p + 1] - offsets_[p]);
  }
  const Value& ValAt(uint32_t i) const { return vals_[i]; }

  const int64_t* ints() const { return ints_; }
  const double* doubles() const { return doubles_; }
  const char* chars() const { return chars_; }
  const uint32_t* offsets() const { return offsets_; }

  // ---- encoding introspection ----

  ColumnEnc enc() const { return enc_; }
  bool is_plain() const { return enc_ == ColumnEnc::kNone; }
  const uint32_t* codes() const { return codes_; }
  const size_t* dict_hashes() const { return dict_hashes_; }
  uint32_t dict_size() const { return dict_size_; }
  uint32_t num_runs() const { return num_runs_; }
  const uint8_t* run_nulls() const { return run_nulls_; }
  /// Run index of view row i (kRle only). Sequential access is O(1) via a
  /// cached cursor; a backward jump re-seeks by binary search, so the
  /// increasing-order visits every kernel makes stay cheap.
  uint32_t RunOf(uint32_t i) const {
    const uint32_t abs = i + row_base_;
    uint32_t c = run_cursor_;
    if (c >= num_runs_ || (c > 0 && abs < run_ends_[c - 1])) {
      c = static_cast<uint32_t>(
          std::upper_bound(run_ends_, run_ends_ + num_runs_, abs) -
          run_ends_);
    } else {
      while (abs >= run_ends_[c]) ++c;
    }
    run_cursor_ = c;
    return c;
  }
  /// One past the last view row of run r, clamped to the view.
  uint32_t RunEndRow(uint32_t r) const {
    const uint32_t e = run_ends_[r];
    const uint32_t rel = e > row_base_ ? e - row_base_ : 0;
    return rel < size_ ? rel : size_;
  }

  /// Materializes row i as a Value. NULLs come back as Value::Null(type()):
  /// the original NULL's tag is not preserved, which is benign — NULL
  /// hashing, grouping, comparison, and printing are all tag-independent.
  Value GetValue(uint32_t i) const;

  // ---- views (zero copy) ----

  void SetIntView(DataType type, const int64_t* data, const uint8_t* nulls,
                  uint32_t n) {
    ReleaseOwned();
    type_ = type;
    rep_ = ColumnRep::kInts;
    ints_ = data;
    nulls_ = nulls;
    size_ = n;
  }
  void SetDoubleView(const double* data, const uint8_t* nulls, uint32_t n) {
    ReleaseOwned();
    type_ = DataType::kDouble;
    rep_ = ColumnRep::kDoubles;
    doubles_ = data;
    nulls_ = nulls;
    size_ = n;
  }
  void SetStringView(const char* chars, const uint32_t* offsets,
                     const uint8_t* nulls, uint32_t n) {
    ReleaseOwned();
    type_ = DataType::kString;
    rep_ = ColumnRep::kStrings;
    chars_ = chars;
    offsets_ = offsets;
    nulls_ = nulls;
    size_ = n;
  }
  void SetValuesView(DataType type, const Value* vals, uint32_t n) {
    ReleaseOwned();
    type_ = type;
    rep_ = ColumnRep::kValues;
    vals_ = vals;
    size_ = n;
  }
  /// Dictionary view: codes[0..n) index the dict payload (one entry per
  /// distinct value; `dict_ints` or `dict_chars`+`dict_offsets` by type),
  /// `hashes` pre-computes Value::Hash per entry, `nulls` stays per-row.
  void SetDictView(DataType type, const uint32_t* codes,
                   const int64_t* dict_ints, const char* dict_chars,
                   const uint32_t* dict_offsets, const size_t* hashes,
                   uint32_t dict_size, const uint8_t* nulls, uint32_t n) {
    ReleaseOwned();
    type_ = type;
    rep_ = RepForType(type);
    enc_ = ColumnEnc::kDict;
    codes_ = codes;
    ints_ = dict_ints;
    chars_ = dict_chars;
    offsets_ = dict_offsets;
    dict_hashes_ = hashes;
    dict_size_ = dict_size;
    nulls_ = nulls;
    size_ = n;
  }
  /// Run-length view over rows [row_base, row_base + n) of a chunk whose
  /// `run_ends` are absolute cumulative row counts; the payload arrays
  /// and `run_nulls` hold one entry per run.
  void SetRleView(DataType type, const int64_t* run_ints,
                  const double* run_doubles, const char* run_chars,
                  const uint32_t* run_offsets, const uint32_t* run_ends,
                  const uint8_t* run_nulls, uint32_t num_runs,
                  uint32_t row_base, uint32_t n) {
    ReleaseOwned();
    type_ = type;
    rep_ = RepForType(type);
    enc_ = ColumnEnc::kRle;
    ints_ = run_ints;
    doubles_ = run_doubles;
    chars_ = run_chars;
    offsets_ = run_offsets;
    run_ends_ = run_ends;
    run_nulls_ = run_nulls;
    num_runs_ = num_runs;
    row_base_ = row_base;
    run_cursor_ = static_cast<uint32_t>(
        std::upper_bound(run_ends, run_ends + num_runs, row_base) -
        run_ends);
    size_ = n;
  }
  /// Copies `other`'s view pointers (not its owned storage); `other` must
  /// outlive this column's consumers. This is how projection passes
  /// columns through without touching data.
  void AssignView(const ColumnVec& other) {
    ReleaseOwned();
    type_ = other.type_;
    rep_ = other.rep_;
    enc_ = other.enc_;
    ints_ = other.ints_;
    doubles_ = other.doubles_;
    chars_ = other.chars_;
    offsets_ = other.offsets_;
    vals_ = other.vals_;
    nulls_ = other.nulls_;
    codes_ = other.codes_;
    dict_hashes_ = other.dict_hashes_;
    dict_size_ = other.dict_size_;
    run_ends_ = other.run_ends_;
    run_nulls_ = other.run_nulls_;
    num_runs_ = other.num_runs_;
    row_base_ = other.row_base_;
    run_cursor_ = other.run_cursor_;
    size_ = other.size_;
  }

  // ---- owned, sequential build ----

  void StartBuild(DataType type, uint32_t reserve);
  void AppendInt(int64_t v) {
    own_ints_.push_back(v);
    own_nulls_.push_back(0);
  }
  void AppendDouble(double v) {
    own_doubles_.push_back(v);
    own_nulls_.push_back(0);
  }
  void AppendStr(std::string_view sv) {
    own_chars_.append(sv.data(), sv.size());
    own_offsets_.push_back(static_cast<uint32_t>(own_chars_.size()));
    own_nulls_.push_back(0);
  }
  void AppendNull();
  /// Appends preserving the value's exact tag; a tag that does not match
  /// the declared type degrades the whole column to kValues.
  void AppendValue(const Value& v);
  /// Points the views at the owned storage. Call once, after the last
  /// append; the column then reads like any other.
  void Seal();

  // ---- owned, scattered build (typed kernels) ----

  /// Sizes typed owned storage for n rows (type must not be kString) with
  /// all-zero nulls, and seals immediately: kernels write results through
  /// the Mutable* pointers at whatever positions they like.
  void PrepareScatter(DataType type, uint32_t n);
  /// kValues variant: n default (NULL int64) values, writable in place.
  void PrepareScatterVals(DataType type, uint32_t n);
  int64_t* MutableInts() { return own_ints_.data(); }
  double* MutableDoubles() { return own_doubles_.data(); }
  uint8_t* MutableNulls() { return own_nulls_.data(); }
  Value* MutableVals() { return own_vals_.data(); }
  /// Drops the null mask when the build saw no NULLs (cheap fast path for
  /// downstream kernels). Callers that wrote through MutableNulls() pass
  /// any_null = true; an all-zero mask is correct, just not free.
  void SetAnyNull(bool any_null) {
    if (!any_null && rep_ != ColumnRep::kValues) nulls_ = nullptr;
  }

  /// Resets to an empty owned column, keeping storage capacity.
  void ClearOwned();

 private:
  void ReleaseOwned();
  void DegradeToValues();

  /// Payload index of view row i under an encoded layout.
  uint32_t PhysIndex(uint32_t i) const {
    return enc_ == ColumnEnc::kDict ? codes_[i] : RunOf(i);
  }

  DataType type_ = DataType::kInt64;
  ColumnRep rep_ = ColumnRep::kInts;
  ColumnEnc enc_ = ColumnEnc::kNone;
  uint32_t size_ = 0;

  const int64_t* ints_ = nullptr;
  const double* doubles_ = nullptr;
  const char* chars_ = nullptr;
  const uint32_t* offsets_ = nullptr;
  const Value* vals_ = nullptr;
  const uint8_t* nulls_ = nullptr;
  const uint32_t* codes_ = nullptr;       // kDict: one per row
  const size_t* dict_hashes_ = nullptr;   // kDict: one per entry
  uint32_t dict_size_ = 0;
  const uint32_t* run_ends_ = nullptr;    // kRle: cumulative, absolute
  const uint8_t* run_nulls_ = nullptr;    // kRle: one per run
  uint32_t num_runs_ = 0;
  uint32_t row_base_ = 0;
  /// Monotone run cursor for RunOf; mutable because lookup is logically
  /// const (columnar execution is single-threaded per batch).
  mutable uint32_t run_cursor_ = 0;

  std::vector<int64_t> own_ints_;
  std::vector<double> own_doubles_;
  std::string own_chars_;
  std::vector<uint32_t> own_offsets_;  // n + 1 once sealed
  std::vector<Value> own_vals_;
  std::vector<uint8_t> own_nulls_;
  bool any_null_ = false;
};

/// A column-major (SoA) batch: one ColumnVec per output column, a physical
/// row count, and an optional selection vector. When the selection vector
/// is present it lists the live physical rows in strictly increasing
/// order; Filter narrows it instead of copying survivors. Without one the
/// batch is dense: all num_rows() rows are live.
///
/// Contract mirrors RowBatch: an operator's NextColumns fills a cleared
/// batch; selected() == 0 on return means end of stream (operators never
/// return a fully-filtered batch while input remains — they keep pulling).
class ColumnBatch {
 public:
  explicit ColumnBatch(int capacity = 1024)
      : capacity_(capacity > 0 ? capacity : 1) {}

  int capacity() const { return capacity_; }

  size_t num_cols() const { return cols_.size(); }
  ColumnVec& col(size_t i) { return cols_[i]; }
  const ColumnVec& col(size_t i) const { return cols_[i]; }
  /// Grows/shrinks the column list (existing columns keep their storage).
  void ResizeCols(size_t n) { cols_.resize(n); }

  uint32_t num_rows() const { return num_rows_; }
  void set_num_rows(uint32_t n) { num_rows_ = n; }

  bool has_selection() const { return has_sel_; }
  const std::vector<uint32_t>& selection() const { return sel_; }
  /// Installs a selection vector (must be strictly increasing physical
  /// row indices < num_rows()).
  std::vector<uint32_t>* MutableSelection() {
    has_sel_ = true;
    return &sel_;
  }
  void ClearSelection() {
    has_sel_ = false;
    sel_.clear();
  }

  /// Live rows: selection size when present, else the physical count.
  uint32_t selected() const {
    return has_sel_ ? static_cast<uint32_t>(sel_.size()) : num_rows_;
  }
  /// Physical index of the j-th live row.
  uint32_t RowAt(uint32_t j) const { return has_sel_ ? sel_[j] : j; }

  /// Empties the batch for refill; keeps column storage for reuse.
  void Clear() {
    num_rows_ = 0;
    ClearSelection();
    for (ColumnVec& c : cols_) c.ClearOwned();
  }

  /// Materializes physical row i into `out` (resized to num_cols()).
  void DecodeRow(uint32_t i, Row* out) const;

 private:
  int capacity_;
  std::vector<ColumnVec> cols_;
  uint32_t num_rows_ = 0;
  std::vector<uint32_t> sel_;
  bool has_sel_ = false;
};

/// A decoded element: the tag/payload of one column entry (or one Value)
/// without boxing — strings stay views. The Ref helpers below reproduce
/// Value::SqlCompare / TotalCompare / GroupEquals / Hash exactly, so
/// columnar kernels and row-engine hash tables interoperate: a key hashed
/// column-wise finds the bucket a PackedKey built from Rows landed in.
struct ElemRef {
  DataType type;
  bool null;
  int64_t i = 0;
  double d = 0.0;
  std::string_view s;
};

inline ElemRef LoadElem(const ColumnVec& c, uint32_t idx);

inline ElemRef LoadValue(const Value& v) {
  ElemRef r;
  r.type = v.type();
  r.null = v.is_null();
  if (r.null) return r;
  switch (v.type()) {
    case DataType::kDouble: r.d = v.double_value(); break;
    case DataType::kString: r.s = v.string_value(); break;
    default: r.i = v.int64_value(); break;
  }
  return r;
}

inline ElemRef LoadElem(const ColumnVec& c, uint32_t idx) {
  if (c.rep() == ColumnRep::kValues) return LoadValue(c.ValAt(idx));
  ElemRef r;
  r.type = c.type();
  r.null = c.IsNull(idx);
  if (r.null) return r;
  switch (c.rep()) {
    case ColumnRep::kInts: r.i = c.IntAt(idx); break;
    case ColumnRep::kDoubles: r.d = c.DoubleAt(idx); break;
    case ColumnRep::kStrings: r.s = c.StrAt(idx); break;
    default: break;
  }
  return r;
}

/// Ref of dictionary entry `code` of a kDict column. Entries are never
/// null (NULL rows live in the per-row mask and intern the zero value).
inline ElemRef DictEntryRef(const ColumnVec& c, uint32_t code) {
  ElemRef r;
  r.type = c.type();
  r.null = false;
  switch (c.rep()) {
    case ColumnRep::kInts: r.i = c.ints()[code]; break;
    case ColumnRep::kDoubles: r.d = c.doubles()[code]; break;
    case ColumnRep::kStrings:
      r.s = std::string_view(c.chars() + c.offsets()[code],
                             c.offsets()[code + 1] - c.offsets()[code]);
      break;
    default: break;
  }
  return r;
}

/// Ref of run `run` of a kRle column (the value every row of the run
/// shares).
inline ElemRef RleRunRef(const ColumnVec& c, uint32_t run) {
  ElemRef r;
  r.type = c.type();
  r.null = c.run_nulls() != nullptr && c.run_nulls()[run] != 0;
  if (r.null) return r;
  switch (c.rep()) {
    case ColumnRep::kInts: r.i = c.ints()[run]; break;
    case ColumnRep::kDoubles: r.d = c.doubles()[run]; break;
    case ColumnRep::kStrings:
      r.s = std::string_view(c.chars() + c.offsets()[run],
                             c.offsets()[run + 1] - c.offsets()[run]);
      break;
    default: break;
  }
  return r;
}

/// Value::SqlCompare over refs: nullopt on NULL or incomparable types.
std::optional<int> SqlCompareRefs(const ElemRef& a, const ElemRef& b);
/// Value::TotalCompare over refs: NULL first, mixed types by type tag.
int TotalCompareRefs(const ElemRef& a, const ElemRef& b);
inline bool GroupEqualsRefs(const ElemRef& a, const ElemRef& b) {
  return TotalCompareRefs(a, b) == 0;
}
/// Value::Hash over refs (string_view hashes like std::string by the
/// [string.view.hash] guarantee).
size_t HashRef(const ElemRef& r);

}  // namespace orq

#endif  // ORQ_EXEC_COLUMN_BATCH_H_
