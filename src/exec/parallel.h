#ifndef ORQ_EXEC_PARALLEL_H_
#define ORQ_EXEC_PARALLEL_H_

#include <memory>
#include <vector>

#include "algebra/rel_expr.h"
#include "catalog/table.h"
#include "exec/exec.h"

namespace orq {

/// State shared by the N instances of one operator inside a parallel
/// region (morsel cursor, merged hash-join table, merged aggregation
/// groups). Created by the plan builder, reset by the exchange operator at
/// Open (instances may be re-opened, e.g. under an outer Apply above the
/// exchange) and again at Close to release memory.
class SharedRegionState {
 public:
  virtual ~SharedRegionState() = default;
  virtual void Reset() = 0;
};

using SharedRegionStatePtr = std::shared_ptr<SharedRegionState>;

/// Rows handed out per morsel claim. Large enough that the atomic claim is
/// noise, small enough that N workers stay balanced on skewed pipelines.
inline constexpr int kDefaultMorselRows = 4096;

/// Atomic cursor over a table's rows: each MorselScan instance claims
/// [begin, end) ranges until the table is exhausted.
SharedRegionStatePtr MakeMorselSource();

/// Parallel table scan: instance of TableScan that pulls morsels from a
/// shared MorselSource instead of scanning the whole table.
PhysicalOpPtr MakeMorselScan(const Table* table, std::vector<int> ordinals,
                             std::vector<ColumnId> layout,
                             SharedRegionStatePtr source);

/// Shared build state for a hash join executed by `workers` instances:
/// per-worker build partials merged into one table at a barrier.
SharedRegionStatePtr MakeSharedJoinState(int workers);

/// Shared merge state for a hash aggregation executed by `workers`
/// instances: per-worker local aggregation merged at end of input.
SharedRegionStatePtr MakeSharedAggState(int workers);

/// N-producers/1-consumer re-serialization point above a parallel region.
/// Opens one task per instance on the context's TaskPool; each task drains
/// its instance into a bounded batch queue which NextBatch/Next consume on
/// the caller's thread. Workers execute with private instrumentation
/// shards (stats/metrics/rows_produced) that Close merges back into the
/// parent context — after every producer finished, so the merge is
/// race-free by construction. `shared` lists the region's shared states
/// for reset at Open/Close.
PhysicalOpPtr MakeExchangeOp(std::vector<PhysicalOpPtr> instances,
                             std::vector<SharedRegionStatePtr> shared,
                             std::vector<ColumnId> layout);

}  // namespace orq

#endif  // ORQ_EXEC_PARALLEL_H_
