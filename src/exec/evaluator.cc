#include "exec/evaluator.h"

#include <cmath>

#include "common/str_util.h"

namespace orq {

Evaluator::Evaluator(ScalarExprPtr expr, const std::vector<ColumnId>& layout)
    : expr_(std::move(expr)) {
  for (size_t i = 0; i < layout.size(); ++i) {
    slots_.emplace(layout[i], static_cast<int>(i));
  }
}

Result<Value> Evaluator::Eval(const Row& row, ExecContext* ctx) const {
  return EvalNode(*expr_, row, ctx);
}

Result<bool> Evaluator::EvalPredicate(const Row& row, ExecContext* ctx) const {
  ORQ_ASSIGN_OR_RETURN(Value v, EvalNode(*expr_, row, ctx));
  return !v.is_null() && v.type() == DataType::kBool && v.bool_value();
}

Result<Value> EvalArith(ArithOp op, const Value& l, const Value& r,
                        DataType out_type) {
  if (l.is_null() || r.is_null()) return Value::Null(out_type);
  // date +/- integer days
  if (l.type() == DataType::kDate && r.type() == DataType::kInt64) {
    int32_t days = l.date_value();
    int64_t delta = r.int64_value();
    if (op == ArithOp::kAdd) return Value::Date(days + delta);
    if (op == ArithOp::kSub) return Value::Date(days - delta);
    return Status::RuntimeError("invalid date arithmetic");
  }
  if (l.type() == DataType::kDate && r.type() == DataType::kDate &&
      op == ArithOp::kSub) {
    return Value::Int64(l.date_value() - r.date_value());
  }
  if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
    return Status::RuntimeError("arithmetic on non-numeric values");
  }
  if (l.type() == DataType::kInt64 && r.type() == DataType::kInt64) {
    int64_t a = l.int64_value(), b = r.int64_value();
    switch (op) {
      case ArithOp::kAdd: return Value::Int64(a + b);
      case ArithOp::kSub: return Value::Int64(a - b);
      case ArithOp::kMul: return Value::Int64(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Status::RuntimeError("division by zero");
        return Value::Int64(a / b);
    }
  }
  double a = l.AsDouble(), b = r.AsDouble();
  switch (op) {
    case ArithOp::kAdd: return Value::Double(a + b);
    case ArithOp::kSub: return Value::Double(a - b);
    case ArithOp::kMul: return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0.0) return Status::RuntimeError("division by zero");
      return Value::Double(a / b);
  }
  return Status::Internal("unhandled arithmetic op");
}

Value CompareResult(CompareOp op, int cmp) {
  bool out = false;
  switch (op) {
    case CompareOp::kEq: out = cmp == 0; break;
    case CompareOp::kNe: out = cmp != 0; break;
    case CompareOp::kLt: out = cmp < 0; break;
    case CompareOp::kLe: out = cmp <= 0; break;
    case CompareOp::kGt: out = cmp > 0; break;
    case CompareOp::kGe: out = cmp >= 0; break;
  }
  return Value::Bool(out);
}

Result<Value> Evaluator::EvalNode(const ScalarExpr& node, const Row& row,
                                  ExecContext* ctx) const {
  switch (node.kind) {
    case ScalarKind::kColumnRef: {
      auto it = slots_.find(node.column);
      if (it != slots_.end()) return row[it->second];
      if (ctx != nullptr) {
        auto pit = ctx->params.find(node.column);
        if (pit != ctx->params.end()) return pit->second;
      }
      return Status::Internal("unresolved column #" +
                              std::to_string(node.column));
    }
    case ScalarKind::kLiteral:
      return node.literal;
    case ScalarKind::kAnd: {
      bool saw_null = false;
      for (const auto& child : node.children) {
        ORQ_ASSIGN_OR_RETURN(Value v, EvalNode(*child, row, ctx));
        if (v.is_null()) {
          saw_null = true;
        } else if (!v.bool_value()) {
          return Value::Bool(false);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(true);
    }
    case ScalarKind::kOr: {
      bool saw_null = false;
      for (const auto& child : node.children) {
        ORQ_ASSIGN_OR_RETURN(Value v, EvalNode(*child, row, ctx));
        if (v.is_null()) {
          saw_null = true;
        } else if (v.bool_value()) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
    case ScalarKind::kNot: {
      ORQ_ASSIGN_OR_RETURN(Value v, EvalNode(*node.children[0], row, ctx));
      if (v.is_null()) return Value::Null(DataType::kBool);
      return Value::Bool(!v.bool_value());
    }
    case ScalarKind::kCompare: {
      ORQ_ASSIGN_OR_RETURN(Value l, EvalNode(*node.children[0], row, ctx));
      ORQ_ASSIGN_OR_RETURN(Value r, EvalNode(*node.children[1], row, ctx));
      std::optional<int> cmp = l.SqlCompare(r);
      if (!cmp.has_value()) return Value::Null(DataType::kBool);
      return CompareResult(node.cmp, *cmp);
    }
    case ScalarKind::kArith: {
      ORQ_ASSIGN_OR_RETURN(Value l, EvalNode(*node.children[0], row, ctx));
      ORQ_ASSIGN_OR_RETURN(Value r, EvalNode(*node.children[1], row, ctx));
      return EvalArith(node.arith, l, r, node.type);
    }
    case ScalarKind::kNegate: {
      ORQ_ASSIGN_OR_RETURN(Value v, EvalNode(*node.children[0], row, ctx));
      if (v.is_null()) return Value::Null(v.type());
      if (v.type() == DataType::kInt64) return Value::Int64(-v.int64_value());
      if (v.type() == DataType::kDouble) {
        return Value::Double(-v.double_value());
      }
      return Status::RuntimeError("negation of non-numeric value");
    }
    case ScalarKind::kIsNull: {
      ORQ_ASSIGN_OR_RETURN(Value v, EvalNode(*node.children[0], row, ctx));
      return Value::Bool(v.is_null());
    }
    case ScalarKind::kIsNotNull: {
      ORQ_ASSIGN_OR_RETURN(Value v, EvalNode(*node.children[0], row, ctx));
      return Value::Bool(!v.is_null());
    }
    case ScalarKind::kLike: {
      ORQ_ASSIGN_OR_RETURN(Value text, EvalNode(*node.children[0], row, ctx));
      ORQ_ASSIGN_OR_RETURN(Value pat, EvalNode(*node.children[1], row, ctx));
      if (text.is_null() || pat.is_null()) {
        return Value::Null(DataType::kBool);
      }
      if (text.type() != DataType::kString ||
          pat.type() != DataType::kString) {
        return Status::RuntimeError("LIKE requires strings");
      }
      return Value::Bool(LikeMatch(text.string_value(), pat.string_value()));
    }
    case ScalarKind::kCase: {
      size_t i = 0;
      for (; i + 1 < node.children.size(); i += 2) {
        ORQ_ASSIGN_OR_RETURN(Value cond,
                             EvalNode(*node.children[i], row, ctx));
        if (!cond.is_null() && cond.type() == DataType::kBool &&
            cond.bool_value()) {
          return EvalNode(*node.children[i + 1], row, ctx);
        }
      }
      if (i < node.children.size()) {
        return EvalNode(*node.children[i], row, ctx);
      }
      return Value::Null(node.type);
    }
    case ScalarKind::kInList: {
      ORQ_ASSIGN_OR_RETURN(Value probe, EvalNode(*node.children[0], row, ctx));
      bool saw_null = probe.is_null();
      for (size_t i = 1; i < node.children.size(); ++i) {
        ORQ_ASSIGN_OR_RETURN(Value item,
                             EvalNode(*node.children[i], row, ctx));
        std::optional<int> cmp = probe.SqlCompare(item);
        if (!cmp.has_value()) {
          saw_null = true;
        } else if (*cmp == 0) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null(DataType::kBool) : Value::Bool(false);
    }
    case ScalarKind::kParam:
      return Status::Internal(
          "unsubstituted parameter $" + std::to_string(node.column) +
          " reached the evaluator (SubstituteParams must run first)");
    default:
      return Status::Internal(
          "subquery node reached the evaluator (Apply introduction must run "
          "first)");
  }
}

}  // namespace orq
