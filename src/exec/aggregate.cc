#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exec/evaluator.h"
#include "exec/ops.h"
#include "exec/packed_key.h"
#include "exec/parallel.h"
#include "exec/vector_kernels.h"
#include "obs/metrics.h"

namespace orq {

namespace {

/// SUM over doubles accumulates in quad precision so the rounded double
/// result is independent of summation order: with a 113-bit mantissa the
/// accumulated rounding error (~N * 2^-113) sits far below double's
/// rounding granularity, so serial, cached, and any morsel partitioning
/// of the same input produce bit-identical sums. Without this, a query
/// comparing one aggregate against a recomputation of itself (TPC-H Q15's
/// total_revenue = max(total_revenue)) silently loses rows whenever the
/// two plans associate the additions differently.
#if defined(__SIZEOF_FLOAT128__)
using SumAccum = __float128;
#else
using SumAccum = long double;
#endif

/// One accumulator per (group, aggregate).
struct Accumulator {
  int64_t count = 0;          // rows seen (count(*), Max1Row guard)
  int64_t non_null = 0;       // non-NULL inputs (count(x))
  SumAccum sum_double = 0.0;
  int64_t sum_int = 0;
  bool sum_is_double = false;
  Value extreme;              // min/max/Max1Row value
  bool has_value = false;
  std::unordered_set<Row, RowHash, RowGroupEq> distinct;  // distinct inputs
};

/// Folds a worker's partial accumulator into the merged one. Additive
/// counters add; min/max keep the better extreme. DISTINCT and Max1Row
/// aggregates never reach here — the plan builder excludes them from
/// parallel regions (their merge is not a simple fold).
void MergeAccumulator(const AggItem& agg, Accumulator* into,
                      Accumulator&& from) {
  into->count += from.count;
  into->non_null += from.non_null;
  into->sum_int += from.sum_int;
  into->sum_double += from.sum_double;
  into->sum_is_double = into->sum_is_double || from.sum_is_double;
  if (from.has_value) {
    bool take = !into->has_value;
    if (!take) {
      const int cmp = from.extreme.TotalCompare(into->extreme);
      take = (agg.func == AggFunc::kMin && cmp < 0) ||
             (agg.func == AggFunc::kMax && cmp > 0);
    }
    if (take) {
      into->extreme = std::move(from.extreme);
      into->has_value = true;
    }
  }
}

/// One worker's fully aggregated local state, in insertion order:
/// keys[g] is group g's key row, accs[g] its accumulators.
struct AggPartial {
  std::vector<Row> keys;
  std::vector<std::vector<Accumulator>> accs;
};

/// End-of-input rendezvous of a parallel hash aggregation. Every worker
/// aggregates its morsel share locally, deposits the partial here, and the
/// last depositor merges groups across workers. Worker 0's operator then
/// emits the merged result; the others emit nothing. Deposits happen even
/// on drain errors so the barrier always completes.
class SharedAggState final : public SharedRegionState {
 public:
  explicit SharedAggState(int workers)
      : workers_(workers), partials_(static_cast<size_t>(workers)) {}

  void Reset() override {
    std::lock_guard<std::mutex> lock(mu_);
    deposited_ = 0;
    merge_done_ = false;
    status_ = Status::OK();
    for (AggPartial& partial : partials_) partial = AggPartial{};
    groups_.clear();
    accs_.clear();
    order_.clear();
  }

  /// Blocks until all workers deposited and the merge completed; returns
  /// the first deposited error. `aggs` describes the accumulator fold and
  /// is identical across workers.
  Status Deposit(int worker, const Status& drain, AggPartial partial,
                 const std::vector<AggItem>& aggs) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!drain.ok() && status_.ok()) status_ = drain;
    partials_[static_cast<size_t>(worker)] = std::move(partial);
    if (++deposited_ == workers_) {
      if (status_.ok()) Merge(aggs);
      merge_done_ = true;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [this] { return merge_done_; });
    }
    return status_;
  }

  /// Merged result, valid after Deposit returned OK; read-only thereafter.
  const std::vector<const Row*>& order() const { return order_; }
  const std::vector<std::vector<Accumulator>>& accs() const { return accs_; }

 private:
  /// Runs under mu_ on the last depositor's thread. Worker order fixes the
  /// merged emission order deterministically (worker 0's groups first, in
  /// its insertion order, then worker 1's new groups, ...).
  void Merge(const std::vector<AggItem>& aggs) {
    for (AggPartial& partial : partials_) {
      for (size_t g = 0; g < partial.keys.size(); ++g) {
        auto it = groups_.find(partial.keys[g]);
        if (it == groups_.end()) {
          it = groups_
                   .emplace(PackedKey(std::move(partial.keys[g])),
                            static_cast<uint32_t>(accs_.size()))
                   .first;
          accs_.push_back(std::move(partial.accs[g]));
          order_.push_back(&it->first.values);
          continue;
        }
        std::vector<Accumulator>& into = accs_[it->second];
        for (size_t i = 0; i < aggs.size(); ++i) {
          MergeAccumulator(aggs[i], &into[i], std::move(partial.accs[g][i]));
        }
      }
      partial = AggPartial{};
    }
  }

  const int workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  int deposited_ = 0;
  bool merge_done_ = false;
  Status status_;
  std::vector<AggPartial> partials_;
  std::unordered_map<PackedKey, uint32_t, PackedKeyHash, PackedKeyEq> groups_;
  std::vector<std::vector<Accumulator>> accs_;
  std::vector<const Row*> order_;
};

class HashAggregateOp : public PhysicalOp {
 public:
  HashAggregateOp(PhysicalOpPtr child, std::vector<ColumnId> group_cols,
                  std::vector<AggItem> aggs, bool scalar,
                  SharedRegionStatePtr shared, int worker)
      : aggs_(std::move(aggs)),
        scalar_(scalar),
        worker_(worker),
        shared_(std::static_pointer_cast<SharedAggState>(shared)) {
    const std::vector<ColumnId>& in = child->layout();
    for (ColumnId g : group_cols) {
      for (size_t i = 0; i < in.size(); ++i) {
        if (in[i] == g) {
          group_slots_.push_back(static_cast<int>(i));
          break;
        }
      }
      layout_.push_back(g);
    }
    fast_aggs_ = true;
    for (const AggItem& agg : aggs_) {
      layout_.push_back(agg.output);
      arg_evals_.emplace_back(
          agg.arg != nullptr ? Evaluator(agg.arg, in) : Evaluator());
      cargs_.emplace_back(nullptr);
      if (agg.arg != nullptr) {
        cargs_.back() = std::make_unique<ColumnarEvaluator>();
        cargs_.back()->Compile(agg.arg, in);
      }
      // Range accumulation handles exactly the fold-style aggregates whose
      // per-row updates commute into one per-range update: COUNT/SUM/MIN/
      // MAX without DISTINCT, arguments fully vectorized (so no per-row
      // evaluation errors can reorder). Max1Row stays per-row for its
      // cardinality check.
      const bool fast_func =
          agg.func == AggFunc::kCountStar || agg.func == AggFunc::kCount ||
          agg.func == AggFunc::kSum || agg.func == AggFunc::kMin ||
          agg.func == AggFunc::kMax;
      if (!fast_func || agg.distinct ||
          (agg.arg != nullptr && !cargs_.back()->vectorizable())) {
        fast_aggs_ = false;
      }
    }
    children_.push_back(std::move(child));
  }

  Status OpenImpl(ExecContext* ctx) override {
    groups_.clear();
    accs_.clear();
    order_.clear();
    emit_pos_ = 0;
    if (shared_ == nullptr) {
      ORQ_RETURN_IF_ERROR(DrainInput(ctx));
      emitter_ = true;
      emit_order_ = &order_;
      emit_accs_ = &accs_;
      RecordPeak(static_cast<int64_t>(groups_.size()));
      if (MetricsRegistry* m = metrics()) {
        m->Add(MetricCounter::kHashAggGroups,
               static_cast<int64_t>(groups_.size()));
      }
      return Status::OK();
    }
    // Parallel: aggregate this worker's share locally, then hand the
    // partial to the merge barrier (errors ride along so the gang never
    // stalls). Worker 0 emits the merged groups; the rest emit nothing.
    Status drain = DrainInput(ctx);
    AggPartial partial;
    if (drain.ok()) {
      partial.keys.reserve(order_.size());
      for (const Row* key : order_) partial.keys.push_back(*key);
      partial.accs = std::move(accs_);
    }
    Status status = shared_->Deposit(worker_, drain, std::move(partial),
                                     aggs_);
    groups_.clear();
    accs_.clear();
    order_.clear();
    if (!status.ok()) return status;
    emitter_ = (worker_ == 0);
    emit_order_ = &shared_->order();
    emit_accs_ = &shared_->accs();
    if (emitter_) {
      RecordPeak(static_cast<int64_t>(emit_order_->size()));
      if (MetricsRegistry* m = metrics()) {
        m->Add(MetricCounter::kHashAggGroups,
               static_cast<int64_t>(emit_order_->size()));
      }
    }
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext*, Row* row) override {
    if (!emitter_) return false;
    if (scalar_ && emit_order_->empty()) {
      if (emit_pos_ > 0) return false;
      ++emit_pos_;
      // Aggregates over the empty input (section 1.1): count = 0, the rest
      // NULL.
      row->clear();
      for (const AggItem& agg : aggs_) {
        row->push_back(AggNullOnEmpty(agg.func) ? Value::Null()
                                                : Value::Int64(0));
      }
      return true;
    }
    if (emit_pos_ >= emit_order_->size()) return false;
    *row = *(*emit_order_)[emit_pos_];
    const std::vector<Accumulator>& accs = (*emit_accs_)[emit_pos_++];
    for (size_t i = 0; i < aggs_.size(); ++i) {
      row->push_back(Finalize(aggs_[i], accs[i]));
    }
    return true;
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    if (!emitter_) return Status::OK();
    if (scalar_ && emit_order_->empty()) return FillFromNextImpl(ctx, out);
    while (emit_pos_ < emit_order_->size() && !out->full()) {
      Row& slot = out->PushRow();
      slot = *(*emit_order_)[emit_pos_];
      const std::vector<Accumulator>& accs = (*emit_accs_)[emit_pos_++];
      for (size_t i = 0; i < aggs_.size(); ++i) {
        slot.push_back(Finalize(aggs_[i], accs[i]));
      }
    }
    return Status::OK();
  }

  void CloseImpl() override {
    groups_.clear();
    accs_.clear();
    order_.clear();
    // Merged shared state is released by the exchange's Close; emit
    // pointers are re-established on the next Open.
    emit_order_ = &order_;
    emit_accs_ = &accs_;
  }

  std::string name() const override {
    if (scalar_) return "ScalarAggregate";
    return "HashAggregate";
  }

 private:
  /// Drains the child into the local group map. Batched input drain; group
  /// keys probe a packed-key map (hash computed once per probe, key values
  /// copied only on a new group) that indexes dense per-group accumulator
  /// storage.
  Status DrainInput(ExecContext* ctx) {
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    Status status = ctx->columnar ? DrainColumnar(ctx) : DrainRows(ctx);
    children_[0]->Close();
    if (!status.ok()) return status;
    if (MetricsRegistry* m = metrics()) {
      // Occupied-bucket chain lengths at build end — the collision shape a
      // probe walks (hash quality + load factor in one distribution).
      for (size_t b = 0; b < groups_.bucket_count(); ++b) {
        const int64_t chain = static_cast<int64_t>(groups_.bucket_size(b));
        if (chain > 0) m->Observe(MetricHistogram::kHashAggBucketChain, chain);
      }
    }
    return Status::OK();
  }

  Status DrainRows(ExecContext* ctx) {
    RowBatch batch(ctx->batch_size);
    Row key(group_slots_.size());
    MetricsRegistry* m = metrics();
    while (true) {
      ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &batch));
      if (batch.empty()) break;
      if (m != nullptr) {
        m->Add(MetricCounter::kHashAggInputRows,
               static_cast<int64_t>(batch.size()));
      }
      for (size_t r = 0; r < batch.size(); ++r) {
        const Row& row = batch.row(r);
        for (size_t i = 0; i < group_slots_.size(); ++i) {
          key[i] = row[group_slots_[i]];
        }
        auto it = groups_.find(key);
        if (it == groups_.end()) {
          it = groups_
                   .emplace(PackedKey(std::move(key)),
                            static_cast<uint32_t>(accs_.size()))
                   .first;
          key = Row(group_slots_.size());
          accs_.emplace_back(aggs_.size());
          order_.push_back(&it->first.values);
        }
        ORQ_RETURN_IF_ERROR(Accumulate(&accs_[it->second], row, ctx));
      }
    }
    return Status::OK();
  }

  /// Columnar drain: group-key hashes are computed column-wise for the
  /// whole batch, probes go through ColumnKeyRef (no key decode unless a
  /// new group inserts), and accumulator updates read the typed arrays
  /// directly. Aggregate arguments evaluate vectorized when possible;
  /// otherwise the row is decoded once and shared by all fallback args.
  Status DrainColumnar(ExecContext* ctx) {
    ColumnBatch batch(ctx->batch_size);
    std::vector<size_t> hashes;
    std::vector<const ColumnVec*> arg_cols(aggs_.size(), nullptr);
    Row key(group_slots_.size());
    Row decode_row;
    MetricsRegistry* m = metrics();
    while (true) {
      ORQ_RETURN_IF_ERROR(children_[0]->NextColumns(ctx, &batch));
      const uint32_t live = batch.selected();
      if (live == 0) break;
      if (m != nullptr) {
        m->Add(MetricCounter::kHashAggInputRows, static_cast<int64_t>(live));
      }
      for (size_t i = 0; i < aggs_.size(); ++i) {
        arg_cols[i] = nullptr;
        if (cargs_[i] != nullptr && cargs_[i]->vectorizable()) {
          ORQ_ASSIGN_OR_RETURN(const ColumnVec* c,
                               cargs_[i]->Eval(batch, ctx));
          arg_cols[i] = c;
        }
      }
      InitKeyHashes(batch, &hashes);
      for (int slot : group_slots_) {
        HashCombineColumn(batch, batch.col(slot), &hashes);
      }
      // Segment the live rows into maximal group-constant ranges and probe
      // the group table once per range. Clustered inputs (sorted tables,
      // RLE runs) collapse to a handful of probes per batch; a scalar
      // aggregate is one range. The hash-equal prefilter is exact in one
      // direction — group-equal rows always hash equal — so ranges never
      // split a group run.
      uint32_t j = 0;
      while (j < live) {
        uint32_t j_end = j + 1;
        if (group_slots_.empty()) {
          j_end = live;
        } else {
          while (j_end < live && hashes[j_end] == hashes[j] &&
                 SameGroup(batch, batch.RowAt(j), batch.RowAt(j_end))) {
            ++j_end;
          }
        }
        const uint32_t r = batch.RowAt(j);
        const ColumnKeyRef ref{&batch, group_slots_.data(),
                               group_slots_.size(), r, hashes[j]};
        auto it = groups_.find(ref);
        if (it == groups_.end()) {
          for (size_t k = 0; k < group_slots_.size(); ++k) {
            key[k] = batch.col(group_slots_[k]).GetValue(r);
          }
          it = groups_
                   .emplace(PackedKey(std::move(key)),
                            static_cast<uint32_t>(accs_.size()))
                   .first;
          key = Row(group_slots_.size());
          accs_.emplace_back(aggs_.size());
          order_.push_back(&it->first.values);
        }
        if (fast_aggs_) {
          AccumulateRange(&accs_[it->second], batch, j, j_end, arg_cols);
        } else {
          for (uint32_t jj = j; jj < j_end; ++jj) {
            ORQ_RETURN_IF_ERROR(
                AccumulateColumnar(&accs_[it->second], batch, batch.RowAt(jj),
                                   arg_cols, &decode_row, ctx));
          }
        }
        j = j_end;
      }
    }
    return Status::OK();
  }

  /// Group equality of two live rows, column-wise. Dictionary columns
  /// compare codes (entries are distinct by construction); everything else
  /// goes through the shared ref comparison, so NULLs and cross-rep
  /// numerics group exactly like PackedKeyEq.
  bool SameGroup(const ColumnBatch& batch, uint32_t a, uint32_t b) const {
    for (int slot : group_slots_) {
      const ColumnVec& c = batch.col(slot);
      if (c.enc() == ColumnEnc::kDict) {
        const bool na = c.IsNull(a);
        if (na != c.IsNull(b)) return false;
        if (!na && c.codes()[a] != c.codes()[b]) return false;
        continue;
      }
      if (!GroupEqualsRefs(LoadElem(c, a), LoadElem(c, b))) return false;
    }
    return true;
  }

  /// Vectorized accumulation of one group-constant range [j0, j1): every
  /// accumulator is updated once per range with a locally reduced value
  /// instead of once per row. Only runs when fast_aggs_ (COUNT/SUM/MIN/MAX,
  /// no DISTINCT, vectorized args), so no per-row error site is skipped.
  /// Summation stays order-compatible with the per-row path: int64 partial
  /// sums are associative mod 2^64 (accumulated unsigned), and double
  /// partials reduce in SumAccum where a whole batch of exact additions
  /// stays below the quad mantissa — the same associativity contract the
  /// parallel merge already relies on.
  void AccumulateRange(std::vector<Accumulator>* accs,
                       const ColumnBatch& batch, uint32_t j0, uint32_t j1,
                       const std::vector<const ColumnVec*>& arg_cols) {
    const int64_t k = static_cast<int64_t>(j1 - j0);
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggItem& agg = aggs_[i];
      Accumulator& acc = (*accs)[i];
      acc.count += k;
      if (agg.func == AggFunc::kCountStar) continue;
      const ColumnVec& col = *arg_cols[i];
      if (agg.func == AggFunc::kSum && col.enc() == ColumnEnc::kRle &&
          !batch.has_selection() &&
          (col.rep() == ColumnRep::kInts ||
           col.rep() == ColumnRep::kDoubles)) {
        AccumulateRleSum(&acc, col, j0, j1);
        continue;
      }
      switch (agg.func) {
        case AggFunc::kCount: {
          if (!col.has_nulls()) {
            acc.non_null += k;
            break;
          }
          int64_t nn = 0;
          for (uint32_t j = j0; j < j1; ++j) {
            nn += col.IsNull(batch.RowAt(j)) ? 0 : 1;
          }
          acc.non_null += nn;
          break;
        }
        case AggFunc::kSum: {
          if (col.rep() == ColumnRep::kInts) {
            uint64_t s = 0;
            int64_t nn = 0;
            for (uint32_t j = j0; j < j1; ++j) {
              const uint32_t r = batch.RowAt(j);
              if (col.IsNull(r)) continue;
              s += static_cast<uint64_t>(col.IntAt(r));
              ++nn;
            }
            acc.sum_int = static_cast<int64_t>(
                static_cast<uint64_t>(acc.sum_int) + s);
            acc.non_null += nn;
          } else if (col.rep() == ColumnRep::kDoubles) {
            SumAccum s = 0.0;
            int64_t nn = 0;
            for (uint32_t j = j0; j < j1; ++j) {
              const uint32_t r = batch.RowAt(j);
              if (col.IsNull(r)) continue;
              s += static_cast<SumAccum>(col.DoubleAt(r));
              ++nn;
            }
            if (nn > 0) {
              acc.sum_is_double = true;
              acc.sum_double += s;
              acc.non_null += nn;
            }
          } else if (col.rep() == ColumnRep::kValues) {
            for (uint32_t j = j0; j < j1; ++j) {
              const uint32_t r = batch.RowAt(j);
              const Value& sv = col.ValAt(r);
              if (sv.is_null()) continue;
              ++acc.non_null;
              if (sv.type() == DataType::kDouble) {
                acc.sum_is_double = true;
                acc.sum_double += sv.double_value();
              } else {
                acc.sum_int += sv.int64_value();
              }
            }
          } else {
            // Strings sum to nothing (Value::int64_value() of a string is
            // 0) but still count as non-NULL inputs, like the row path.
            for (uint32_t j = j0; j < j1; ++j) {
              acc.non_null += col.IsNull(batch.RowAt(j)) ? 0 : 1;
            }
          }
          break;
        }
        case AggFunc::kMin:
        case AggFunc::kMax: {
          const bool min = agg.func == AggFunc::kMin;
          bool have = false;
          uint32_t best = 0;
          ElemRef best_ref{};
          int64_t nn = 0;
          for (uint32_t j = j0; j < j1; ++j) {
            const uint32_t r = batch.RowAt(j);
            if (col.IsNull(r)) continue;
            ++nn;
            ElemRef e = LoadElem(col, r);
            if (!have) {
              have = true;
              best = r;
              best_ref = e;
              continue;
            }
            const int cmp = TotalCompareRefs(e, best_ref);
            if (min ? cmp < 0 : cmp > 0) {
              best = r;
              best_ref = e;
            }
          }
          acc.non_null += nn;
          if (have) {
            bool take = !acc.has_value;
            if (!take) {
              const int cmp =
                  TotalCompareRefs(best_ref, LoadValue(acc.extreme));
              take = min ? cmp < 0 : cmp > 0;
            }
            if (take) {
              acc.extreme = col.GetValue(best);
              acc.has_value = true;
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  /// SUM over a contiguous row range of an RLE column: per overlapped run,
  /// one multiply replaces run-length additions. Products are exact — the
  /// int path reduces mod 2^64 like repeated addition, and a double times
  /// a batch-bounded count fits the SumAccum mantissa exactly.
  static void AccumulateRleSum(Accumulator* acc, const ColumnVec& col,
                               uint32_t r0, uint32_t r1) {
    uint32_t r = r0;
    uint64_t si = 0;
    SumAccum sd = 0.0;
    int64_t nn = 0;
    const bool ints = col.rep() == ColumnRep::kInts;
    while (r < r1) {
      const uint32_t run = col.RunOf(r);
      const uint32_t end = std::min(col.RunEndRow(run), r1);
      const uint32_t n = end - r;
      if (col.run_nulls() == nullptr || col.run_nulls()[run] == 0) {
        nn += n;
        if (ints) {
          si += static_cast<uint64_t>(n) *
                static_cast<uint64_t>(col.ints()[run]);
        } else {
          sd += static_cast<SumAccum>(col.doubles()[run]) *
                static_cast<SumAccum>(n);
        }
      }
      r = end;
    }
    if (ints) {
      acc->sum_int =
          static_cast<int64_t>(static_cast<uint64_t>(acc->sum_int) + si);
      acc->non_null += nn;
    } else if (nn > 0) {
      acc->sum_is_double = true;
      acc->sum_double += sd;
      acc->non_null += nn;
    }
  }

  /// Columnar twin of Accumulate: identical per-row semantics, but typed
  /// reads from the argument columns replace boxed Values on the hot
  /// SUM/COUNT/MIN/MAX paths.
  Status AccumulateColumnar(std::vector<Accumulator>* accs,
                            const ColumnBatch& batch, uint32_t r,
                            const std::vector<const ColumnVec*>& arg_cols,
                            Row* decode_row, ExecContext* ctx) {
    bool decoded = false;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggItem& agg = aggs_[i];
      Accumulator& acc = (*accs)[i];
      ++acc.count;
      if (agg.func == AggFunc::kMax1Row && acc.count > 1) {
        return Status::CardinalityViolation(
            "scalar subquery returned more than one row");
      }
      if (agg.func == AggFunc::kCountStar) continue;
      const ColumnVec* col = arg_cols[i];
      Value v;
      bool boxed = false;
      if (col == nullptr) {
        if (!decoded) {
          batch.DecodeRow(r, decode_row);
          decoded = true;
        }
        ORQ_ASSIGN_OR_RETURN(v, arg_evals_[i].Eval(*decode_row, ctx));
        boxed = true;
      }
      if (agg.func == AggFunc::kMax1Row) {
        acc.extreme = boxed ? std::move(v) : col->GetValue(r);
        acc.has_value = true;
        continue;
      }
      if (boxed ? v.is_null() : col->IsNull(r)) continue;
      if (agg.distinct) {
        if (!boxed) {
          v = col->GetValue(r);
          boxed = true;
        }
        if (!acc.distinct.insert(Row{v}).second) continue;
      }
      ++acc.non_null;
      switch (agg.func) {
        case AggFunc::kCount:
          break;
        case AggFunc::kSum:
          if (boxed || col->rep() == ColumnRep::kValues) {
            const Value& sv = boxed ? v : col->ValAt(r);
            if (sv.type() == DataType::kDouble) {
              acc.sum_is_double = true;
              acc.sum_double += sv.double_value();
            } else {
              acc.sum_int += sv.int64_value();
            }
          } else if (col->rep() == ColumnRep::kDoubles) {
            acc.sum_is_double = true;
            acc.sum_double += col->DoubleAt(r);
          } else if (col->rep() == ColumnRep::kInts) {
            acc.sum_int += col->IntAt(r);
          }
          // kStrings: Value::int64_value() of a string is 0 — add nothing,
          // exactly like the row path.
          break;
        case AggFunc::kMin:
        case AggFunc::kMax: {
          bool take = !acc.has_value;
          if (!take) {
            const int cmp =
                boxed ? v.TotalCompare(acc.extreme)
                      : TotalCompareRefs(LoadElem(*col, r),
                                         LoadValue(acc.extreme));
            take = (agg.func == AggFunc::kMin && cmp < 0) ||
                   (agg.func == AggFunc::kMax && cmp > 0);
          }
          if (take) {
            acc.extreme = boxed ? std::move(v) : col->GetValue(r);
            acc.has_value = true;
          }
          break;
        }
        default:
          break;
      }
    }
    return Status::OK();
  }

  Status Accumulate(std::vector<Accumulator>* accs, const Row& row,
                    ExecContext* ctx) {
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggItem& agg = aggs_[i];
      Accumulator& acc = (*accs)[i];
      ++acc.count;
      if (agg.func == AggFunc::kMax1Row && acc.count > 1) {
        return Status::CardinalityViolation(
            "scalar subquery returned more than one row");
      }
      if (agg.func == AggFunc::kCountStar) continue;
      ORQ_ASSIGN_OR_RETURN(Value v, arg_evals_[i].Eval(row, ctx));
      if (agg.func == AggFunc::kMax1Row) {
        acc.extreme = std::move(v);
        acc.has_value = true;
        continue;
      }
      if (v.is_null()) continue;
      if (agg.distinct && !acc.distinct.insert(Row{v}).second) continue;
      ++acc.non_null;
      switch (agg.func) {
        case AggFunc::kCount:
          break;
        case AggFunc::kSum:
          if (v.type() == DataType::kDouble) {
            acc.sum_is_double = true;
            acc.sum_double += v.double_value();
          } else {
            acc.sum_int += v.int64_value();
          }
          break;
        case AggFunc::kMin:
          if (!acc.has_value || v.TotalCompare(acc.extreme) < 0) {
            acc.extreme = std::move(v);
            acc.has_value = true;
          }
          break;
        case AggFunc::kMax:
          if (!acc.has_value || v.TotalCompare(acc.extreme) > 0) {
            acc.extreme = std::move(v);
            acc.has_value = true;
          }
          break;
        default:
          break;
      }
    }
    return Status::OK();
  }

  static Value Finalize(const AggItem& agg, const Accumulator& acc) {
    switch (agg.func) {
      case AggFunc::kCountStar:
        return Value::Int64(acc.count);
      case AggFunc::kCount:
        return Value::Int64(acc.non_null);
      case AggFunc::kSum:
        if (acc.non_null == 0) return Value::Null();
        if (acc.sum_is_double) {
          return Value::Double(static_cast<double>(
              acc.sum_double + static_cast<SumAccum>(acc.sum_int)));
        }
        return Value::Int64(acc.sum_int);
      case AggFunc::kMin:
      case AggFunc::kMax:
      case AggFunc::kMax1Row:
        return acc.has_value ? acc.extreme : Value::Null();
    }
    return Value::Null();
  }

  std::vector<AggItem> aggs_;
  bool scalar_;
  /// True when every aggregate is range-foldable (see the constructor):
  /// the columnar drain then updates accumulators once per group-constant
  /// range instead of once per row.
  bool fast_aggs_ = false;
  int worker_;
  std::shared_ptr<SharedAggState> shared_;
  std::vector<int> group_slots_;
  std::vector<Evaluator> arg_evals_;
  /// Columnar argument evaluators, index-aligned with arg_evals_ (null for
  /// count(*)); consulted only on the columnar drain.
  std::vector<std::unique_ptr<ColumnarEvaluator>> cargs_;
  /// Group index: packed key -> dense accumulator slot. Accumulators live
  /// contiguously in accs_; order_ pins insertion order for deterministic
  /// emission (key rows are node-stable in the unordered_map).
  std::unordered_map<PackedKey, uint32_t, PackedKeyHash, PackedKeyEq> groups_;
  std::vector<std::vector<Accumulator>> accs_;
  std::vector<const Row*> order_;  // deterministic emit order
  /// Emission source: the local containers (serial) or the shared merged
  /// result (parallel, worker 0). Non-emitters produce no rows.
  bool emitter_ = true;
  const std::vector<const Row*>* emit_order_ = &order_;
  const std::vector<std::vector<Accumulator>>* emit_accs_ = &accs_;
  size_t emit_pos_ = 0;
};

}  // namespace

PhysicalOpPtr MakeHashAggregateOp(PhysicalOpPtr child,
                                  std::vector<ColumnId> group_cols,
                                  std::vector<AggItem> aggs, bool scalar,
                                  SharedRegionStatePtr shared, int worker) {
  return std::make_unique<HashAggregateOp>(std::move(child),
                                           std::move(group_cols),
                                           std::move(aggs), scalar,
                                           std::move(shared), worker);
}

SharedRegionStatePtr MakeSharedAggState(int workers) {
  return std::make_shared<SharedAggState>(workers);
}

}  // namespace orq
