#include <unordered_map>
#include <unordered_set>

#include "exec/evaluator.h"
#include "exec/ops.h"
#include "exec/packed_key.h"
#include "obs/metrics.h"

namespace orq {

namespace {

/// One accumulator per (group, aggregate).
struct Accumulator {
  int64_t count = 0;          // rows seen (count(*), Max1Row guard)
  int64_t non_null = 0;       // non-NULL inputs (count(x))
  double sum_double = 0.0;
  int64_t sum_int = 0;
  bool sum_is_double = false;
  Value extreme;              // min/max/Max1Row value
  bool has_value = false;
  std::unordered_set<Row, RowHash, RowGroupEq> distinct;  // distinct inputs
};

class HashAggregateOp : public PhysicalOp {
 public:
  HashAggregateOp(PhysicalOpPtr child, std::vector<ColumnId> group_cols,
                  std::vector<AggItem> aggs, bool scalar)
      : aggs_(std::move(aggs)), scalar_(scalar) {
    const std::vector<ColumnId>& in = child->layout();
    for (ColumnId g : group_cols) {
      for (size_t i = 0; i < in.size(); ++i) {
        if (in[i] == g) {
          group_slots_.push_back(static_cast<int>(i));
          break;
        }
      }
      layout_.push_back(g);
    }
    for (const AggItem& agg : aggs_) {
      layout_.push_back(agg.output);
      arg_evals_.emplace_back(
          agg.arg != nullptr ? Evaluator(agg.arg, in) : Evaluator());
    }
    children_.push_back(std::move(child));
  }

  Status OpenImpl(ExecContext* ctx) override {
    groups_.clear();
    accs_.clear();
    order_.clear();
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    // Batched input drain; group keys probe a packed-key map (hash
    // computed once per probe, key values copied only on a new group) that
    // indexes dense per-group accumulator storage.
    RowBatch batch(ctx->batch_size);
    Row key(group_slots_.size());
    MetricsRegistry* m = metrics();
    while (true) {
      ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &batch));
      if (batch.empty()) break;
      if (m != nullptr) {
        m->Add(MetricCounter::kHashAggInputRows,
               static_cast<int64_t>(batch.size()));
      }
      for (size_t r = 0; r < batch.size(); ++r) {
        const Row& row = batch.row(r);
        for (size_t i = 0; i < group_slots_.size(); ++i) {
          key[i] = row[group_slots_[i]];
        }
        auto it = groups_.find(key);
        if (it == groups_.end()) {
          it = groups_
                   .emplace(PackedKey(std::move(key)),
                            static_cast<uint32_t>(accs_.size()))
                   .first;
          key = Row(group_slots_.size());
          accs_.emplace_back(aggs_.size());
          order_.push_back(&it->first.values);
        }
        ORQ_RETURN_IF_ERROR(Accumulate(&accs_[it->second], row, ctx));
      }
    }
    children_[0]->Close();
    RecordPeak(static_cast<int64_t>(groups_.size()));
    if (m != nullptr) {
      m->Add(MetricCounter::kHashAggGroups,
             static_cast<int64_t>(groups_.size()));
      // Occupied-bucket chain lengths at build end — the collision shape a
      // probe walks (hash quality + load factor in one distribution).
      for (size_t b = 0; b < groups_.bucket_count(); ++b) {
        const int64_t chain = static_cast<int64_t>(groups_.bucket_size(b));
        if (chain > 0) m->Observe(MetricHistogram::kHashAggBucketChain, chain);
      }
    }
    emit_pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext*, Row* row) override {
    if (scalar_ && groups_.empty()) {
      if (emit_pos_ > 0) return false;
      ++emit_pos_;
      // Aggregates over the empty input (section 1.1): count = 0, the rest
      // NULL.
      row->clear();
      for (const AggItem& agg : aggs_) {
        row->push_back(AggNullOnEmpty(agg.func) ? Value::Null()
                                                : Value::Int64(0));
      }
      return true;
    }
    if (emit_pos_ >= order_.size()) return false;
    *row = *order_[emit_pos_];
    const std::vector<Accumulator>& accs = accs_[emit_pos_++];
    for (size_t i = 0; i < aggs_.size(); ++i) {
      row->push_back(Finalize(aggs_[i], accs[i]));
    }
    return true;
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    if (scalar_ && groups_.empty()) return FillFromNextImpl(ctx, out);
    while (emit_pos_ < order_.size() && !out->full()) {
      Row& slot = out->PushRow();
      slot = *order_[emit_pos_];
      const std::vector<Accumulator>& accs = accs_[emit_pos_++];
      for (size_t i = 0; i < aggs_.size(); ++i) {
        slot.push_back(Finalize(aggs_[i], accs[i]));
      }
    }
    return Status::OK();
  }

  void CloseImpl() override {
    groups_.clear();
    accs_.clear();
    order_.clear();
  }

  std::string name() const override {
    if (scalar_) return "ScalarAggregate";
    return "HashAggregate";
  }

 private:
  Status Accumulate(std::vector<Accumulator>* accs, const Row& row,
                    ExecContext* ctx) {
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggItem& agg = aggs_[i];
      Accumulator& acc = (*accs)[i];
      ++acc.count;
      if (agg.func == AggFunc::kMax1Row && acc.count > 1) {
        return Status::CardinalityViolation(
            "scalar subquery returned more than one row");
      }
      if (agg.func == AggFunc::kCountStar) continue;
      ORQ_ASSIGN_OR_RETURN(Value v, arg_evals_[i].Eval(row, ctx));
      if (agg.func == AggFunc::kMax1Row) {
        acc.extreme = std::move(v);
        acc.has_value = true;
        continue;
      }
      if (v.is_null()) continue;
      if (agg.distinct && !acc.distinct.insert(Row{v}).second) continue;
      ++acc.non_null;
      switch (agg.func) {
        case AggFunc::kCount:
          break;
        case AggFunc::kSum:
          if (v.type() == DataType::kDouble) {
            acc.sum_is_double = true;
            acc.sum_double += v.double_value();
          } else {
            acc.sum_int += v.int64_value();
          }
          break;
        case AggFunc::kMin:
          if (!acc.has_value || v.TotalCompare(acc.extreme) < 0) {
            acc.extreme = std::move(v);
            acc.has_value = true;
          }
          break;
        case AggFunc::kMax:
          if (!acc.has_value || v.TotalCompare(acc.extreme) > 0) {
            acc.extreme = std::move(v);
            acc.has_value = true;
          }
          break;
        default:
          break;
      }
    }
    return Status::OK();
  }

  static Value Finalize(const AggItem& agg, const Accumulator& acc) {
    switch (agg.func) {
      case AggFunc::kCountStar:
        return Value::Int64(acc.count);
      case AggFunc::kCount:
        return Value::Int64(acc.non_null);
      case AggFunc::kSum:
        if (acc.non_null == 0) return Value::Null();
        if (acc.sum_is_double) {
          return Value::Double(acc.sum_double +
                               static_cast<double>(acc.sum_int));
        }
        return Value::Int64(acc.sum_int);
      case AggFunc::kMin:
      case AggFunc::kMax:
      case AggFunc::kMax1Row:
        return acc.has_value ? acc.extreme : Value::Null();
    }
    return Value::Null();
  }

  std::vector<AggItem> aggs_;
  bool scalar_;
  std::vector<int> group_slots_;
  std::vector<Evaluator> arg_evals_;
  /// Group index: packed key -> dense accumulator slot. Accumulators live
  /// contiguously in accs_; order_ pins insertion order for deterministic
  /// emission (key rows are node-stable in the unordered_map).
  std::unordered_map<PackedKey, uint32_t, PackedKeyHash, PackedKeyEq> groups_;
  std::vector<std::vector<Accumulator>> accs_;
  std::vector<const Row*> order_;  // deterministic emit order
  size_t emit_pos_ = 0;
};

}  // namespace

PhysicalOpPtr MakeHashAggregateOp(PhysicalOpPtr child,
                                  std::vector<ColumnId> group_cols,
                                  std::vector<AggItem> aggs, bool scalar) {
  return std::make_unique<HashAggregateOp>(std::move(child),
                                           std::move(group_cols),
                                           std::move(aggs), scalar);
}

}  // namespace orq
