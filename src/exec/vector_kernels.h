#ifndef ORQ_EXEC_VECTOR_KERNELS_H_
#define ORQ_EXEC_VECTOR_KERNELS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "algebra/scalar_expr.h"
#include "common/result.h"
#include "exec/column_batch.h"
#include "exec/exec.h"

namespace orq {

/// Column-wise key hashing, RowHash-compatible: seed every selected row
/// with RowHash's initial value, then fold key columns in left-to-right
/// with HashCombineColumn. The result for row i equals
/// RowHash{}(decoded key row i), so columnar probes and PackedKey tables
/// built from Rows agree on buckets.
void InitKeyHashes(const ColumnBatch& batch, std::vector<size_t>* hashes);
void HashCombineColumn(const ColumnBatch& batch, const ColumnVec& col,
                       std::vector<size_t>* hashes);

/// Truth of one element under Value::bool_value semantics (int payload
/// != 0; doubles and strings read the zero int payload, i.e. false):
/// -1 = NULL, 0 = not-true, 1 = true. This is exactly how the row
/// engine's kAnd/kOr treat operand values.
inline int PredTruthElem(const ColumnVec& c, uint32_t i) {
  if (c.rep() == ColumnRep::kValues) {
    const Value& v = c.ValAt(i);
    return v.is_null() ? -1 : (v.bool_value() ? 1 : 0);
  }
  if (c.IsNull(i)) return -1;
  return c.rep() == ColumnRep::kInts ? (c.IntAt(i) != 0 ? 1 : 0) : 0;
}

/// Compiles a scalar expression for column-at-a-time evaluation.
///
/// vectorizable() accepts exactly the node kinds whose evaluation cannot
/// reach a runtime error the row engine wouldn't also reach per element:
/// column refs, literals, AND/OR/NOT, comparisons, arithmetic except
/// division (the one error site — division by zero — in an otherwise
/// statically-typed tree), negate, IS [NOT] NULL. Everything else (LIKE,
/// CASE, IN-lists, subquery remnants) stays on the row evaluator; callers
/// check vectorizable() and fall back per decoded row.
///
/// Eval runs over the batch's selected rows and returns a column indexed
/// by physical row position (unselected slots hold garbage), valid until
/// the next Eval call on this instance. Mixed-tag (kValues) inputs take a
/// per-element boxed path through the same EvalArith/SqlCompare the row
/// engine uses, so results match to the bit.
class ColumnarEvaluator {
 public:
  ColumnarEvaluator() = default;

  void Compile(ScalarExprPtr expr, const std::vector<ColumnId>& layout);
  bool vectorizable() const { return vectorizable_; }
  const ScalarExprPtr& expr() const { return expr_; }

  Result<const ColumnVec*> Eval(const ColumnBatch& batch, ExecContext* ctx);

 private:
  Result<const ColumnVec*> EvalNode(const ScalarExpr& e,
                                    const ColumnBatch& batch,
                                    ExecContext* ctx);
  const Value* ConstOf(const ScalarExpr& e, ExecContext* ctx) const;
  const ColumnVec* Broadcast(const Value& v, const ColumnBatch& batch);
  ColumnVec* NewScratch();

  Status CompareNode(const ScalarExpr& e, const ColumnBatch& batch,
                     ExecContext* ctx, ColumnVec* out);
  Status ArithNode(const ScalarExpr& e, const ColumnBatch& batch,
                   ExecContext* ctx, ColumnVec* out);

  bool CheckVectorizable(const ScalarExpr& e) const;

  ScalarExprPtr expr_;
  std::unordered_map<ColumnId, int> slots_;
  bool vectorizable_ = false;
  /// Per-node result storage, reused across batches. unique_ptr entries so
  /// pointers handed out for earlier nodes survive pool growth.
  std::vector<std::unique_ptr<ColumnVec>> pool_;
  size_t pool_pos_ = 0;
};

}  // namespace orq

#endif  // ORQ_EXEC_VECTOR_KERNELS_H_
