#ifndef ORQ_EXEC_EXEC_H_
#define ORQ_EXEC_EXEC_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/column.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace orq {

/// Run-time context shared by an operator tree. Correlated execution (Apply,
/// index lookup) communicates outer-row values through `params`; segmented
/// execution (SegmentApply) communicates the current segment through
/// `segment_stack`.
struct ExecContext {
  /// Current values of correlated parameters, keyed by column id.
  std::unordered_map<ColumnId, Value> params;
  /// Innermost current segment for SegmentScan leaves (rows share the
  /// segmenting operator's input layout).
  std::vector<const std::vector<Row>*> segment_stack;
  /// Number of rows produced by all operators (a cheap work metric used by
  /// tests and benchmarks to compare strategies).
  int64_t rows_produced = 0;
};

/// Volcano-style iterator. Operators are single-use: Open, drain via Next,
/// Close. Re-Open after Close restarts the operator (correlated inners are
/// re-opened per outer row with fresh parameter values).
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  /// Output layout: row slot i holds the value of column layout()[i].
  const std::vector<ColumnId>& layout() const { return layout_; }

  virtual Status Open(ExecContext* ctx) = 0;
  /// Fills `row` and returns true, or returns false at end of stream.
  virtual Result<bool> Next(ExecContext* ctx, Row* row) = 0;
  virtual void Close() = 0;

  virtual std::string name() const = 0;
  const std::vector<PhysicalOp*> children() const {
    std::vector<PhysicalOp*> out;
    for (const auto& child : children_) out.push_back(child.get());
    return out;
  }

 protected:
  std::vector<ColumnId> layout_;
  std::vector<std::unique_ptr<PhysicalOp>> children_;
};

using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

/// Runs a plan to completion, collecting all rows.
Result<std::vector<Row>> ExecuteToVector(PhysicalOp* plan, ExecContext* ctx);

/// Indented physical-plan rendering for EXPLAIN.
std::string PrintPhysicalPlan(const PhysicalOp& plan,
                              const ColumnManager* columns);

}  // namespace orq

#endif  // ORQ_EXEC_EXEC_H_
