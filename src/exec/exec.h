#ifndef ORQ_EXEC_EXEC_H_
#define ORQ_EXEC_EXEC_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/column.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "obs/stats.h"

namespace orq {

/// Run-time context shared by an operator tree. Correlated execution (Apply,
/// index lookup) communicates outer-row values through `params`; segmented
/// execution (SegmentApply) communicates the current segment through
/// `segment_stack`.
struct ExecContext {
  /// Current values of correlated parameters, keyed by column id.
  std::unordered_map<ColumnId, Value> params;
  /// Innermost current segment for SegmentScan leaves (rows share the
  /// segmenting operator's input layout).
  std::vector<const std::vector<Row>*> segment_stack;
  /// Number of rows produced by all operators (a cheap work metric used by
  /// tests and benchmarks to compare strategies). Maintained by
  /// PhysicalOp::Next — the single accounting site — whether or not a stats
  /// collector is attached.
  int64_t rows_produced = 0;
  /// Optional per-operator stats collection (EXPLAIN ANALYZE). Null keeps
  /// the Volcano hot path at one extra branch per call.
  StatsCollector* stats = nullptr;
};

/// Volcano-style iterator. Operators are single-use: Open, drain via Next,
/// Close. Re-Open after Close restarts the operator (correlated inners are
/// re-opened per outer row with fresh parameter values).
///
/// Open/Next/Close are non-virtual shells around the OpenImpl/NextImpl/
/// CloseImpl hooks so the base class can account rows and, when the context
/// carries a StatsCollector, per-operator call counts and wall time.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  /// Output layout: row slot i holds the value of column layout()[i].
  const std::vector<ColumnId>& layout() const { return layout_; }

  Status Open(ExecContext* ctx) {
    if (ctx->stats == nullptr) {
      stats_ = nullptr;
      return OpenImpl(ctx);
    }
    stats_ = ctx->stats->StatsFor(this);
    const int64_t start = ObsNowNanos();
    Status status = OpenImpl(ctx);
    ++stats_->open_calls;
    stats_->wall_nanos += ObsNowNanos() - start;
    return status;
  }

  /// Fills `row` and returns true, or returns false at end of stream.
  Result<bool> Next(ExecContext* ctx, Row* row) {
    if (stats_ == nullptr) {
      Result<bool> more = NextImpl(ctx, row);
      if (more.ok() && *more) ++ctx->rows_produced;
      return more;
    }
    const int64_t start = ObsNowNanos();
    Result<bool> more = NextImpl(ctx, row);
    stats_->wall_nanos += ObsNowNanos() - start;
    ++stats_->next_calls;
    if (more.ok() && *more) {
      ++stats_->rows_out;
      ++ctx->rows_produced;
    }
    return more;
  }

  void Close() {
    if (stats_ == nullptr) {
      CloseImpl();
      return;
    }
    const int64_t start = ObsNowNanos();
    CloseImpl();
    ++stats_->close_calls;
    stats_->wall_nanos += ObsNowNanos() - start;
  }

  virtual std::string name() const = 0;

  const std::vector<PhysicalOp*>& children() const {
    if (child_view_.size() != children_.size()) {
      child_view_.clear();
      child_view_.reserve(children_.size());
      for (const auto& child : children_) child_view_.push_back(child.get());
    }
    return child_view_;
  }

  /// Cost-model estimates for the logical node this operator implements;
  /// negative when the plan was built without a cost model (plain Execute)
  /// or the operator is an auxiliary op with no logical counterpart.
  double est_rows() const { return est_rows_; }
  double est_cost() const { return est_cost_; }
  void set_estimates(double rows, double cost) {
    est_rows_ = rows;
    est_cost_ = cost;
  }

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<bool> NextImpl(ExecContext* ctx, Row* row) = 0;
  virtual void CloseImpl() = 0;

  /// Stateful operators report the size of their materialized state (hash
  /// table, sort buffer, spool, segment map) after building it. No-op when
  /// collection is disabled.
  void RecordPeak(int64_t cardinality) {
    if (stats_ != nullptr && cardinality > stats_->peak_cardinality) {
      stats_->peak_cardinality = cardinality;
    }
  }

  std::vector<ColumnId> layout_;
  std::vector<std::unique_ptr<PhysicalOp>> children_;

 private:
  OpStats* stats_ = nullptr;
  double est_rows_ = -1.0;
  double est_cost_ = -1.0;
  mutable std::vector<PhysicalOp*> child_view_;
};

using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

/// Runs a plan to completion, collecting all rows.
Result<std::vector<Row>> ExecuteToVector(PhysicalOp* plan, ExecContext* ctx);

/// Indented physical-plan rendering for EXPLAIN.
std::string PrintPhysicalPlan(const PhysicalOp& plan,
                              const ColumnManager* columns);

}  // namespace orq

#endif  // ORQ_EXEC_EXEC_H_
