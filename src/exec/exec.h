#ifndef ORQ_EXEC_EXEC_H_
#define ORQ_EXEC_EXEC_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/column.h"
#include "catalog/table.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/cancel.h"
#include "exec/column_batch.h"
#include "obs/stats.h"

namespace orq {

/// Rows moved between operators per NextBatch call. Large enough to
/// amortize the virtual call and the per-batch bookkeeping, small enough
/// that a batch of rows stays cache-resident.
inline constexpr int kDefaultBatchRows = 1024;

/// Upper bound on batch_size. Selection vectors and join gather lists
/// index rows with uint32, and per-batch scratch is O(batch_size); 64k
/// rows is far past the cache-residency sweet spot already.
inline constexpr int kMaxBatchRows = 64 * 1024;

/// The single batch-size validity check, shared by SET batch_size and the
/// engine's option intake so neither silently clamps.
inline Status ValidateBatchSize(int batch_size) {
  if (batch_size < 1 || batch_size > kMaxBatchRows) {
    return Status::InvalidArgument(
        "batch_size must be in [1, " + std::to_string(kMaxBatchRows) +
        "], got " + std::to_string(batch_size));
  }
  return Status::OK();
}

/// Execution-mode knobs, threaded from EngineOptions into ExecContext.
struct ExecOptions {
  /// When false, every operator's NextBatch degrades to the row-at-a-time
  /// adapter over NextImpl — the classic Volcano engine, kept as the
  /// difftest reference configuration for the batched path.
  bool batched = true;
  /// Columnar (SoA) execution: converted operators exchange ColumnBatches
  /// (exec/column_batch.h) and run type-specialized kernels; unconverted
  /// operators keep their row/batch paths behind transpose adapters.
  /// Single-threaded only — the parallel engine's exchange queues move
  /// RowBatch, so columnar together with num_threads >= 1 is rejected by
  /// ValidateExecOptions (no silent fallback).
  bool columnar = false;
  int batch_size = kDefaultBatchRows;
  /// Storage encoding columnar table scans request from the catalog
  /// (`SET table_encoding plain|dict|rle|auto`). Plain by default; kAuto
  /// lets each column chunk pick dictionary/RLE by heuristic. Row and
  /// batch modes ignore it (they read the row store directly).
  TableEncoding table_encoding = TableEncoding::kPlain;
  /// Morsel-driven parallel execution. 0 keeps the classic single-threaded
  /// engine (no thread pool, plans unchanged); N >= 1 builds N instances of
  /// each eligible subtree under an exchange operator and runs them on an
  /// N-thread work-stealing pool — num_threads == 1 exists to measure the
  /// parallel mode's fixed overhead.
  int num_threads = 0;
  /// Rows per morsel claim for parallel table scans (see exec/parallel.h).
  int morsel_rows = 4096;
};

/// The single exec-mode validity check, shared by SET handlers and the
/// engine's option intake (the ValidateBatchSize pattern): neither side
/// silently clamps or falls back, so an impossible combination fails the
/// query (or the SET) with the same message everywhere.
inline Status ValidateExecOptions(const ExecOptions& exec) {
  ORQ_RETURN_IF_ERROR(ValidateBatchSize(exec.batch_size));
  if (exec.columnar && exec.num_threads > 0) {
    return Status::InvalidArgument(
        "exec columnar is single-threaded (exchange queues move row "
        "batches); SET threads 0 or SET exec batch before combining, got "
        "threads " + std::to_string(exec.num_threads));
  }
  return Status::OK();
}

/// Names for TableEncoding, shared by SET, difftest flags, and EXPLAIN.
inline const char* TableEncodingName(TableEncoding mode) {
  switch (mode) {
    case TableEncoding::kPlain: return "plain";
    case TableEncoding::kDict: return "dict";
    case TableEncoding::kRle: return "rle";
    case TableEncoding::kAuto: return "auto";
  }
  return "plain";
}
inline std::optional<TableEncoding> ParseTableEncoding(
    std::string_view name) {
  if (name == "plain") return TableEncoding::kPlain;
  if (name == "dict") return TableEncoding::kDict;
  if (name == "rle") return TableEncoding::kRle;
  if (name == "auto") return TableEncoding::kAuto;
  return std::nullopt;
}

/// A fixed-capacity buffer of rows passed between operators. Row storage
/// is preallocated and reused across refills: Clear() resets the logical
/// size but keeps every row's Value vector (and the string payloads
/// inside) allocated, so steady-state batch traffic does not allocate.
/// Row addresses are stable — PushRow never reallocates — which lets
/// operators hold a pointer to a row across calls while composing output.
class RowBatch {
 public:
  explicit RowBatch(int capacity = kDefaultBatchRows)
      : rows_(capacity > 0 ? static_cast<size_t>(capacity) : 1) {}

  size_t capacity() const { return rows_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == rows_.size(); }

  Row& row(size_t i) { return rows_[i]; }
  const Row& row(size_t i) const { return rows_[i]; }

  /// Exposes the next free slot and grows the logical size. The slot may
  /// hold a stale row from a previous refill; callers overwrite it.
  Row& PushRow() { return rows_[size_++]; }
  /// Retracts the most recent PushRow (e.g. a row a predicate rejected).
  void PopRow() { --size_; }
  void Clear() { size_ = 0; }

 private:
  std::vector<Row> rows_;
  size_t size_ = 0;
};

class MetricsRegistry;
class SpanRecorder;
class TaskPool;

/// Optional instrumentation sinks for one execution, bundled so the
/// operator shells test a single pointer: per-operator stats (EXPLAIN
/// ANALYZE), the engine metrics registry, and the span recorder. Any
/// member may be null; a null bundle is the plain Execute path.
struct ExecInstruments {
  StatsCollector* stats = nullptr;
  MetricsRegistry* metrics = nullptr;
  SpanRecorder* spans = nullptr;
};

/// Run-time context shared by an operator tree. Correlated execution (Apply,
/// index lookup) communicates outer-row values through `params`; segmented
/// execution (SegmentApply) communicates the current segment through
/// `segment_stack`.
struct ExecContext {
  /// Current values of correlated parameters, keyed by column id.
  std::unordered_map<ColumnId, Value> params;
  /// Innermost current segment for SegmentScan leaves (rows share the
  /// segmenting operator's input layout).
  std::vector<const std::vector<Row>*> segment_stack;
  /// Number of rows produced by all operators (a cheap work metric used by
  /// tests and benchmarks to compare strategies). Maintained by the
  /// PhysicalOp::Next / NextBatch shells — the single accounting sites —
  /// whether or not instrumentation is attached.
  int64_t rows_produced = 0;
  /// Optional instrumentation (stats / metrics / spans). Null keeps the
  /// Volcano hot path at one extra branch per call.
  const ExecInstruments* instruments = nullptr;
  /// Batch-at-a-time execution toggle and batch sizing (ExecOptions).
  bool batched = true;
  /// Columnar execution toggle (ExecOptions::columnar). Set by the engine
  /// only for single-threaded executions; operator shells route NextBatch
  /// through the columnar path for columnar-capable operators when set.
  bool columnar = false;
  int batch_size = kDefaultBatchRows;
  /// Storage encoding columnar table scans request from the catalog
  /// (ExecOptions::table_encoding).
  TableEncoding table_encoding = TableEncoding::kPlain;
  /// Worker pool for exchange operators, or nullptr on single-threaded
  /// executions. Owned by the engine; a parallel plan executed without a
  /// pool fails at Open rather than silently serializing.
  TaskPool* pool = nullptr;
  /// Rows per parallel-scan morsel claim (ExecOptions::morsel_rows).
  int morsel_rows = 4096;
  /// Cooperative cancellation/deadline token, or nullptr when the caller
  /// set no bound. Polled by the operator shells (every batch pull, every
  /// Open, and a throttled fraction of row-mode pulls), so a firing token
  /// surfaces as Cancelled/DeadlineExceeded within one batch of work.
  const CancelToken* cancel = nullptr;
  /// Row-mode poll throttle: the per-row Next shell consults the token
  /// only every 64th call, keeping the clock read off the per-row path.
  uint32_t cancel_tick = 0;
  /// Optional live-progress feed: when set, the shells publish
  /// rows_produced here (relaxed store) at every batch pull and every
  /// throttled row-mode poll, so `\queries` can show rows produced so far
  /// without touching the executor. Parallel workers run private contexts
  /// that leave this null, so the published figure is a lower bound under
  /// parallel execution (the consumer side still publishes).
  std::atomic<int64_t>* progress_rows = nullptr;

  /// Token poll shared by the shells; OK when no token is attached.
  Status CheckCancel() const {
    return cancel != nullptr ? cancel->Check() : Status::OK();
  }
};

/// Volcano-style iterator with an optional batched pull path. Operators are
/// single-use: Open, drain via Next or NextBatch (one interface per Open,
/// never interleaved), Close. Re-Open after Close restarts the operator
/// (correlated inners are re-opened per outer row with fresh parameters).
///
/// Open/Next/NextBatch/Close are non-virtual shells around the OpenImpl/
/// NextImpl/NextBatchImpl/CloseImpl hooks so the base class can account rows
/// and, when the context carries a StatsCollector, per-operator call counts
/// and wall time. NextBatchImpl defaults to an adapter that loops NextImpl;
/// hot operators (scan, filter, project, hash join/aggregate, uncorrelated
/// nested loops) override it with tight loops over whole batches.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;

  /// Output layout: row slot i holds the value of column layout()[i].
  const std::vector<ColumnId>& layout() const { return layout_; }

  Status Open(ExecContext* ctx) {
    // Correlated Apply re-opens its inner once per outer row, and an Open
    // may drain a whole child (hash build, sort, spool) — poll here so a
    // fired token stops the re-open storm at its source.
    ORQ_RETURN_IF_ERROR(ctx->CheckCancel());
    if (ctx->instruments == nullptr) {
      instrumented_ = false;
      stats_ = nullptr;
      metrics_ = nullptr;
      spans_ = nullptr;
      return OpenImpl(ctx);
    }
    return OpenInstrumented(ctx);
  }

  /// Fills `row` and returns true, or returns false at end of stream.
  Result<bool> Next(ExecContext* ctx, Row* row) {
    if ((ctx->cancel != nullptr || ctx->progress_rows != nullptr) &&
        (++ctx->cancel_tick & 63u) == 0u) {
      if (ctx->progress_rows != nullptr) {
        ctx->progress_rows->store(ctx->rows_produced,
                                  std::memory_order_relaxed);
      }
      Status cancelled = ctx->CheckCancel();
      if (!cancelled.ok()) return cancelled;
    }
    if (stats_ == nullptr) {
      Result<bool> more = NextImpl(ctx, row);
      if (more.ok() && *more) ++ctx->rows_produced;
      return more;
    }
    return NextInstrumented(ctx, row);
  }

  /// Clears `batch` and refills it with up to batch->capacity() rows. An
  /// empty batch on return signals end of stream — implementations never
  /// return an empty batch while rows remain. With a StatsCollector
  /// attached, next_calls counts batch pulls while rows_out counts rows,
  /// so the two diverge by roughly the batch size on this path.
  Status NextBatch(ExecContext* ctx, RowBatch* batch) {
    batch->Clear();
    if (ctx->progress_rows != nullptr) {
      ctx->progress_rows->store(ctx->rows_produced, std::memory_order_relaxed);
    }
    ORQ_RETURN_IF_ERROR(ctx->CheckCancel());
    if (!instrumented_) {
      Status status = ctx->columnar && columnar_capable_
                          ? FillFromColumnsImpl(ctx, batch)
                          : ctx->batched ? NextBatchImpl(ctx, batch)
                                         : FillFromNextImpl(ctx, batch);
      if (status.ok()) ctx->rows_produced += batch->size();
      return status;
    }
    return NextBatchInstrumented(ctx, batch);
  }

  /// Columnar pull: clears `batch` and refills it with up to capacity
  /// physical rows plus a selection vector over the live ones. An empty
  /// batch (selected() == 0) signals end of stream — implementations
  /// loop internally past all-filtered input rather than returning an
  /// empty non-terminal batch. Operators without a columnar path are
  /// adapted transparently: their row/batch output is transposed into
  /// columns, so a columnar parent can always pull NextColumns.
  Status NextColumns(ExecContext* ctx, ColumnBatch* batch) {
    batch->Clear();
    if (ctx->progress_rows != nullptr) {
      ctx->progress_rows->store(ctx->rows_produced, std::memory_order_relaxed);
    }
    ORQ_RETURN_IF_ERROR(ctx->CheckCancel());
    if (!instrumented_) {
      Status status = columnar_capable_ ? NextColumnsImpl(ctx, batch)
                                        : FillColumnsFromRows(ctx, batch);
      if (status.ok()) ctx->rows_produced += batch->selected();
      return status;
    }
    return NextColumnsInstrumented(ctx, batch);
  }

  void Close() {
    if (!instrumented_) {
      CloseImpl();
      return;
    }
    CloseInstrumented();
  }

  virtual std::string name() const = 0;

  const std::vector<PhysicalOp*>& children() const {
    if (child_view_.size() != children_.size()) {
      child_view_.clear();
      child_view_.reserve(children_.size());
      for (const auto& child : children_) child_view_.push_back(child.get());
    }
    return child_view_;
  }

  /// Cost-model estimates for the logical node this operator implements;
  /// negative when the plan was built without a cost model (plain Execute)
  /// or the operator is an auxiliary op with no logical counterpart.
  double est_rows() const { return est_rows_; }
  double est_cost() const { return est_cost_; }
  void set_estimates(double rows, double cost) {
    est_rows_ = rows;
    est_cost_ = cost;
  }

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<bool> NextImpl(ExecContext* ctx, Row* row) = 0;
  /// Batched pull hook; the default adapts NextImpl row by row. Overrides
  /// must honor the shell's contract: fill into `batch` (already cleared)
  /// and treat an empty result as end of stream.
  virtual Status NextBatchImpl(ExecContext* ctx, RowBatch* batch) {
    return FillFromNextImpl(ctx, batch);
  }
  /// Columnar pull hook. Only dispatched to when the operator declared
  /// itself columnar-capable (set columnar_capable_ = true in the
  /// constructor alongside the override); everyone else is served by the
  /// FillColumnsFromRows transpose adapter.
  virtual Status NextColumnsImpl(ExecContext* ctx, ColumnBatch* batch) {
    return FillColumnsFromRows(ctx, batch);
  }
  virtual void CloseImpl() = 0;

  /// Row-at-a-time adapter: loops NextImpl into batch slots. Calls the Impl
  /// (not the Next shell) so rows are accounted exactly once, by the
  /// NextBatch shell.
  Status FillFromNextImpl(ExecContext* ctx, RowBatch* batch) {
    while (!batch->full()) {
      Row& slot = batch->PushRow();
      Result<bool> more = NextImpl(ctx, &slot);
      if (!more.ok()) return more.status();
      if (!*more) {
        batch->PopRow();
        break;
      }
    }
    return Status::OK();
  }

  /// Stateful operators report the size of their materialized state (hash
  /// table, sort buffer, spool, segment map) after building it. No-op when
  /// collection is disabled.
  void RecordPeak(int64_t cardinality) {
    if (stats_ != nullptr && cardinality > stats_->peak_cardinality) {
      stats_->peak_cardinality = cardinality;
    }
  }

  /// Engine metrics sink cached at Open, or nullptr when metrics are off.
  /// Operators guard each recording site on this (the RecordPeak pattern):
  /// `if (MetricsRegistry* m = metrics()) m->Add(...)`.
  MetricsRegistry* metrics() const { return metrics_; }

  /// Table scans report the encodings of the column chunks they serve
  /// (once per Open) so EXPLAIN ANALYZE can print the per-scan
  /// `encoding= bytes=` line. No-op when collection is disabled.
  void RecordScanEncoding(int64_t dict_cols, int64_t rle_cols,
                          int64_t plain_cols, int64_t bytes) {
    if (stats_ != nullptr) {
      stats_->enc_dict_cols += dict_cols;
      stats_->enc_rle_cols += rle_cols;
      stats_->enc_plain_cols += plain_cols;
      stats_->enc_bytes += bytes;
    }
  }

  /// Row -> column adapter: pulls this operator's own row path (NextBatchImpl
  /// or the NextImpl loop, per ctx->batched) into scratch and transposes the
  /// rows into typed columns. Column types follow the first row's value tags;
  /// later tag mismatches degrade that column to boxed values.
  Status FillColumnsFromRows(ExecContext* ctx, ColumnBatch* batch);

  std::vector<ColumnId> layout_;
  std::vector<std::unique_ptr<PhysicalOp>> children_;
  /// Set (in the constructor) by operators overriding NextColumnsImpl.
  /// Consulted by both shells: NextColumns dispatches to the override, and
  /// NextBatch in columnar mode routes through FillFromColumnsImpl so the
  /// operator still runs its columnar path under a row-consuming parent.
  bool columnar_capable_ = false;

 private:
  /// Out-of-line instrumented halves of the shells, so the header-inlined
  /// fast paths stay one branch each.
  Status OpenInstrumented(ExecContext* ctx);
  Result<bool> NextInstrumented(ExecContext* ctx, Row* row);
  Status NextBatchInstrumented(ExecContext* ctx, RowBatch* batch);
  Status NextColumnsInstrumented(ExecContext* ctx, ColumnBatch* batch);
  void CloseInstrumented();

  /// Column -> row adapter: pulls this operator's NextColumnsImpl into
  /// scratch and decodes the selected rows into `batch`. Capacities match
  /// (both sized ctx->batch_size), so one column batch fits one row batch.
  Status FillFromColumnsImpl(ExecContext* ctx, RowBatch* batch);

  /// Lazily allocated adapter scratch (most operators never adapt).
  std::unique_ptr<RowBatch> adapter_rows_;
  std::unique_ptr<ColumnBatch> adapter_cols_;

  bool instrumented_ = false;
  OpStats* stats_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  SpanRecorder* spans_ = nullptr;
  /// Open-entry timestamp of the current Open→Close lifetime (span start).
  int64_t open_start_nanos_ = 0;
  double est_rows_ = -1.0;
  double est_cost_ = -1.0;
  mutable std::vector<PhysicalOp*> child_view_;
};

using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

/// Runs a plan to completion, collecting all rows.
Result<std::vector<Row>> ExecuteToVector(PhysicalOp* plan, ExecContext* ctx);

/// Indented physical-plan rendering for EXPLAIN.
std::string PrintPhysicalPlan(const PhysicalOp& plan,
                              const ColumnManager* columns);

}  // namespace orq

#endif  // ORQ_EXEC_EXEC_H_
