#include "exec/vector_kernels.h"

#include <cmath>

#include "exec/evaluator.h"

namespace orq {

void InitKeyHashes(const ColumnBatch& batch, std::vector<size_t>* hashes) {
  hashes->assign(batch.selected(), size_t{0x9e3779b97f4a7c15ull});
}

void HashCombineColumn(const ColumnBatch& batch, const ColumnVec& col,
                       std::vector<size_t>* hashes) {
  size_t* h = hashes->data();
  const uint32_t m = batch.selected();
  if (col.enc() == ColumnEnc::kDict) {
    // Dictionary columns carry every entry's Value::Hash precomputed; one
    // code load + one table load per row, no string bytes touched.
    const uint32_t* codes = col.codes();
    const size_t* dh = col.dict_hashes();
    for (uint32_t j = 0; j < m; ++j) {
      const uint32_t i = batch.RowAt(j);
      const size_t v = col.IsNull(i) ? size_t{0x6e756c6cull} : dh[codes[i]];
      h[j] = h[j] * 1099511628211ull + v;
    }
    return;
  }
  if (col.enc() == ColumnEnc::kRle) {
    // Selected rows are increasing, so the run cursor advances monotonically
    // and each run's value is hashed once.
    uint32_t last_run = UINT32_MAX;
    size_t last_hash = 0;
    for (uint32_t j = 0; j < m; ++j) {
      const uint32_t run = col.RunOf(batch.RowAt(j));
      if (run != last_run) {
        last_run = run;
        last_hash = HashRef(RleRunRef(col, run));
      }
      h[j] = h[j] * 1099511628211ull + last_hash;
    }
    return;
  }
  for (uint32_t j = 0; j < m; ++j) {
    h[j] = h[j] * 1099511628211ull + HashRef(LoadElem(col, batch.RowAt(j)));
  }
}

namespace {

inline int ThreeWayInt(int64_t a, int64_t b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

/// CompareDoubles when the right side is known non-NaN: the fall-through
/// case (none of <, >, == holds) means the left side is NaN, which sorts
/// above everything. Branch-free enough to auto-vectorize.
inline int ThreeWayDoubleVsNonNan(double a, double b) {
  return a < b ? -1 : (a > b ? 1 : (a == b ? 0 : 1));
}

inline bool CmpHolds(CompareOp op, int c) {
  switch (op) {
    case CompareOp::kEq: return c == 0;
    case CompareOp::kNe: return c != 0;
    case CompareOp::kLt: return c < 0;
    case CompareOp::kLe: return c <= 0;
    case CompareOp::kGt: return c > 0;
    case CompareOp::kGe: return c >= 0;
  }
  return false;
}

/// Runs `f(i)` over every live row of the batch.
template <typename F>
inline void ForEachLive(const ColumnBatch& b, F f) {
  if (b.has_selection()) {
    for (uint32_t i : b.selection()) f(i);
  } else {
    const uint32_t n = b.num_rows();
    for (uint32_t i = 0; i < n; ++i) f(i);
  }
}

/// Compare emitter: o[i] = op(tw(i)) for live rows, NULL where either
/// input null mask is set. The dense no-null specialization is the loop
/// the compiler vectorizes. Typed reps only (null masks are raw arrays).
template <typename ThreeWay>
void EmitCmp(CompareOp op, const ColumnBatch& b, const uint8_t* ln,
             const uint8_t* rn, int64_t* o, uint8_t* on, bool* any_null,
             ThreeWay tw) {
  auto run = [&](auto pred) {
    const uint32_t n = b.num_rows();
    if (!b.has_selection() && ln == nullptr && rn == nullptr) {
      for (uint32_t i = 0; i < n; ++i) o[i] = pred(tw(i)) ? 1 : 0;
      return;
    }
    auto one = [&](uint32_t i) {
      if ((ln != nullptr && ln[i] != 0) || (rn != nullptr && rn[i] != 0)) {
        on[i] = 1;
        *any_null = true;
      } else {
        o[i] = pred(tw(i)) ? 1 : 0;
      }
    };
    ForEachLive(b, one);
  };
  switch (op) {
    case CompareOp::kEq: run([](int c) { return c == 0; }); break;
    case CompareOp::kNe: run([](int c) { return c != 0; }); break;
    case CompareOp::kLt: run([](int c) { return c < 0; }); break;
    case CompareOp::kLe: run([](int c) { return c <= 0; }); break;
    case CompareOp::kGt: run([](int c) { return c > 0; }); break;
    case CompareOp::kGe: run([](int c) { return c >= 0; }); break;
  }
}

/// Arithmetic emitter: o[i] = f(i) for live rows, NULL propagation from
/// either side's mask.
template <typename Out, typename F>
void EmitLanes(const ColumnBatch& b, const uint8_t* ln, const uint8_t* rn,
               Out* o, uint8_t* on, bool* any_null, F f) {
  const uint32_t n = b.num_rows();
  if (!b.has_selection() && ln == nullptr && rn == nullptr) {
    for (uint32_t i = 0; i < n; ++i) o[i] = f(i);
    return;
  }
  ForEachLive(b, [&](uint32_t i) {
    if ((ln != nullptr && ln[i] != 0) || (rn != nullptr && rn[i] != 0)) {
      on[i] = 1;
      *any_null = true;
    } else {
      o[i] = f(i);
    }
  });
}

/// An int64 lane: either a column's array or a constant.
struct I64Lane {
  const int64_t* arr = nullptr;
  int64_t c = 0;
  int64_t operator()(uint32_t i) const { return arr != nullptr ? arr[i] : c; }
};

/// A double lane: a double column, an int64 column promoted per element
/// (Value::AsDouble), or a constant already promoted.
struct DblLane {
  const double* darr = nullptr;
  const int64_t* iarr = nullptr;
  double c = 0.0;
  double operator()(uint32_t i) const {
    if (darr != nullptr) return darr[i];
    if (iarr != nullptr) return static_cast<double>(iarr[i]);
    return c;
  }
};

void CompareColConst(CompareOp op, const ColumnVec& col, const Value& cv,
                     const ColumnBatch& b, ColumnVec* out) {
  const uint32_t n = b.num_rows();
  out->PrepareScatter(DataType::kBool, n);
  int64_t* o = out->MutableInts();
  uint8_t* on = out->MutableNulls();
  bool any_null = false;
  bool done = false;
  if (cv.is_null()) {
    ForEachLive(b, [&](uint32_t i) { on[i] = 1; });
    any_null = true;
    done = true;
  } else if (col.enc() == ColumnEnc::kDict) {
    // Translate the literal once per dictionary entry into a truth table
    // (1 true / 0 false / -1 NULL-incomparable), then the per-row loop is
    // a uint32 code load and a table lookup — no value comparison per row.
    const ElemRef cr = LoadValue(cv);
    const uint32_t ds = col.dict_size();
    std::vector<int8_t> table(ds);
    for (uint32_t e = 0; e < ds; ++e) {
      std::optional<int> c = SqlCompareRefs(DictEntryRef(col, e), cr);
      table[e] =
          c.has_value() ? static_cast<int8_t>(CmpHolds(op, *c) ? 1 : 0)
                        : static_cast<int8_t>(-1);
    }
    const uint32_t* codes = col.codes();
    ForEachLive(b, [&](uint32_t i) {
      if (col.IsNull(i)) {
        on[i] = 1;
        any_null = true;
        return;
      }
      const int8_t t = table[codes[i]];
      if (t < 0) {
        on[i] = 1;
        any_null = true;
      } else {
        o[i] = t;
      }
    });
    done = true;
  } else if (col.enc() == ColumnEnc::kRle) {
    // One comparison per run: live rows come in increasing order, so the
    // cached verdict covers every row until the run boundary.
    const ElemRef cr = LoadValue(cv);
    uint32_t last_run = UINT32_MAX;
    int8_t last_t = 0;
    ForEachLive(b, [&](uint32_t i) {
      const uint32_t run = col.RunOf(i);
      if (run != last_run) {
        last_run = run;
        std::optional<int> c = SqlCompareRefs(RleRunRef(col, run), cr);
        last_t =
            c.has_value() ? static_cast<int8_t>(CmpHolds(op, *c) ? 1 : 0)
                          : static_cast<int8_t>(-1);
      }
      if (last_t < 0) {
        on[i] = 1;
        any_null = true;
      } else {
        o[i] = last_t;
      }
    });
    done = true;
  } else if (col.rep() == ColumnRep::kInts) {
    if (col.type() == DataType::kInt64 && cv.type() == DataType::kInt64) {
      const int64_t* a = col.ints();
      const int64_t c = cv.int64_value();
      EmitCmp(op, b, col.nulls(), nullptr, o, on, &any_null,
              [a, c](uint32_t i) { return ThreeWayInt(a[i], c); });
      done = true;
    } else if (col.type() == DataType::kInt64 &&
               cv.type() == DataType::kDouble) {
      const int64_t* a = col.ints();
      const double c = cv.double_value();
      EmitCmp(op, b, col.nulls(), nullptr, o, on, &any_null,
              [a, c](uint32_t i) { return CompareInt64WithDouble(a[i], c); });
      done = true;
    } else if ((col.type() == DataType::kBool ||
                col.type() == DataType::kDate) &&
               cv.type() == col.type()) {
      const int64_t* a = col.ints();
      const int64_t c = cv.type() == DataType::kDate
                            ? static_cast<int64_t>(cv.date_value())
                            : static_cast<int64_t>(cv.bool_value() ? 1 : 0);
      EmitCmp(op, b, col.nulls(), nullptr, o, on, &any_null,
              [a, c](uint32_t i) { return ThreeWayInt(a[i], c); });
      done = true;
    }
  } else if (col.rep() == ColumnRep::kDoubles) {
    if (cv.type() == DataType::kDouble) {
      const double* a = col.doubles();
      const double c = cv.double_value();
      if (std::isnan(c)) {
        EmitCmp(op, b, col.nulls(), nullptr, o, on, &any_null,
                [a, c](uint32_t i) { return CompareDoubles(a[i], c); });
      } else {
        EmitCmp(op, b, col.nulls(), nullptr, o, on, &any_null, [a, c](
                    uint32_t i) { return ThreeWayDoubleVsNonNan(a[i], c); });
      }
      done = true;
    } else if (cv.type() == DataType::kInt64) {
      const double* a = col.doubles();
      const int64_t c = cv.int64_value();
      EmitCmp(op, b, col.nulls(), nullptr, o, on, &any_null, [a, c](
                  uint32_t i) { return -CompareInt64WithDouble(c, a[i]); });
      done = true;
    }
  } else if (col.rep() == ColumnRep::kStrings &&
             cv.type() == DataType::kString) {
    const std::string_view c(cv.string_value());
    EmitCmp(op, b, col.nulls(), nullptr, o, on, &any_null,
            [&col, c](uint32_t i) {
              int s = col.StrAt(i).compare(c);
              return s < 0 ? -1 : (s > 0 ? 1 : 0);
            });
    done = true;
  }
  if (!done) {
    // Boxed reps and statically incomparable pairs (SqlCompare -> NULL).
    const ElemRef cr = LoadValue(cv);
    ForEachLive(b, [&](uint32_t i) {
      std::optional<int> c = SqlCompareRefs(LoadElem(col, i), cr);
      if (c.has_value()) {
        o[i] = CmpHolds(op, *c) ? 1 : 0;
      } else {
        on[i] = 1;
        any_null = true;
      }
    });
  }
  out->SetAnyNull(any_null);
}

void CompareColCol(CompareOp op, const ColumnVec& l, const ColumnVec& r,
                   const ColumnBatch& b, ColumnVec* out) {
  const uint32_t n = b.num_rows();
  out->PrepareScatter(DataType::kBool, n);
  int64_t* o = out->MutableInts();
  uint8_t* on = out->MutableNulls();
  bool any_null = false;
  bool done = false;
  // The numeric fast paths index the raw payload arrays per row, so they
  // require plain encodings on both sides; the string path goes through
  // StrAt (dict-transparent) but its null masks are per-row, which rules
  // out RLE. Encoded pairs the guards reject fall to the ref loop, where
  // LoadElem decodes transparently.
  const bool plain = l.is_plain() && r.is_plain();
  const bool no_rle =
      l.enc() != ColumnEnc::kRle && r.enc() != ColumnEnc::kRle;
  if (plain && l.rep() == ColumnRep::kInts && r.rep() == ColumnRep::kInts &&
      l.type() == r.type()) {
    const int64_t* a = l.ints();
    const int64_t* c = r.ints();
    EmitCmp(op, b, l.nulls(), r.nulls(), o, on, &any_null,
            [a, c](uint32_t i) { return ThreeWayInt(a[i], c[i]); });
    done = true;
  } else if (plain && l.rep() == ColumnRep::kInts &&
             l.type() == DataType::kInt64 &&
             r.rep() == ColumnRep::kDoubles) {
    const int64_t* a = l.ints();
    const double* c = r.doubles();
    EmitCmp(op, b, l.nulls(), r.nulls(), o, on, &any_null, [a, c](
                uint32_t i) { return CompareInt64WithDouble(a[i], c[i]); });
    done = true;
  } else if (plain && l.rep() == ColumnRep::kDoubles &&
             r.rep() == ColumnRep::kInts && r.type() == DataType::kInt64) {
    const double* a = l.doubles();
    const int64_t* c = r.ints();
    EmitCmp(op, b, l.nulls(), r.nulls(), o, on, &any_null, [a, c](
                uint32_t i) { return -CompareInt64WithDouble(c[i], a[i]); });
    done = true;
  } else if (plain && l.rep() == ColumnRep::kDoubles &&
             r.rep() == ColumnRep::kDoubles) {
    const double* a = l.doubles();
    const double* c = r.doubles();
    EmitCmp(op, b, l.nulls(), r.nulls(), o, on, &any_null,
            [a, c](uint32_t i) { return CompareDoubles(a[i], c[i]); });
    done = true;
  } else if (no_rle && l.rep() == ColumnRep::kStrings &&
             r.rep() == ColumnRep::kStrings) {
    EmitCmp(op, b, l.nulls(), r.nulls(), o, on, &any_null,
            [&l, &r](uint32_t i) {
              int s = l.StrAt(i).compare(r.StrAt(i));
              return s < 0 ? -1 : (s > 0 ? 1 : 0);
            });
    done = true;
  }
  if (!done) {
    ForEachLive(b, [&](uint32_t i) {
      std::optional<int> c = SqlCompareRefs(LoadElem(l, i), LoadElem(r, i));
      if (c.has_value()) {
        o[i] = CmpHolds(op, *c) ? 1 : 0;
      } else {
        on[i] = 1;
        any_null = true;
      }
    });
  }
  out->SetAnyNull(any_null);
}

}  // namespace

void ColumnarEvaluator::Compile(ScalarExprPtr expr,
                                const std::vector<ColumnId>& layout) {
  expr_ = std::move(expr);
  slots_.clear();
  for (size_t i = 0; i < layout.size(); ++i) {
    slots_.emplace(layout[i], static_cast<int>(i));
  }
  pool_pos_ = 0;
  vectorizable_ = expr_ != nullptr && CheckVectorizable(*expr_);
}

bool ColumnarEvaluator::CheckVectorizable(const ScalarExpr& e) const {
  switch (e.kind) {
    case ScalarKind::kColumnRef:
    case ScalarKind::kLiteral:
      return true;
    case ScalarKind::kAnd:
    case ScalarKind::kOr:
    case ScalarKind::kNot:
    case ScalarKind::kCompare:
    case ScalarKind::kNegate:
    case ScalarKind::kIsNull:
    case ScalarKind::kIsNotNull:
      break;
    case ScalarKind::kArith:
      // Division is the one runtime-error site reachable from a bound,
      // typed tree; keep it on the per-row path so errors surface on
      // exactly the rows the row engine would evaluate.
      if (e.arith == ArithOp::kDiv) return false;
      break;
    default:
      return false;  // LIKE / CASE / IN / params / subquery remnants
  }
  for (const auto& child : e.children) {
    if (!CheckVectorizable(*child)) return false;
  }
  return true;
}

ColumnVec* ColumnarEvaluator::NewScratch() {
  if (pool_pos_ == pool_.size()) {
    pool_.push_back(std::make_unique<ColumnVec>());
  }
  return pool_[pool_pos_++].get();
}

const Value* ColumnarEvaluator::ConstOf(const ScalarExpr& e,
                                        ExecContext* ctx) const {
  if (e.kind == ScalarKind::kLiteral) return &e.literal;
  if (e.kind == ScalarKind::kColumnRef &&
      slots_.find(e.column) == slots_.end() && ctx != nullptr) {
    auto it = ctx->params.find(e.column);
    if (it != ctx->params.end()) return &it->second;
  }
  return nullptr;
}

const ColumnVec* ColumnarEvaluator::Broadcast(const Value& v,
                                              const ColumnBatch& batch) {
  ColumnVec* out = NewScratch();
  out->PrepareScatterVals(v.type(), batch.num_rows());
  Value* vals = out->MutableVals();
  ForEachLive(batch, [&](uint32_t i) { vals[i] = v; });
  return out;
}

Result<const ColumnVec*> ColumnarEvaluator::Eval(const ColumnBatch& batch,
                                                 ExecContext* ctx) {
  pool_pos_ = 0;
  return EvalNode(*expr_, batch, ctx);
}

Status ColumnarEvaluator::CompareNode(const ScalarExpr& e,
                                      const ColumnBatch& batch,
                                      ExecContext* ctx, ColumnVec* out) {
  const ScalarExpr& le = *e.children[0];
  const ScalarExpr& re = *e.children[1];
  const Value* lc = ConstOf(le, ctx);
  const Value* rc = ConstOf(re, ctx);
  if (lc != nullptr || rc != nullptr) {
    // Normalize the constant to the right side (flip when it is on the
    // left) and run the column-vs-constant kernel.
    ORQ_ASSIGN_OR_RETURN(const ColumnVec* col,
                         EvalNode(lc != nullptr ? re : le, batch, ctx));
    CompareOp op = lc != nullptr ? FlipCompare(e.cmp) : e.cmp;
    CompareColConst(op, *col, lc != nullptr ? *lc : *rc, batch, out);
    return Status::OK();
  }
  ORQ_ASSIGN_OR_RETURN(const ColumnVec* l, EvalNode(le, batch, ctx));
  ORQ_ASSIGN_OR_RETURN(const ColumnVec* r, EvalNode(re, batch, ctx));
  CompareColCol(e.cmp, *l, *r, batch, out);
  return Status::OK();
}

Status ColumnarEvaluator::ArithNode(const ScalarExpr& e,
                                    const ColumnBatch& batch,
                                    ExecContext* ctx, ColumnVec* out) {
  const ScalarExpr& le = *e.children[0];
  const ScalarExpr& re = *e.children[1];
  const Value* lc = ConstOf(le, ctx);
  const Value* rc = ConstOf(re, ctx);
  const ColumnVec* L = nullptr;
  const ColumnVec* R = nullptr;
  if (lc == nullptr) {
    ORQ_ASSIGN_OR_RETURN(L, EvalNode(le, batch, ctx));
  }
  if (rc == nullptr) {
    ORQ_ASSIGN_OR_RETURN(R, EvalNode(re, batch, ctx));
  }

  const uint32_t n = batch.num_rows();
  const ArithOp op = e.arith;
  // A NULL constant annihilates the whole column (EvalArith's NULL
  // propagation), regardless of the other side.
  if ((lc != nullptr && lc->is_null()) || (rc != nullptr && rc->is_null())) {
    out->PrepareScatter(e.type, n);
    uint8_t* on = out->MutableNulls();
    if (out->rep() == ColumnRep::kValues) return Status::OK();  // all NULL
    ForEachLive(batch, [&](uint32_t i) { on[i] = 1; });
    out->SetAnyNull(true);
    return Status::OK();
  }

  // Boxed and encoded inputs both leave the lane fast paths (which index
  // raw payload arrays per row) for the element-wise tail, where GetValue
  // decodes transparently.
  const bool boxed =
      (L != nullptr && (L->rep() == ColumnRep::kValues || !L->is_plain())) ||
      (R != nullptr && (R->rep() == ColumnRep::kValues || !R->is_plain()));
  const DataType lt = lc != nullptr ? lc->type() : L->type();
  const DataType rt = rc != nullptr ? rc->type() : R->type();
  const uint8_t* ln = L != nullptr ? L->nulls() : nullptr;
  const uint8_t* rn = R != nullptr ? R->nulls() : nullptr;
  bool any_null = false;

  if (!boxed && lt == DataType::kDate && rt == DataType::kInt64 &&
      (op == ArithOp::kAdd || op == ArithOp::kSub)) {
    out->PrepareScatter(DataType::kDate, n);
    I64Lane days{L != nullptr ? L->ints() : nullptr,
                 lc != nullptr ? static_cast<int64_t>(lc->date_value()) : 0};
    I64Lane delta{R != nullptr ? R->ints() : nullptr,
                  rc != nullptr ? rc->int64_value() : 0};
    const bool add = op == ArithOp::kAdd;
    EmitLanes(batch, ln, rn, out->MutableInts(), out->MutableNulls(),
              &any_null, [days, delta, add](uint32_t i) {
                // Value::Date narrows to int32; reproduce the wrap.
                int64_t d = add ? static_cast<int32_t>(days(i)) + delta(i)
                                : static_cast<int32_t>(days(i)) - delta(i);
                return static_cast<int64_t>(static_cast<int32_t>(d));
              });
    out->SetAnyNull(any_null);
    return Status::OK();
  }
  if (!boxed && lt == DataType::kDate && rt == DataType::kDate &&
      op == ArithOp::kSub) {
    out->PrepareScatter(DataType::kInt64, n);
    I64Lane a{L != nullptr ? L->ints() : nullptr,
              lc != nullptr ? static_cast<int64_t>(lc->date_value()) : 0};
    I64Lane c{R != nullptr ? R->ints() : nullptr,
              rc != nullptr ? static_cast<int64_t>(rc->date_value()) : 0};
    EmitLanes(batch, ln, rn, out->MutableInts(), out->MutableNulls(),
              &any_null, [a, c](uint32_t i) {
                return static_cast<int64_t>(static_cast<int32_t>(a(i))) -
                       static_cast<int64_t>(static_cast<int32_t>(c(i)));
              });
    out->SetAnyNull(any_null);
    return Status::OK();
  }
  if (!boxed && IsNumeric(lt) && IsNumeric(rt)) {
    if (lt == DataType::kInt64 && rt == DataType::kInt64) {
      out->PrepareScatter(DataType::kInt64, n);
      I64Lane a{L != nullptr ? L->ints() : nullptr,
                lc != nullptr ? lc->int64_value() : 0};
      I64Lane c{R != nullptr ? R->ints() : nullptr,
                rc != nullptr ? rc->int64_value() : 0};
      int64_t* o = out->MutableInts();
      uint8_t* on = out->MutableNulls();
      switch (op) {
        case ArithOp::kAdd:
          EmitLanes(batch, ln, rn, o, on, &any_null,
                    [a, c](uint32_t i) { return a(i) + c(i); });
          break;
        case ArithOp::kSub:
          EmitLanes(batch, ln, rn, o, on, &any_null,
                    [a, c](uint32_t i) { return a(i) - c(i); });
          break;
        case ArithOp::kMul:
          EmitLanes(batch, ln, rn, o, on, &any_null,
                    [a, c](uint32_t i) { return a(i) * c(i); });
          break;
        case ArithOp::kDiv:
          return Status::Internal("division reached the vectorized path");
      }
      out->SetAnyNull(any_null);
      return Status::OK();
    }
    out->PrepareScatter(DataType::kDouble, n);
    auto dbl_lane = [](const ColumnVec* col, const Value* cv) {
      DblLane lane;
      if (col != nullptr) {
        if (col->rep() == ColumnRep::kDoubles) {
          lane.darr = col->doubles();
        } else {
          lane.iarr = col->ints();
        }
      } else {
        lane.c = cv->AsDouble();
      }
      return lane;
    };
    DblLane a = dbl_lane(L, lc);
    DblLane c = dbl_lane(R, rc);
    double* o = out->MutableDoubles();
    uint8_t* on = out->MutableNulls();
    switch (op) {
      case ArithOp::kAdd:
        EmitLanes(batch, ln, rn, o, on, &any_null,
                  [a, c](uint32_t i) { return a(i) + c(i); });
        break;
      case ArithOp::kSub:
        EmitLanes(batch, ln, rn, o, on, &any_null,
                  [a, c](uint32_t i) { return a(i) - c(i); });
        break;
      case ArithOp::kMul:
        EmitLanes(batch, ln, rn, o, on, &any_null,
                  [a, c](uint32_t i) { return a(i) * c(i); });
        break;
      case ArithOp::kDiv:
        return Status::Internal("division reached the vectorized path");
    }
    out->SetAnyNull(any_null);
    return Status::OK();
  }

  // Boxed inputs or type combinations EvalArith rejects per element
  // (bool/string operands, date products): run the shared row semantics
  // element-wise so NULL-skips and errors land on exactly the same rows.
  out->PrepareScatterVals(e.type, n);
  Value* vals = out->MutableVals();
  const uint32_t m = batch.selected();
  for (uint32_t j = 0; j < m; ++j) {
    const uint32_t i = batch.RowAt(j);
    Value lv = lc != nullptr ? *lc : L->GetValue(i);
    Value rv = rc != nullptr ? *rc : R->GetValue(i);
    ORQ_ASSIGN_OR_RETURN(Value v, EvalArith(op, lv, rv, e.type));
    vals[i] = std::move(v);
  }
  return Status::OK();
}

Result<const ColumnVec*> ColumnarEvaluator::EvalNode(const ScalarExpr& e,
                                                     const ColumnBatch& batch,
                                                     ExecContext* ctx) {
  switch (e.kind) {
    case ScalarKind::kColumnRef: {
      auto it = slots_.find(e.column);
      if (it != slots_.end()) return &batch.col(it->second);
      if (ctx != nullptr) {
        auto pit = ctx->params.find(e.column);
        if (pit != ctx->params.end()) return Broadcast(pit->second, batch);
      }
      return Status::Internal("unresolved column #" +
                              std::to_string(e.column));
    }
    case ScalarKind::kLiteral:
      return Broadcast(e.literal, batch);
    case ScalarKind::kCompare: {
      const Value* lc = ConstOf(*e.children[0], ctx);
      const Value* rc = ConstOf(*e.children[1], ctx);
      if (lc != nullptr && rc != nullptr) {
        std::optional<int> cmp = lc->SqlCompare(*rc);
        return Broadcast(cmp.has_value() ? CompareResult(e.cmp, *cmp)
                                         : Value::Null(DataType::kBool),
                         batch);
      }
      ColumnVec* out = NewScratch();
      ORQ_RETURN_IF_ERROR(CompareNode(e, batch, ctx, out));
      return out;
    }
    case ScalarKind::kArith: {
      const Value* lc = ConstOf(*e.children[0], ctx);
      const Value* rc = ConstOf(*e.children[1], ctx);
      if (lc != nullptr && rc != nullptr) {
        ORQ_ASSIGN_OR_RETURN(Value v, EvalArith(e.arith, *lc, *rc, e.type));
        return Broadcast(v, batch);
      }
      ColumnVec* out = NewScratch();
      ORQ_RETURN_IF_ERROR(ArithNode(e, batch, ctx, out));
      return out;
    }
    case ScalarKind::kAnd:
    case ScalarKind::kOr: {
      const bool is_and = e.kind == ScalarKind::kAnd;
      ColumnVec* out = NewScratch();
      out->PrepareScatter(DataType::kBool, batch.num_rows());
      int64_t* o = out->MutableInts();
      uint8_t* on = out->MutableNulls();
      ForEachLive(batch, [&](uint32_t i) { o[i] = is_and ? 1 : 0; });
      bool any_null = false;
      for (const auto& child : e.children) {
        ORQ_ASSIGN_OR_RETURN(const ColumnVec* c,
                             EvalNode(*child, batch, ctx));
        ForEachLive(batch, [&](uint32_t i) {
          // Skip rows already at the absorbing element (FALSE / TRUE).
          if (on[i] == 0 && o[i] == (is_and ? 0 : 1)) return;
          const int t = PredTruthElem(*c, i);
          if (is_and) {
            if (t == 0) {
              o[i] = 0;
              on[i] = 0;
            } else if (t < 0) {
              on[i] = 1;
              any_null = true;
            }
          } else {
            if (t == 1) {
              o[i] = 1;
              on[i] = 0;
            } else if (t < 0) {
              on[i] = 1;
              any_null = true;
            }
          }
        });
      }
      out->SetAnyNull(any_null);
      return out;
    }
    case ScalarKind::kNot: {
      const Value* cv = ConstOf(*e.children[0], ctx);
      if (cv != nullptr) {
        return Broadcast(cv->is_null() ? Value::Null(DataType::kBool)
                                       : Value::Bool(!cv->bool_value()),
                         batch);
      }
      ORQ_ASSIGN_OR_RETURN(const ColumnVec* c,
                           EvalNode(*e.children[0], batch, ctx));
      ColumnVec* out = NewScratch();
      out->PrepareScatter(DataType::kBool, batch.num_rows());
      int64_t* o = out->MutableInts();
      uint8_t* on = out->MutableNulls();
      bool any_null = false;
      ForEachLive(batch, [&](uint32_t i) {
        const int t = PredTruthElem(*c, i);
        if (t < 0) {
          on[i] = 1;
          any_null = true;
        } else {
          o[i] = t == 1 ? 0 : 1;
        }
      });
      out->SetAnyNull(any_null);
      return out;
    }
    case ScalarKind::kIsNull:
    case ScalarKind::kIsNotNull: {
      const bool want_null = e.kind == ScalarKind::kIsNull;
      const Value* cv = ConstOf(*e.children[0], ctx);
      if (cv != nullptr) {
        return Broadcast(Value::Bool(cv->is_null() == want_null), batch);
      }
      ORQ_ASSIGN_OR_RETURN(const ColumnVec* c,
                           EvalNode(*e.children[0], batch, ctx));
      ColumnVec* out = NewScratch();
      out->PrepareScatter(DataType::kBool, batch.num_rows());
      int64_t* o = out->MutableInts();
      ForEachLive(batch, [&](uint32_t i) {
        o[i] = c->IsNull(i) == want_null ? 1 : 0;
      });
      out->SetAnyNull(false);
      return out;
    }
    case ScalarKind::kNegate: {
      const Value* cv = ConstOf(*e.children[0], ctx);
      if (cv != nullptr) {
        if (cv->is_null()) return Broadcast(Value::Null(cv->type()), batch);
        if (cv->type() == DataType::kInt64) {
          return Broadcast(Value::Int64(-cv->int64_value()), batch);
        }
        if (cv->type() == DataType::kDouble) {
          return Broadcast(Value::Double(-cv->double_value()), batch);
        }
        return Status::RuntimeError("negation of non-numeric value");
      }
      ORQ_ASSIGN_OR_RETURN(const ColumnVec* c,
                           EvalNode(*e.children[0], batch, ctx));
      ColumnVec* out = NewScratch();
      bool any_null = false;
      if (c->is_plain() && c->rep() == ColumnRep::kInts &&
          c->type() == DataType::kInt64) {
        out->PrepareScatter(DataType::kInt64, batch.num_rows());
        const int64_t* a = c->ints();
        EmitLanes(batch, c->nulls(), nullptr, out->MutableInts(),
                  out->MutableNulls(), &any_null,
                  [a](uint32_t i) { return -a[i]; });
        out->SetAnyNull(any_null);
        return out;
      }
      if (c->is_plain() && c->rep() == ColumnRep::kDoubles) {
        out->PrepareScatter(DataType::kDouble, batch.num_rows());
        const double* a = c->doubles();
        EmitLanes(batch, c->nulls(), nullptr, out->MutableDoubles(),
                  out->MutableNulls(), &any_null,
                  [a](uint32_t i) { return -a[i]; });
        out->SetAnyNull(any_null);
        return out;
      }
      out->PrepareScatterVals(e.type, batch.num_rows());
      Value* vals = out->MutableVals();
      const uint32_t m = batch.selected();
      for (uint32_t j = 0; j < m; ++j) {
        const uint32_t i = batch.RowAt(j);
        Value v = c->GetValue(i);
        if (v.is_null()) {
          vals[i] = Value::Null(v.type());
        } else if (v.type() == DataType::kInt64) {
          vals[i] = Value::Int64(-v.int64_value());
        } else if (v.type() == DataType::kDouble) {
          vals[i] = Value::Double(-v.double_value());
        } else {
          return Status::RuntimeError("negation of non-numeric value");
        }
      }
      return out;
    }
    default:
      return Status::Internal("non-vectorizable node reached ColumnarEvaluator");
  }
}

}  // namespace orq
