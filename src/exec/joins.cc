#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "exec/evaluator.h"
#include "exec/ops.h"
#include "exec/packed_key.h"
#include "exec/parallel.h"
#include "exec/vector_kernels.h"
#include "obs/metrics.h"

namespace orq {

namespace {

std::vector<ColumnId> CombinedLayout(const PhysicalOp& left,
                                     const PhysicalOp& right,
                                     PhysJoinKind kind) {
  std::vector<ColumnId> layout = left.layout();
  if (kind == PhysJoinKind::kInner || kind == PhysJoinKind::kLeftOuter) {
    layout.insert(layout.end(), right.layout().begin(),
                  right.layout().end());
  }
  return layout;
}

/// NULL-pad types for the non-preserved side of a left outer join. The plan
/// builder passes the right layout's declared column types; direct
/// construction (tests) may omit them, falling back to kInt64.
std::vector<DataType> ResolvePadTypes(std::vector<DataType> right_types,
                                      size_t right_width) {
  if (right_types.size() != right_width) {
    right_types.assign(right_width, DataType::kInt64);
  }
  return right_types;
}

/// Nested-loops join; doubles as the Apply operator when `rebind_inner` is
/// set (per-outer-row parameter binding + inner re-open).
class NLJoinOp : public PhysicalOp {
 public:
  NLJoinOp(PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
           ScalarExprPtr predicate, bool rebind_inner,
           std::vector<DataType> right_types, bool cache_inner)
      : kind_(kind),
        rebind_inner_(rebind_inner),
        cache_inner_(cache_inner && !rebind_inner),
        pad_types_(
            ResolvePadTypes(std::move(right_types), right->layout().size())) {
    layout_ = CombinedLayout(*left, *right, kind);
    std::vector<ColumnId> pred_layout = left->layout();
    pred_layout.insert(pred_layout.end(), right->layout().begin(),
                       right->layout().end());
    predicate_ = Evaluator(std::move(predicate), pred_layout);
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Status OpenImpl(ExecContext* ctx) override {
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    have_left_ = false;
    inner_open_ = false;
    if (!rebind_inner_) {
      if (cache_inner_ && inner_cached_) {
        // Uncorrelated inner re-opened (e.g. under an outer Apply or a
        // SegmentApply): replay the spool instead of re-executing the
        // subtree — its result cannot have changed.
        if (MetricsRegistry* m = metrics()) {
          m->Add(MetricCounter::kInnerCacheReplays, 1);
        }
      } else {
        // Uncorrelated: materialize the inner once.
        ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
        inner_rows_.clear();
        RowBatch batch(ctx->batch_size);
        while (true) {
          ORQ_RETURN_IF_ERROR(children_[1]->NextBatch(ctx, &batch));
          if (batch.empty()) break;
          for (size_t i = 0; i < batch.size(); ++i) {
            inner_rows_.push_back(std::move(batch.row(i)));
          }
        }
        children_[1]->Close();
        RecordPeak(static_cast<int64_t>(inner_rows_.size()));
        if (MetricsRegistry* m = metrics()) {
          m->Add(MetricCounter::kSpoolRows,
                 static_cast<int64_t>(inner_rows_.size()));
        }
        inner_cached_ = cache_inner_;
      }
      probe_ = RowBatch(ctx->batch_size);
      probe_pos_ = 0;
    }
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    const size_t right_width = children_[1]->layout().size();
    while (true) {
      if (!have_left_) {
        ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, &left_row_));
        if (!more) return false;
        have_left_ = true;
        matched_ = false;
        inner_pos_ = 0;
        if (rebind_inner_) {
          const std::vector<ColumnId>& lcols = children_[0]->layout();
          for (size_t i = 0; i < lcols.size(); ++i) {
            ctx->params[lcols[i]] = left_row_[i];
          }
          if (inner_open_) children_[1]->Close();
          ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
          inner_open_ = true;
          if (MetricsRegistry* m = metrics()) {
            m->Add(MetricCounter::kApplyInnerOpens, 1);
          }
        }
      }
      // Fetch next inner row.
      Row inner;
      bool inner_more = false;
      if (rebind_inner_) {
        ORQ_ASSIGN_OR_RETURN(inner_more, children_[1]->Next(ctx, &inner));
      } else if (inner_pos_ < inner_rows_.size()) {
        inner = inner_rows_[inner_pos_++];
        inner_more = true;
      }
      if (!inner_more) {
        bool emit_unmatched = !matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                                            kind_ == PhysJoinKind::kLeftAnti);
        have_left_ = false;
        if (emit_unmatched) {
          *row = left_row_;
          if (kind_ == PhysJoinKind::kLeftOuter) {
            for (size_t i = 0; i < right_width; ++i) {
              row->push_back(Value::Null(pad_types_[i]));
            }
          }
          return true;
        }
        continue;
      }
      // Evaluate the predicate on the combined row.
      Row combined = left_row_;
      combined.insert(combined.end(), inner.begin(), inner.end());
      ORQ_ASSIGN_OR_RETURN(bool keep, predicate_.EvalPredicate(combined, ctx));
      if (!keep) continue;
      matched_ = true;
      switch (kind_) {
        case PhysJoinKind::kInner:
        case PhysJoinKind::kLeftOuter:
          *row = std::move(combined);
          return true;
        case PhysJoinKind::kLeftSemi:
          *row = left_row_;
          have_left_ = false;  // one match suffices
          return true;
        case PhysJoinKind::kLeftAnti:
          have_left_ = false;  // disqualified
          continue;
      }
    }
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    // Correlated Apply stays row-at-a-time: the inner plan is re-opened
    // per outer row, so there is no batch of inner rows to loop over.
    if (rebind_inner_) return FillFromNextImpl(ctx, out);
    while (true) {
      if (!have_left_) {
        if (probe_pos_ >= probe_.size()) {
          ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &probe_));
          if (probe_.empty()) return Status::OK();
          probe_pos_ = 0;
        }
        left_ = &probe_.row(probe_pos_++);
        have_left_ = true;
        matched_ = false;
        inner_pos_ = 0;
      }
      const Row& left = *left_;
      while (have_left_ && inner_pos_ < inner_rows_.size()) {
        if (out->full()) return Status::OK();
        const Row& inner = inner_rows_[inner_pos_++];
        // Compose the combined row in place in the output slot; rejected
        // rows are retracted with PopRow.
        Row& slot = out->PushRow();
        slot.clear();
        slot.reserve(left.size() + inner.size());
        slot.insert(slot.end(), left.begin(), left.end());
        slot.insert(slot.end(), inner.begin(), inner.end());
        ORQ_ASSIGN_OR_RETURN(bool keep, predicate_.EvalPredicate(slot, ctx));
        if (!keep) {
          out->PopRow();
          continue;
        }
        matched_ = true;
        switch (kind_) {
          case PhysJoinKind::kInner:
          case PhysJoinKind::kLeftOuter:
            break;
          case PhysJoinKind::kLeftSemi:
            slot.resize(left.size());  // drop the inner half
            have_left_ = false;
            break;
          case PhysJoinKind::kLeftAnti:
            out->PopRow();
            have_left_ = false;
            break;
        }
      }
      if (have_left_ && inner_pos_ >= inner_rows_.size()) {
        if (!matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                          kind_ == PhysJoinKind::kLeftAnti)) {
          if (out->full()) return Status::OK();
          Row& slot = out->PushRow();
          slot = std::move(*left_);
          if (kind_ == PhysJoinKind::kLeftOuter) {
            for (DataType type : pad_types_) {
              slot.push_back(Value::Null(type));
            }
          }
        }
        have_left_ = false;
      }
    }
  }

  void CloseImpl() override {
    children_[0]->Close();
    if (inner_open_) {
      children_[1]->Close();
      inner_open_ = false;
    }
    // A caching spool survives Close for replay on the next Open.
    if (!cache_inner_) inner_rows_.clear();
  }

  std::string name() const override {
    std::string kind;
    switch (kind_) {
      case PhysJoinKind::kInner: kind = "inner"; break;
      case PhysJoinKind::kLeftOuter: kind = "leftouter"; break;
      case PhysJoinKind::kLeftSemi: kind = "semi"; break;
      case PhysJoinKind::kLeftAnti: kind = "anti"; break;
    }
    return (rebind_inner_ ? "Apply(" : "NestedLoopsJoin(") + kind + ")";
  }

 private:
  PhysJoinKind kind_;
  bool rebind_inner_;
  bool cache_inner_;
  std::vector<DataType> pad_types_;
  Evaluator predicate_;
  Row left_row_;               // row path: current outer row (copy)
  const Row* left_ = nullptr;  // batch path: current outer row, in probe_
  bool have_left_ = false;
  bool matched_ = false;
  bool inner_open_ = false;
  std::vector<Row> inner_rows_;  // uncorrelated inner materialization
  bool inner_cached_ = false;    // inner_rows_ valid across Open cycles
  size_t inner_pos_ = 0;
  RowBatch probe_{0};
  size_t probe_pos_ = 0;
};

/// A bucket's slice of the slots permutation. `filled` is the build-time
/// scatter cursor; unused after the build completes.
struct BucketRange {
  uint32_t begin = 0;
  uint32_t size = 0;
  uint32_t filled = 0;
};

/// A complete hash-join build product: rows in arrival order, the slots
/// permutation grouping them by key, and the key -> bucket-range index.
/// Serial builds own one; parallel builds probe the one merged inside
/// SharedJoinState.
struct BuildTable {
  std::vector<Row> arena;        // build rows, arrival order
  std::vector<uint32_t> slots;   // arena indices grouped by bucket
  std::unordered_map<PackedKey, BucketRange, PackedKeyHash, PackedKeyEq>
      table;

  void Clear() {
    arena.clear();
    slots.clear();
    table.clear();
  }
};

/// Assigns each bucket a contiguous slot range, then scatters arena
/// indices into their bucket's range in arrival order. `row_bucket[i]` is
/// the bucket of arena row i. Shared by the serial build and the parallel
/// merge.
void FinishScatter(BuildTable* t,
                   const std::vector<BucketRange*>& row_bucket) {
  uint32_t offset = 0;
  for (auto& entry : t->table) {
    entry.second.begin = offset;
    offset += entry.second.size;
  }
  t->slots.resize(t->arena.size());
  for (size_t i = 0; i < t->arena.size(); ++i) {
    BucketRange* bucket = row_bucket[i];
    t->slots[bucket->begin + bucket->filled++] =
        static_cast<uint32_t>(i);
  }
}

/// Build-side rendezvous of a parallel hash join. Every worker drains its
/// morsel share of the build input into a private (key, row) partial, then
/// deposits it here; the last depositor merges all partials into one
/// BuildTable which every worker then probes read-only. Deposits happen
/// unconditionally — a worker whose drain failed deposits the error — so
/// the barrier always completes and no gang member is left waiting.
class SharedJoinState final : public SharedRegionState {
 public:
  explicit SharedJoinState(int workers)
      : workers_(workers), partials_(static_cast<size_t>(workers)) {}

  void Reset() override {
    std::lock_guard<std::mutex> lock(mu_);
    deposited_ = 0;
    merge_done_ = false;
    status_ = Status::OK();
    for (auto& partial : partials_) {
      partial.clear();
      partial.shrink_to_fit();
    }
    table_.Clear();
  }

  /// Blocks until all workers deposited and the merge completed. Returns
  /// the shared table (same pointer for every worker) or the first
  /// deposited error. `*merged_here` is set for exactly one worker — the
  /// one that performed the merge — so table-wide stats are recorded once.
  Result<const BuildTable*> Deposit(
      int worker, const Status& drain,
      std::vector<std::pair<PackedKey, Row>> partial, bool* merged_here) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!drain.ok() && status_.ok()) status_ = drain;
    partials_[static_cast<size_t>(worker)] = std::move(partial);
    *merged_here = false;
    if (++deposited_ == workers_) {
      if (status_.ok()) {
        Merge();
        *merged_here = true;
      }
      merge_done_ = true;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [this] { return merge_done_; });
    }
    if (!status_.ok()) return status_;
    return &table_;
  }

 private:
  /// Runs under mu_ on the last depositor's thread; after merge_done_ the
  /// table is read-only, so probes need no lock.
  void Merge() {
    size_t total = 0;
    for (const auto& partial : partials_) total += partial.size();
    table_.arena.reserve(total);
    std::vector<BucketRange*> row_bucket;
    row_bucket.reserve(total);
    for (auto& partial : partials_) {
      for (auto& [key, row] : partial) {
        auto it = table_.table.find(key);
        if (it == table_.table.end()) {
          it = table_.table.emplace(std::move(key), BucketRange{}).first;
        }
        ++it->second.size;
        row_bucket.push_back(&it->second);
        table_.arena.push_back(std::move(row));
      }
      partial.clear();
      partial.shrink_to_fit();
    }
    FinishScatter(&table_, row_bucket);
  }

  const int workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  int deposited_ = 0;
  bool merge_done_ = false;
  Status status_;
  std::vector<std::vector<std::pair<PackedKey, Row>>> partials_;
  BuildTable table_;
};

class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
             std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys,
             ScalarExprPtr residual, std::vector<DataType> right_types,
             bool cache_build, SharedRegionStatePtr shared, int worker)
      : kind_(kind),
        cache_build_(cache_build && shared == nullptr),
        worker_(worker),
        shared_(std::static_pointer_cast<SharedJoinState>(shared)),
        pad_types_(
            ResolvePadTypes(std::move(right_types), right->layout().size())) {
    layout_ = CombinedLayout(*left, *right, kind);
    // Columnar probing needs each probe key to be a plain column of the
    // probe input — then key hashes vectorize and lookups never decode the
    // probe row. Computed expressions as keys fall back to the row probe.
    bool keys_are_slots = true;
    const std::vector<ColumnId>& lcols = left->layout();
    for (auto& [l, r] : keys) {
      int slot = -1;
      if (l->kind == ScalarKind::kColumnRef) {
        for (size_t i = 0; i < lcols.size(); ++i) {
          if (lcols[i] == l->column) {
            slot = static_cast<int>(i);
            break;
          }
        }
      }
      if (slot >= 0) {
        probe_slots_.push_back(slot);
      } else {
        keys_are_slots = false;
      }
      left_keys_.emplace_back(std::move(l), left->layout());
      right_keys_.emplace_back(std::move(r), right->layout());
    }
    columnar_capable_ = keys_are_slots;
    if (residual != nullptr) {
      std::vector<ColumnId> combined = left->layout();
      combined.insert(combined.end(), right->layout().begin(),
                      right->layout().end());
      residual_ = Evaluator(std::move(residual), combined);
      has_residual_ = true;
    }
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Status OpenImpl(ExecContext* ctx) override {
    if (shared_ != nullptr) {
      // Parallel build: drain this worker's share of the build input into
      // (key, row) pairs and meet the gang at the merge barrier. The drain
      // status rides along so an error still completes the barrier.
      std::vector<std::pair<PackedKey, Row>> partial;
      Status drain = DrainBuildPartial(ctx, &partial);
      bool merged_here = false;
      Result<const BuildTable*> merged =
          shared_->Deposit(worker_, drain, std::move(partial), &merged_here);
      if (!merged.ok()) return merged.status();
      active_ = *merged;
      if (merged_here) RecordBuildStats();
    } else if (cache_build_ && built_) {
      // Uncorrelated build side re-opened: probe the retained table.
      if (MetricsRegistry* m = metrics()) {
        m->Add(MetricCounter::kInnerCacheReplays, 1);
      }
      active_ = &local_;
    } else {
      ORQ_RETURN_IF_ERROR(BuildLocal(ctx));
      built_ = true;
      active_ = &local_;
      RecordBuildStats();
    }
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    have_left_ = false;
    probe_ = RowBatch(ctx->batch_size);
    probe_pos_ = 0;
    cjpos_ = 0;
    if (cin_ != nullptr) cin_->Clear();
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    while (true) {
      if (!have_left_) {
        ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, &left_row_));
        if (!more) return false;
        have_left_ = true;
        matched_ = false;
        ORQ_RETURN_IF_ERROR(LookupBucket(left_row_, ctx));
      }
      while (bucket_pos_ < bucket_size_) {
        const Row& inner =
            active_->arena[active_->slots[bucket_begin_ + bucket_pos_++]];
        Row combined = left_row_;
        combined.insert(combined.end(), inner.begin(), inner.end());
        if (has_residual_) {
          ORQ_ASSIGN_OR_RETURN(bool keep,
                               residual_.EvalPredicate(combined, ctx));
          if (!keep) continue;
        }
        matched_ = true;
        switch (kind_) {
          case PhysJoinKind::kInner:
          case PhysJoinKind::kLeftOuter:
            *row = std::move(combined);
            return true;
          case PhysJoinKind::kLeftSemi:
            *row = left_row_;
            have_left_ = false;
            return true;
          case PhysJoinKind::kLeftAnti:
            have_left_ = false;
            break;
        }
        if (!have_left_) break;
      }
      if (!have_left_) continue;  // semi emitted via return; anti restarts
      // Bucket exhausted.
      bool emit_unmatched = !matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                                          kind_ == PhysJoinKind::kLeftAnti);
      have_left_ = false;
      if (emit_unmatched) {
        *row = left_row_;
        if (kind_ == PhysJoinKind::kLeftOuter) {
          for (DataType type : pad_types_) {
            row->push_back(Value::Null(type));
          }
        }
        return true;
      }
    }
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    while (true) {
      if (!have_left_) {
        if (probe_pos_ >= probe_.size()) {
          ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &probe_));
          if (probe_.empty()) return Status::OK();
          probe_pos_ = 0;
        }
        left_ = &probe_.row(probe_pos_++);
        have_left_ = true;
        matched_ = false;
        ORQ_RETURN_IF_ERROR(LookupBucket(*left_, ctx));
      }
      const Row& left = *left_;
      while (have_left_ && bucket_pos_ < bucket_size_) {
        if (out->full()) return Status::OK();
        const Row& inner =
            active_->arena[active_->slots[bucket_begin_ + bucket_pos_++]];
        Row& slot = out->PushRow();
        slot.clear();
        slot.reserve(left.size() + inner.size());
        slot.insert(slot.end(), left.begin(), left.end());
        slot.insert(slot.end(), inner.begin(), inner.end());
        if (has_residual_) {
          ORQ_ASSIGN_OR_RETURN(bool keep, residual_.EvalPredicate(slot, ctx));
          if (!keep) {
            out->PopRow();
            continue;
          }
        }
        matched_ = true;
        switch (kind_) {
          case PhysJoinKind::kInner:
          case PhysJoinKind::kLeftOuter:
            break;
          case PhysJoinKind::kLeftSemi:
            slot.resize(left.size());  // drop the inner half
            have_left_ = false;
            break;
          case PhysJoinKind::kLeftAnti:
            out->PopRow();
            have_left_ = false;
            break;
        }
      }
      if (have_left_ && bucket_pos_ >= bucket_size_) {
        if (!matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                          kind_ == PhysJoinKind::kLeftAnti)) {
          if (out->full()) return Status::OK();
          Row& slot = out->PushRow();
          slot = std::move(*left_);
          if (kind_ == PhysJoinKind::kLeftOuter) {
            for (DataType type : pad_types_) {
              slot.push_back(Value::Null(type));
            }
          }
        }
        have_left_ = false;
      }
    }
  }

  /// Columnar probe: key hashes are computed column-wise for the whole
  /// probe batch, lookups go through ColumnKeyRef (no probe-row decode),
  /// and matches accumulate as (probe row, arena slot) pairs that are
  /// gathered into output columns in one pass. The build side is unchanged
  /// — its arena stays row-major and right output columns are appended
  /// from arena rows.
  Status NextColumnsImpl(ExecContext* ctx, ColumnBatch* out) override {
    const size_t left_width = children_[0]->layout().size();
    const bool emit_right = kind_ == PhysJoinKind::kInner ||
                            kind_ == PhysJoinKind::kLeftOuter;
    const uint32_t cap = static_cast<uint32_t>(out->capacity());
    if (cin_ == nullptr) {
      cin_ = std::make_unique<ColumnBatch>(ctx->batch_size);
    }
    cpairs_.clear();
    while (true) {
      if (!have_left_) {
        if (cjpos_ >= cin_->selected()) {
          // Refilling invalidates the probe views the gathered pairs
          // reference; flush what we have first.
          if (!cpairs_.empty()) break;
          ORQ_RETURN_IF_ERROR(children_[0]->NextColumns(ctx, cin_.get()));
          if (cin_->selected() == 0) break;  // probe input exhausted
          cjpos_ = 0;
          InitKeyHashes(*cin_, &chashes_);
          for (int slot : probe_slots_) {
            HashCombineColumn(*cin_, cin_->col(slot), &chashes_);
          }
          if (MetricsRegistry* m = metrics()) {
            m->Add(MetricCounter::kHashJoinProbes,
                   static_cast<int64_t>(cin_->selected()));
          }
        }
        cleft_ = cin_->RowAt(cjpos_);
        have_left_ = true;
        matched_ = false;
        cleft_decoded_ = false;
        LookupBucketColumnar(cjpos_);
        ++cjpos_;
      }
      while (have_left_ && bucket_pos_ < bucket_size_ &&
             cpairs_.size() < cap) {
        const uint32_t slot = active_->slots[bucket_begin_ + bucket_pos_++];
        if (has_residual_) {
          bool keep = false;
          {
            ORQ_ASSIGN_OR_RETURN(keep, EvalResidualColumnar(slot, ctx));
          }
          if (!keep) continue;
        }
        matched_ = true;
        switch (kind_) {
          case PhysJoinKind::kInner:
          case PhysJoinKind::kLeftOuter:
            cpairs_.push_back({cleft_, slot});
            break;
          case PhysJoinKind::kLeftSemi:
            cpairs_.push_back({cleft_, kNoRight});
            have_left_ = false;
            break;
          case PhysJoinKind::kLeftAnti:
            have_left_ = false;
            break;
        }
      }
      if (have_left_ && bucket_pos_ >= bucket_size_) {
        if (!matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                          kind_ == PhysJoinKind::kLeftAnti)) {
          // No room for the pad/pass-through row: leave this probe row
          // current (bucket exhausted, unmatched) and resume here next call.
          if (cpairs_.size() >= cap) break;
          cpairs_.push_back({cleft_, kNoRight});
        }
        have_left_ = false;
      }
      if (cpairs_.size() >= cap) break;
    }
    const uint32_t n = static_cast<uint32_t>(cpairs_.size());
    if (n == 0) return Status::OK();  // EOS
    out->ResizeCols(layout_.size());
    for (size_t c = 0; c < left_width; ++c) {
      GatherProbeColumn(cin_->col(c), &out->col(c));
    }
    if (emit_right) {
      for (size_t k = 0; k < pad_types_.size(); ++k) {
        ColumnVec& dst = out->col(left_width + k);
        dst.StartBuild(pad_types_[k], n);
        for (const ProbePair& p : cpairs_) {
          if (p.right == kNoRight) {
            dst.AppendNull();
          } else {
            dst.AppendValue(active_->arena[p.right][k]);
          }
        }
        dst.Seal();
      }
    }
    out->set_num_rows(n);
    return Status::OK();
  }

  void CloseImpl() override {
    children_[0]->Close();
    // The shared table is released by the exchange's Close (other workers
    // may still be probing it here); a caching build survives for replay.
    if (shared_ == nullptr && !cache_build_) local_.Clear();
    active_ = nullptr;
  }

  std::string name() const override {
    std::string kind;
    switch (kind_) {
      case PhysJoinKind::kInner: kind = "inner"; break;
      case PhysJoinKind::kLeftOuter: kind = "leftouter"; break;
      case PhysJoinKind::kLeftSemi: kind = "semi"; break;
      case PhysJoinKind::kLeftAnti: kind = "anti"; break;
    }
    return "HashJoin(" + kind + ")";
  }

 private:
  /// Serial build: drain the right child into local_, keyed by a packed
  /// key (hash precomputed once per distinct key). Buckets are ranges into
  /// a single slots permutation rather than one vector of row copies per
  /// key.
  Status BuildLocal(ExecContext* ctx) {
    local_.Clear();
    ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
    std::vector<BucketRange*> row_bucket;
    RowBatch batch(ctx->batch_size);
    Row key(right_keys_.size());
    while (true) {
      Status status = children_[1]->NextBatch(ctx, &batch);
      if (!status.ok()) {
        children_[1]->Close();
        return status;
      }
      if (batch.empty()) break;
      for (size_t r = 0; r < batch.size(); ++r) {
        Row& row = batch.row(r);
        bool null_key = false;
        for (size_t i = 0; i < right_keys_.size(); ++i) {
          Result<Value> v = right_keys_[i].Eval(row, ctx);
          if (!v.ok()) {
            children_[1]->Close();
            return v.status();
          }
          if (v->is_null()) {
            null_key = true;
            break;
          }
          key[i] = std::move(*v);
        }
        if (null_key) continue;  // NULL keys never join
        auto it = local_.table.find(key);
        if (it == local_.table.end()) {
          it = local_.table.emplace(PackedKey(std::move(key)), BucketRange{})
                   .first;
          key = Row(right_keys_.size());
        }
        ++it->second.size;
        row_bucket.push_back(&it->second);
        local_.arena.push_back(std::move(row));
      }
    }
    children_[1]->Close();
    FinishScatter(&local_, row_bucket);
    return Status::OK();
  }

  /// Parallel build: drain the right child (a morsel share of the build
  /// input) into per-row (key, row) pairs for the shared merge. Closes the
  /// child on every path; the caller deposits whatever status results.
  Status DrainBuildPartial(ExecContext* ctx,
                           std::vector<std::pair<PackedKey, Row>>* partial) {
    ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
    RowBatch batch(ctx->batch_size);
    while (true) {
      Status status = children_[1]->NextBatch(ctx, &batch);
      if (!status.ok()) {
        children_[1]->Close();
        return status;
      }
      if (batch.empty()) break;
      for (size_t r = 0; r < batch.size(); ++r) {
        Row& row = batch.row(r);
        Row key(right_keys_.size());
        bool null_key = false;
        for (size_t i = 0; i < right_keys_.size(); ++i) {
          Result<Value> v = right_keys_[i].Eval(row, ctx);
          if (!v.ok()) {
            children_[1]->Close();
            return v.status();
          }
          if (v->is_null()) {
            null_key = true;
            break;
          }
          key[i] = std::move(*v);
        }
        if (null_key) continue;
        partial->emplace_back(PackedKey(std::move(key)), std::move(row));
      }
    }
    children_[1]->Close();
    if (MetricsRegistry* m = metrics()) {
      m->Add(MetricCounter::kHashJoinBuildRows,
             static_cast<int64_t>(partial->size()));
    }
    return Status::OK();
  }

  /// Table-wide build statistics, recorded once per build: by the serial
  /// builder, or by the single worker that performed the parallel merge
  /// (into its shard; the exchange merges shards afterwards).
  void RecordBuildStats() {
    RecordPeak(static_cast<int64_t>(active_->table.size()));
    MetricsRegistry* m = metrics();
    if (m == nullptr) return;
    if (shared_ == nullptr) {
      // The parallel path counts build rows per worker in
      // DrainBuildPartial; count the serial drain here.
      m->Add(MetricCounter::kHashJoinBuildRows,
             static_cast<int64_t>(active_->arena.size()));
    }
    m->Add(MetricCounter::kHashJoinBuckets,
           static_cast<int64_t>(active_->table.size()));
    // Approximate resident footprint of the build side: row headers and
    // value storage in the arena, the slots permutation, and the packed
    // keys + bucket ranges in the table. String payloads are not walked.
    int64_t bytes =
        static_cast<int64_t>(active_->slots.size() * sizeof(uint32_t));
    for (const Row& row : active_->arena) {
      bytes += static_cast<int64_t>(sizeof(Row) +
                                    row.capacity() * sizeof(Value));
    }
    for (const auto& entry : active_->table) {
      bytes += static_cast<int64_t>(
          sizeof(PackedKey) + sizeof(BucketRange) +
          entry.first.values.capacity() * sizeof(Value));
      m->Observe(MetricHistogram::kHashJoinBucketRows, entry.second.size);
    }
    m->Add(MetricCounter::kHashJoinArenaBytes, bytes);
  }

  /// Columnar analogue of LookupBucket: positions the bucket cursor for
  /// the probe row at selection position `j` of cin_. Keys are column
  /// slots, so NULL detection and the hash are free of per-row expression
  /// evaluation; the heterogeneous find compares hash-first and only runs
  /// the per-key comparison on a hash hit.
  void LookupBucketColumnar(uint32_t j) {
    bucket_begin_ = 0;
    bucket_size_ = 0;
    bucket_pos_ = 0;
    const uint32_t r = cin_->RowAt(j);
    bool null_key = false;
    for (int slot : probe_slots_) {
      if (cin_->col(slot).IsNull(r)) {
        null_key = true;  // NULL keys never join
        break;
      }
    }
    if (!null_key) {
      ColumnKeyRef ref{cin_.get(), probe_slots_.data(), probe_slots_.size(),
                       r, chashes_[j]};
      auto it = active_->table.find(ref);
      if (it != active_->table.end()) {
        bucket_begin_ = it->second.begin;
        bucket_size_ = it->second.size;
      }
    }
    if (MetricsRegistry* m = metrics()) {
      m->Observe(MetricHistogram::kHashJoinChainLength, bucket_size_);
    }
  }

  /// Residual predicate for a (current probe row, arena slot) candidate:
  /// the probe half decodes lazily once per probe row, the combined row is
  /// assembled in a reused scratch, and evaluation goes through the same
  /// row Evaluator the row paths use.
  Result<bool> EvalResidualColumnar(uint32_t arena_slot, ExecContext* ctx) {
    if (!cleft_decoded_) {
      cin_->DecodeRow(cleft_, &cdecode_);
      cleft_decoded_ = true;
    }
    const Row& inner = active_->arena[arena_slot];
    ccombined_ = cdecode_;
    ccombined_.insert(ccombined_.end(), inner.begin(), inner.end());
    return residual_.EvalPredicate(ccombined_, ctx);
  }

  /// Gathers the probe-side values of the accumulated pairs into an output
  /// column, staying in the source's representation (no boxing unless the
  /// source itself is boxed).
  void GatherProbeColumn(const ColumnVec& src, ColumnVec* dst) const {
    const uint32_t n = static_cast<uint32_t>(cpairs_.size());
    dst->StartBuild(src.type(), n);
    switch (src.rep()) {
      case ColumnRep::kInts:
        for (const ProbePair& p : cpairs_) {
          if (src.IsNull(p.left)) {
            dst->AppendNull();
          } else {
            dst->AppendInt(src.IntAt(p.left));
          }
        }
        break;
      case ColumnRep::kDoubles:
        for (const ProbePair& p : cpairs_) {
          if (src.IsNull(p.left)) {
            dst->AppendNull();
          } else {
            dst->AppendDouble(src.DoubleAt(p.left));
          }
        }
        break;
      case ColumnRep::kStrings:
        for (const ProbePair& p : cpairs_) {
          if (src.IsNull(p.left)) {
            dst->AppendNull();
          } else {
            dst->AppendStr(src.StrAt(p.left));
          }
        }
        break;
      case ColumnRep::kValues:
        for (const ProbePair& p : cpairs_) {
          dst->AppendValue(src.ValAt(p.left));
        }
        break;
    }
    dst->Seal();
  }

  /// Evaluates the probe keys for `left` and positions the bucket cursor;
  /// a NULL key or an absent key yields an empty bucket.
  Status LookupBucket(const Row& left, ExecContext* ctx) {
    bucket_begin_ = 0;
    bucket_size_ = 0;
    bucket_pos_ = 0;
    probe_key_.resize(left_keys_.size());
    for (size_t i = 0; i < left_keys_.size(); ++i) {
      Result<Value> v = left_keys_[i].Eval(left, ctx);
      if (!v.ok()) return v.status();
      if (v->is_null()) return Status::OK();
      probe_key_[i] = std::move(*v);
    }
    auto it = active_->table.find(probe_key_);  // heterogeneous: no key copy
    if (it != active_->table.end()) {
      bucket_begin_ = it->second.begin;
      bucket_size_ = it->second.size;
    }
    if (MetricsRegistry* m = metrics()) {
      m->Add(MetricCounter::kHashJoinProbes, 1);
      m->Observe(MetricHistogram::kHashJoinChainLength, bucket_size_);
    }
    return Status::OK();
  }

  PhysJoinKind kind_;
  bool cache_build_;
  int worker_;
  std::shared_ptr<SharedJoinState> shared_;
  std::vector<DataType> pad_types_;
  std::vector<Evaluator> left_keys_, right_keys_;
  Evaluator residual_;
  bool has_residual_ = false;
  BuildTable local_;                      // serial/cached build product
  const BuildTable* active_ = nullptr;    // table being probed (local or shared)
  bool built_ = false;                    // local_ valid across Open cycles
  Row left_row_;               // row path: current probe row (copy)
  const Row* left_ = nullptr;  // batch path: current probe row, in probe_
  Row probe_key_;              // scratch for heterogeneous lookups
  bool have_left_ = false;
  bool matched_ = false;
  uint32_t bucket_begin_ = 0;
  uint32_t bucket_size_ = 0;
  uint32_t bucket_pos_ = 0;
  RowBatch probe_{0};
  size_t probe_pos_ = 0;

  /// Columnar-probe state (NextColumnsImpl). Active only when every probe
  /// key is a plain column ref (columnar_capable_); shares matched_ and
  /// the bucket cursor with the row paths, which never interleave with it.
  static constexpr uint32_t kNoRight = UINT32_MAX;  // pad / probe-only pair
  struct ProbePair {
    uint32_t left;   // physical row in cin_
    uint32_t right;  // build arena slot, or kNoRight
  };
  std::vector<int> probe_slots_;        // probe key columns in cin_
  std::unique_ptr<ColumnBatch> cin_;    // current probe input batch
  std::vector<size_t> chashes_;         // per-selection-position key hashes
  uint32_t cjpos_ = 0;                  // selection cursor into cin_
  uint32_t cleft_ = 0;                  // current probe row (physical)
  bool cleft_decoded_ = false;          // cdecode_ holds cleft_'s row
  std::vector<ProbePair> cpairs_;       // pairs gathered this call
  Row cdecode_, ccombined_;             // residual-eval scratch
};

}  // namespace

PhysicalOpPtr MakeNLJoinOp(PhysJoinKind kind, PhysicalOpPtr left,
                           PhysicalOpPtr right, ScalarExprPtr predicate,
                           bool rebind_inner,
                           std::vector<DataType> right_types,
                           bool cache_inner) {
  return std::make_unique<NLJoinOp>(kind, std::move(left), std::move(right),
                                    std::move(predicate), rebind_inner,
                                    std::move(right_types), cache_inner);
}

PhysicalOpPtr MakeHashJoinOp(
    PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys,
    ScalarExprPtr residual, std::vector<DataType> right_types,
    bool cache_build, SharedRegionStatePtr shared, int worker) {
  return std::make_unique<HashJoinOp>(kind, std::move(left), std::move(right),
                                      std::move(keys), std::move(residual),
                                      std::move(right_types), cache_build,
                                      std::move(shared), worker);
}

SharedRegionStatePtr MakeSharedJoinState(int workers) {
  return std::make_shared<SharedJoinState>(workers);
}

}  // namespace orq
