#include <cstdint>
#include <unordered_map>

#include "exec/evaluator.h"
#include "exec/ops.h"
#include "exec/packed_key.h"
#include "obs/metrics.h"

namespace orq {

namespace {

std::vector<ColumnId> CombinedLayout(const PhysicalOp& left,
                                     const PhysicalOp& right,
                                     PhysJoinKind kind) {
  std::vector<ColumnId> layout = left.layout();
  if (kind == PhysJoinKind::kInner || kind == PhysJoinKind::kLeftOuter) {
    layout.insert(layout.end(), right.layout().begin(),
                  right.layout().end());
  }
  return layout;
}

/// NULL-pad types for the non-preserved side of a left outer join. The plan
/// builder passes the right layout's declared column types; direct
/// construction (tests) may omit them, falling back to kInt64.
std::vector<DataType> ResolvePadTypes(std::vector<DataType> right_types,
                                      size_t right_width) {
  if (right_types.size() != right_width) {
    right_types.assign(right_width, DataType::kInt64);
  }
  return right_types;
}

/// Nested-loops join; doubles as the Apply operator when `rebind_inner` is
/// set (per-outer-row parameter binding + inner re-open).
class NLJoinOp : public PhysicalOp {
 public:
  NLJoinOp(PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
           ScalarExprPtr predicate, bool rebind_inner,
           std::vector<DataType> right_types)
      : kind_(kind),
        rebind_inner_(rebind_inner),
        pad_types_(
            ResolvePadTypes(std::move(right_types), right->layout().size())) {
    layout_ = CombinedLayout(*left, *right, kind);
    std::vector<ColumnId> pred_layout = left->layout();
    pred_layout.insert(pred_layout.end(), right->layout().begin(),
                       right->layout().end());
    predicate_ = Evaluator(std::move(predicate), pred_layout);
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Status OpenImpl(ExecContext* ctx) override {
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    have_left_ = false;
    inner_open_ = false;
    if (!rebind_inner_) {
      // Uncorrelated: materialize the inner once.
      ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
      inner_rows_.clear();
      RowBatch batch(ctx->batch_size);
      while (true) {
        ORQ_RETURN_IF_ERROR(children_[1]->NextBatch(ctx, &batch));
        if (batch.empty()) break;
        for (size_t i = 0; i < batch.size(); ++i) {
          inner_rows_.push_back(std::move(batch.row(i)));
        }
      }
      children_[1]->Close();
      RecordPeak(static_cast<int64_t>(inner_rows_.size()));
      if (MetricsRegistry* m = metrics()) {
        m->Add(MetricCounter::kSpoolRows,
               static_cast<int64_t>(inner_rows_.size()));
      }
      probe_ = RowBatch(ctx->batch_size);
      probe_pos_ = 0;
    }
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    const size_t right_width = children_[1]->layout().size();
    while (true) {
      if (!have_left_) {
        ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, &left_row_));
        if (!more) return false;
        have_left_ = true;
        matched_ = false;
        inner_pos_ = 0;
        if (rebind_inner_) {
          const std::vector<ColumnId>& lcols = children_[0]->layout();
          for (size_t i = 0; i < lcols.size(); ++i) {
            ctx->params[lcols[i]] = left_row_[i];
          }
          if (inner_open_) children_[1]->Close();
          ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
          inner_open_ = true;
          if (MetricsRegistry* m = metrics()) {
            m->Add(MetricCounter::kApplyInnerOpens, 1);
          }
        }
      }
      // Fetch next inner row.
      Row inner;
      bool inner_more = false;
      if (rebind_inner_) {
        ORQ_ASSIGN_OR_RETURN(inner_more, children_[1]->Next(ctx, &inner));
      } else if (inner_pos_ < inner_rows_.size()) {
        inner = inner_rows_[inner_pos_++];
        inner_more = true;
      }
      if (!inner_more) {
        bool emit_unmatched = !matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                                            kind_ == PhysJoinKind::kLeftAnti);
        have_left_ = false;
        if (emit_unmatched) {
          *row = left_row_;
          if (kind_ == PhysJoinKind::kLeftOuter) {
            for (size_t i = 0; i < right_width; ++i) {
              row->push_back(Value::Null(pad_types_[i]));
            }
          }
          return true;
        }
        continue;
      }
      // Evaluate the predicate on the combined row.
      Row combined = left_row_;
      combined.insert(combined.end(), inner.begin(), inner.end());
      ORQ_ASSIGN_OR_RETURN(bool keep, predicate_.EvalPredicate(combined, ctx));
      if (!keep) continue;
      matched_ = true;
      switch (kind_) {
        case PhysJoinKind::kInner:
        case PhysJoinKind::kLeftOuter:
          *row = std::move(combined);
          return true;
        case PhysJoinKind::kLeftSemi:
          *row = left_row_;
          have_left_ = false;  // one match suffices
          return true;
        case PhysJoinKind::kLeftAnti:
          have_left_ = false;  // disqualified
          continue;
      }
    }
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    // Correlated Apply stays row-at-a-time: the inner plan is re-opened
    // per outer row, so there is no batch of inner rows to loop over.
    if (rebind_inner_) return FillFromNextImpl(ctx, out);
    while (true) {
      if (!have_left_) {
        if (probe_pos_ >= probe_.size()) {
          ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &probe_));
          if (probe_.empty()) return Status::OK();
          probe_pos_ = 0;
        }
        left_ = &probe_.row(probe_pos_++);
        have_left_ = true;
        matched_ = false;
        inner_pos_ = 0;
      }
      const Row& left = *left_;
      while (have_left_ && inner_pos_ < inner_rows_.size()) {
        if (out->full()) return Status::OK();
        const Row& inner = inner_rows_[inner_pos_++];
        // Compose the combined row in place in the output slot; rejected
        // rows are retracted with PopRow.
        Row& slot = out->PushRow();
        slot.clear();
        slot.reserve(left.size() + inner.size());
        slot.insert(slot.end(), left.begin(), left.end());
        slot.insert(slot.end(), inner.begin(), inner.end());
        ORQ_ASSIGN_OR_RETURN(bool keep, predicate_.EvalPredicate(slot, ctx));
        if (!keep) {
          out->PopRow();
          continue;
        }
        matched_ = true;
        switch (kind_) {
          case PhysJoinKind::kInner:
          case PhysJoinKind::kLeftOuter:
            break;
          case PhysJoinKind::kLeftSemi:
            slot.resize(left.size());  // drop the inner half
            have_left_ = false;
            break;
          case PhysJoinKind::kLeftAnti:
            out->PopRow();
            have_left_ = false;
            break;
        }
      }
      if (have_left_ && inner_pos_ >= inner_rows_.size()) {
        if (!matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                          kind_ == PhysJoinKind::kLeftAnti)) {
          if (out->full()) return Status::OK();
          Row& slot = out->PushRow();
          slot = std::move(*left_);
          if (kind_ == PhysJoinKind::kLeftOuter) {
            for (DataType type : pad_types_) {
              slot.push_back(Value::Null(type));
            }
          }
        }
        have_left_ = false;
      }
    }
  }

  void CloseImpl() override {
    children_[0]->Close();
    if (inner_open_) {
      children_[1]->Close();
      inner_open_ = false;
    }
    inner_rows_.clear();
  }

  std::string name() const override {
    std::string kind;
    switch (kind_) {
      case PhysJoinKind::kInner: kind = "inner"; break;
      case PhysJoinKind::kLeftOuter: kind = "leftouter"; break;
      case PhysJoinKind::kLeftSemi: kind = "semi"; break;
      case PhysJoinKind::kLeftAnti: kind = "anti"; break;
    }
    return (rebind_inner_ ? "Apply(" : "NestedLoopsJoin(") + kind + ")";
  }

 private:
  PhysJoinKind kind_;
  bool rebind_inner_;
  std::vector<DataType> pad_types_;
  Evaluator predicate_;
  Row left_row_;               // row path: current outer row (copy)
  const Row* left_ = nullptr;  // batch path: current outer row, in probe_
  bool have_left_ = false;
  bool matched_ = false;
  bool inner_open_ = false;
  std::vector<Row> inner_rows_;  // uncorrelated inner materialization
  size_t inner_pos_ = 0;
  RowBatch probe_{0};
  size_t probe_pos_ = 0;
};

class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
             std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys,
             ScalarExprPtr residual, std::vector<DataType> right_types)
      : kind_(kind),
        pad_types_(
            ResolvePadTypes(std::move(right_types), right->layout().size())) {
    layout_ = CombinedLayout(*left, *right, kind);
    for (auto& [l, r] : keys) {
      left_keys_.emplace_back(std::move(l), left->layout());
      right_keys_.emplace_back(std::move(r), right->layout());
    }
    if (residual != nullptr) {
      std::vector<ColumnId> combined = left->layout();
      combined.insert(combined.end(), right->layout().begin(),
                      right->layout().end());
      residual_ = Evaluator(std::move(residual), combined);
      has_residual_ = true;
    }
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Status OpenImpl(ExecContext* ctx) override {
    // Build: drain the right child into a contiguous arena, keyed by a
    // packed key (hash precomputed once per distinct key). Buckets are
    // ranges into a single slots permutation rather than one vector of
    // row copies per key.
    arena_.clear();
    slots_.clear();
    table_.clear();
    ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
    std::vector<BucketRange*> row_bucket;
    RowBatch batch(ctx->batch_size);
    Row key(right_keys_.size());
    while (true) {
      ORQ_RETURN_IF_ERROR(children_[1]->NextBatch(ctx, &batch));
      if (batch.empty()) break;
      for (size_t r = 0; r < batch.size(); ++r) {
        Row& row = batch.row(r);
        bool null_key = false;
        for (size_t i = 0; i < right_keys_.size(); ++i) {
          Result<Value> v = right_keys_[i].Eval(row, ctx);
          if (!v.ok()) return v.status();
          if (v->is_null()) {
            null_key = true;
            break;
          }
          key[i] = std::move(*v);
        }
        if (null_key) continue;  // NULL keys never join
        auto it = table_.find(key);
        if (it == table_.end()) {
          it = table_.emplace(PackedKey(std::move(key)), BucketRange{}).first;
          key = Row(right_keys_.size());
        }
        ++it->second.size;
        row_bucket.push_back(&it->second);
        arena_.push_back(std::move(row));
      }
    }
    children_[1]->Close();
    // Assign each bucket a contiguous slot range, then scatter arena
    // indices into their bucket's range in arrival order.
    uint32_t offset = 0;
    for (auto& entry : table_) {
      entry.second.begin = offset;
      offset += entry.second.size;
    }
    slots_.resize(arena_.size());
    for (size_t i = 0; i < arena_.size(); ++i) {
      BucketRange* bucket = row_bucket[i];
      slots_[bucket->begin + bucket->filled++] = static_cast<uint32_t>(i);
    }
    RecordPeak(static_cast<int64_t>(table_.size()));
    if (MetricsRegistry* m = metrics()) {
      m->Add(MetricCounter::kHashJoinBuildRows,
             static_cast<int64_t>(arena_.size()));
      m->Add(MetricCounter::kHashJoinBuckets,
             static_cast<int64_t>(table_.size()));
      // Approximate resident footprint of the build side: row headers and
      // value storage in the arena, the slots permutation, and the packed
      // keys + bucket ranges in the table. String payloads are not walked.
      int64_t bytes = static_cast<int64_t>(slots_.size() * sizeof(uint32_t));
      for (const Row& row : arena_) {
        bytes += static_cast<int64_t>(sizeof(Row) +
                                      row.capacity() * sizeof(Value));
      }
      for (const auto& entry : table_) {
        bytes += static_cast<int64_t>(
            sizeof(PackedKey) + sizeof(BucketRange) +
            entry.first.values.capacity() * sizeof(Value));
        m->Observe(MetricHistogram::kHashJoinBucketRows, entry.second.size);
      }
      m->Add(MetricCounter::kHashJoinArenaBytes, bytes);
    }
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    have_left_ = false;
    probe_ = RowBatch(ctx->batch_size);
    probe_pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    while (true) {
      if (!have_left_) {
        ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, &left_row_));
        if (!more) return false;
        have_left_ = true;
        matched_ = false;
        ORQ_RETURN_IF_ERROR(LookupBucket(left_row_, ctx));
      }
      while (bucket_pos_ < bucket_size_) {
        const Row& inner = arena_[slots_[bucket_begin_ + bucket_pos_++]];
        Row combined = left_row_;
        combined.insert(combined.end(), inner.begin(), inner.end());
        if (has_residual_) {
          ORQ_ASSIGN_OR_RETURN(bool keep,
                               residual_.EvalPredicate(combined, ctx));
          if (!keep) continue;
        }
        matched_ = true;
        switch (kind_) {
          case PhysJoinKind::kInner:
          case PhysJoinKind::kLeftOuter:
            *row = std::move(combined);
            return true;
          case PhysJoinKind::kLeftSemi:
            *row = left_row_;
            have_left_ = false;
            return true;
          case PhysJoinKind::kLeftAnti:
            have_left_ = false;
            break;
        }
        if (!have_left_) break;
      }
      if (!have_left_) continue;  // semi emitted via return; anti restarts
      // Bucket exhausted.
      bool emit_unmatched = !matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                                          kind_ == PhysJoinKind::kLeftAnti);
      have_left_ = false;
      if (emit_unmatched) {
        *row = left_row_;
        if (kind_ == PhysJoinKind::kLeftOuter) {
          for (DataType type : pad_types_) {
            row->push_back(Value::Null(type));
          }
        }
        return true;
      }
    }
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    while (true) {
      if (!have_left_) {
        if (probe_pos_ >= probe_.size()) {
          ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &probe_));
          if (probe_.empty()) return Status::OK();
          probe_pos_ = 0;
        }
        left_ = &probe_.row(probe_pos_++);
        have_left_ = true;
        matched_ = false;
        ORQ_RETURN_IF_ERROR(LookupBucket(*left_, ctx));
      }
      const Row& left = *left_;
      while (have_left_ && bucket_pos_ < bucket_size_) {
        if (out->full()) return Status::OK();
        const Row& inner = arena_[slots_[bucket_begin_ + bucket_pos_++]];
        Row& slot = out->PushRow();
        slot.clear();
        slot.reserve(left.size() + inner.size());
        slot.insert(slot.end(), left.begin(), left.end());
        slot.insert(slot.end(), inner.begin(), inner.end());
        if (has_residual_) {
          ORQ_ASSIGN_OR_RETURN(bool keep, residual_.EvalPredicate(slot, ctx));
          if (!keep) {
            out->PopRow();
            continue;
          }
        }
        matched_ = true;
        switch (kind_) {
          case PhysJoinKind::kInner:
          case PhysJoinKind::kLeftOuter:
            break;
          case PhysJoinKind::kLeftSemi:
            slot.resize(left.size());  // drop the inner half
            have_left_ = false;
            break;
          case PhysJoinKind::kLeftAnti:
            out->PopRow();
            have_left_ = false;
            break;
        }
      }
      if (have_left_ && bucket_pos_ >= bucket_size_) {
        if (!matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                          kind_ == PhysJoinKind::kLeftAnti)) {
          if (out->full()) return Status::OK();
          Row& slot = out->PushRow();
          slot = std::move(*left_);
          if (kind_ == PhysJoinKind::kLeftOuter) {
            for (DataType type : pad_types_) {
              slot.push_back(Value::Null(type));
            }
          }
        }
        have_left_ = false;
      }
    }
  }

  void CloseImpl() override {
    children_[0]->Close();
    arena_.clear();
    slots_.clear();
    table_.clear();
  }

  std::string name() const override {
    std::string kind;
    switch (kind_) {
      case PhysJoinKind::kInner: kind = "inner"; break;
      case PhysJoinKind::kLeftOuter: kind = "leftouter"; break;
      case PhysJoinKind::kLeftSemi: kind = "semi"; break;
      case PhysJoinKind::kLeftAnti: kind = "anti"; break;
    }
    return "HashJoin(" + kind + ")";
  }

 private:
  /// A bucket's slice of the slots_ permutation. `filled` is the build-time
  /// scatter cursor; unused after Open.
  struct BucketRange {
    uint32_t begin = 0;
    uint32_t size = 0;
    uint32_t filled = 0;
  };

  /// Evaluates the probe keys for `left` and positions the bucket cursor;
  /// a NULL key or an absent key yields an empty bucket.
  Status LookupBucket(const Row& left, ExecContext* ctx) {
    bucket_begin_ = 0;
    bucket_size_ = 0;
    bucket_pos_ = 0;
    probe_key_.resize(left_keys_.size());
    for (size_t i = 0; i < left_keys_.size(); ++i) {
      Result<Value> v = left_keys_[i].Eval(left, ctx);
      if (!v.ok()) return v.status();
      if (v->is_null()) return Status::OK();
      probe_key_[i] = std::move(*v);
    }
    auto it = table_.find(probe_key_);  // heterogeneous: no key copy
    if (it != table_.end()) {
      bucket_begin_ = it->second.begin;
      bucket_size_ = it->second.size;
    }
    if (MetricsRegistry* m = metrics()) {
      m->Add(MetricCounter::kHashJoinProbes, 1);
      m->Observe(MetricHistogram::kHashJoinChainLength, bucket_size_);
    }
    return Status::OK();
  }

  PhysJoinKind kind_;
  std::vector<DataType> pad_types_;
  std::vector<Evaluator> left_keys_, right_keys_;
  Evaluator residual_;
  bool has_residual_ = false;
  std::vector<Row> arena_;      // build rows, arrival order
  std::vector<uint32_t> slots_; // arena indices grouped by bucket
  std::unordered_map<PackedKey, BucketRange, PackedKeyHash, PackedKeyEq>
      table_;
  Row left_row_;               // row path: current probe row (copy)
  const Row* left_ = nullptr;  // batch path: current probe row, in probe_
  Row probe_key_;              // scratch for heterogeneous lookups
  bool have_left_ = false;
  bool matched_ = false;
  uint32_t bucket_begin_ = 0;
  uint32_t bucket_size_ = 0;
  uint32_t bucket_pos_ = 0;
  RowBatch probe_{0};
  size_t probe_pos_ = 0;
};

}  // namespace

PhysicalOpPtr MakeNLJoinOp(PhysJoinKind kind, PhysicalOpPtr left,
                           PhysicalOpPtr right, ScalarExprPtr predicate,
                           bool rebind_inner,
                           std::vector<DataType> right_types) {
  return std::make_unique<NLJoinOp>(kind, std::move(left), std::move(right),
                                    std::move(predicate), rebind_inner,
                                    std::move(right_types));
}

PhysicalOpPtr MakeHashJoinOp(
    PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys,
    ScalarExprPtr residual, std::vector<DataType> right_types) {
  return std::make_unique<HashJoinOp>(kind, std::move(left), std::move(right),
                                      std::move(keys), std::move(residual),
                                      std::move(right_types));
}

}  // namespace orq
