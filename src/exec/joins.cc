#include <unordered_map>

#include "exec/evaluator.h"
#include "exec/ops.h"

namespace orq {

namespace {

std::vector<ColumnId> CombinedLayout(const PhysicalOp& left,
                                     const PhysicalOp& right,
                                     PhysJoinKind kind) {
  std::vector<ColumnId> layout = left.layout();
  if (kind == PhysJoinKind::kInner || kind == PhysJoinKind::kLeftOuter) {
    layout.insert(layout.end(), right.layout().begin(),
                  right.layout().end());
  }
  return layout;
}

/// Nested-loops join; doubles as the Apply operator when `rebind_inner` is
/// set (per-outer-row parameter binding + inner re-open).
class NLJoinOp : public PhysicalOp {
 public:
  NLJoinOp(PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
           ScalarExprPtr predicate, bool rebind_inner)
      : kind_(kind), rebind_inner_(rebind_inner) {
    layout_ = CombinedLayout(*left, *right, kind);
    std::vector<ColumnId> pred_layout = left->layout();
    pred_layout.insert(pred_layout.end(), right->layout().begin(),
                       right->layout().end());
    predicate_ = Evaluator(std::move(predicate), pred_layout);
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Status OpenImpl(ExecContext* ctx) override {
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    have_left_ = false;
    inner_open_ = false;
    if (!rebind_inner_) {
      // Uncorrelated: materialize the inner once.
      ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
      inner_rows_.clear();
      Row row;
      while (true) {
        Result<bool> more = children_[1]->Next(ctx, &row);
        if (!more.ok()) return more.status();
        if (!*more) break;
        inner_rows_.push_back(row);
      }
      children_[1]->Close();
      RecordPeak(static_cast<int64_t>(inner_rows_.size()));
    }
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    const size_t left_width = children_[0]->layout().size();
    const size_t right_width = children_[1]->layout().size();
    while (true) {
      if (!have_left_) {
        ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, &left_row_));
        if (!more) return false;
        have_left_ = true;
        matched_ = false;
        inner_pos_ = 0;
        if (rebind_inner_) {
          const std::vector<ColumnId>& lcols = children_[0]->layout();
          for (size_t i = 0; i < lcols.size(); ++i) {
            ctx->params[lcols[i]] = left_row_[i];
          }
          if (inner_open_) children_[1]->Close();
          ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
          inner_open_ = true;
        }
      }
      // Fetch next inner row.
      Row inner;
      bool inner_more = false;
      if (rebind_inner_) {
        ORQ_ASSIGN_OR_RETURN(inner_more, children_[1]->Next(ctx, &inner));
      } else if (inner_pos_ < inner_rows_.size()) {
        inner = inner_rows_[inner_pos_++];
        inner_more = true;
      }
      if (!inner_more) {
        bool emit_unmatched = !matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                                            kind_ == PhysJoinKind::kLeftAnti);
        have_left_ = false;
        if (emit_unmatched) {
          *row = left_row_;
          if (kind_ == PhysJoinKind::kLeftOuter) {
            for (size_t i = 0; i < right_width; ++i) {
              row->push_back(Value::Null(
                  i < right_width ? DataType::kInt64 : DataType::kInt64));
            }
          }
          return true;
        }
        continue;
      }
      // Evaluate the predicate on the combined row.
      Row combined = left_row_;
      combined.insert(combined.end(), inner.begin(), inner.end());
      ORQ_ASSIGN_OR_RETURN(bool keep, predicate_.EvalPredicate(combined, ctx));
      if (!keep) continue;
      matched_ = true;
      switch (kind_) {
        case PhysJoinKind::kInner:
        case PhysJoinKind::kLeftOuter:
          *row = std::move(combined);
          return true;
        case PhysJoinKind::kLeftSemi:
          *row = left_row_;
          have_left_ = false;  // one match suffices
          return true;
        case PhysJoinKind::kLeftAnti:
          have_left_ = false;  // disqualified
          continue;
      }
    }
    (void)left_width;
  }

  void CloseImpl() override {
    children_[0]->Close();
    if (inner_open_) {
      children_[1]->Close();
      inner_open_ = false;
    }
    inner_rows_.clear();
  }

  std::string name() const override {
    std::string kind;
    switch (kind_) {
      case PhysJoinKind::kInner: kind = "inner"; break;
      case PhysJoinKind::kLeftOuter: kind = "leftouter"; break;
      case PhysJoinKind::kLeftSemi: kind = "semi"; break;
      case PhysJoinKind::kLeftAnti: kind = "anti"; break;
    }
    return (rebind_inner_ ? "Apply(" : "NestedLoopsJoin(") + kind + ")";
  }

 private:
  PhysJoinKind kind_;
  bool rebind_inner_;
  Evaluator predicate_;
  Row left_row_;
  bool have_left_ = false;
  bool matched_ = false;
  bool inner_open_ = false;
  std::vector<Row> inner_rows_;  // uncorrelated inner materialization
  size_t inner_pos_ = 0;
};

class HashJoinOp : public PhysicalOp {
 public:
  HashJoinOp(PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
             std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys,
             ScalarExprPtr residual)
      : kind_(kind) {
    layout_ = CombinedLayout(*left, *right, kind);
    for (auto& [l, r] : keys) {
      left_keys_.emplace_back(std::move(l), left->layout());
      right_keys_.emplace_back(std::move(r), right->layout());
    }
    if (residual != nullptr) {
      std::vector<ColumnId> combined = left->layout();
      combined.insert(combined.end(), right->layout().begin(),
                      right->layout().end());
      residual_ = Evaluator(std::move(residual), combined);
      has_residual_ = true;
    }
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Status OpenImpl(ExecContext* ctx) override {
    table_.clear();
    ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
    Row row;
    while (true) {
      Result<bool> more = children_[1]->Next(ctx, &row);
      if (!more.ok()) return more.status();
      if (!*more) break;
      Row key(right_keys_.size());
      bool null_key = false;
      for (size_t i = 0; i < right_keys_.size(); ++i) {
        Result<Value> v = right_keys_[i].Eval(row, ctx);
        if (!v.ok()) return v.status();
        if (v->is_null()) {
          null_key = true;
          break;
        }
        key[i] = std::move(*v);
      }
      if (null_key) continue;  // NULL keys never join
      table_[key].push_back(row);
    }
    children_[1]->Close();
    RecordPeak(static_cast<int64_t>(table_.size()));
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    have_left_ = false;
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    const size_t right_width = children_[1]->layout().size();
    while (true) {
      if (!have_left_) {
        ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, &left_row_));
        if (!more) return false;
        have_left_ = true;
        matched_ = false;
        bucket_ = nullptr;
        bucket_pos_ = 0;
        Row key(left_keys_.size());
        bool null_key = false;
        for (size_t i = 0; i < left_keys_.size(); ++i) {
          ORQ_ASSIGN_OR_RETURN(Value v, left_keys_[i].Eval(left_row_, ctx));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          key[i] = std::move(v);
        }
        if (!null_key) {
          auto it = table_.find(key);
          if (it != table_.end()) bucket_ = &it->second;
        }
      }
      if (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
        const Row& inner = (*bucket_)[bucket_pos_++];
        Row combined = left_row_;
        combined.insert(combined.end(), inner.begin(), inner.end());
        if (has_residual_) {
          ORQ_ASSIGN_OR_RETURN(bool keep,
                               residual_.EvalPredicate(combined, ctx));
          if (!keep) continue;
        }
        matched_ = true;
        switch (kind_) {
          case PhysJoinKind::kInner:
          case PhysJoinKind::kLeftOuter:
            *row = std::move(combined);
            return true;
          case PhysJoinKind::kLeftSemi:
            *row = left_row_;
            have_left_ = false;
            return true;
          case PhysJoinKind::kLeftAnti:
            have_left_ = false;
            continue;
        }
      }
      // Bucket exhausted.
      bool emit_unmatched = !matched_ && (kind_ == PhysJoinKind::kLeftOuter ||
                                          kind_ == PhysJoinKind::kLeftAnti);
      have_left_ = false;
      if (emit_unmatched) {
        *row = left_row_;
        if (kind_ == PhysJoinKind::kLeftOuter) {
          for (size_t i = 0; i < right_width; ++i) {
            row->push_back(Value::Null());
          }
        }
        return true;
      }
    }
  }

  void CloseImpl() override {
    children_[0]->Close();
    table_.clear();
  }

  std::string name() const override {
    std::string kind;
    switch (kind_) {
      case PhysJoinKind::kInner: kind = "inner"; break;
      case PhysJoinKind::kLeftOuter: kind = "leftouter"; break;
      case PhysJoinKind::kLeftSemi: kind = "semi"; break;
      case PhysJoinKind::kLeftAnti: kind = "anti"; break;
    }
    return "HashJoin(" + kind + ")";
  }

 private:
  PhysJoinKind kind_;
  std::vector<Evaluator> left_keys_, right_keys_;
  Evaluator residual_;
  bool has_residual_ = false;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowGroupEq> table_;
  Row left_row_;
  bool have_left_ = false;
  bool matched_ = false;
  const std::vector<Row>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

}  // namespace

PhysicalOpPtr MakeNLJoinOp(PhysJoinKind kind, PhysicalOpPtr left,
                           PhysicalOpPtr right, ScalarExprPtr predicate,
                           bool rebind_inner) {
  return std::make_unique<NLJoinOp>(kind, std::move(left), std::move(right),
                                    std::move(predicate), rebind_inner);
}

PhysicalOpPtr MakeHashJoinOp(
    PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys,
    ScalarExprPtr residual) {
  return std::make_unique<HashJoinOp>(kind, std::move(left), std::move(right),
                                      std::move(keys), std::move(residual));
}

}  // namespace orq
