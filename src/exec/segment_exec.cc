#include <unordered_map>

#include "exec/ops.h"
#include "obs/metrics.h"

namespace orq {

namespace {

/// Segmented execution (paper section 3.4): partition the input on the key
/// slots, run the inner plan once per segment with the segment's rows
/// published on the context's segment stack, and emit the segment key
/// prepended to each inner row.
class SegmentApplyOp : public PhysicalOp {
 public:
  SegmentApplyOp(PhysicalOpPtr input, PhysicalOpPtr inner,
                 std::vector<int> key_slots, std::vector<ColumnId> layout)
      : key_slots_(std::move(key_slots)) {
    layout_ = std::move(layout);
    children_.push_back(std::move(input));
    children_.push_back(std::move(inner));
  }

  Status OpenImpl(ExecContext* ctx) override {
    segments_.clear();
    order_.clear();
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    RowBatch batch(ctx->batch_size);
    Row key(key_slots_.size());
    while (true) {
      ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &batch));
      if (batch.empty()) break;
      for (size_t r = 0; r < batch.size(); ++r) {
        Row& row = batch.row(r);
        key.resize(key_slots_.size());
        for (size_t i = 0; i < key_slots_.size(); ++i) {
          key[i] = row[key_slots_[i]];
        }
        auto it = segments_.find(key);
        if (it == segments_.end()) {
          it = segments_.emplace(std::move(key), std::vector<Row>()).first;
          order_.push_back(&*it);
        }
        it->second.push_back(std::move(row));
      }
    }
    children_[0]->Close();
    RecordPeak(static_cast<int64_t>(segments_.size()));
    segment_pos_ = 0;
    inner_open_ = false;
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    while (true) {
      if (!inner_open_) {
        if (segment_pos_ >= order_.size()) return false;
        ctx->segment_stack.push_back(&order_[segment_pos_]->second);
        ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
        inner_open_ = true;
        if (MetricsRegistry* m = metrics()) {
          m->Add(MetricCounter::kSegmentInnerOpens, 1);
        }
      }
      Row inner;
      Result<bool> more = children_[1]->Next(ctx, &inner);
      if (!more.ok()) {
        CloseInner(ctx);
        return more.status();
      }
      if (!*more) {
        CloseInner(ctx);
        ++segment_pos_;
        continue;
      }
      *row = order_[segment_pos_]->first;  // the segment key {a}
      row->insert(row->end(), inner.begin(), inner.end());
      return true;
    }
  }

  void CloseImpl() override {
    segments_.clear();
    order_.clear();
  }

  std::string name() const override { return "SegmentApply"; }

 private:
  void CloseInner(ExecContext* ctx) {
    if (inner_open_) {
      children_[1]->Close();
      ctx->segment_stack.pop_back();
      inner_open_ = false;
    }
  }

  std::vector<int> key_slots_;
  using SegmentMap =
      std::unordered_map<Row, std::vector<Row>, RowHash, RowGroupEq>;
  SegmentMap segments_;
  std::vector<SegmentMap::value_type*> order_;
  size_t segment_pos_ = 0;
  bool inner_open_ = false;
};

}  // namespace

PhysicalOpPtr MakeSegmentApplyOp(PhysicalOpPtr input, PhysicalOpPtr inner,
                                 std::vector<int> key_slots,
                                 std::vector<ColumnId> layout) {
  return std::make_unique<SegmentApplyOp>(std::move(input), std::move(inner),
                                          std::move(key_slots),
                                          std::move(layout));
}

}  // namespace orq
