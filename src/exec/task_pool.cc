#include "exec/task_pool.h"

#include <chrono>

#include "exec/cancel.h"

namespace orq {

TaskPool::TaskPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::Submit(std::function<void()> task) {
  const size_t target = static_cast<size_t>(
      next_worker_.fetch_add(1, std::memory_order_relaxed) %
      static_cast<int64_t>(workers_.size()));
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  work_cv_.notify_all();
}

void TaskPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

Status TaskPool::AcquireGangSlot(const CancelToken* cancel) {
  std::unique_lock<std::mutex> lock(gang_mu_);
  while (gang_busy_) {
    if (cancel != nullptr) {
      Status status = cancel->Check();
      if (!status.ok()) return status;
      // Poll in slices so a deadline firing mid-wait is noticed promptly.
      gang_cv_.wait_for(lock, std::chrono::milliseconds(10));
    } else {
      gang_cv_.wait(lock);
    }
  }
  gang_busy_ = true;
  return Status::OK();
}

void TaskPool::ReleaseGangSlot() {
  {
    std::lock_guard<std::mutex> lock(gang_mu_);
    gang_busy_ = false;
  }
  gang_cv_.notify_one();
}

bool TaskPool::TryPop(int self, std::function<void()>* task) {
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  const int n = static_cast<int>(workers_.size());
  for (int i = 1; i < n; ++i) {
    Worker& victim = *workers_[(self + i) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void TaskPool::WorkerLoop(int self) {
  while (true) {
    std::function<void()> task;
    if (TryPop(self, &task)) {
      task();
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      bool idle;
      {
        std::lock_guard<std::mutex> lock(mu_);
        idle = (--pending_ == 0);
      }
      if (idle) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return;
    if (pending_ == 0) {
      work_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    } else {
      // Tasks exist but the deques were empty when we looked (a race with
      // another thief); re-scan after a short wait instead of spinning.
      work_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
}

}  // namespace orq
