#ifndef ORQ_EXEC_TASK_POOL_H_
#define ORQ_EXEC_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace orq {

class CancelToken;

/// Work-stealing thread pool driving morsel-parallel execution. Each worker
/// owns a deque: Submit distributes tasks round-robin, an owner pops from
/// the front of its own deque, and an idle worker steals from the *back* of
/// a victim's deque — the classic split that keeps owner and thief on
/// opposite ends, so they only contend when a deque is nearly empty.
///
/// Tasks must not block on work that only another *queued* (not yet
/// running) task can perform unless the blocked task's thread is itself
/// stealable-around — the exchange operator's gang satisfies this because a
/// worker blocked on the build barrier occupies its thread while the
/// remaining gang members run on other threads or are stolen by them.
/// Plans keep at most one exchange per query (see opt/physical.cc), and
/// concurrent queries sharing one pool serialize their gangs through
/// AcquireGangSlot — so a gang never waits on a second gang for pool
/// capacity.
class TaskPool {
 public:
  explicit TaskPool(int num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker thread. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running. Intended for
  /// tests and teardown; the exchange operator tracks completion through
  /// its own queue protocol instead.
  void WaitIdle();

  /// Reserves the pool for one exchange gang. A gang's members block on
  /// build barriers until every member is running, so two gangs splitting
  /// the pool between them deadlock — each holds workers the other needs.
  /// Gang admission serializes them: the caller blocks (off-pool, so it
  /// consumes no worker) until the slot frees, polling `cancel` when
  /// non-null so a deadline or cancellation interrupts the wait. Returns
  /// OK holding the slot, or the token's error without it.
  Status AcquireGangSlot(const CancelToken* cancel);

  /// Frees the slot taken by AcquireGangSlot (call once per acquire).
  void ReleaseGangSlot();

  /// Total tasks executed / executed via stealing (monotonic, for metrics).
  int64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  int64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int self);
  /// Pops the next task: front of own deque, else back of another's.
  bool TryPop(int self, std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;                  // guards wakeups + idle accounting
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::mutex gang_mu_;             // guards gang_busy_
  std::condition_variable gang_cv_;
  bool gang_busy_ = false;
  int64_t pending_ = 0;            // submitted but not yet finished
  bool stop_ = false;
  std::atomic<int64_t> next_worker_{0};
  std::atomic<int64_t> tasks_run_{0};
  std::atomic<int64_t> steals_{0};
};

}  // namespace orq

#endif  // ORQ_EXEC_TASK_POOL_H_
