#ifndef ORQ_EXEC_OPS_H_
#define ORQ_EXEC_OPS_H_

#include <utility>
#include <vector>

#include "algebra/rel_expr.h"
#include "catalog/table.h"
#include "exec/exec.h"
#include "exec/parallel.h"

namespace orq {

/// Physical join variants (cross joins are inner joins with TRUE).
enum class PhysJoinKind { kInner, kLeftOuter, kLeftSemi, kLeftAnti };

/// Full scan emitting `ordinals` of each row as columns `layout`.
PhysicalOpPtr MakeTableScan(const Table* table, std::vector<int> ordinals,
                            std::vector<ColumnId> layout);

/// Equality index lookup. Key expressions are evaluated against correlated
/// parameters (ExecContext::params) at Open time — this is the physical
/// shape of "correlated execution with index lookup" (paper section 4).
/// Rows matching the key have `ordinals` projected to `layout`; `residual`
/// (optional) filters them.
PhysicalOpPtr MakeIndexSeek(const Table* table, const TableIndex* index,
                            std::vector<ScalarExprPtr> key_exprs,
                            std::vector<int> ordinals,
                            std::vector<ColumnId> layout,
                            ScalarExprPtr residual);

PhysicalOpPtr MakeFilterOp(PhysicalOpPtr child, ScalarExprPtr predicate);

/// Projection: forwards `passthrough` columns (by id) and computes items.
PhysicalOpPtr MakeComputeOp(PhysicalOpPtr child,
                            std::vector<ProjectItem> items,
                            std::vector<ColumnId> passthrough);

/// Nested-loops join / Apply. When `rebind_inner` is set, the operator
/// publishes each outer row's columns as parameters and re-opens the inner
/// child per outer row (correlated execution). kLeftOuter pads unmatched
/// rows with NULLs typed by `right_types` (the right layout's declared
/// column types, one per right column; kInt64 when omitted). With
/// `cache_inner` (builder-proven uncorrelated, segment-free inner), the
/// inner spool survives Close and re-opens replay it instead of
/// re-executing the subtree.
PhysicalOpPtr MakeNLJoinOp(PhysJoinKind kind, PhysicalOpPtr left,
                           PhysicalOpPtr right, ScalarExprPtr predicate,
                           bool rebind_inner,
                           std::vector<DataType> right_types = {},
                           bool cache_inner = false);

/// Hash join on equi-key pairs (left expr, right expr) with an optional
/// residual predicate over the combined row. Builds on the right input.
/// `right_types` types the kLeftOuter NULL padding, as in MakeNLJoinOp.
/// `cache_build` retains the build table across Open cycles (uncorrelated,
/// segment-free build side). Inside a parallel region, `shared` (from
/// MakeSharedJoinState) + `worker` switch the build to per-worker partials
/// merged at a barrier into one table all instances probe.
PhysicalOpPtr MakeHashJoinOp(
    PhysJoinKind kind, PhysicalOpPtr left, PhysicalOpPtr right,
    std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> keys,
    ScalarExprPtr residual, std::vector<DataType> right_types = {},
    bool cache_build = false, SharedRegionStatePtr shared = nullptr,
    int worker = 0);

/// Hash aggregation; with `scalar` set, emits exactly one row (agg over the
/// empty input yields count=0 / others NULL, per section 1.1). Implements
/// the Max1Row aggregate's run-time error. LocalGroupBy reuses this
/// operator (section 3.3: the implementation need not differ). Inside a
/// parallel region, `shared` (from MakeSharedAggState) + `worker` merge
/// per-worker partial aggregates at end of input; worker 0 emits the
/// merged groups and the other instances emit nothing.
PhysicalOpPtr MakeHashAggregateOp(PhysicalOpPtr child,
                                  std::vector<ColumnId> group_cols,
                                  std::vector<AggItem> aggs, bool scalar,
                                  SharedRegionStatePtr shared = nullptr,
                                  int worker = 0);

PhysicalOpPtr MakeSortOp(PhysicalOpPtr child, std::vector<SortKey> keys,
                         int64_t limit);

/// Passes rows through; errors with kCardinalityViolation on a second row.
PhysicalOpPtr MakeMax1rowOp(PhysicalOpPtr child);

/// Children must already produce positionally aligned layouts.
PhysicalOpPtr MakeUnionAllOp(std::vector<PhysicalOpPtr> children,
                             std::vector<ColumnId> layout);
PhysicalOpPtr MakeExceptAllOp(PhysicalOpPtr left, PhysicalOpPtr right,
                              std::vector<ColumnId> layout);

/// One row, zero columns.
PhysicalOpPtr MakeSingleRowOp();

/// Zero rows with the given layout — the compiled form of a provably empty
/// subexpression (paper section 4's "detecting empty subexpressions"); the
/// pruned subtree is never even opened.
PhysicalOpPtr MakeEmptyOp(std::vector<ColumnId> layout);

/// Reads the current segment (ExecContext::segment_stack) positionally.
PhysicalOpPtr MakeSegmentScanOp(std::vector<ColumnId> layout);

/// Segmented execution (paper section 3.4): partitions the input by the
/// given key slots, then runs `inner` once per segment with the segment
/// exposed to SegmentScan leaves; emits segment-key ++ inner-row.
PhysicalOpPtr MakeSegmentApplyOp(PhysicalOpPtr input, PhysicalOpPtr inner,
                                 std::vector<int> key_slots,
                                 std::vector<ColumnId> layout);

}  // namespace orq

#endif  // ORQ_EXEC_OPS_H_
