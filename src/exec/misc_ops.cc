#include <algorithm>
#include <unordered_map>

#include "exec/evaluator.h"
#include "exec/ops.h"
#include "exec/vector_kernels.h"
#include "obs/metrics.h"

namespace orq {

namespace {

/// Recursively splits nested top-level ANDs into conjuncts. Evaluating
/// flattened conjuncts left to right with false-drops-immediately /
/// null-marks-but-keeps reproduces the row evaluator's n-ary AND exactly,
/// including which rows a later erroring conjunct gets to see.
void FlattenAnd(const ScalarExprPtr& e, std::vector<ScalarExprPtr>* out) {
  if (e->kind == ScalarKind::kAnd) {
    for (const ScalarExprPtr& child : e->children) FlattenAnd(child, out);
    return;
  }
  out->push_back(e);
}

class FilterOp : public PhysicalOp {
 public:
  FilterOp(PhysicalOpPtr child, ScalarExprPtr predicate) {
    layout_ = child->layout();
    columnar_capable_ = true;
    // A single non-AND predicate keeps rows by EvalPredicate's rule
    // (non-NULL, *boolean*, true); conjuncts split from an AND keep rows
    // the way the AND node consumes children: any non-NULL truthy value.
    single_conjunct_ = predicate->kind != ScalarKind::kAnd;
    std::vector<ScalarExprPtr> parts;
    FlattenAnd(predicate, &parts);
    conjuncts_.reserve(parts.size());
    for (const ScalarExprPtr& part : parts) {
      Conjunct cj;
      cj.vec.Compile(part, layout_);
      if (!cj.vec.vectorizable()) cj.row = Evaluator(part, layout_);
      conjuncts_.push_back(std::move(cj));
    }
    predicate_ = Evaluator(std::move(predicate), layout_);
    children_.push_back(std::move(child));
  }

  Status OpenImpl(ExecContext* ctx) override {
    input_ = RowBatch(ctx->batch_size);
    in_pos_ = 0;
    return children_[0]->Open(ctx);
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    while (true) {
      ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, row));
      if (!more) return false;
      ORQ_ASSIGN_OR_RETURN(bool keep, predicate_.EvalPredicate(*row, ctx));
      if (keep) {
        return true;
      }
    }
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    while (true) {
      if (in_pos_ >= input_.size()) {
        ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &input_));
        if (input_.empty()) return Status::OK();
        in_pos_ = 0;
      }
      while (in_pos_ < input_.size() && !out->full()) {
        Row& row = input_.row(in_pos_++);
        ORQ_ASSIGN_OR_RETURN(bool keep, predicate_.EvalPredicate(row, ctx));
        if (keep) out->PushRow() = std::move(row);
      }
      if (out->full()) return Status::OK();
    }
  }

  /// Columnar filter: the child fills `out` (views and all); conjuncts
  /// narrow the selection vector in place — survivors are marked, not
  /// copied. Rows a conjunct evaluates to NULL stay selected (the row
  /// engine's AND keeps evaluating later children past a NULL, and a later
  /// conjunct may error or return false on them) and are removed at the
  /// end. Loops past fully-filtered input so selected() == 0 means EOS.
  Status NextColumnsImpl(ExecContext* ctx, ColumnBatch* out) override {
    while (true) {
      ORQ_RETURN_IF_ERROR(children_[0]->NextColumns(ctx, out));
      if (out->selected() == 0) return Status::OK();  // end of stream
      null_mark_.assign(out->num_rows(), 0);
      bool any_mark = false;
      for (Conjunct& cj : conjuncts_) {
        if (out->selected() == 0) break;
        if (cj.vec.vectorizable()) {
          ORQ_ASSIGN_OR_RETURN(const ColumnVec* r, cj.vec.Eval(*out, ctx));
          Narrow(out, &any_mark, [&](uint32_t i) {
            int t = PredTruthElem(*r, i);
            if (single_conjunct_) {
              // EvalPredicate: non-NULL boolean true keeps, all else drops.
              return t == 1 && r->type() == DataType::kBool &&
                             (r->rep() != ColumnRep::kValues ||
                              r->ValAt(i).type() == DataType::kBool)
                         ? 1
                         : 0;
            }
            return t;
          });
        } else {
          Status err;
          Narrow(out, &any_mark, [&](uint32_t i) {
            if (!err.ok()) return 0;
            out->DecodeRow(i, &decode_row_);
            Result<Value> v = cj.row.Eval(decode_row_, ctx);
            if (!v.ok()) {
              err = v.status();
              return 0;
            }
            if (single_conjunct_) {
              return !v->is_null() && v->type() == DataType::kBool &&
                             v->bool_value()
                         ? 1
                         : 0;
            }
            return v->is_null() ? -1 : (v->bool_value() ? 1 : 0);
          });
          ORQ_RETURN_IF_ERROR(err);
        }
      }
      if (any_mark && out->selected() > 0) {
        std::vector<uint32_t>& sel = *out->MutableSelection();
        uint32_t w = 0;
        for (uint32_t j = 0; j < sel.size(); ++j) {
          if (null_mark_[sel[j]] == 0) sel[w++] = sel[j];
        }
        sel.resize(static_cast<size_t>(w));
      }
      if (out->selected() > 0) return Status::OK();
    }
  }

  void CloseImpl() override { children_[0]->Close(); }
  std::string name() const override { return "Filter"; }

 private:
  struct Conjunct {
    ColumnarEvaluator vec;
    Evaluator row;  // fallback, set only when !vec.vectorizable()
  };

  /// Rewrites the selection keeping rows whose truth is nonzero; truth < 0
  /// additionally null-marks the row for removal after the last conjunct.
  template <typename TruthFn>
  void Narrow(ColumnBatch* out, bool* any_mark, TruthFn truth) {
    if (!out->has_selection()) {
      const uint32_t n = out->num_rows();
      std::vector<uint32_t>* sel = out->MutableSelection();
      sel->clear();
      for (uint32_t i = 0; i < n; ++i) {
        const int t = truth(i);
        if (t == 0) continue;
        if (t < 0) {
          null_mark_[i] = 1;
          *any_mark = true;
        }
        sel->push_back(i);
      }
      return;
    }
    std::vector<uint32_t>& sel = *out->MutableSelection();
    uint32_t w = 0;
    for (uint32_t j = 0; j < sel.size(); ++j) {
      const uint32_t i = sel[j];
      const int t = truth(i);
      if (t == 0) continue;
      if (t < 0) {
        null_mark_[i] = 1;
        *any_mark = true;
      }
      sel[w++] = i;
    }
    sel.resize(static_cast<size_t>(w));
  }

  Evaluator predicate_;
  std::vector<Conjunct> conjuncts_;
  bool single_conjunct_ = false;
  std::vector<uint8_t> null_mark_;
  Row decode_row_;
  RowBatch input_{0};
  size_t in_pos_ = 0;
};

class ComputeOp : public PhysicalOp {
 public:
  ComputeOp(PhysicalOpPtr child, std::vector<ProjectItem> items,
            std::vector<ColumnId> passthrough) {
    const std::vector<ColumnId>& in = child->layout();
    for (ColumnId id : passthrough) {
      for (size_t i = 0; i < in.size(); ++i) {
        if (in[i] == id) {
          pass_slots_.push_back(static_cast<int>(i));
          layout_.push_back(id);
          break;
        }
      }
    }
    for (ProjectItem& item : items) {
      layout_.push_back(item.output);
      evals_.emplace_back(item.expr, in);
      cevals_.emplace_back(std::make_unique<ColumnarEvaluator>());
      cevals_.back()->Compile(item.expr, in);
    }
    columnar_capable_ = true;
    children_.push_back(std::move(child));
  }

  Status OpenImpl(ExecContext* ctx) override {
    input_ = RowBatch(ctx->batch_size);
    in_pos_ = 0;
    cinput_ = std::make_unique<ColumnBatch>(ctx->batch_size);
    return children_[0]->Open(ctx);
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    Row input;
    ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, &input));
    if (!more) return false;
    row->clear();
    row->reserve(layout_.size());
    for (int slot : pass_slots_) row->push_back(input[slot]);
    for (const Evaluator& eval : evals_) {
      ORQ_ASSIGN_OR_RETURN(Value v, eval.Eval(input, ctx));
      row->push_back(std::move(v));
    }
    return true;
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    while (true) {
      if (in_pos_ >= input_.size()) {
        ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &input_));
        if (input_.empty()) return Status::OK();
        in_pos_ = 0;
      }
      while (in_pos_ < input_.size() && !out->full()) {
        const Row& input = input_.row(in_pos_++);
        Row& slot = out->PushRow();
        slot.clear();
        slot.reserve(layout_.size());
        for (int s : pass_slots_) slot.push_back(input[s]);
        for (const Evaluator& eval : evals_) {
          Result<Value> v = eval.Eval(input, ctx);
          if (!v.ok()) return v.status();
          slot.push_back(std::move(*v));
        }
      }
      if (out->full()) return Status::OK();
    }
  }

  /// Columnar projection: passthrough columns are view assignments (zero
  /// copy), vectorized expressions run the column kernels, and the rest
  /// fall back to the row evaluator over decoded selected rows (decoding
  /// each row once, shared by all fallback expressions).
  Status NextColumnsImpl(ExecContext* ctx, ColumnBatch* out) override {
    ColumnBatch& in = *cinput_;
    in.Clear();
    ORQ_RETURN_IF_ERROR(children_[0]->NextColumns(ctx, &in));
    const uint32_t m = in.selected();
    if (m == 0) return Status::OK();  // end of stream
    const uint32_t n = in.num_rows();
    out->ResizeCols(layout_.size());
    for (size_t k = 0; k < pass_slots_.size(); ++k) {
      out->col(k).AssignView(in.col(pass_slots_[k]));
    }
    bool any_fallback = false;
    for (size_t j = 0; j < cevals_.size(); ++j) {
      ColumnVec& dst = out->col(pass_slots_.size() + j);
      if (cevals_[j]->vectorizable()) {
        ORQ_ASSIGN_OR_RETURN(const ColumnVec* r, cevals_[j]->Eval(in, ctx));
        dst.AssignView(*r);
      } else {
        dst.PrepareScatterVals(cevals_[j]->expr()->type, n);
        any_fallback = true;
      }
    }
    if (any_fallback) {
      for (uint32_t j = 0; j < m; ++j) {
        const uint32_t i = in.RowAt(j);
        in.DecodeRow(i, &decode_row_);
        for (size_t k = 0; k < cevals_.size(); ++k) {
          if (cevals_[k]->vectorizable()) continue;
          ORQ_ASSIGN_OR_RETURN(Value v, evals_[k].Eval(decode_row_, ctx));
          out->col(pass_slots_.size() + k).MutableVals()[i] = std::move(v);
        }
      }
    }
    out->set_num_rows(n);
    if (in.has_selection()) *out->MutableSelection() = in.selection();
    return Status::OK();
  }

  void CloseImpl() override { children_[0]->Close(); }
  std::string name() const override { return "Compute"; }

 private:
  std::vector<int> pass_slots_;
  std::vector<Evaluator> evals_;
  /// unique_ptr so the vector stays movable even though ColumnarEvaluator
  /// holds scratch-pool state; index-aligned with evals_.
  std::vector<std::unique_ptr<ColumnarEvaluator>> cevals_;
  std::unique_ptr<ColumnBatch> cinput_;
  Row decode_row_;
  RowBatch input_{0};
  size_t in_pos_ = 0;
};

class SortOp : public PhysicalOp {
 public:
  SortOp(PhysicalOpPtr child, std::vector<SortKey> keys, int64_t limit)
      : keys_(std::move(keys)), limit_(limit) {
    layout_ = child->layout();
    for (const SortKey& key : keys_) {
      evals_.emplace_back(key.expr, layout_);
    }
    columnar_capable_ = true;
    children_.push_back(std::move(child));
  }

  Status OpenImpl(ExecContext* ctx) override {
    rows_.clear();
    ORQ_RETURN_IF_ERROR(children_[0]->Open(ctx));
    RowBatch batch(ctx->batch_size);
    while (true) {
      ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &batch));
      if (batch.empty()) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        rows_.push_back(std::move(batch.row(i)));
      }
    }
    children_[0]->Close();
    RecordPeak(static_cast<int64_t>(rows_.size()));
    if (MetricsRegistry* m = metrics()) {
      m->Add(MetricCounter::kSpoolRows, static_cast<int64_t>(rows_.size()));
    }
    if (!keys_.empty()) {
      // Precompute sort keys per row.
      std::vector<std::pair<Row, size_t>> keyed(rows_.size());
      for (size_t i = 0; i < rows_.size(); ++i) {
        Row key(keys_.size());
        for (size_t k = 0; k < keys_.size(); ++k) {
          Result<Value> v = evals_[k].Eval(rows_[i], ctx);
          if (!v.ok()) return v.status();
          key[k] = std::move(*v);
        }
        keyed[i] = {std::move(key), i};
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [this](const auto& a, const auto& b) {
                         for (size_t k = 0; k < keys_.size(); ++k) {
                           int c = a.first[k].TotalCompare(b.first[k]);
                           if (c != 0) {
                             return keys_[k].ascending ? c < 0 : c > 0;
                           }
                         }
                         return false;
                       });
      std::vector<Row> sorted(rows_.size());
      for (size_t i = 0; i < keyed.size(); ++i) {
        sorted[i] = std::move(rows_[keyed[i].second]);
      }
      rows_ = std::move(sorted);
    }
    if (limit_ >= 0 && rows_.size() > static_cast<size_t>(limit_)) {
      rows_.resize(limit_);
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(ExecContext*, Row* row) override {
    if (pos_ >= rows_.size()) return false;
    *row = rows_[pos_++];
    return true;
  }

  Status NextBatchImpl(ExecContext*, RowBatch* batch) override {
    // The buffer is rebuilt on re-Open, so emission can move rows out.
    while (pos_ < rows_.size() && !batch->full()) {
      batch->PushRow() = std::move(rows_[pos_++]);
    }
    return Status::OK();
  }

  /// Columnar emission: the sorted buffer is transposed window-by-window
  /// into typed columns, so a columnar parent keeps its batch pipeline
  /// across the sort instead of falling back to the row adapter. Values
  /// are copied (AppendValue), never moved — only the row path owns the
  /// move-out optimization.
  Status NextColumnsImpl(ExecContext*, ColumnBatch* batch) override {
    if (pos_ >= rows_.size()) return Status::OK();
    const uint32_t n = static_cast<uint32_t>(std::min(
        rows_.size() - pos_, static_cast<size_t>(batch->capacity())));
    batch->ResizeCols(layout_.size());
    for (size_t c = 0; c < layout_.size(); ++c) {
      ColumnVec& col = batch->col(c);
      col.StartBuild(rows_[pos_][c].type(), n);
      for (uint32_t i = 0; i < n; ++i) {
        col.AppendValue(rows_[pos_ + i][c]);
      }
      col.Seal();
    }
    batch->set_num_rows(n);
    pos_ += n;
    return Status::OK();
  }

  void CloseImpl() override { rows_.clear(); }
  std::string name() const override {
    return limit_ >= 0 ? "TopSort(" + std::to_string(limit_) + ")" : "Sort";
  }

 private:
  std::vector<SortKey> keys_;
  int64_t limit_;
  std::vector<Evaluator> evals_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class Max1rowOp : public PhysicalOp {
 public:
  explicit Max1rowOp(PhysicalOpPtr child) {
    layout_ = child->layout();
    children_.push_back(std::move(child));
  }

  Status OpenImpl(ExecContext* ctx) override {
    seen_ = 0;
    return children_[0]->Open(ctx);
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, row));
    if (!more) return false;
    if (++seen_ > 1) {
      return Status::CardinalityViolation(
          "scalar subquery returned more than one row");
    }
    return true;
  }

  void CloseImpl() override { children_[0]->Close(); }
  std::string name() const override { return "Max1row"; }

 private:
  int seen_ = 0;
};

class UnionAllOp : public PhysicalOp {
 public:
  UnionAllOp(std::vector<PhysicalOpPtr> children,
             std::vector<ColumnId> layout) {
    layout_ = std::move(layout);
    children_ = std::move(children);
    columnar_capable_ = true;
  }

  Status OpenImpl(ExecContext* ctx) override {
    current_ = 0;
    if (children_.empty()) return Status::OK();
    return children_[0]->Open(ctx);
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    while (current_ < children_.size()) {
      ORQ_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(ctx, row));
      if (more) {
        return true;
      }
      children_[current_]->Close();
      ++current_;
      if (current_ < children_.size()) {
        ORQ_RETURN_IF_ERROR(children_[current_]->Open(ctx));
      }
    }
    return false;
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* batch) override {
    // Whole-batch passthrough: children produce positionally aligned
    // layouts, so the current child fills the output batch directly.
    while (current_ < children_.size()) {
      ORQ_RETURN_IF_ERROR(children_[current_]->NextBatch(ctx, batch));
      if (!batch->empty()) return Status::OK();
      children_[current_]->Close();
      ++current_;
      if (current_ < children_.size()) {
        ORQ_RETURN_IF_ERROR(children_[current_]->Open(ctx));
      }
    }
    return Status::OK();
  }

  /// Columnar passthrough, same child rotation: encoded scan views cross
  /// the union untouched (non-columnar children are adapted by their own
  /// shell), so a columnar parent never drops to the row adapter here.
  Status NextColumnsImpl(ExecContext* ctx, ColumnBatch* batch) override {
    while (current_ < children_.size()) {
      ORQ_RETURN_IF_ERROR(children_[current_]->NextColumns(ctx, batch));
      if (batch->selected() > 0) return Status::OK();
      children_[current_]->Close();
      ++current_;
      if (current_ < children_.size()) {
        ORQ_RETURN_IF_ERROR(children_[current_]->Open(ctx));
      }
    }
    return Status::OK();
  }

  void CloseImpl() override {}
  std::string name() const override { return "UnionAll"; }

 private:
  size_t current_ = 0;
};

class ExceptAllOp : public PhysicalOp {
 public:
  ExceptAllOp(PhysicalOpPtr left, PhysicalOpPtr right,
              std::vector<ColumnId> layout) {
    layout_ = std::move(layout);
    children_.push_back(std::move(left));
    children_.push_back(std::move(right));
  }

  Status OpenImpl(ExecContext* ctx) override {
    counts_.clear();
    ORQ_RETURN_IF_ERROR(children_[1]->Open(ctx));
    RowBatch batch(ctx->batch_size);
    while (true) {
      ORQ_RETURN_IF_ERROR(children_[1]->NextBatch(ctx, &batch));
      if (batch.empty()) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        ++counts_[std::move(batch.row(i))];
      }
    }
    children_[1]->Close();
    RecordPeak(static_cast<int64_t>(counts_.size()));
    if (MetricsRegistry* m = metrics()) {
      m->Add(MetricCounter::kSpoolRows, static_cast<int64_t>(counts_.size()));
    }
    input_ = RowBatch(ctx->batch_size);
    in_pos_ = 0;
    return children_[0]->Open(ctx);
  }

  Result<bool> NextImpl(ExecContext* ctx, Row* row) override {
    while (true) {
      ORQ_ASSIGN_OR_RETURN(bool more, children_[0]->Next(ctx, row));
      if (!more) return false;
      auto it = counts_.find(*row);
      if (it != counts_.end() && it->second > 0) {
        --it->second;
        continue;  // cancelled by a right-side occurrence
      }
      return true;
    }
  }

  Status NextBatchImpl(ExecContext* ctx, RowBatch* out) override {
    while (true) {
      if (in_pos_ >= input_.size()) {
        ORQ_RETURN_IF_ERROR(children_[0]->NextBatch(ctx, &input_));
        if (input_.empty()) return Status::OK();
        in_pos_ = 0;
      }
      while (in_pos_ < input_.size() && !out->full()) {
        Row& row = input_.row(in_pos_++);
        auto it = counts_.find(row);
        if (it != counts_.end() && it->second > 0) {
          --it->second;
          continue;
        }
        out->PushRow() = std::move(row);
      }
      if (out->full()) return Status::OK();
    }
  }

  void CloseImpl() override {
    children_[0]->Close();
    counts_.clear();
  }
  std::string name() const override { return "ExceptAll"; }

 private:
  std::unordered_map<Row, int64_t, RowHash, RowGroupEq> counts_;
  RowBatch input_{0};
  size_t in_pos_ = 0;
};

}  // namespace

PhysicalOpPtr MakeFilterOp(PhysicalOpPtr child, ScalarExprPtr predicate) {
  return std::make_unique<FilterOp>(std::move(child), std::move(predicate));
}

PhysicalOpPtr MakeComputeOp(PhysicalOpPtr child,
                            std::vector<ProjectItem> items,
                            std::vector<ColumnId> passthrough) {
  return std::make_unique<ComputeOp>(std::move(child), std::move(items),
                                     std::move(passthrough));
}

PhysicalOpPtr MakeSortOp(PhysicalOpPtr child, std::vector<SortKey> keys,
                         int64_t limit) {
  return std::make_unique<SortOp>(std::move(child), std::move(keys), limit);
}

PhysicalOpPtr MakeMax1rowOp(PhysicalOpPtr child) {
  return std::make_unique<Max1rowOp>(std::move(child));
}

PhysicalOpPtr MakeUnionAllOp(std::vector<PhysicalOpPtr> children,
                             std::vector<ColumnId> layout) {
  return std::make_unique<UnionAllOp>(std::move(children), std::move(layout));
}

PhysicalOpPtr MakeExceptAllOp(PhysicalOpPtr left, PhysicalOpPtr right,
                              std::vector<ColumnId> layout) {
  return std::make_unique<ExceptAllOp>(std::move(left), std::move(right),
                                       std::move(layout));
}

}  // namespace orq
