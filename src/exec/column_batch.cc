#include "exec/column_batch.h"

#include <cmath>
#include <functional>

namespace orq {

Value ColumnVec::GetValue(uint32_t i) const {
  if (rep_ == ColumnRep::kValues) return vals_[i];
  if (IsNull(i)) return Value::Null(type_);
  switch (rep_) {
    case ColumnRep::kInts:
      switch (type_) {
        case DataType::kBool: return Value::Bool(IntAt(i) != 0);
        case DataType::kDate:
          return Value::Date(static_cast<int32_t>(IntAt(i)));
        default: return Value::Int64(IntAt(i));
      }
    case ColumnRep::kDoubles:
      return Value::Double(DoubleAt(i));
    case ColumnRep::kStrings:
      return Value::String(std::string(StrAt(i)));
    default:
      return vals_[i];
  }
}

void ColumnVec::StartBuild(DataType type, uint32_t reserve) {
  ReleaseOwned();
  type_ = type;
  rep_ = RepForType(type);
  switch (rep_) {
    case ColumnRep::kInts: own_ints_.reserve(reserve); break;
    case ColumnRep::kDoubles: own_doubles_.reserve(reserve); break;
    case ColumnRep::kStrings:
      own_offsets_.reserve(reserve + 1);
      own_offsets_.push_back(0);
      break;
    default: break;
  }
  own_nulls_.reserve(reserve);
}

void ColumnVec::AppendNull() {
  any_null_ = true;
  switch (rep_) {
    case ColumnRep::kInts: own_ints_.push_back(0); break;
    case ColumnRep::kDoubles: own_doubles_.push_back(0.0); break;
    case ColumnRep::kStrings:
      own_offsets_.push_back(static_cast<uint32_t>(own_chars_.size()));
      break;
    case ColumnRep::kValues:
      own_vals_.push_back(Value::Null(type_));
      return;
  }
  own_nulls_.push_back(1);
}

void ColumnVec::AppendValue(const Value& v) {
  if (rep_ == ColumnRep::kValues) {
    own_vals_.push_back(v);
    return;
  }
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (v.type() != type_) {
    // First off-type tag: box everything appended so far and continue as
    // kValues, preserving exact tags (Int64(3) stays distinguishable from
    // Double(3.0) the way the row engine sees them).
    DegradeToValues();
    own_vals_.push_back(v);
    return;
  }
  switch (rep_) {
    case ColumnRep::kInts: AppendInt(v.int64_value()); break;
    case ColumnRep::kDoubles: AppendDouble(v.double_value()); break;
    case ColumnRep::kStrings: AppendStr(v.string_value()); break;
    default: break;
  }
}

void ColumnVec::DegradeToValues() {
  const uint32_t n = rep_ == ColumnRep::kStrings
                         ? static_cast<uint32_t>(own_offsets_.size()) - 1
                         : static_cast<uint32_t>(
                               rep_ == ColumnRep::kInts ? own_ints_.size()
                                                        : own_doubles_.size());
  own_vals_.clear();
  own_vals_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (own_nulls_[i] != 0) {
      own_vals_.push_back(Value::Null(type_));
      continue;
    }
    switch (rep_) {
      case ColumnRep::kInts:
        switch (type_) {
          case DataType::kBool:
            own_vals_.push_back(Value::Bool(own_ints_[i] != 0));
            break;
          case DataType::kDate:
            own_vals_.push_back(
                Value::Date(static_cast<int32_t>(own_ints_[i])));
            break;
          default:
            own_vals_.push_back(Value::Int64(own_ints_[i]));
        }
        break;
      case ColumnRep::kDoubles:
        own_vals_.push_back(Value::Double(own_doubles_[i]));
        break;
      case ColumnRep::kStrings: {
        const char* base = own_chars_.data();
        own_vals_.push_back(Value::String(std::string(
            base + own_offsets_[i], own_offsets_[i + 1] - own_offsets_[i])));
        break;
      }
      default: break;
    }
  }
  own_ints_.clear();
  own_doubles_.clear();
  own_chars_.clear();
  own_offsets_.clear();
  own_nulls_.clear();
  rep_ = ColumnRep::kValues;
}

void ColumnVec::Seal() {
  switch (rep_) {
    case ColumnRep::kInts:
      size_ = static_cast<uint32_t>(own_ints_.size());
      ints_ = own_ints_.data();
      break;
    case ColumnRep::kDoubles:
      size_ = static_cast<uint32_t>(own_doubles_.size());
      doubles_ = own_doubles_.data();
      break;
    case ColumnRep::kStrings:
      size_ = static_cast<uint32_t>(own_offsets_.size()) - 1;
      chars_ = own_chars_.data();
      offsets_ = own_offsets_.data();
      break;
    case ColumnRep::kValues:
      size_ = static_cast<uint32_t>(own_vals_.size());
      vals_ = own_vals_.data();
      return;  // kValues carries nulls inline
  }
  nulls_ = any_null_ ? own_nulls_.data() : nullptr;
}

void ColumnVec::PrepareScatter(DataType type, uint32_t n) {
  if (type == DataType::kString) {
    // No random-access arena writes; string results scatter as boxed Values.
    PrepareScatterVals(type, n);
    return;
  }
  ReleaseOwned();
  type_ = type;
  rep_ = RepForType(type);
  size_ = n;
  if (rep_ == ColumnRep::kDoubles) {
    own_doubles_.assign(n, 0.0);
    doubles_ = own_doubles_.data();
  } else {
    own_ints_.assign(n, 0);
    ints_ = own_ints_.data();
  }
  own_nulls_.assign(n, 0);
  nulls_ = own_nulls_.data();
}

void ColumnVec::PrepareScatterVals(DataType type, uint32_t n) {
  ReleaseOwned();
  type_ = type;
  rep_ = ColumnRep::kValues;
  size_ = n;
  own_vals_.assign(n, Value());
  vals_ = own_vals_.data();
}

void ColumnVec::ClearOwned() {
  ReleaseOwned();
}

void ColumnVec::ReleaseOwned() {
  own_ints_.clear();
  own_doubles_.clear();
  own_chars_.clear();
  own_offsets_.clear();
  own_vals_.clear();
  own_nulls_.clear();
  any_null_ = false;
  ints_ = nullptr;
  doubles_ = nullptr;
  chars_ = nullptr;
  offsets_ = nullptr;
  vals_ = nullptr;
  nulls_ = nullptr;
  enc_ = ColumnEnc::kNone;
  codes_ = nullptr;
  dict_hashes_ = nullptr;
  dict_size_ = 0;
  run_ends_ = nullptr;
  run_nulls_ = nullptr;
  num_runs_ = 0;
  row_base_ = 0;
  run_cursor_ = 0;
  size_ = 0;
}

std::optional<int> SqlCompareRefs(const ElemRef& a, const ElemRef& b) {
  if (a.null || b.null) return std::nullopt;
  if (IsNumeric(a.type) && IsNumeric(b.type)) {
    if (a.type == DataType::kInt64 && b.type == DataType::kInt64) {
      if (a.i < b.i) return -1;
      if (a.i > b.i) return 1;
      return 0;
    }
    if (a.type == DataType::kInt64) return CompareInt64WithDouble(a.i, b.d);
    if (b.type == DataType::kInt64) return -CompareInt64WithDouble(b.i, a.d);
    return CompareDoubles(a.d, b.d);
  }
  if (a.type != b.type) return std::nullopt;
  switch (a.type) {
    case DataType::kBool:
    case DataType::kDate:
      if (a.i < b.i) return -1;
      if (a.i > b.i) return 1;
      return 0;
    case DataType::kString: {
      int c = a.s.compare(b.s);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return std::nullopt;
  }
}

int TotalCompareRefs(const ElemRef& a, const ElemRef& b) {
  if (a.null && b.null) return 0;
  if (a.null) return -1;
  if (b.null) return 1;
  std::optional<int> c = SqlCompareRefs(a, b);
  if (c.has_value()) return *c;
  return static_cast<int>(a.type) < static_cast<int>(b.type) ? -1 : 1;
}

size_t HashRef(const ElemRef& r) {
  if (r.null) return 0x6e756c6cull;
  switch (r.type) {
    case DataType::kBool:
    case DataType::kDate:
      return std::hash<int64_t>()(r.i);
    case DataType::kInt64: {
      constexpr double kTwo63 = 9223372036854775808.0;
      double d = static_cast<double>(r.i);
      if (d >= -kTwo63 && d < kTwo63 && static_cast<int64_t>(d) == r.i) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(r.i);
    }
    case DataType::kDouble: {
      double d = r.d;
      if (d == 0.0) d = 0.0;
      if (std::isnan(d)) return 0x7fff8e8eull;
      return std::hash<double>()(d);
    }
    case DataType::kString:
      return std::hash<std::string_view>()(r.s);
  }
  return 0;
}

void ColumnBatch::DecodeRow(uint32_t i, Row* out) const {
  out->resize(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    (*out)[c] = cols_[c].GetValue(i);
  }
}

}  // namespace orq
